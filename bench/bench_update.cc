// Experiment T5 — subtree update cost per mapping.
//
// Appends (and then deletes) an item subtree in the middle of the document.
// The interval mapping must renumber every following node and resize every
// ancestor; Dewey touches only the new rows — that order-of-magnitude gap is
// the figure this experiment reproduces.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "xml/parser.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.1;

std::unique_ptr<xml::Node> ItemFragment(int i) {
  auto frag = xml::ParseFragment(
      "<item id=\"bench_item" + std::to_string(i) +
      "\"><location>Testland</location><quantity>1</quantity>"
      "<name>bench item</name><description>inserted by bench_update"
      "</description></item>");
  return frag.ok() ? std::move(frag).value() : nullptr;
}

void BM_InsertSubtree(benchmark::State& state, const std::string& mapping_name) {
  // A private store per benchmark: updates mutate it, so no cache sharing.
  auto mapping = MakeMapping(mapping_name);
  auto db = std::make_unique<rdb::Database>();
  workload::XMarkConfig cfg;
  cfg.scale = kScale;
  auto doc = workload::GenerateXMark(cfg);
  if (mapping == nullptr || !mapping->Initialize(db.get()).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  auto id = mapping->Store(*doc, db.get());
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  // Insertion point: the africa region (early in document order, so the
  // interval mapping has to shift nearly everything).
  auto path = xpath::ParseXPath("/site/regions/africa");
  auto nodes = shred::EvalPath(path.value(), mapping.get(), db.get(), id.value());
  if (!nodes.ok() || nodes.value().empty()) {
    state.SkipWithError("insertion point not found");
    return;
  }
  rdb::Value africa = nodes.value()[0];
  int i = 0;
  for (auto _ : state) {
    auto frag = ItemFragment(i++);
    Status st = mapping->InsertSubtree(db.get(), id.value(), africa, *frag);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
}

void BM_DeleteSubtree(benchmark::State& state, const std::string& mapping_name) {
  auto mapping = MakeMapping(mapping_name);
  auto db = std::make_unique<rdb::Database>();
  workload::XMarkConfig cfg;
  cfg.scale = kScale;
  auto doc = workload::GenerateXMark(cfg);
  if (mapping == nullptr || !mapping->Initialize(db.get()).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  auto id = mapping->Store(*doc, db.get());
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  auto path = xpath::ParseXPath("/site/regions/africa");
  auto africa =
      shred::EvalPath(path.value(), mapping.get(), db.get(), id.value());
  if (!africa.ok() || africa.value().empty()) {
    state.SkipWithError("no africa region");
    return;
  }
  // Pre-insert items; each iteration deletes the most recently found one.
  auto item_path = xpath::ParseXPath("/site/regions/africa/item");
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto frag = ItemFragment(i++);
    if (!mapping
             ->InsertSubtree(db.get(), id.value(), africa.value()[0], *frag)
             .ok()) {
      state.SkipWithError("insert failed");
      return;
    }
    auto items =
        shred::EvalPath(item_path.value(), mapping.get(), db.get(), id.value());
    if (!items.ok() || items.value().empty()) {
      state.SkipWithError("no items");
      return;
    }
    rdb::Value victim = items.value().back();
    state.ResumeTiming();
    Status st = mapping->DeleteSubtree(db.get(), id.value(), victim);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
}

void RegisterAll() {
  for (const std::string& name : AllMappingNames()) {
    benchmark::RegisterBenchmark(
        ("T5/insert_subtree/" + name).c_str(),
        [name](benchmark::State& s) { BM_InsertSubtree(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(20);
    benchmark::RegisterBenchmark(
        ("T5/delete_subtree/" + name).c_str(),
        [name](benchmark::State& s) { BM_DeleteSubtree(s, name); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(20);
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
