// Experiment T7 — the price of durability and the speed of recovery.
//
// Three scenarios: (1) per-update latency of a WAL-backed store under each
// fsync policy (never / batch / commit) against the no-WAL baseline, on the
// real filesystem so fsync costs are real; (2) whole-document shred
// throughput under the same policies; (3) cold-start recovery, replaying the
// log over an in-memory Env, reporting how many records a reopen replays
// (recovered_records — the CI smoke job asserts it is positive).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "rdb/durability.h"
#include "rdb/env.h"
#include "rdb/fault_env.h"
#include "rdb/wal.h"
#include "xml/parser.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.05;
constexpr char kScratchRoot[] = "bench_durability.tmp";

std::unique_ptr<xml::Node> ItemFragment(int i) {
  auto frag = xml::ParseFragment(
      "<item id=\"t7_item" + std::to_string(i) +
      "\"><location>Benchland</location><quantity>1</quantity>"
      "<name>t7 item</name><description>inserted by bench_durability"
      "</description></item>");
  return frag.ok() ? std::move(frag).value() : nullptr;
}

/// "none" means no WAL at all (the in-memory baseline); anything else is a
/// durable database under that fsync policy.
bool ParsePolicy(const std::string& name, rdb::WalOptions* out) {
  if (name == "never") {
    out->sync_policy = rdb::WalOptions::SyncPolicy::kNever;
  } else if (name == "batch") {
    out->sync_policy = rdb::WalOptions::SyncPolicy::kBatch;
  } else if (name == "commit") {
    out->sync_policy = rdb::WalOptions::SyncPolicy::kCommit;
  } else {
    return false;
  }
  return true;
}

/// Opens a fresh (empty) durable database in a scratch directory on the real
/// filesystem, or a plain in-memory database for policy "none".
std::unique_ptr<rdb::Database> FreshDb(const std::string& policy,
                                       const std::string& scratch) {
  if (policy == "none") return std::make_unique<rdb::Database>();
  rdb::Env* env = rdb::Env::Default();
  if (!env->RemoveDirRecursive(scratch).ok()) return nullptr;
  rdb::DurableOptions opts;
  if (!ParsePolicy(policy, &opts.wal)) return nullptr;
  auto db = rdb::OpenDurableDatabase(env, scratch, opts);
  return db.ok() ? std::move(db).value() : nullptr;
}

int64_t GetOr(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.find(name);
  return it == snap.end() ? 0 : it->second;
}

void ReportWalCounters(benchmark::State& state, const MetricsSnapshot& before) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  state.counters["wal_appends"] =
      static_cast<double>(reg.Get("wal.appends") - GetOr(before, "wal.appends"));
  state.counters["wal_fsyncs"] =
      static_cast<double>(reg.Get("wal.fsyncs") - GetOr(before, "wal.fsyncs"));
  state.counters["wal_bytes"] =
      static_cast<double>(reg.Get("wal.bytes") - GetOr(before, "wal.bytes"));
}

/// Per-update latency: append one item subtree per iteration (dewey — update
/// cost is row-local, so the WAL and fsync dominate the delta).
void BM_DurableInsert(benchmark::State& state, const std::string& policy) {
  auto mapping = MakeMapping("dewey");
  auto db = FreshDb(policy, std::string(kScratchRoot) + "/insert_" + policy);
  workload::XMarkConfig cfg;
  cfg.scale = kScale;
  auto doc = workload::GenerateXMark(cfg);
  if (mapping == nullptr || db == nullptr ||
      !mapping->Initialize(db.get()).ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  auto id = mapping->Store(*doc, db.get());
  if (!id.ok()) {
    state.SkipWithError(id.status().ToString().c_str());
    return;
  }
  auto path = xpath::ParseXPath("/site/regions/africa");
  auto nodes =
      shred::EvalPath(path.value(), mapping.get(), db.get(), id.value());
  if (!nodes.ok() || nodes.value().empty()) {
    state.SkipWithError("insertion point not found");
    return;
  }
  rdb::Value africa = nodes.value()[0];
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  const MetricsSnapshot before = reg.Snapshot();
  int i = 0;
  for (auto _ : state) {
    auto frag = ItemFragment(i++);
    Status st = mapping->InsertSubtree(db.get(), id.value(), africa, *frag);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  ReportWalCounters(state, before);
}

/// Whole-document shred throughput: one full store per iteration into a
/// fresh durable database.
void BM_DurableShred(benchmark::State& state, const std::string& policy) {
  workload::XMarkConfig cfg;
  cfg.scale = kScale;
  auto doc = workload::GenerateXMark(cfg);
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  const MetricsSnapshot before = reg.Snapshot();
  for (auto _ : state) {
    state.PauseTiming();
    auto mapping = MakeMapping("dewey");
    auto db = FreshDb(policy, std::string(kScratchRoot) + "/shred_" + policy);
    if (mapping == nullptr || db == nullptr) {
      state.SkipWithError("setup failed");
      return;
    }
    state.ResumeTiming();
    Status st = mapping->Initialize(db.get());
    if (st.ok()) st = mapping->Store(*doc, db.get()).status();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  ReportWalCounters(state, before);
}

/// Cold-start recovery: reopen a database whose entire history lives in the
/// WAL (no checkpoint), so every reopen replays the full log.
void BM_Recover(benchmark::State& state) {
  rdb::FaultInjectionEnv env;
  workload::XMarkConfig cfg;
  cfg.scale = kScale;
  auto doc = workload::GenerateXMark(cfg);
  {
    auto db = rdb::OpenDurableDatabase(&env, "db");
    auto mapping = MakeMapping("dewey");
    if (!db.ok() || mapping == nullptr ||
        !mapping->Initialize(db.value().get()).ok()) {
      state.SkipWithError("setup failed");
      return;
    }
    auto id = mapping->Store(*doc, db.value().get());
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      return;
    }
  }
  int64_t replayed = 0;
  for (auto _ : state) {
    rdb::RecoveryStats stats;
    auto db = rdb::OpenDurableDatabase(&env, "db", {}, &stats);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    replayed = stats.records_replayed;
  }
  state.counters["recovered_records"] = static_cast<double>(replayed);
}

void RegisterAll() {
  for (const std::string policy : {"none", "never", "batch", "commit"}) {
    benchmark::RegisterBenchmark(
        ("T7/insert_subtree/" + policy).c_str(),
        [policy](benchmark::State& s) { BM_DurableInsert(s, policy); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(100);
    if (policy == "none") continue;  // shred baseline exists in T2 already
    benchmark::RegisterBenchmark(
        ("T7/shred/" + policy).c_str(),
        [policy](benchmark::State& s) { BM_DurableShred(s, policy); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  }
  benchmark::RegisterBenchmark("T7/recover", BM_Recover)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(20);
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  (void)xmlrdb::rdb::Env::Default()->RemoveDirRecursive("bench_durability.tmp");
  return 0;
}
