// Experiment F1 — query latency vs document scale for three representative
// queries (Q2 point lookup, Q6 wildcard path, Q10 range predicate), per
// mapping. These are the scaling curves (figures) of the comparison.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

const std::vector<std::pair<std::string, std::string>>& ScalingQueries() {
  static const std::vector<std::pair<std::string, std::string>> kQueries = {
      {"Q2", "/site/people/person[@id = 'person0']/name"},
      {"Q6", "/site/regions/*/item/location"},
      {"Q10", "//open_auction[initial > 200]/current"},
  };
  return kQueries;
}

void BM_Scaling(benchmark::State& state, const std::string& mapping_name,
                const std::string& xpath, double scale) {
  StoredAuction* sa = GetStoredAuction(mapping_name, scale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath(xpath);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto nodes = shred::EvalPath(path.value(), sa->mapping.get(), sa->db.get(),
                                 sa->doc_id);
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(nodes.value());
  }
}

void RegisterAll() {
  for (const auto& [qid, xpath] : ScalingQueries()) {
    for (const std::string& name : AllMappingNames()) {
      for (double scale : {0.05, 0.1, 0.2, 0.4}) {
        std::string label = "F1/" + qid + "/" + name + "/scale_" +
                            std::to_string(scale).substr(0, 4);
        std::string q = xpath;
        benchmark::RegisterBenchmark(
            label.c_str(),
            [name, q, scale](benchmark::State& s) { BM_Scaling(s, name, q, scale); })
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
