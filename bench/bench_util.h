// Shared setup for the experiment harness (see DESIGN.md experiment index).

#ifndef XMLRDB_BENCH_BENCH_UTIL_H_
#define XMLRDB_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "rdb/durability.h"
#include "rdb/env.h"
#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/dtd.h"

namespace xmlrdb::bench {

/// All six mappings, "inline" built from the auction DTD.
inline std::vector<std::string> AllMappingNames() {
  return {"edge", "binary", "interval", "dewey", "inline", "blob"};
}

inline std::unique_ptr<shred::Mapping> MakeMapping(const std::string& name) {
  if (name == "inline") {
    auto dtd = xml::ParseDtd(workload::XMarkDtd());
    if (!dtd.ok()) return nullptr;
    auto m = shred::InlineMapping::Create(*dtd.value(), "site");
    return m.ok() ? std::move(m).value() : nullptr;
  }
  auto m = shred::CreateMapping(name);
  return m.ok() ? std::move(m).value() : nullptr;
}

/// Root directory for every durable store a benchmark creates (WAL
/// directories, checkpoints, per-shard directories). Unique per process, so
/// `ctest -j` running several benches in the same build directory never
/// lands two engines on the same WAL directory; set XMLRDB_STORE_DIR for a
/// stable location instead.
inline std::string StoreDirPrefix() {
  if (const char* dir = std::getenv("XMLRDB_STORE_DIR");
      dir != nullptr && dir[0] != '\0') {
    return dir;
  }
  static const std::string kUnique =
      "bench_stores_" + std::to_string(static_cast<long>(getpid())) + ".tmp";
  return kUnique;
}

/// One stored auction document at a given scale, kept alive for reuse across
/// benchmark iterations of the same configuration.
struct StoredAuction {
  std::unique_ptr<shred::Mapping> mapping;
  std::unique_ptr<rdb::Database> db;
  std::unique_ptr<xml::Document> doc;
  shred::DocId doc_id = 0;
};

/// Flattens a metrics delta into bench-counter names: "sql.statements" ->
/// "sql_stmts", "exec.rows_scanned" -> "rows_scanned", "op.<Op>.rows" ->
/// "op_<Op>_rows", plus a distinct-tables-touched count. Keys the benchmark
/// JSON can carry so trajectories capture plan shape, not just latency.
inline std::map<std::string, int64_t> BenchCounterNames(
    const MetricsSnapshot& delta) {
  std::map<std::string, int64_t> out;
  int64_t tables = 0;
  for (const auto& [name, value] : delta) {
    if (name == "sql.statements") {
      out["sql_stmts"] = value;
    } else if (name == "sql.parsed") {
      out["sql_parsed"] = value;
    } else if (name == "plancache.hits") {
      out["plancache_hits"] = value;
    } else if (name == "plancache.misses") {
      out["plancache_misses"] = value;
    } else if (name == "plancache.invalidations") {
      out["plancache_invalidations"] = value;
    } else if (name == "exec.rows_scanned") {
      out["rows_scanned"] = value;
    } else if (name == "exec.batches") {
      out["batches"] = value;
    } else if (name.rfind("op.", 0) == 0) {
      std::string flat = "op_" + name.substr(3);
      for (char& c : flat) {
        if (c == '.') c = '_';
      }
      out[flat] = value;
    } else if (name.rfind("table.", 0) == 0 &&
               name.compare(name.size() - 6, 6, ".scans") == 0) {
      ++tables;
    }
  }
  if (tables > 0) out["tables_touched"] = tables;
  return out;
}

/// Publishes a latency histogram's p50/p95/p99 (microseconds) as benchmark
/// counters so they land in the JSON output next to the mean. Multi-threaded
/// benchmarks pass average_across_threads = true: each thread reports its own
/// per-thread histogram and the harness averages them.
inline void ReportLatencyPercentiles(benchmark::State& state,
                                     const HistogramSnapshot& snap,
                                     bool average_across_threads = false) {
  if (snap.count == 0) return;
  const auto flags = average_across_threads ? benchmark::Counter::kAvgThreads
                                            : benchmark::Counter::kDefaults;
  state.counters["p50_us"] = benchmark::Counter(snap.p50(), flags);
  state.counters["p95_us"] = benchmark::Counter(snap.p95(), flags);
  state.counters["p99_us"] = benchmark::Counter(snap.p99(), flags);
}

/// When the XMLRDB_TRACE_JSON environment variable names a file, enables the
/// global trace collector for the duration of the program; call
/// WriteTraceJsonIfRequested() after the benchmarks to export the Chrome
/// trace. Returns true when tracing was enabled.
inline bool EnableTracingIfRequested() {
  const char* path = std::getenv("XMLRDB_TRACE_JSON");
  if (path == nullptr || path[0] == '\0') return false;
  TraceCollector::Global().set_enabled(true);
  return true;
}

inline void WriteTraceJsonIfRequested() {
  const char* path = std::getenv("XMLRDB_TRACE_JSON");
  if (path == nullptr || path[0] == '\0') return;
  TraceCollector& collector = TraceCollector::Global();
  collector.set_enabled(false);
  std::ofstream out(path);
  out << collector.RenderChromeJson();
}

/// Builds (and memoizes per (mapping, scale, durable)) a stored auction
/// document. Thread-safe: multi-threaded benchmarks hit the cache from every
/// worker. `durable` backs the store with a WAL directory under
/// StoreDirPrefix(), wiped on first build so reruns start cold.
inline StoredAuction* GetStoredAuction(const std::string& mapping_name,
                                       double scale, bool durable = false) {
  static std::mutex mu;
  static std::map<std::tuple<std::string, int, bool>,
                  std::unique_ptr<StoredAuction>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  const int scale_key = static_cast<int>(scale * 1000);
  auto key = std::make_tuple(mapping_name, scale_key, durable);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  auto stored = std::make_unique<StoredAuction>();
  stored->mapping = MakeMapping(mapping_name);
  if (stored->mapping == nullptr) return nullptr;
  if (durable) {
    rdb::Env* env = rdb::Env::Default();
    const std::string dir = StoreDirPrefix() + "/auction_" + mapping_name +
                            "_" + std::to_string(scale_key);
    if (!env->RemoveDirRecursive(dir).ok()) return nullptr;
    auto db = rdb::OpenDurableDatabase(env, dir);
    if (!db.ok()) return nullptr;
    stored->db = std::move(db).value();
  } else {
    stored->db = std::make_unique<rdb::Database>();
  }
  workload::XMarkConfig cfg;
  cfg.scale = scale;
  stored->doc = workload::GenerateXMark(cfg);
  if (!stored->mapping->Initialize(stored->db.get()).ok()) return nullptr;
  auto id = stored->mapping->Store(*stored->doc, stored->db.get());
  if (!id.ok()) return nullptr;
  stored->doc_id = id.value();
  auto [pos, inserted] = cache.emplace(key, std::move(stored));
  (void)inserted;
  return pos->second.get();
}

}  // namespace xmlrdb::bench

#endif  // XMLRDB_BENCH_BENCH_UTIL_H_
