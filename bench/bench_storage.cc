// Experiment T1 — storage size per mapping vs document size.
//
// Prints, for each scale factor and mapping: row count across the mapping's
// tables, approximate bytes, and the blow-up factor relative to the raw
// serialized document.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/str_util.h"
#include "xml/serializer.h"
#include "xml/stats.h"

namespace xmlrdb::bench {
namespace {

size_t TotalRows(const rdb::Database& db) {
  size_t rows = 0;
  for (const std::string& t : db.TableNames()) {
    rows += db.FindTable(t)->num_rows();
  }
  return rows;
}

void Run() {
  std::printf("T1: storage size per mapping (auction documents)\n");
  std::printf("%-8s %-10s %12s %14s %10s %8s\n", "scale", "mapping", "rows",
              "bytes", "human", "blowup");
  for (double scale : {0.05, 0.1, 0.25, 0.5}) {
    workload::XMarkConfig cfg;
    cfg.scale = scale;
    auto doc = workload::GenerateXMark(cfg);
    size_t raw_bytes = xml::Serialize(*doc).size();
    xml::DocStats stats = xml::ComputeStats(*doc->root());
    std::printf("-- scale %.2f: raw %s, %llu elements, %llu attributes\n",
                scale, HumanBytes(raw_bytes).c_str(),
                static_cast<unsigned long long>(stats.element_count),
                static_cast<unsigned long long>(stats.attribute_count));
    for (const std::string& name : AllMappingNames()) {
      StoredAuction* sa = GetStoredAuction(name, scale);
      if (sa == nullptr) {
        std::printf("%-8.2f %-10s  (setup failed)\n", scale, name.c_str());
        continue;
      }
      auto bytes = sa->mapping->FootprintBytes(*sa->db);
      size_t b = bytes.ok() ? bytes.value() : 0;
      std::printf("%-8.2f %-10s %12zu %14zu %10s %7.1fx\n", scale, name.c_str(),
                  TotalRows(*sa->db), b, HumanBytes(b).c_str(),
                  static_cast<double>(b) / static_cast<double>(raw_bytes));
    }
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main() {
  xmlrdb::bench::Run();
  return 0;
}
