// Experiment A1 — index ablation on the interval mapping: the same query
// suite with and without the (docid, name, pre) name index. Shows how much
// of the interval mapping's win is the encoding vs the secondary index.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "shred/interval_mapping.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.1;

struct Store {
  shred::IntervalMapping mapping;
  rdb::Database db;
  shred::DocId id = 0;
  explicit Store(bool with_name_index) : mapping(with_name_index) {}
};

Store* GetStore(bool with_name_index) {
  static Store* with = nullptr;
  static Store* without = nullptr;
  Store*& slot = with_name_index ? with : without;
  if (slot == nullptr) {
    slot = new Store(with_name_index);
    workload::XMarkConfig cfg;
    cfg.scale = kScale;
    auto doc = workload::GenerateXMark(cfg);
    if (!slot->mapping.Initialize(&slot->db).ok()) return nullptr;
    auto id = slot->mapping.Store(*doc, &slot->db);
    if (!id.ok()) return nullptr;
    slot->id = id.value();
  }
  return slot;
}

void BM_Ablation(benchmark::State& state, bool with_name_index,
                 const std::string& xpath) {
  Store* store = GetStore(with_name_index);
  if (store == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath(xpath);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto nodes =
        shred::EvalPath(path.value(), &store->mapping, &store->db, store->id);
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(nodes.value());
  }
}

void RegisterAll() {
  const std::vector<std::pair<std::string, std::string>> queries = {
      {"all_items", "//item"},
      {"named_leaf", "//creditcard"},
      {"long_path", "/site/open_auctions/open_auction/bidder/increase"},
  };
  for (const auto& [label, xpath] : queries) {
    for (bool with_index : {true, false}) {
      std::string name = "A1/" + label + "/" +
                         (with_index ? "name_index" : "no_name_index");
      std::string q = xpath;
      benchmark::RegisterBenchmark(
          name.c_str(),
          [with_index, q](benchmark::State& s) { BM_Ablation(s, with_index, q); })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
