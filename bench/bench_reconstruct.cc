// Experiment T4 — reconstruction (publishing) time per mapping: full
// document and per-auction subtrees. The blob baseline should win here and
// the binary mapping should pay for visiting every partition.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "xml/serializer.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.1;

void BM_ReconstructDocument(benchmark::State& state,
                            const std::string& mapping_name) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  size_t bytes = 0;
  for (auto _ : state) {
    auto doc = sa->mapping->Reconstruct(sa->db.get(), sa->doc_id);
    if (!doc.ok()) {
      state.SkipWithError(doc.status().ToString().c_str());
      return;
    }
    bytes = xml::Serialize(*doc.value()).size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["doc_bytes"] = static_cast<double>(bytes);
}

void BM_ReconstructSubtrees(benchmark::State& state,
                            const std::string& mapping_name) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath("/site/open_auctions/open_auction");
  auto nodes = shred::EvalPath(path.value(), sa->mapping.get(), sa->db.get(),
                               sa->doc_id);
  if (!nodes.ok()) {
    state.SkipWithError(nodes.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    for (const auto& id : nodes.value()) {
      auto subtree =
          sa->mapping->ReconstructSubtree(sa->db.get(), sa->doc_id, id);
      if (!subtree.ok()) {
        state.SkipWithError(subtree.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(subtree.value());
    }
  }
  state.counters["subtrees"] = static_cast<double>(nodes.value().size());
}

void RegisterAll() {
  for (const std::string& name : AllMappingNames()) {
    benchmark::RegisterBenchmark(
        ("T4/reconstruct_document/" + name).c_str(),
        [name](benchmark::State& s) { BM_ReconstructDocument(s, name); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("T4/reconstruct_subtrees/" + name).c_str(),
        [name](benchmark::State& s) { BM_ReconstructSubtrees(s, name); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
