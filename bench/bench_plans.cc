// Experiment T6 — plan shapes: how many relational joins each mapping needs
// per path query, and the inline mapping's join elimination. A table
// printer, not a timer: the row counts are the result.

#include <cstdio>

#include "bench/bench_util.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.05;

void Run() {
  std::printf("T6: relational joins per translated path query\n");
  std::printf("(single-statement SQL translation; '-' = not expressible as "
              "one statement for that mapping)\n\n");
  const std::vector<std::string> paths = {
      "/site/people/person/name",
      "/site/regions/africa/item/name",
      "/site/open_auctions/open_auction/bidder/increase",
      "//item",
      "/site/regions//item",
  };
  const std::vector<std::string> mappings = {"edge", "binary", "interval",
                                             "inline"};
  std::printf("%-50s", "path");
  for (const auto& m : mappings) std::printf(" %9s", m.c_str());
  std::printf("\n");

  // Warm stores so catalogs (binary partitions) exist.
  for (const auto& m : mappings) GetStoredAuction(m, kScale);

  for (const std::string& p : paths) {
    auto path = xpath::ParseXPath(p);
    if (!path.ok()) continue;
    std::printf("%-50s", p.c_str());
    for (const auto& mname : mappings) {
      StoredAuction* sa = GetStoredAuction(mname, kScale);
      if (sa == nullptr) {
        std::printf(" %9s", "err");
        continue;
      }
      auto sql = sa->mapping->TranslatePathToSql(sa->doc_id, path.value());
      if (!sql.ok()) {
        std::printf(" %9s", "-");
        continue;
      }
      auto plan = sa->db->PlanSql(sql.value());
      if (!plan.ok()) {
        std::printf(" %9s", "err");
        continue;
      }
      int joins = plan.value()->CountOperators("HashJoin") +
                  plan.value()->CountOperators("NestedLoopJoin");
      std::printf(" %9d", joins);
    }
    std::printf("\n");
  }

  std::printf("\nExample translated SQL (inline mapping, "
              "/site/people/person/name):\n");
  auto path = xpath::ParseXPath("/site/people/person/name");
  StoredAuction* sa = GetStoredAuction("inline", kScale);
  if (sa != nullptr && path.ok()) {
    auto sql = sa->mapping->TranslatePathToSql(sa->doc_id, path.value());
    std::printf("  %s\n", sql.ok() ? sql.value().c_str()
                                   : sql.status().ToString().c_str());
  }
  std::printf("\nExample translated SQL (edge mapping, same path):\n");
  sa = GetStoredAuction("edge", kScale);
  if (sa != nullptr && path.ok()) {
    auto sql = sa->mapping->TranslatePathToSql(sa->doc_id, path.value());
    std::printf("  %s\n", sql.ok() ? sql.value().c_str()
                                   : sql.status().ToString().c_str());
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main() {
  xmlrdb::bench::Run();
  return 0;
}
