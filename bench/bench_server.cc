// Experiment S1 — network serving. The C1 concurrency experiment measured
// the embedded engine; S1 puts the TCP front-end, wire protocol, and
// admission control in the measured path:
//
//   * S1/<Qn>/<mapping>   — Q1–Q12 over loopback, N client threads, one
//                           blocking connection each (RPC mode);
//   * S1/mixed_90_10      — 90% reads / 10% writes through the socket;
//   * S1/pipelined/<d>    — one connection, pipeline depth d: wire batching
//                           amortizes the per-request round trip;
//   * S1/connections_1000 — 1000 concurrent open connections, requests
//                           round-robined across them (fd scalability);
//   * S1/busy_shed        — a deliberately tiny server; measures shedding
//                           (busy_rejected counter) instead of queueing.
//
// Experiment SH1 — sharded serving sweep. The same auction corpus served by
// a ShardRouter at 1/2/4/8 shards (durable stores under StoreDirPrefix(),
// one WAL directory per shard):
//
//   * SH1/routed/<mapping>/shards:N — single-document queries round-robined
//     over the corpus; each lands on exactly one shard. Per-shard
//     shard<i>_p50/p95/p99_us counters expose skew across the ring.
//   * SH1/fanout/<mapping>/shards:N — one query scatter-gathered across all
//     shards and merged in document order; measures the fan-out barrier.
//
// p50/p95/p99 latency percentiles and the server's plan-cache hit counters
// land in the benchmark JSON next to the throughput numbers. The RPC-mode
// and mixed-workload benchmarks additionally negotiate protocol v2 tracing,
// so every response carries the server-measured queue-wait and execution
// micros; the JSON then breaks each round trip into queue / exec / wire
// percentiles (wire = total minus the server-side phases).

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "net/client.h"
#include "net/server.h"
#include "shard/shard_router.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.1;

/// The shared serving fixture: one server for the whole benchmark run,
/// fronting a scratch SQL database; XPath requests are answered from the
/// memoized StoredAuction instances (any mapping by name).
struct ServerFixture {
  rdb::Database db;
  std::unique_ptr<net::Server> server;

  ServerFixture() {
    auto st = db.Execute(
        "CREATE TABLE scratch (tid INTEGER, v VARCHAR)");
    (void)st;
    net::ServerConfig cfg;
    cfg.workers = 4;
    cfg.max_in_flight = 64;
    cfg.session_queue_cap = 64;
    server = std::make_unique<net::Server>(&db, cfg);
    server->set_xpath_handler(
        [](int64_t doc, const std::string& mapping,
           const std::string& xpath) -> Result<std::vector<std::string>> {
          StoredAuction* sa = GetStoredAuction(mapping, kScale);
          if (sa == nullptr) {
            return Status::InvalidArgument("unknown mapping '" + mapping +
                                           "'");
          }
          (void)doc;
          ASSIGN_OR_RETURN(xpath::PathExpr path, xpath::ParseXPath(xpath));
          return shred::EvalPathStrings(path, sa->mapping.get(),
                                        sa->db.get(), sa->doc_id);
        });
    auto start = server->Start();
    if (!start.ok()) server.reset();
  }
  ~ServerFixture() {
    if (server) server->Stop();
  }
};

ServerFixture* Fixture() {
  static ServerFixture* f = new ServerFixture();  // leaked: lives to exit
  return f->server ? f : nullptr;
}

net::Client ConnectOrSkip(benchmark::State& state) {
  net::Client c;
  ServerFixture* f = Fixture();
  if (f == nullptr) {
    state.SkipWithError("server failed to start");
    return c;
  }
  Status st = c.Connect("127.0.0.1", f->server->port());
  if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  return c;
}

/// Upgrades `c` to protocol v2 with per-request tracing so every response
/// carries the server's queue-wait and execution micros.
bool EnableTracingOrSkip(benchmark::State& state, net::Client& c) {
  Status st = c.Hello();
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return false;
  }
  c.set_tracing(true);
  return true;
}

/// Accumulates the per-request breakdown: the server-reported phases plus
/// the wire remainder (client round trip minus time spent inside the
/// server). Call Record after every traced response.
struct WireBreakdown {
  Histogram queue;
  Histogram exec;
  Histogram wire;

  void Record(const net::ServerTiming& t, int64_t total_us) {
    if (!t.valid) return;
    const int64_t server_us =
        static_cast<int64_t>(t.queue_us) + static_cast<int64_t>(t.exec_us);
    queue.Record(static_cast<int64_t>(t.queue_us));
    exec.Record(static_cast<int64_t>(t.exec_us));
    wire.Record(std::max<int64_t>(0, total_us - server_us));
  }

  /// Publishes queue_wait/execute/wire p50/p95/p99 as benchmark counters.
  void Report(benchmark::State& state) const {
    auto put = [&state](const std::string& prefix,
                        const HistogramSnapshot& s) {
      if (s.count == 0) return;
      const auto flags = benchmark::Counter::kAvgThreads;
      state.counters[prefix + "_p50_us"] = benchmark::Counter(s.p50(), flags);
      state.counters[prefix + "_p95_us"] = benchmark::Counter(s.p95(), flags);
      state.counters[prefix + "_p99_us"] = benchmark::Counter(s.p99(), flags);
    };
    put("queue_wait", queue.Snapshot());
    put("execute", exec.Snapshot());
    put("wire", wire.Snapshot());
  }
};

void ReportPlanCacheCounters(benchmark::State& state) {
  if (state.thread_index() != 0) return;
  ServerFixture* f = Fixture();
  if (f == nullptr) return;
  auto pc = f->db.plan_cache().stats();
  state.counters["plancache_hits"] = static_cast<double>(pc.hits);
  state.counters["plancache_misses"] = static_cast<double>(pc.misses);
  auto stats = f->server->stats();
  state.counters["busy_rejected"] = static_cast<double>(stats.busy_rejected);
}

/// One RPC per iteration: the full wire round trip is the measured unit.
void BM_ServerQuery(benchmark::State& state, const std::string& mapping,
                    const workload::BenchQuery& query) {
  // Warm the stored mapping before timing (first request would shred).
  if (GetStoredAuction(mapping, kScale) == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  net::Client c = ConnectOrSkip(state);
  if (!c.connected()) return;
  if (!EnableTracingOrSkip(state, c)) return;
  Histogram latencies;
  WireBreakdown breakdown;
  for (auto _ : state) {
    Stopwatch timer;
    auto r = c.XPath(1, mapping, query.xpath);
    const int64_t total_us = static_cast<int64_t>(timer.ElapsedMicros());
    latencies.Record(total_us);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    breakdown.Record(c.last_server_timing(), total_us);
    benchmark::DoNotOptimize(r.value());
  }
  state.SetItemsProcessed(state.iterations());
  ReportLatencyPercentiles(state, latencies.Snapshot(),
                           /*average_across_threads=*/true);
  breakdown.Report(state);
  ReportPlanCacheCounters(state);
}

/// 90% XPath reads, 10% prepared-statement writes, all through the socket.
void BM_ServerMixed(benchmark::State& state, const std::string& mapping) {
  if (GetStoredAuction(mapping, kScale) == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  net::Client c = ConnectOrSkip(state);
  if (!c.connected()) return;
  if (!EnableTracingOrSkip(state, c)) return;
  auto ins = c.Prepare("INSERT INTO scratch VALUES (?, ?)");
  auto del = c.Prepare("DELETE FROM scratch WHERE tid = ?");
  if (!ins.ok() || !del.ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  const int64_t tid = state.thread_index();
  Histogram latencies;
  WireBreakdown breakdown;
  int64_t i = 0;
  for (auto _ : state) {
    Stopwatch timer;
    if (++i % 10 == 0) {
      auto a = c.ExecPrepared(ins.value().stmt_id,
                              {rdb::Value(tid), rdb::Value("tmp")});
      auto b = c.ExecPrepared(del.value().stmt_id, {rdb::Value(tid)});
      if (!a.ok() || !b.ok()) {
        state.SkipWithError("write failed");
        return;
      }
      latencies.Record(static_cast<int64_t>(timer.ElapsedMicros()));
    } else {
      auto r = c.XPath(1, mapping, "//item/name");
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r.value());
      const int64_t total_us = static_cast<int64_t>(timer.ElapsedMicros());
      latencies.Record(total_us);
      breakdown.Record(c.last_server_timing(), total_us);
    }
  }
  state.SetItemsProcessed(state.iterations());
  ReportLatencyPercentiles(state, latencies.Snapshot(),
                           /*average_across_threads=*/true);
  breakdown.Report(state);
  ReportPlanCacheCounters(state);
}

/// Pipelining: send `depth` requests back-to-back, then read all responses.
/// Per-request latency amortizes the socket round trip across the batch.
void BM_ServerPipelined(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  if (GetStoredAuction("edge", kScale) == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  net::Client c = ConnectOrSkip(state);
  if (!c.connected()) return;
  Histogram latencies;
  for (auto _ : state) {
    Stopwatch timer;
    int sent = 0;
    for (int i = 0; i < depth; ++i) {
      if (c.SendXPath(1, "edge", "//item/name").ok()) ++sent;
    }
    int64_t busy = 0;
    for (int i = 0; i < sent; ++i) {
      auto f = c.ReadResponse();
      if (!f.ok()) {
        state.SkipWithError(f.status().ToString().c_str());
        return;
      }
      if (net::Client::IsBusy(f.value())) ++busy;
    }
    latencies.Record(static_cast<int64_t>(timer.ElapsedMicros()) /
                     (sent > 0 ? sent : 1));
    benchmark::DoNotOptimize(busy);
  }
  state.SetItemsProcessed(state.iterations() * depth);
  ReportLatencyPercentiles(state, latencies.Snapshot());
  ReportPlanCacheCounters(state);
}

/// 1000 concurrent connections, requests round-robined across them. The
/// measured unit is one ping sweep over every open connection; the point is
/// that per-connection state (decoder, session, registry entry) scales and
/// the poll loop handles thousands of fds.
void BM_ServerManyConnections(benchmark::State& state) {
  const size_t kConns = 1000;
  ServerFixture* f = Fixture();
  if (f == nullptr) {
    state.SkipWithError("server failed to start");
    return;
  }
  std::vector<net::Client> conns(kConns);
  for (size_t i = 0; i < kConns; ++i) {
    Status st = conns[i].Connect("127.0.0.1", f->server->port());
    if (!st.ok()) {
      state.SkipWithError(("connect " + std::to_string(i) + ": " +
                           st.ToString())
                              .c_str());
      return;
    }
  }
  // Pipelined ping across every connection: all 1000 sessions are live and
  // answering inside one measured iteration.
  Histogram latencies;
  for (auto _ : state) {
    Stopwatch timer;
    for (auto& c : conns) {
      if (!c.SendPing().ok()) {
        state.SkipWithError("send failed");
        return;
      }
    }
    for (auto& c : conns) {
      auto r = c.ReadResponse();
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    latencies.Record(static_cast<int64_t>(timer.ElapsedMicros()));
  }
  state.SetItemsProcessed(state.iterations() * kConns);
  state.counters["connections"] = static_cast<double>(kConns);
  ReportLatencyPercentiles(state, latencies.Snapshot());
}

/// Overload shedding: a server with one worker and minimal queues, blasted
/// with deep pipelines. Well-behaved shedding means every request is
/// answered promptly — mostly with BUSY — rather than queueing unboundedly.
void BM_ServerBusyShed(benchmark::State& state) {
  rdb::Database db;
  auto ddl = db.Execute("CREATE TABLE t (a INTEGER)");
  if (!ddl.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (int i = 0; i < 64; ++i) {
    (void)db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  net::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_in_flight = 1;
  cfg.session_queue_cap = 2;
  net::Server server(&db, cfg);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  net::Client c;
  if (!c.Connect("127.0.0.1", server.port()).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  constexpr int kBurst = 32;
  int64_t answered = 0, shed = 0;
  for (auto _ : state) {
    int sent = 0;
    for (int i = 0; i < kBurst; ++i) {
      if (c.SendQuery("SELECT COUNT(*) FROM t WHERE a >= 0").ok()) ++sent;
    }
    for (int i = 0; i < sent; ++i) {
      auto f = c.ReadResponse();
      if (!f.ok()) {
        state.SkipWithError(f.status().ToString().c_str());
        return;
      }
      net::Client::IsBusy(f.value()) ? ++shed : ++answered;
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
  state.counters["answered"] = static_cast<double>(answered);
  state.counters["busy_shed"] = static_cast<double>(shed);
  server.Stop();
}

// ---------------------------------------------------------------------------
// SH1 — sharded serving sweep.

/// XMark scale for the sharded corpus: small enough that the 8-shard
/// configuration (16 stored documents) builds in seconds.
constexpr double kShardScale = 0.05;

/// A durable N-shard router serving the auction corpus, memoized per
/// (mapping, shards) so every benchmark in the sweep reuses the stores. XMark
/// copies are stored until every shard owns at least two documents (capped),
/// so the per-shard latency counters cover the whole ring. Directories live
/// under the per-process StoreDirPrefix() and are wiped on first build.
struct ShardFixture {
  std::unique_ptr<shard::ShardRouter> router;
  std::vector<shred::DocId> ids;
};

ShardFixture* GetShardFixture(const std::string& mapping, int shards) {
  static std::mutex mu;
  static std::map<std::pair<std::string, int>, std::unique_ptr<ShardFixture>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_pair(mapping, shards);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second.get();

  shard::ShardRouterOptions opts;
  opts.shards = shards;
  opts.env = rdb::Env::Default();
  opts.dir_prefix =
      StoreDirPrefix() + "/sh1_" + mapping + "_" + std::to_string(shards);
  if (!opts.env->RemoveDirRecursive(opts.dir_prefix).ok()) return nullptr;
  auto router = shard::ShardRouter::Create(
      [mapping]() -> Result<std::unique_ptr<shred::Mapping>> {
        auto m = MakeMapping(mapping);
        if (m == nullptr) {
          return Status::InvalidArgument("unknown mapping '" + mapping + "'");
        }
        return m;
      },
      opts);
  if (!router.ok()) return nullptr;

  auto fixture = std::make_unique<ShardFixture>();
  fixture->router = std::move(router).value();
  workload::XMarkConfig cfg;
  cfg.scale = kShardScale;
  auto doc = workload::GenerateXMark(cfg);
  std::vector<int> docs_per_shard(shards, 0);
  const int cap = 16 * shards;
  while (static_cast<int>(fixture->ids.size()) < cap) {
    auto id = fixture->router->Store(*doc);
    if (!id.ok()) return nullptr;
    fixture->ids.push_back(id.value());
    const int owner = fixture->router->OwnerOf(id.value());
    if (owner >= 0 && owner < shards) ++docs_per_shard[owner];
    if (*std::min_element(docs_per_shard.begin(), docs_per_shard.end()) >= 2) {
      break;
    }
  }
  auto [pos, inserted] = cache.emplace(key, std::move(fixture));
  (void)inserted;
  return pos->second.get();
}

/// Single-document queries round-robined over the corpus: each iteration
/// routes to exactly one shard. Client-side latencies are recorded both in
/// aggregate and per owning shard, so the JSON carries shard<i>_p50/p95/p99
/// — skew between shards is ring imbalance, not engine noise.
void BM_ShardRouted(benchmark::State& state, const std::string& mapping,
                    int shards) {
  ShardFixture* f = GetShardFixture(mapping, shards);
  if (f == nullptr) {
    state.SkipWithError("shard fixture failed");
    return;
  }
  auto path = xpath::ParseXPath("//item/name");
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  Histogram latencies;
  std::vector<Histogram> per_shard(f->router->num_shards());
  size_t i = 0;
  for (auto _ : state) {
    const shred::DocId doc = f->ids[i++ % f->ids.size()];
    Stopwatch timer;
    auto r = f->router->EvalPathStrings(path.value(), doc);
    const int64_t us = static_cast<int64_t>(timer.ElapsedMicros());
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value());
    latencies.Record(us);
    const int owner = f->router->OwnerOf(doc);
    if (owner >= 0 && owner < static_cast<int>(per_shard.size())) {
      per_shard[owner].Record(us);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["docs"] = static_cast<double>(f->ids.size());
  ReportLatencyPercentiles(state, latencies.Snapshot());
  for (size_t s = 0; s < per_shard.size(); ++s) {
    const HistogramSnapshot snap = per_shard[s].Snapshot();
    if (snap.count == 0) continue;
    const std::string prefix = "shard" + std::to_string(s);
    state.counters[prefix + "_p50_us"] = snap.p50();
    state.counters[prefix + "_p95_us"] = snap.p95();
    state.counters[prefix + "_p99_us"] = snap.p99();
  }
}

/// One query scatter-gathered across every shard and merged in document
/// order: the fan-out barrier is the measured unit, so latency tracks the
/// slowest shard plus the merge.
void BM_ShardFanout(benchmark::State& state, const std::string& mapping,
                    int shards) {
  ShardFixture* f = GetShardFixture(mapping, shards);
  if (f == nullptr) {
    state.SkipWithError("shard fixture failed");
    return;
  }
  auto path = xpath::ParseXPath("//item/name");
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  Histogram latencies;
  for (auto _ : state) {
    Stopwatch timer;
    auto r = f->router->EvalPathStringsAll(path.value());
    latencies.Record(static_cast<int64_t>(timer.ElapsedMicros()));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value());
  }
  // Every iteration touches the whole corpus: items/s == documents/s.
  state.SetItemsProcessed(state.iterations() * f->ids.size());
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["docs"] = static_cast<double>(f->ids.size());
  ReportLatencyPercentiles(state, latencies.Snapshot());
}

void RegisterAll() {
  for (const std::string name : {"edge", "interval"}) {
    for (const auto& query : workload::AuctionQueries()) {
      benchmark::RegisterBenchmark(
          ("S1/" + query.id + "/" + name).c_str(),
          [name, query](benchmark::State& s) {
            BM_ServerQuery(s, name, query);
          })
          ->Threads(1)
          ->Threads(4)
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("S1/mixed_90_10/" + name).c_str(),
        [name](benchmark::State& s) { BM_ServerMixed(s, name); })
        ->Threads(1)
        ->Threads(4)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("S1/pipelined", BM_ServerPipelined)
      ->Arg(1)
      ->Arg(8)
      ->Arg(32)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("S1/connections_1000", BM_ServerManyConnections)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("S1/busy_shed", BM_ServerBusyShed)
      ->UseRealTime()
      ->Unit(benchmark::kMillisecond);
  // SH1: the shard sweep. Edge only — the sweep measures routing and
  // fan-out overhead, which is mapping-independent; C1/S1 already cover
  // per-mapping engine latency.
  for (int shards : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(
        ("SH1/routed/edge/shards:" + std::to_string(shards)).c_str(),
        [shards](benchmark::State& s) { BM_ShardRouted(s, "edge", shards); })
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("SH1/fanout/edge/shards:" + std::to_string(shards)).c_str(),
        [shards](benchmark::State& s) { BM_ShardFanout(s, "edge", shards); })
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  xmlrdb::bench::EnableTracingIfRequested();
  benchmark::RunSpecifiedBenchmarks();
  xmlrdb::bench::WriteTraceJsonIfRequested();
  return 0;
}
