// Experiment A2 — inlining ablation: the DTD-driven mapping with inlining
// enabled vs the pure element-per-table variant, over the bibliography
// workload. Reports query latency and the table-count / join-count deltas.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "workload/biblio.h"
#include "workload/queries.h"
#include "xml/dtd.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

struct Store {
  std::unique_ptr<shred::InlineMapping> mapping;
  rdb::Database db;
  shred::DocId id = 0;
};

Store* GetStore(bool inlining) {
  static Store* with = nullptr;
  static Store* without = nullptr;
  Store*& slot = inlining ? with : without;
  if (slot == nullptr) {
    slot = new Store();
    auto dtd = xml::ParseDtd(workload::BiblioDtd());
    if (!dtd.ok()) return nullptr;
    auto m = shred::InlineMapping::Create(*dtd.value(), "bib",
                                          /*force_no_inlining=*/!inlining);
    if (!m.ok()) return nullptr;
    slot->mapping = std::move(m).value();
    workload::BiblioConfig cfg;
    cfg.books = 400;
    cfg.articles = 600;
    auto doc = workload::GenerateBiblio(cfg);
    if (!slot->mapping->Initialize(&slot->db).ok()) return nullptr;
    auto id = slot->mapping->Store(*doc, &slot->db);
    if (!id.ok()) return nullptr;
    slot->id = id.value();
  }
  return slot;
}

void BM_InlineAblation(benchmark::State& state, bool inlining,
                       const std::string& xpath) {
  Store* store = GetStore(inlining);
  if (store == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath(xpath);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto nodes = shred::EvalPath(path.value(), store->mapping.get(), &store->db,
                                 store->id);
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(nodes.value());
  }
  state.counters["tables"] =
      static_cast<double>(store->mapping->TableElementNames().size());
}

void RegisterAll() {
  for (const auto& q : workload::BiblioQueries()) {
    for (bool inlining : {true, false}) {
      std::string name =
          "A2/" + q.id + "/" + (inlining ? "inlined" : "element_per_table");
      std::string xpath = q.xpath;
      benchmark::RegisterBenchmark(name.c_str(),
                                   [inlining, xpath](benchmark::State& s) {
                                     BM_InlineAblation(s, inlining, xpath);
                                   })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
