// Experiment C1 — concurrent query serving. QPS as a function of client
// thread count for the Q1–Q12 auction workload over the edge and interval
// mappings (pure reads scale lock-free under MVCC snapshots), a mixed 90/10
// read/write workload, reads racing one dedicated writer (read latency with
// a concurrent writer vs read-only), and Q1–Q12 under concurrent DML.
// items_per_second in the benchmark JSON is the aggregate QPS; read
// benchmarks also export the stmt.lock_wait_us histogram percentiles so the
// JSON records how long readers waited on statement locks (~0 under MVCC).

#include <atomic>
#include <optional>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.1;

/// Single-row scratch INSERT/DELETE against the mapping's main table, keyed
/// by a doc id no real document uses.
std::pair<std::string, std::string> ScratchDml(const std::string& mapping_name,
                                               int64_t scratch_doc) {
  if (mapping_name == "edge") {
    return {"INSERT INTO edge VALUES (" + std::to_string(scratch_doc) +
                ", 0, 1, 'elem', 'tmp', 1, NULL)",
            "DELETE FROM edge WHERE docid = " + std::to_string(scratch_doc)};
  }
  return {"INSERT INTO iv_nodes VALUES (" + std::to_string(scratch_doc) +
              ", 1, 1, 1, 'elem', 'tmp', NULL)",
          "DELETE FROM iv_nodes WHERE docid = " + std::to_string(scratch_doc)};
}

/// Publishes the statement lock-wait histograms into the bench JSON. Thread
/// 0 zeroes them before the timed loop (the registry is process-global) and
/// snapshots after, so the counters cover this benchmark's window.
void ResetLockWaitHistograms() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetHistogram("stmt.lock_wait_us").Clear();
  reg.GetHistogram("stmt.select.lock_wait_us").Clear();
}

void ReportLockWaitHistograms(benchmark::State& state) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const HistogramSnapshot all = reg.GetHistogram("stmt.lock_wait_us").Snapshot();
  if (all.count > 0) {
    state.counters["lock_wait_p50_us"] = all.p50();
    state.counters["lock_wait_p95_us"] = all.p95();
    state.counters["lock_wait_p99_us"] = all.p99();
  }
  const HistogramSnapshot sel =
      reg.GetHistogram("stmt.select.lock_wait_us").Snapshot();
  if (sel.count > 0) {
    state.counters["select_lock_wait_p95_us"] = sel.p95();
  }
}

/// One writer thread churning single-statement DML until stopped; readers
/// measure their own latency while it runs.
class BackgroundWriter {
 public:
  BackgroundWriter(rdb::Database* db, const std::string& mapping_name) {
    auto [insert_sql, delete_sql] = ScratchDml(mapping_name, 2000000);
    thread_ = std::thread([db, insert_sql, delete_sql, this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        if (!db->Execute(insert_sql).ok() || !db->Execute(delete_sql).ok()) {
          return;
        }
        writes_.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  ~BackgroundWriter() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }
  int64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> writes_{0};
  std::thread thread_;
};

void BM_ConcurrentQuery(benchmark::State& state,
                        const std::string& mapping_name,
                        const workload::BenchQuery& query) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath(query.xpath);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  Histogram latencies;  // per-thread: the harness averages the percentiles
  for (auto _ : state) {
    Stopwatch iter_timer;
    auto nodes = shred::EvalPath(path.value(), sa->mapping.get(),
                                 sa->db.get(), sa->doc_id);
    latencies.Record(static_cast<int64_t>(iter_timer.ElapsedMicros()));
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(nodes.value());
  }
  // Aggregated across threads by the harness: items/s == queries/s.
  state.SetItemsProcessed(state.iterations());
  ReportLatencyPercentiles(state, latencies.Snapshot(),
                           /*average_across_threads=*/true);

  if (state.thread_index() == 0) {
    // One uncounted pass with the metrics registry enabled: plan-cache
    // hits/misses and parse counts land in the bench JSON. The registry is
    // global, so late-draining sibling threads may also land in the window;
    // the counters are a warm-cache signal, not an exact per-query census.
    ScopedMetricsCapture capture;
    auto warm = shred::EvalPath(path.value(), sa->mapping.get(), sa->db.get(),
                                sa->doc_id);
    if (warm.ok()) {
      for (const auto& [name, value] : BenchCounterNames(capture.Delta())) {
        state.counters[name] = static_cast<double>(value);
      }
    }
  }
}

/// 90% point queries, 10% single-statement writes against the mapping's main
/// table. Each thread writes under its own scratch docid so DELETEs do not
/// interfere across threads. Thread 0 additionally captures the statement
/// lock-wait histograms across the timed loop — under MVCC the read share
/// of the mix never waits on table locks, so select_lock_wait_p95_us ~ 0.
void BM_MixedReadWrite(benchmark::State& state,
                       const std::string& mapping_name, bool durable = false) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale, durable);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath("//item/name");
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  int64_t scratch_doc = 1000000 + state.thread_index();
  auto [insert_sql, delete_sql] = ScratchDml(mapping_name, scratch_doc);
  std::optional<ScopedMetricsCapture> capture;
  if (state.thread_index() == 0) {
    ResetLockWaitHistograms();
    capture.emplace();  // enables the registry so lock waits are recorded
  }
  Histogram latencies;
  int64_t i = 0;
  for (auto _ : state) {
    Stopwatch iter_timer;
    if (++i % 10 == 0) {
      auto ins = sa->db->Execute(insert_sql);
      auto del = sa->db->Execute(delete_sql);
      if (!ins.ok() || !del.ok()) {
        state.SkipWithError("write failed");
        return;
      }
    } else {
      auto nodes = shred::EvalPath(path.value(), sa->mapping.get(),
                                   sa->db.get(), sa->doc_id);
      if (!nodes.ok()) {
        state.SkipWithError(nodes.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(nodes.value());
    }
    latencies.Record(static_cast<int64_t>(iter_timer.ElapsedMicros()));
  }
  state.SetItemsProcessed(state.iterations());
  ReportLatencyPercentiles(state, latencies.Snapshot(),
                           /*average_across_threads=*/true);
  if (state.thread_index() == 0) ReportLockWaitHistograms(state);
}

/// Read latency with one dedicated concurrent writer: every benchmark
/// thread evaluates the query while a background thread churns DML against
/// the same table. Compare p95 against the writer-free run of the same
/// query to measure how much a writer costs readers (MVCC target: < 2x).
void BM_QueryWithWriter(benchmark::State& state,
                        const std::string& mapping_name,
                        const workload::BenchQuery& query) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath(query.xpath);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  static std::optional<BackgroundWriter> writer;
  static std::optional<ScopedMetricsCapture> capture;
  if (state.thread_index() == 0) {
    ResetLockWaitHistograms();
    capture.emplace();
    writer.emplace(sa->db.get(), mapping_name);
  }
  Histogram latencies;
  for (auto _ : state) {
    Stopwatch iter_timer;
    auto nodes = shred::EvalPath(path.value(), sa->mapping.get(),
                                 sa->db.get(), sa->doc_id);
    latencies.Record(static_cast<int64_t>(iter_timer.ElapsedMicros()));
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(nodes.value());
  }
  state.SetItemsProcessed(state.iterations());
  ReportLatencyPercentiles(state, latencies.Snapshot(),
                           /*average_across_threads=*/true);
  if (state.thread_index() == 0) {
    const int64_t writes = writer->writes();
    writer.reset();  // stops and joins the writer thread
    state.counters["writer_roundtrips"] = static_cast<double>(writes);
    ReportLockWaitHistograms(state);
    capture.reset();
  }
}

void RegisterAll() {
  for (const std::string name : {"edge", "interval"}) {
    for (const auto& query : workload::AuctionQueries()) {
      benchmark::RegisterBenchmark(
          ("C1/" + query.id + "/" + name).c_str(),
          [name, query](benchmark::State& s) {
            BM_ConcurrentQuery(s, name, query);
          })
          ->Threads(1)
          ->Threads(2)
          ->Threads(4)
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
      // Same queries with one dedicated writer churning the base table:
      // Q1-Q12 under concurrent DML.
      benchmark::RegisterBenchmark(
          ("C1/" + query.id + "_dml/" + name).c_str(),
          [name, query](benchmark::State& s) {
            BM_QueryWithWriter(s, name, query);
          })
          ->Threads(4)
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("C1/mixed_90_10/" + name).c_str(),
        [name](benchmark::State& s) { BM_MixedReadWrite(s, name); })
        ->Threads(1)
        ->Threads(2)
        ->Threads(4)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
    // Same mix against a WAL-backed store (its directory lives under the
    // per-process StoreDirPrefix(), so parallel ctest runs never collide):
    // the delta vs mixed_90_10 is the durability tax on the write share.
    benchmark::RegisterBenchmark(
        ("C1/mixed_90_10_durable/" + name).c_str(),
        [name](benchmark::State& s) {
          BM_MixedReadWrite(s, name, /*durable=*/true);
        })
        ->Threads(2)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
    // Read-only vs reads-with-one-writer on the 90/10 read query: the two
    // p95s quantify what a concurrent writer costs snapshot readers.
    const workload::BenchQuery read_query{"item_name", "//item/name", ""};
    benchmark::RegisterBenchmark(
        ("C1/reads_only/" + name).c_str(),
        [name, read_query](benchmark::State& s) {
          BM_ConcurrentQuery(s, name, read_query);
        })
        ->Threads(4)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("C1/reads_with_writer/" + name).c_str(),
        [name, read_query](benchmark::State& s) {
          BM_QueryWithWriter(s, name, read_query);
        })
        ->Threads(4)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  // XMLRDB_TRACE_JSON=<path> exports a Chrome trace of the whole run —
  // morsel and shred spans nest under their statement spans across threads.
  xmlrdb::bench::EnableTracingIfRequested();
  benchmark::RunSpecifiedBenchmarks();
  xmlrdb::bench::WriteTraceJsonIfRequested();
  return 0;
}
