// Experiment C1 — concurrent query serving. QPS as a function of client
// thread count for the Q1–Q12 auction workload over the edge and interval
// mappings (pure reads scale with the reader-writer locks), plus a mixed
// 90/10 read/write workload showing the cost of exclusive DML locks in the
// statement mix. items_per_second in the benchmark JSON is the aggregate QPS.

#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.1;

void BM_ConcurrentQuery(benchmark::State& state,
                        const std::string& mapping_name,
                        const workload::BenchQuery& query) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath(query.xpath);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  Histogram latencies;  // per-thread: the harness averages the percentiles
  for (auto _ : state) {
    Stopwatch iter_timer;
    auto nodes = shred::EvalPath(path.value(), sa->mapping.get(),
                                 sa->db.get(), sa->doc_id);
    latencies.Record(static_cast<int64_t>(iter_timer.ElapsedMicros()));
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(nodes.value());
  }
  // Aggregated across threads by the harness: items/s == queries/s.
  state.SetItemsProcessed(state.iterations());
  ReportLatencyPercentiles(state, latencies.Snapshot(),
                           /*average_across_threads=*/true);

  if (state.thread_index() == 0) {
    // One uncounted pass with the metrics registry enabled: plan-cache
    // hits/misses and parse counts land in the bench JSON. The registry is
    // global, so late-draining sibling threads may also land in the window;
    // the counters are a warm-cache signal, not an exact per-query census.
    ScopedMetricsCapture capture;
    auto warm = shred::EvalPath(path.value(), sa->mapping.get(), sa->db.get(),
                                sa->doc_id);
    if (warm.ok()) {
      for (const auto& [name, value] : BenchCounterNames(capture.Delta())) {
        state.counters[name] = static_cast<double>(value);
      }
    }
  }
}

/// 90% point queries, 10% single-statement writes against the mapping's main
/// table. Each thread writes under its own scratch docid so DELETEs do not
/// interfere across threads.
void BM_MixedReadWrite(benchmark::State& state,
                       const std::string& mapping_name) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath("//item/name");
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  int64_t scratch_doc = 1000000 + state.thread_index();
  std::string insert_sql, delete_sql;
  if (mapping_name == "edge") {
    insert_sql = "INSERT INTO edge VALUES (" + std::to_string(scratch_doc) +
                 ", 0, 1, 'elem', 'tmp', 1, NULL)";
    delete_sql =
        "DELETE FROM edge WHERE docid = " + std::to_string(scratch_doc);
  } else {
    insert_sql = "INSERT INTO iv_nodes VALUES (" +
                 std::to_string(scratch_doc) + ", 1, 1, 1, 'elem', 'tmp', NULL)";
    delete_sql =
        "DELETE FROM iv_nodes WHERE docid = " + std::to_string(scratch_doc);
  }
  Histogram latencies;
  int64_t i = 0;
  for (auto _ : state) {
    Stopwatch iter_timer;
    if (++i % 10 == 0) {
      auto ins = sa->db->Execute(insert_sql);
      auto del = sa->db->Execute(delete_sql);
      if (!ins.ok() || !del.ok()) {
        state.SkipWithError("write failed");
        return;
      }
    } else {
      auto nodes = shred::EvalPath(path.value(), sa->mapping.get(),
                                   sa->db.get(), sa->doc_id);
      if (!nodes.ok()) {
        state.SkipWithError(nodes.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(nodes.value());
    }
    latencies.Record(static_cast<int64_t>(iter_timer.ElapsedMicros()));
  }
  state.SetItemsProcessed(state.iterations());
  ReportLatencyPercentiles(state, latencies.Snapshot(),
                           /*average_across_threads=*/true);
}

void RegisterAll() {
  for (const std::string name : {"edge", "interval"}) {
    for (const auto& query : workload::AuctionQueries()) {
      benchmark::RegisterBenchmark(
          ("C1/" + query.id + "/" + name).c_str(),
          [name, query](benchmark::State& s) {
            BM_ConcurrentQuery(s, name, query);
          })
          ->Threads(1)
          ->Threads(2)
          ->Threads(4)
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("C1/mixed_90_10/" + name).c_str(),
        [name](benchmark::State& s) { BM_MixedReadWrite(s, name); })
        ->Threads(1)
        ->Threads(2)
        ->Threads(4)
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  // XMLRDB_TRACE_JSON=<path> exports a Chrome trace of the whole run —
  // morsel and shred spans nest under their statement spans across threads.
  xmlrdb::bench::EnableTracingIfRequested();
  benchmark::RunSpecifiedBenchmarks();
  xmlrdb::bench::WriteTraceJsonIfRequested();
  return 0;
}
