// Experiment F2 — the descendant-axis cost gap: '//' evaluated as iterative
// transitive closure (edge, binary) vs a single range scan (interval, dewey).
// Three '//' shapes at increasing depth of the implied closure.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.1;

const std::vector<std::pair<std::string, std::string>>& DescendantQueries() {
  static const std::vector<std::pair<std::string, std::string>> kQueries = {
      {"head", "//item"},                      // '//' at the head
      {"mid", "/site/regions//item/name"},     // '//' mid-path
      {"deep", "//open_auction//personref"},   // double descendant
  };
  return kQueries;
}

void BM_Descendant(benchmark::State& state, const std::string& mapping_name,
                   const std::string& xpath) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath(xpath);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  size_t results = 0;
  for (auto _ : state) {
    auto nodes = shred::EvalPath(path.value(), sa->mapping.get(), sa->db.get(),
                                 sa->doc_id);
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    results = nodes.value().size();
    benchmark::DoNotOptimize(nodes.value());
  }
  state.counters["results"] = static_cast<double>(results);
}

void RegisterAll() {
  for (const auto& [label, xpath] : DescendantQueries()) {
    for (const std::string& name : AllMappingNames()) {
      std::string q = xpath;
      benchmark::RegisterBenchmark(
          ("F2/" + label + "/" + name).c_str(),
          [name, q](benchmark::State& s) { BM_Descendant(s, name, q); })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
