// Experiment T3 — the query latency matrix: Q1–Q12 x all six mappings at a
// fixed scale. This regenerates the central comparison table of the storage-
// scheme literature: who wins on which query class.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "rdb/batch.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::bench {
namespace {

constexpr double kScale = 0.1;

void BM_Query(benchmark::State& state, const std::string& mapping_name,
              const workload::BenchQuery& query) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  auto path = xpath::ParseXPath(query.xpath);
  if (!path.ok()) {
    state.SkipWithError(path.status().ToString().c_str());
    return;
  }
  size_t results = 0;
  Histogram latencies;
  for (auto _ : state) {
    Stopwatch iter_timer;
    auto nodes =
        shred::EvalPath(path.value(), sa->mapping.get(), sa->db.get(),
                        sa->doc_id);
    latencies.Record(static_cast<int64_t>(iter_timer.ElapsedMicros()));
    if (!nodes.ok()) {
      state.SkipWithError(nodes.status().ToString().c_str());
      return;
    }
    results = nodes.value().size();
    benchmark::DoNotOptimize(nodes.value());
  }
  state.counters["results"] = static_cast<double>(results);
  ReportLatencyPercentiles(state, latencies.Snapshot());

  // One uncounted pass with the metrics registry enabled: per-query operator
  // stats (rows scanned, SQL statements, per-operator rows) land in the
  // bench JSON alongside latency, so trajectories capture plan shape too.
  {
    ScopedMetricsCapture capture;
    auto nodes = shred::EvalPath(path.value(), sa->mapping.get(),
                                 sa->db.get(), sa->doc_id);
    if (nodes.ok()) {
      for (const auto& [name, value] : BenchCounterNames(capture.Delta())) {
        state.counters[name] = static_cast<double>(value);
      }
    }
  }
}

// T3b — batch-size ablation: the full Q1–Q12 sweep per iteration with the
// vectorized executor's batch size pinned to 256 / 1024 / 4096 rows.
// Separates the vectorization win (row vs batch) from the cache-residency
// sweet spot (batch size).
void BM_QuerySweepAtBatchSize(benchmark::State& state,
                              const std::string& mapping_name, int batch_size) {
  StoredAuction* sa = GetStoredAuction(mapping_name, kScale);
  if (sa == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::vector<xpath::PathExpr> paths;
  for (const auto& query : workload::AuctionQueries()) {
    auto path = xpath::ParseXPath(query.xpath);
    if (!path.ok()) {
      state.SkipWithError(path.status().ToString().c_str());
      return;
    }
    paths.push_back(std::move(path).value());
  }
  const int saved = rdb::DefaultBatchSize();
  rdb::SetDefaultBatchSize(batch_size);
  for (auto _ : state) {
    for (const auto& path : paths) {
      auto nodes = shred::EvalPath(path, sa->mapping.get(), sa->db.get(),
                                   sa->doc_id);
      if (!nodes.ok()) {
        rdb::SetDefaultBatchSize(saved);
        state.SkipWithError(nodes.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(nodes.value());
    }
  }
  {
    ScopedMetricsCapture capture;
    for (const auto& path : paths) {
      auto nodes = shred::EvalPath(path, sa->mapping.get(), sa->db.get(),
                                   sa->doc_id);
      benchmark::DoNotOptimize(nodes);
    }
    for (const auto& [name, value] : BenchCounterNames(capture.Delta())) {
      state.counters[name] = static_cast<double>(value);
    }
  }
  rdb::SetDefaultBatchSize(saved);
  state.counters["batch_size"] = batch_size;
}

void RegisterAll() {
  for (const auto& query : workload::AuctionQueries()) {
    for (const std::string& name : AllMappingNames()) {
      benchmark::RegisterBenchmark(
          ("T3/" + query.id + "/" + name).c_str(),
          [name, query](benchmark::State& s) { BM_Query(s, name, query); })
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (int batch_size : {256, 1024, 4096}) {
    for (const std::string& name : AllMappingNames()) {
      benchmark::RegisterBenchmark(
          ("T3b/batch" + std::to_string(batch_size) + "/" + name).c_str(),
          [name, batch_size](benchmark::State& s) {
            BM_QuerySweepAtBatchSize(s, name, batch_size);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  xmlrdb::bench::EnableTracingIfRequested();
  benchmark::RunSpecifiedBenchmarks();
  xmlrdb::bench::WriteTraceJsonIfRequested();
  return 0;
}
