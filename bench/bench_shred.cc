// Experiment T2 — shredding (bulk load) time per mapping, scaling in the
// document size. google-benchmark; the counter "elems_per_s" is the
// throughput figure the comparison tables report.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "shred/streaming.h"
#include "xml/serializer.h"
#include "xml/stats.h"

namespace xmlrdb::bench {
namespace {

void BM_Shred(benchmark::State& state, const std::string& mapping_name,
              double scale) {
  workload::XMarkConfig cfg;
  cfg.scale = scale;
  auto doc = workload::GenerateXMark(cfg);
  xml::DocStats stats = xml::ComputeStats(*doc->root());
  for (auto _ : state) {
    state.PauseTiming();
    auto mapping = MakeMapping(mapping_name);
    auto db = std::make_unique<rdb::Database>();
    if (mapping == nullptr || !mapping->Initialize(db.get()).ok()) {
      state.SkipWithError("setup failed");
      break;
    }
    state.ResumeTiming();
    auto id = mapping->Store(*doc, db.get());
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(id.value());
  }
  state.counters["elements"] = static_cast<double>(stats.element_count);
  state.counters["elems_per_s"] = benchmark::Counter(
      static_cast<double>(stats.element_count) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

/// DOM-free bulk load through the SAX token stream (edge / dewey only —
/// the interval encoding needs post-order sizes and cannot stream).
void BM_StreamShred(benchmark::State& state, const std::string& mapping_name,
                    double scale) {
  workload::XMarkConfig cfg;
  cfg.scale = scale;
  auto doc = workload::GenerateXMark(cfg);
  std::string text = xml::Serialize(*doc);
  xml::DocStats stats = xml::ComputeStats(*doc->root());
  for (auto _ : state) {
    state.PauseTiming();
    auto mapping = MakeMapping(mapping_name);
    auto db = std::make_unique<rdb::Database>();
    if (mapping == nullptr || !mapping->Initialize(db.get()).ok()) {
      state.SkipWithError("setup failed");
      break;
    }
    state.ResumeTiming();
    auto id = mapping_name == "edge"
                  ? shred::StreamStoreEdge(text, db.get())
                  : shred::StreamStoreDewey(text, db.get());
    if (!id.ok()) {
      state.SkipWithError(id.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(id.value());
  }
  state.counters["elems_per_s"] = benchmark::Counter(
      static_cast<double>(stats.element_count) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void RegisterAll() {
  for (const std::string& name : AllMappingNames()) {
    for (double scale : {0.05, 0.1, 0.25}) {
      benchmark::RegisterBenchmark(
          ("T2/shred/" + name + "/scale_" + std::to_string(scale).substr(0, 4))
              .c_str(),
          [name, scale](benchmark::State& s) { BM_Shred(s, name, scale); })
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const std::string& name : {std::string("edge"), std::string("dewey")}) {
    for (double scale : {0.05, 0.25}) {
      benchmark::RegisterBenchmark(
          ("T2/stream_shred/" + name + "/scale_" +
           std::to_string(scale).substr(0, 4))
              .c_str(),
          [name, scale](benchmark::State& s) { BM_StreamShred(s, name, scale); })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace xmlrdb::bench

int main(int argc, char** argv) {
  xmlrdb::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
