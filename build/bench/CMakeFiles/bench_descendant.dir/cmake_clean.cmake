file(REMOVE_RECURSE
  "CMakeFiles/bench_descendant.dir/bench_descendant.cc.o"
  "CMakeFiles/bench_descendant.dir/bench_descendant.cc.o.d"
  "bench_descendant"
  "bench_descendant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_descendant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
