# Empty compiler generated dependencies file for bench_descendant.
# This may be replaced when dependencies are built.
