
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_plans.cc" "bench/CMakeFiles/bench_plans.dir/bench_plans.cc.o" "gcc" "bench/CMakeFiles/bench_plans.dir/bench_plans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shred/CMakeFiles/xmlrdb_shred.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlrdb_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xmlrdb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/publish/CMakeFiles/xmlrdb_publish.dir/DependInfo.cmake"
  "/root/repo/build/src/rdb/CMakeFiles/xmlrdb_rdb.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlrdb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlrdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
