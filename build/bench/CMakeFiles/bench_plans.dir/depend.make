# Empty dependencies file for bench_plans.
# This may be replaced when dependencies are built.
