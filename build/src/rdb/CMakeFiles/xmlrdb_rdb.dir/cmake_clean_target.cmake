file(REMOVE_RECURSE
  "libxmlrdb_rdb.a"
)
