file(REMOVE_RECURSE
  "CMakeFiles/xmlrdb_rdb.dir/btree.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/btree.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/database.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/database.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/expr.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/expr.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/persist.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/persist.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/plan.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/plan.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/planner.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/planner.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/schema.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/schema.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/sql_lexer.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/sql_lexer.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/sql_parser.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/sql_parser.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/table.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/table.cc.o.d"
  "CMakeFiles/xmlrdb_rdb.dir/value.cc.o"
  "CMakeFiles/xmlrdb_rdb.dir/value.cc.o.d"
  "libxmlrdb_rdb.a"
  "libxmlrdb_rdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrdb_rdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
