# Empty dependencies file for xmlrdb_rdb.
# This may be replaced when dependencies are built.
