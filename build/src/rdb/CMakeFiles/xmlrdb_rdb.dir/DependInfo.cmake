
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdb/btree.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/btree.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/btree.cc.o.d"
  "/root/repo/src/rdb/database.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/database.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/database.cc.o.d"
  "/root/repo/src/rdb/expr.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/expr.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/expr.cc.o.d"
  "/root/repo/src/rdb/persist.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/persist.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/persist.cc.o.d"
  "/root/repo/src/rdb/plan.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/plan.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/plan.cc.o.d"
  "/root/repo/src/rdb/planner.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/planner.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/planner.cc.o.d"
  "/root/repo/src/rdb/schema.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/schema.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/schema.cc.o.d"
  "/root/repo/src/rdb/sql_lexer.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/sql_lexer.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/sql_lexer.cc.o.d"
  "/root/repo/src/rdb/sql_parser.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/sql_parser.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/sql_parser.cc.o.d"
  "/root/repo/src/rdb/table.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/table.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/table.cc.o.d"
  "/root/repo/src/rdb/value.cc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/value.cc.o" "gcc" "src/rdb/CMakeFiles/xmlrdb_rdb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlrdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
