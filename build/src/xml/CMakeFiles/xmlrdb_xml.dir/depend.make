# Empty dependencies file for xmlrdb_xml.
# This may be replaced when dependencies are built.
