
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/dtd.cc" "src/xml/CMakeFiles/xmlrdb_xml.dir/dtd.cc.o" "gcc" "src/xml/CMakeFiles/xmlrdb_xml.dir/dtd.cc.o.d"
  "/root/repo/src/xml/dtd_simplify.cc" "src/xml/CMakeFiles/xmlrdb_xml.dir/dtd_simplify.cc.o" "gcc" "src/xml/CMakeFiles/xmlrdb_xml.dir/dtd_simplify.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/xml/CMakeFiles/xmlrdb_xml.dir/node.cc.o" "gcc" "src/xml/CMakeFiles/xmlrdb_xml.dir/node.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/xml/CMakeFiles/xmlrdb_xml.dir/parser.cc.o" "gcc" "src/xml/CMakeFiles/xmlrdb_xml.dir/parser.cc.o.d"
  "/root/repo/src/xml/sax.cc" "src/xml/CMakeFiles/xmlrdb_xml.dir/sax.cc.o" "gcc" "src/xml/CMakeFiles/xmlrdb_xml.dir/sax.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/xml/CMakeFiles/xmlrdb_xml.dir/serializer.cc.o" "gcc" "src/xml/CMakeFiles/xmlrdb_xml.dir/serializer.cc.o.d"
  "/root/repo/src/xml/stats.cc" "src/xml/CMakeFiles/xmlrdb_xml.dir/stats.cc.o" "gcc" "src/xml/CMakeFiles/xmlrdb_xml.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlrdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
