file(REMOVE_RECURSE
  "CMakeFiles/xmlrdb_xml.dir/dtd.cc.o"
  "CMakeFiles/xmlrdb_xml.dir/dtd.cc.o.d"
  "CMakeFiles/xmlrdb_xml.dir/dtd_simplify.cc.o"
  "CMakeFiles/xmlrdb_xml.dir/dtd_simplify.cc.o.d"
  "CMakeFiles/xmlrdb_xml.dir/node.cc.o"
  "CMakeFiles/xmlrdb_xml.dir/node.cc.o.d"
  "CMakeFiles/xmlrdb_xml.dir/parser.cc.o"
  "CMakeFiles/xmlrdb_xml.dir/parser.cc.o.d"
  "CMakeFiles/xmlrdb_xml.dir/sax.cc.o"
  "CMakeFiles/xmlrdb_xml.dir/sax.cc.o.d"
  "CMakeFiles/xmlrdb_xml.dir/serializer.cc.o"
  "CMakeFiles/xmlrdb_xml.dir/serializer.cc.o.d"
  "CMakeFiles/xmlrdb_xml.dir/stats.cc.o"
  "CMakeFiles/xmlrdb_xml.dir/stats.cc.o.d"
  "libxmlrdb_xml.a"
  "libxmlrdb_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrdb_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
