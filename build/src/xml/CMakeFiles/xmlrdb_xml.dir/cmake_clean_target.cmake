file(REMOVE_RECURSE
  "libxmlrdb_xml.a"
)
