# Empty dependencies file for xmlrdb_common.
# This may be replaced when dependencies are built.
