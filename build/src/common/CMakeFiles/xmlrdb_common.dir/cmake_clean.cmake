file(REMOVE_RECURSE
  "CMakeFiles/xmlrdb_common.dir/rng.cc.o"
  "CMakeFiles/xmlrdb_common.dir/rng.cc.o.d"
  "CMakeFiles/xmlrdb_common.dir/status.cc.o"
  "CMakeFiles/xmlrdb_common.dir/status.cc.o.d"
  "CMakeFiles/xmlrdb_common.dir/str_util.cc.o"
  "CMakeFiles/xmlrdb_common.dir/str_util.cc.o.d"
  "libxmlrdb_common.a"
  "libxmlrdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
