file(REMOVE_RECURSE
  "libxmlrdb_common.a"
)
