file(REMOVE_RECURSE
  "CMakeFiles/xmlrdb_xpath.dir/dom_eval.cc.o"
  "CMakeFiles/xmlrdb_xpath.dir/dom_eval.cc.o.d"
  "CMakeFiles/xmlrdb_xpath.dir/xpath_parser.cc.o"
  "CMakeFiles/xmlrdb_xpath.dir/xpath_parser.cc.o.d"
  "libxmlrdb_xpath.a"
  "libxmlrdb_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrdb_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
