file(REMOVE_RECURSE
  "libxmlrdb_xpath.a"
)
