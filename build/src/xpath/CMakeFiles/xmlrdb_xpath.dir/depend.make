# Empty dependencies file for xmlrdb_xpath.
# This may be replaced when dependencies are built.
