file(REMOVE_RECURSE
  "CMakeFiles/xmlrdb_publish.dir/publisher.cc.o"
  "CMakeFiles/xmlrdb_publish.dir/publisher.cc.o.d"
  "libxmlrdb_publish.a"
  "libxmlrdb_publish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrdb_publish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
