# Empty dependencies file for xmlrdb_publish.
# This may be replaced when dependencies are built.
