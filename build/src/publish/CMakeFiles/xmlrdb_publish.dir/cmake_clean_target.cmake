file(REMOVE_RECURSE
  "libxmlrdb_publish.a"
)
