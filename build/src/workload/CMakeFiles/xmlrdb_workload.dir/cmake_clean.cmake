file(REMOVE_RECURSE
  "CMakeFiles/xmlrdb_workload.dir/biblio.cc.o"
  "CMakeFiles/xmlrdb_workload.dir/biblio.cc.o.d"
  "CMakeFiles/xmlrdb_workload.dir/queries.cc.o"
  "CMakeFiles/xmlrdb_workload.dir/queries.cc.o.d"
  "CMakeFiles/xmlrdb_workload.dir/random_tree.cc.o"
  "CMakeFiles/xmlrdb_workload.dir/random_tree.cc.o.d"
  "CMakeFiles/xmlrdb_workload.dir/xmark.cc.o"
  "CMakeFiles/xmlrdb_workload.dir/xmark.cc.o.d"
  "libxmlrdb_workload.a"
  "libxmlrdb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrdb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
