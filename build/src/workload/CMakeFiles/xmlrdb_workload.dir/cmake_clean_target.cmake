file(REMOVE_RECURSE
  "libxmlrdb_workload.a"
)
