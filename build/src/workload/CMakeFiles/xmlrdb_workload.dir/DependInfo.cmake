
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/biblio.cc" "src/workload/CMakeFiles/xmlrdb_workload.dir/biblio.cc.o" "gcc" "src/workload/CMakeFiles/xmlrdb_workload.dir/biblio.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/workload/CMakeFiles/xmlrdb_workload.dir/queries.cc.o" "gcc" "src/workload/CMakeFiles/xmlrdb_workload.dir/queries.cc.o.d"
  "/root/repo/src/workload/random_tree.cc" "src/workload/CMakeFiles/xmlrdb_workload.dir/random_tree.cc.o" "gcc" "src/workload/CMakeFiles/xmlrdb_workload.dir/random_tree.cc.o.d"
  "/root/repo/src/workload/xmark.cc" "src/workload/CMakeFiles/xmlrdb_workload.dir/xmark.cc.o" "gcc" "src/workload/CMakeFiles/xmlrdb_workload.dir/xmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xmlrdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlrdb_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
