# Empty compiler generated dependencies file for xmlrdb_workload.
# This may be replaced when dependencies are built.
