
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shred/binary_mapping.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/binary_mapping.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/binary_mapping.cc.o.d"
  "/root/repo/src/shred/blob_mapping.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/blob_mapping.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/blob_mapping.cc.o.d"
  "/root/repo/src/shred/dewey_mapping.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/dewey_mapping.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/dewey_mapping.cc.o.d"
  "/root/repo/src/shred/edge_mapping.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/edge_mapping.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/edge_mapping.cc.o.d"
  "/root/repo/src/shred/evaluator.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/evaluator.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/evaluator.cc.o.d"
  "/root/repo/src/shred/inline_mapping.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/inline_mapping.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/inline_mapping.cc.o.d"
  "/root/repo/src/shred/interval_mapping.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/interval_mapping.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/interval_mapping.cc.o.d"
  "/root/repo/src/shred/mapping.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/mapping.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/mapping.cc.o.d"
  "/root/repo/src/shred/registry.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/registry.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/registry.cc.o.d"
  "/root/repo/src/shred/shred_util.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/shred_util.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/shred_util.cc.o.d"
  "/root/repo/src/shred/streaming.cc" "src/shred/CMakeFiles/xmlrdb_shred.dir/streaming.cc.o" "gcc" "src/shred/CMakeFiles/xmlrdb_shred.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdb/CMakeFiles/xmlrdb_rdb.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xmlrdb_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xmlrdb_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xmlrdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
