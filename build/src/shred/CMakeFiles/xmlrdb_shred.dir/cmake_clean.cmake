file(REMOVE_RECURSE
  "CMakeFiles/xmlrdb_shred.dir/binary_mapping.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/binary_mapping.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/blob_mapping.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/blob_mapping.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/dewey_mapping.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/dewey_mapping.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/edge_mapping.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/edge_mapping.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/evaluator.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/evaluator.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/inline_mapping.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/inline_mapping.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/interval_mapping.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/interval_mapping.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/mapping.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/mapping.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/registry.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/registry.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/shred_util.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/shred_util.cc.o.d"
  "CMakeFiles/xmlrdb_shred.dir/streaming.cc.o"
  "CMakeFiles/xmlrdb_shred.dir/streaming.cc.o.d"
  "libxmlrdb_shred.a"
  "libxmlrdb_shred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrdb_shred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
