# Empty dependencies file for xmlrdb_shred.
# This may be replaced when dependencies are built.
