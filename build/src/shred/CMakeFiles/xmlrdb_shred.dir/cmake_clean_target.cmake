file(REMOVE_RECURSE
  "libxmlrdb_shred.a"
)
