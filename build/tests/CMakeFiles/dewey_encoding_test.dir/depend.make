# Empty dependencies file for dewey_encoding_test.
# This may be replaced when dependencies are built.
