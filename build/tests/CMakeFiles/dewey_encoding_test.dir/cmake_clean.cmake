file(REMOVE_RECURSE
  "CMakeFiles/dewey_encoding_test.dir/dewey_encoding_test.cc.o"
  "CMakeFiles/dewey_encoding_test.dir/dewey_encoding_test.cc.o.d"
  "dewey_encoding_test"
  "dewey_encoding_test.pdb"
  "dewey_encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dewey_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
