file(REMOVE_RECURSE
  "CMakeFiles/evaluator_semantics_test.dir/evaluator_semantics_test.cc.o"
  "CMakeFiles/evaluator_semantics_test.dir/evaluator_semantics_test.cc.o.d"
  "evaluator_semantics_test"
  "evaluator_semantics_test.pdb"
  "evaluator_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
