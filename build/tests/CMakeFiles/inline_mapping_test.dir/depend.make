# Empty dependencies file for inline_mapping_test.
# This may be replaced when dependencies are built.
