file(REMOVE_RECURSE
  "CMakeFiles/inline_mapping_test.dir/inline_mapping_test.cc.o"
  "CMakeFiles/inline_mapping_test.dir/inline_mapping_test.cc.o.d"
  "inline_mapping_test"
  "inline_mapping_test.pdb"
  "inline_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inline_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
