# Empty dependencies file for translate_sql_test.
# This may be replaced when dependencies are built.
