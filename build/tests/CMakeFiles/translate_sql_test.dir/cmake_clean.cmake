file(REMOVE_RECURSE
  "CMakeFiles/translate_sql_test.dir/translate_sql_test.cc.o"
  "CMakeFiles/translate_sql_test.dir/translate_sql_test.cc.o.d"
  "translate_sql_test"
  "translate_sql_test.pdb"
  "translate_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
