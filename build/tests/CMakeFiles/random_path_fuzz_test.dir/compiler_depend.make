# Empty compiler generated dependencies file for random_path_fuzz_test.
# This may be replaced when dependencies are built.
