file(REMOVE_RECURSE
  "CMakeFiles/random_path_fuzz_test.dir/random_path_fuzz_test.cc.o"
  "CMakeFiles/random_path_fuzz_test.dir/random_path_fuzz_test.cc.o.d"
  "random_path_fuzz_test"
  "random_path_fuzz_test.pdb"
  "random_path_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_path_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
