# Empty dependencies file for mapping_update_test.
# This may be replaced when dependencies are built.
