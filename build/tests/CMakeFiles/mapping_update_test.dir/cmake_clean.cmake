file(REMOVE_RECURSE
  "CMakeFiles/mapping_update_test.dir/mapping_update_test.cc.o"
  "CMakeFiles/mapping_update_test.dir/mapping_update_test.cc.o.d"
  "mapping_update_test"
  "mapping_update_test.pdb"
  "mapping_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
