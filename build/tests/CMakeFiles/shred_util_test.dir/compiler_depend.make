# Empty compiler generated dependencies file for shred_util_test.
# This may be replaced when dependencies are built.
