file(REMOVE_RECURSE
  "CMakeFiles/shred_util_test.dir/shred_util_test.cc.o"
  "CMakeFiles/shred_util_test.dir/shred_util_test.cc.o.d"
  "shred_util_test"
  "shred_util_test.pdb"
  "shred_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shred_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
