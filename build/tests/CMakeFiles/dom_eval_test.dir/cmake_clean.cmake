file(REMOVE_RECURSE
  "CMakeFiles/dom_eval_test.dir/dom_eval_test.cc.o"
  "CMakeFiles/dom_eval_test.dir/dom_eval_test.cc.o.d"
  "dom_eval_test"
  "dom_eval_test.pdb"
  "dom_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dom_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
