# Empty dependencies file for dom_eval_test.
# This may be replaced when dependencies are built.
