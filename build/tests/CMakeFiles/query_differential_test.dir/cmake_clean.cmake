file(REMOVE_RECURSE
  "CMakeFiles/query_differential_test.dir/query_differential_test.cc.o"
  "CMakeFiles/query_differential_test.dir/query_differential_test.cc.o.d"
  "query_differential_test"
  "query_differential_test.pdb"
  "query_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
