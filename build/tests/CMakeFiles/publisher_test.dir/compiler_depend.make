# Empty compiler generated dependencies file for publisher_test.
# This may be replaced when dependencies are built.
