file(REMOVE_RECURSE
  "CMakeFiles/interval_invariant_test.dir/interval_invariant_test.cc.o"
  "CMakeFiles/interval_invariant_test.dir/interval_invariant_test.cc.o.d"
  "interval_invariant_test"
  "interval_invariant_test.pdb"
  "interval_invariant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
