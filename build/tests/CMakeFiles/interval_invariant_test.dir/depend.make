# Empty dependencies file for interval_invariant_test.
# This may be replaced when dependencies are built.
