# Empty dependencies file for mapping_roundtrip_test.
# This may be replaced when dependencies are built.
