file(REMOVE_RECURSE
  "CMakeFiles/mapping_roundtrip_test.dir/mapping_roundtrip_test.cc.o"
  "CMakeFiles/mapping_roundtrip_test.dir/mapping_roundtrip_test.cc.o.d"
  "mapping_roundtrip_test"
  "mapping_roundtrip_test.pdb"
  "mapping_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
