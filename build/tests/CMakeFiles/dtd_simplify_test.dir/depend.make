# Empty dependencies file for dtd_simplify_test.
# This may be replaced when dependencies are built.
