file(REMOVE_RECURSE
  "CMakeFiles/dtd_simplify_test.dir/dtd_simplify_test.cc.o"
  "CMakeFiles/dtd_simplify_test.dir/dtd_simplify_test.cc.o.d"
  "dtd_simplify_test"
  "dtd_simplify_test.pdb"
  "dtd_simplify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtd_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
