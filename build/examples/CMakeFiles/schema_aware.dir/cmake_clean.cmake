file(REMOVE_RECURSE
  "CMakeFiles/schema_aware.dir/schema_aware.cpp.o"
  "CMakeFiles/schema_aware.dir/schema_aware.cpp.o.d"
  "schema_aware"
  "schema_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
