# Empty compiler generated dependencies file for schema_aware.
# This may be replaced when dependencies are built.
