file(REMOVE_RECURSE
  "CMakeFiles/xmlrdb_shell.dir/xmlrdb_shell.cpp.o"
  "CMakeFiles/xmlrdb_shell.dir/xmlrdb_shell.cpp.o.d"
  "xmlrdb_shell"
  "xmlrdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlrdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
