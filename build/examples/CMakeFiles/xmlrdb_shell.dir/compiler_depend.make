# Empty compiler generated dependencies file for xmlrdb_shell.
# This may be replaced when dependencies are built.
