# Empty dependencies file for document_archive.
# This may be replaced when dependencies are built.
