#include "xml/dtd.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace xmlrdb::xml {
namespace {

TEST(DtdParserTest, ElementDeclarations) {
  auto dtd = ParseDtd(R"(
<!ELEMENT book (title, author*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (first?, last)>
<!ELEMENT first (#PCDATA)>
<!ELEMENT last (#PCDATA)>
<!ELEMENT empty EMPTY>
<!ELEMENT anything ANY>
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const ElementDecl* book = dtd.value()->FindElement("book");
  ASSERT_NE(book, nullptr);
  EXPECT_EQ(book->content->ToString(), "(title, author*)");
  EXPECT_FALSE(book->mixed);
  const ElementDecl* title = dtd.value()->FindElement("title");
  ASSERT_NE(title, nullptr);
  EXPECT_TRUE(title->mixed);
  EXPECT_EQ(dtd.value()->FindElement("empty")->content->kind,
            ContentParticle::Kind::kEmpty);
  EXPECT_EQ(dtd.value()->FindElement("anything")->content->kind,
            ContentParticle::Kind::kAny);
  EXPECT_EQ(dtd.value()->FindElement("nope"), nullptr);
}

TEST(DtdParserTest, ChoiceAndNestedGroups) {
  auto dtd = ParseDtd("<!ELEMENT a ((b | c)+, d?)>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd.value()->FindElement("a")->content->ToString(),
            "((b | c)+, d?)");
}

TEST(DtdParserTest, MixedContent) {
  auto dtd = ParseDtd("<!ELEMENT p (#PCDATA | em | strong)*>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const ElementDecl* p = dtd.value()->FindElement("p");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->mixed);
}

TEST(DtdParserTest, Attlist) {
  auto dtd = ParseDtd(R"(
<!ELEMENT item EMPTY>
<!ATTLIST item
  id ID #REQUIRED
  ref IDREF #IMPLIED
  refs IDREFS #IMPLIED
  kind (new | used | broken) "used"
  note CDATA #IMPLIED
  fixed_one CDATA #FIXED "constant">
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  const auto* attrs = dtd.value()->FindAttlist("item");
  ASSERT_NE(attrs, nullptr);
  ASSERT_EQ(attrs->size(), 6u);
  EXPECT_EQ((*attrs)[0].type, AttrDecl::Type::kId);
  EXPECT_EQ((*attrs)[0].dflt, AttrDecl::Default::kRequired);
  EXPECT_EQ((*attrs)[1].type, AttrDecl::Type::kIdRef);
  EXPECT_EQ((*attrs)[2].type, AttrDecl::Type::kIdRefs);
  EXPECT_EQ((*attrs)[3].type, AttrDecl::Type::kEnum);
  EXPECT_EQ((*attrs)[3].enum_values,
            (std::vector<std::string>{"new", "used", "broken"}));
  EXPECT_EQ((*attrs)[3].default_value, "used");
  EXPECT_EQ((*attrs)[5].dflt, AttrDecl::Default::kFixed);
  EXPECT_EQ((*attrs)[5].default_value, "constant");
}

TEST(DtdParserTest, CommentsAndPIsSkipped) {
  auto dtd = ParseDtd(R"(
<!-- a comment with <!ELEMENT fake (x)> inside -->
<!ELEMENT real (#PCDATA)>
<?pi stuff?>
)");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd.value()->FindElement("fake"), nullptr);
  EXPECT_NE(dtd.value()->FindElement("real"), nullptr);
}

TEST(DtdParserTest, EntityDeclarationsRejected) {
  auto dtd = ParseDtd("<!ENTITY foo \"bar\">");
  EXPECT_FALSE(dtd.ok());
  EXPECT_EQ(dtd.status().code(), StatusCode::kUnsupported);
}

TEST(DtdParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT broken").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b,, c)>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b | c, d)>").ok());  // mixed separators
  EXPECT_FALSE(ParseDtd("<!ATTLIST a x BADTYPE #IMPLIED>").ok());
  EXPECT_FALSE(ParseDtd("random garbage").ok());
}

TEST(DtdRecursionTest, DirectRecursion) {
  auto dtd = ParseDtd("<!ELEMENT part (name?, part*)>\n<!ELEMENT name (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  auto rec = dtd.value()->RecursiveElements();
  EXPECT_EQ(rec, std::vector<std::string>{"part"});
}

TEST(DtdRecursionTest, MutualRecursion) {
  auto dtd = ParseDtd(R"(
<!ELEMENT a (b?)>
<!ELEMENT b (c?)>
<!ELEMENT c (a?)>
<!ELEMENT standalone (#PCDATA)>
)");
  ASSERT_TRUE(dtd.ok());
  auto rec = dtd.value()->RecursiveElements();
  std::sort(rec.begin(), rec.end());
  EXPECT_EQ(rec, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(DtdRecursionTest, NoFalsePositives) {
  auto dtd = ParseDtd(R"(
<!ELEMENT bib (book*)>
<!ELEMENT book (title)>
<!ELEMENT title (#PCDATA)>
)");
  ASSERT_TRUE(dtd.ok());
  EXPECT_TRUE(dtd.value()->RecursiveElements().empty());
}

}  // namespace
}  // namespace xmlrdb::xml
