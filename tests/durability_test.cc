// End-to-end durability: open / mutate / crash / reopen cycles over a
// FaultInjectionEnv — committed work survives, uncommitted work vanishes
// atomically, checkpoints bound replay, recovery is idempotent, and the
// recovery counters surface through the xmlrdb_metrics virtual table.

#include "rdb/durability.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "rdb/fault_env.h"
#include "rdb/wal.h"

namespace xmlrdb::rdb {
namespace {

constexpr char kDir[] = "dbdir";

std::unique_ptr<Database> MustOpen(FaultInjectionEnv* env,
                                   RecoveryStats* stats = nullptr,
                                   const DurableOptions& options = {}) {
  auto db = OpenDurableDatabase(env, kDir, options, stats);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db.value());
}

void MustExec(Database* db, const std::string& sql) {
  auto r = db->Execute(sql);
  ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
}

int64_t CountRows(Database* db, const std::string& table) {
  auto r = db->Execute("SELECT COUNT(*) FROM " + table);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok() || r.value().rows.empty()) return -1;
  return r.value().rows[0][0].AsInt();
}

/// "Kill the process, restart it": crash the env (dropping unsynced data),
/// clear the crashed flag, and recover from what survived.
std::unique_ptr<Database> CrashAndReopen(FaultInjectionEnv* env,
                                         std::unique_ptr<Database> db,
                                         RecoveryStats* stats = nullptr) {
  db.reset();
  env->SimulateCrash();
  env->ResetCrash();
  return MustOpen(env, stats);
}

TEST(DurabilityTest, ColdStartThenReopenIsEmptyAndClean) {
  FaultInjectionEnv env;
  RecoveryStats stats;
  auto db = MustOpen(&env, &stats);
  EXPECT_TRUE(stats.cold_start);
  db = CrashAndReopen(&env, std::move(db), &stats);
  EXPECT_FALSE(stats.cold_start);
  EXPECT_EQ(stats.records_scanned, 0);
  EXPECT_TRUE(db->TableNames().empty());
}

TEST(DurabilityTest, CommittedDmlSurvivesACrash) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE items (id INTEGER, name VARCHAR)");
  MustExec(db.get(), "INSERT INTO items VALUES (1, 'one')");
  MustExec(db.get(), "INSERT INTO items VALUES (2, 'two')");
  MustExec(db.get(), "UPDATE items SET name = 'TWO' WHERE id = 2");
  MustExec(db.get(), "INSERT INTO items VALUES (3, 'three')");
  MustExec(db.get(), "DELETE FROM items WHERE id = 1");

  RecoveryStats stats;
  db = CrashAndReopen(&env, std::move(db), &stats);
  EXPECT_EQ(stats.records_replayed, 6) << "1 DDL + 5 DML records";
  EXPECT_EQ(CountRows(db.get(), "items"), 2);
  auto r = db->Execute("SELECT name FROM items WHERE id = 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "TWO");
}

TEST(DurabilityTest, DdlAndIndexesSurviveACrash) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER, b VARCHAR)");
  MustExec(db.get(), "INSERT INTO t VALUES (1, 'x')");
  MustExec(db.get(), "CREATE INDEX t_by_b ON t (b)");
  MustExec(db.get(), "CREATE TABLE doomed (z INTEGER)");
  MustExec(db.get(), "DROP TABLE doomed");

  db = CrashAndReopen(&env, std::move(db));
  EXPECT_EQ(db->TableNames(), std::vector<std::string>{"t"});
  const Table* t = db->FindTable("t");
  ASSERT_NE(t, nullptr);
  ASSERT_NE(t->FindIndex("t_by_b"), nullptr);
  EXPECT_EQ(t->FindIndex("t_by_b")->num_entries(), 1u);
}

TEST(DurabilityTest, UncommittedTransactionVanishesAtomically) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER)");
  MustExec(db.get(), "INSERT INTO t VALUES (0)");

  // Open a transaction, write through it, force its records durable, and
  // crash before the commit record exists.
  Wal* wal = db->wal();
  ASSERT_NE(wal, nullptr);
  wal->BeginTxn();
  Table* t = db->FindTable("t");
  ASSERT_TRUE(t->Insert({Value(int64_t{1})}).ok());
  ASSERT_TRUE(t->Insert({Value(int64_t{2})}).ok());
  ASSERT_TRUE(wal->Sync().ok());
  Wal::AbandonTxn();
  EXPECT_EQ(t->num_rows(), 3u) << "in memory the rows exist";

  RecoveryStats stats;
  db = CrashAndReopen(&env, std::move(db), &stats);
  EXPECT_EQ(stats.records_discarded, 2);
  EXPECT_EQ(CountRows(db.get(), "t"), 1)
      << "the uncommitted transaction must be gone entirely";
}

TEST(DurabilityTest, CommittedTransactionAppliesEntirely) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER)");
  Wal* wal = db->wal();
  const uint64_t txn = wal->BeginTxn();
  Table* t = db->FindTable("t");
  ASSERT_TRUE(t->Insert({Value(int64_t{1})}).ok());
  ASSERT_TRUE(t->Insert({Value(int64_t{2})}).ok());
  ASSERT_TRUE(wal->Commit(txn).ok());

  RecoveryStats stats;
  db = CrashAndReopen(&env, std::move(db), &stats);
  EXPECT_EQ(stats.txns_committed, 1);
  EXPECT_EQ(stats.records_replayed, 3) << "CREATE TABLE + 2 inserts";
  EXPECT_EQ(CountRows(db.get(), "t"), 2);
}

TEST(DurabilityTest, CheckpointBoundsReplayAndKeepsData) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER, b VARCHAR)");
  MustExec(db.get(), "CREATE INDEX t_by_a ON t (a)");
  for (int i = 0; i < 10; ++i) {
    MustExec(db.get(), "INSERT INTO t VALUES (" + std::to_string(i) + ", 'v')");
  }
  ASSERT_TRUE(db->Checkpoint().ok());
  MustExec(db.get(), "INSERT INTO t VALUES (100, 'post')");
  MustExec(db.get(), "DELETE FROM t WHERE a = 0");

  RecoveryStats stats;
  db = CrashAndReopen(&env, std::move(db), &stats);
  EXPECT_EQ(stats.snapshot_dir, "snap_1");
  EXPECT_EQ(stats.records_replayed, 2)
      << "only post-checkpoint records replay";
  EXPECT_EQ(CountRows(db.get(), "t"), 10);
  const Table* t = db->FindTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_NE(t->FindIndex("t_by_a"), nullptr)
      << "index definitions ride the snapshot";
}

TEST(DurabilityTest, RepeatedCheckpointsDeleteSupersededFiles) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER)");
  for (int round = 0; round < 3; ++round) {
    MustExec(db.get(),
             "INSERT INTO t VALUES (" + std::to_string(round) + ")");
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto listing = env.ListDir(kDir);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.value(),
            (std::vector<std::string>{"CURRENT", "snap_3", "wal_3.log"}));
  db = CrashAndReopen(&env, std::move(db));
  EXPECT_EQ(CountRows(db.get(), "t"), 3);
}

TEST(DurabilityTest, RecoveryIsIdempotent) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER, b VARCHAR)");
  MustExec(db.get(), "INSERT INTO t VALUES (1, 'x')");
  MustExec(db.get(), "INSERT INTO t VALUES (1, 'x')");  // duplicate rows
  MustExec(db.get(), "DELETE FROM t WHERE b = 'zzz'");  // no-op DML
  MustExec(db.get(), "INSERT INTO t VALUES (2, 'y')");

  RecoveryStats first, second;
  db = CrashAndReopen(&env, std::move(db), &first);
  // Recover again WITHOUT new writes: same log, same state.
  db = CrashAndReopen(&env, std::move(db), &second);
  EXPECT_EQ(first.records_replayed, second.records_replayed);
  EXPECT_EQ(CountRows(db.get(), "t"), 3);
  auto r = db->Execute("SELECT COUNT(*) FROM t WHERE a = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 2)
      << "both duplicate rows survive both recoveries";
}

TEST(DurabilityTest, TornTailRecoversPrefixAndLogHealsForReopen) {
  FaultInjectionEnv env;
  env.set_torn_tail_bytes(5);  // crashes keep 5 garbage bytes of tail
  DurableOptions options;
  options.wal.sync_policy = WalOptions::SyncPolicy::kNever;
  RecoveryStats stats;
  auto db = MustOpen(&env, &stats, options);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER)");
  MustExec(db.get(), "INSERT INTO t VALUES (1)");
  ASSERT_TRUE(db->wal()->Sync().ok());  // first records durable
  MustExec(db.get(), "INSERT INTO t VALUES (2)");  // never synced

  db = CrashAndReopen(&env, std::move(db), &stats);
  EXPECT_TRUE(stats.torn_tail_truncated);
  EXPECT_EQ(CountRows(db.get(), "t"), 1) << "the synced prefix survives";

  // The truncation healed the log: append more, crash, recover again.
  MustExec(db.get(), "INSERT INTO t VALUES (3)");
  ASSERT_TRUE(db->wal()->Sync().ok());
  db = CrashAndReopen(&env, std::move(db), &stats);
  EXPECT_FALSE(stats.torn_tail_truncated);
  EXPECT_EQ(CountRows(db.get(), "t"), 2);
}

TEST(DurabilityTest, TransientTablesAreNeitherLoggedNorSnapshotted) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE real_t (a INTEGER)");
  MustExec(db.get(), "CREATE TABLE _scratch (a INTEGER)");
  MustExec(db.get(), "INSERT INTO _scratch VALUES (42)");
  ASSERT_TRUE(db->Checkpoint().ok());
  db = CrashAndReopen(&env, std::move(db));
  EXPECT_NE(db->FindTable("real_t"), nullptr);
  EXPECT_EQ(db->FindTable("_scratch"), nullptr)
      << "scratch tables must not come back from the dead";
}

TEST(DurabilityTest, RecoveryCountersVisibleInMetricsTable) {
  FaultInjectionEnv env;
  MetricsRegistry::Global().Reset();
  MetricsRegistry::Global().set_enabled(true);
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER)");
  MustExec(db.get(), "INSERT INTO t VALUES (1)");
  db = CrashAndReopen(&env, std::move(db));

  auto appends = db->Execute(
      "SELECT value FROM xmlrdb_metrics WHERE name = 'wal.appends'");
  ASSERT_TRUE(appends.ok());
  ASSERT_EQ(appends.value().rows.size(), 1u);
  EXPECT_GE(appends.value().rows[0][0].AsInt(), 2);
  auto replayed = db->Execute(
      "SELECT value FROM xmlrdb_metrics "
      "WHERE name = 'recovery.records_replayed'");
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed.value().rows.size(), 1u);
  EXPECT_EQ(replayed.value().rows[0][0].AsInt(), 2);
  MetricsRegistry::Global().set_enabled(false);
  MetricsRegistry::Global().Reset();
}

TEST(DurabilityTest, PoisonedWalVetoesMutationsButInMemoryStateServes) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER)");
  MustExec(db.get(), "INSERT INTO t VALUES (1)");
  env.set_fail_after_data_writes(0);
  auto bad = db->Execute("INSERT INTO t VALUES (2)");
  EXPECT_FALSE(bad.ok()) << "append failure must veto the insert";
  EXPECT_EQ(CountRows(db.get(), "t"), 1)
      << "the vetoed row must not exist in memory either";
  env.set_fail_after_data_writes(-1);
  auto still_bad = db->Execute("INSERT INTO t VALUES (3)");
  EXPECT_FALSE(still_bad.ok()) << "the WAL stays poisoned";
  EXPECT_EQ(CountRows(db.get(), "t"), 1) << "reads keep working";
}

// Exercised under TSan in CI: SQL writers racing a checkpointer.
TEST(DurabilityTest, ConcurrentDmlAndCheckpointKeepEveryCommittedRow) {
  FaultInjectionEnv env;
  auto db = MustOpen(&env);
  MustExec(db.get(), "CREATE TABLE t (a INTEGER, b INTEGER)");

  constexpr int kThreads = 4;
  constexpr int kRowsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kRowsPerThread; ++i) {
        auto r = db->Execute("INSERT INTO t VALUES (" + std::to_string(w) +
                             ", " + std::to_string(i) + ")");
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 5; ++i) {
      Status s = db->Checkpoint();
      if (!s.ok()) failures.fetch_add(1);
    }
  });
  for (auto& th : workers) th.join();
  ASSERT_EQ(failures.load(), 0);
  EXPECT_EQ(CountRows(db.get(), "t"), kThreads * kRowsPerThread);

  db = CrashAndReopen(&env, std::move(db));
  EXPECT_EQ(CountRows(db.get(), "t"), kThreads * kRowsPerThread)
      << "every row was committed before the crash, so every row recovers";
}

}  // namespace
}  // namespace xmlrdb::rdb
