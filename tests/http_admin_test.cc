// Tests for the HTTP admin plane (net/http_admin.h): the request parser
// against hostile input (torn, pipelined, oversized, malformed), the
// endpoint surface over a live server, and scraping under concurrent load.

#include "net/http_admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/resource_tracker.h"
#include "rdb/database.h"

namespace xmlrdb::net {
namespace {

using PollResult = HttpRequestParser::PollResult;

// -- parser ----------------------------------------------------------------

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  parser.Feed("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  HttpRequest req;
  ASSERT_EQ(parser.Poll(&req), PollResult::kRequest);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/metrics");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_EQ(parser.Poll(&req), PollResult::kNeedMore);
}

TEST(HttpParserTest, TornDeliveryByteByByte) {
  HttpRequestParser parser;
  std::string raw = "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  HttpRequest req;
  for (size_t i = 0; i < raw.size(); ++i) {
    parser.Feed(std::string_view(&raw[i], 1));
    if (i + 1 < raw.size()) {
      ASSERT_EQ(parser.Poll(&req), PollResult::kNeedMore) << "at byte " << i;
    }
  }
  ASSERT_EQ(parser.Poll(&req), PollResult::kRequest);
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_FALSE(req.keep_alive);
}

TEST(HttpParserTest, PipelinedRequestsComeOutInOrder) {
  HttpRequestParser parser;
  parser.Feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n"
      "GET /c HTTP/1.1\r\n\r\n");
  HttpRequest req;
  for (const char* want : {"/a", "/b", "/c"}) {
    ASSERT_EQ(parser.Poll(&req), PollResult::kRequest);
    EXPECT_EQ(req.target, want);
  }
  EXPECT_EQ(parser.Poll(&req), PollResult::kNeedMore);
}

TEST(HttpParserTest, OversizedHeadPoisons) {
  HttpRequestParser parser(128);
  std::string raw = "GET /x HTTP/1.1\r\nX-Pad: ";
  raw.append(512, 'a');
  parser.Feed(raw);
  HttpRequest req;
  EXPECT_EQ(parser.Poll(&req), PollResult::kError);
  EXPECT_TRUE(parser.oversized());
  EXPECT_FALSE(parser.error().ok());
  // Poisoned: even a now-complete request never parses.
  parser.Feed("\r\n\r\n");
  EXPECT_EQ(parser.Poll(&req), PollResult::kError);
}

TEST(HttpParserTest, OversizedCompleteHeadPoisons) {
  HttpRequestParser parser(64);
  std::string raw = "GET /x HTTP/1.1\r\nX-Pad: ";
  raw.append(100, 'b');
  raw.append("\r\n\r\n");
  parser.Feed(raw);
  HttpRequest req;
  EXPECT_EQ(parser.Poll(&req), PollResult::kError);
  EXPECT_TRUE(parser.oversized());
}

TEST(HttpParserTest, MalformedRequestLines) {
  for (const char* raw :
       {"GARBAGE\r\n\r\n", "GET /x\r\n\r\n", "GET /x HTTP/2.0\r\n\r\n",
        "GET  /x HTTP/1.1\r\n\r\n", "GET x HTTP/1.1\r\n\r\n",
        " GET /x HTTP/1.1\r\n\r\n"}) {
    HttpRequestParser parser;
    parser.Feed(raw);
    HttpRequest req;
    EXPECT_EQ(parser.Poll(&req), PollResult::kError) << raw;
    EXPECT_FALSE(parser.oversized()) << raw;
  }
}

TEST(HttpParserTest, HeaderWithoutColonPoisons) {
  HttpRequestParser parser;
  parser.Feed("GET /x HTTP/1.1\r\nnot a header\r\n\r\n");
  HttpRequest req;
  EXPECT_EQ(parser.Poll(&req), PollResult::kError);
}

TEST(HttpParserTest, RequestBodiesAreRejected) {
  HttpRequestParser with_len;
  with_len.Feed("GET /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  HttpRequest req;
  EXPECT_EQ(with_len.Poll(&req), PollResult::kError);

  HttpRequestParser chunked;
  chunked.Feed("GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(chunked.Poll(&req), PollResult::kError);

  // An explicit zero length is just a GET.
  HttpRequestParser zero;
  zero.Feed("GET /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(zero.Poll(&req), PollResult::kRequest);
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  HttpRequestParser parser;
  parser.Feed("GET /x HTTP/1.0\r\n\r\n");
  HttpRequest req;
  ASSERT_EQ(parser.Poll(&req), PollResult::kRequest);
  EXPECT_FALSE(req.keep_alive);

  HttpRequestParser keep;
  keep.Feed("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_EQ(keep.Poll(&req), PollResult::kRequest);
  EXPECT_TRUE(req.keep_alive);
}

// -- server ----------------------------------------------------------------

class HttpAdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().set_enabled(true);
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());
    RegisterAdminEndpoints(&admin_, &db_);
    HttpAdminConfig config;
    config.port = 0;
    config.max_request_bytes = 1024;
    ASSERT_TRUE(admin_.Start(config).ok());
  }
  void TearDown() override {
    admin_.Stop();
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }

  rdb::Database db_;
  HttpAdminServer admin_;
};

TEST_F(HttpAdminServerTest, HealthzAndReadyz) {
  auto health = HttpGet("127.0.0.1", admin_.port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 200);
  EXPECT_EQ(health.value().body, "ok\n");

  auto ready = HttpGet("127.0.0.1", admin_.port(), "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready.value().status, 200);
}

TEST_F(HttpAdminServerTest, ReadyzServes503WhileNotReady) {
  HttpAdminServer gated;
  rdb::Database db;
  RegisterAdminEndpoints(&gated, &db, nullptr, [] {
    return Status::IoError("recovery in progress");
  });
  ASSERT_TRUE(gated.Start(HttpAdminConfig{}).ok());
  auto r = HttpGet("127.0.0.1", gated.port(), "/readyz");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 503);
  EXPECT_NE(r.value().body.find("recovery in progress"), std::string::npos);
  gated.Stop();
}

TEST_F(HttpAdminServerTest, MetricsServesPrometheusTextWithGauges) {
  ResourceTracker::Global().GetGauge("test.admin_gauge").Set(9);
  auto r = HttpGet("127.0.0.1", admin_.port(), "/metrics");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_FALSE(r.value().body.empty());
  EXPECT_NE(r.value().body.find("# TYPE"), std::string::npos);
  EXPECT_NE(r.value().body.find("xmlrdb_test_admin_gauge 9"),
            std::string::npos)
      << r.value().body;
  // Engine gauges from the live database ride along.
  EXPECT_NE(r.value().body.find("xmlrdb_tables_row_bytes"),
            std::string::npos);
  ResourceTracker::Global().GetGauge("test.admin_gauge").Set(0);
}

TEST_F(HttpAdminServerTest, StatementsServesTheRingAsJson) {
  auto r = HttpGet("127.0.0.1", admin_.port(), "/statements");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 200);
  EXPECT_EQ(r.value().body.front(), '[');
  EXPECT_NE(r.value().body.find("\"sql\":\"INSERT INTO t VALUES (1)\""),
            std::string::npos)
      << r.value().body;
  EXPECT_NE(r.value().body.find("\"request_id\":"), std::string::npos);
}

TEST_F(HttpAdminServerTest, SessionsAndResourcesAndTracez) {
  auto sessions = HttpGet("127.0.0.1", admin_.port(), "/sessions");
  ASSERT_TRUE(sessions.ok());
  EXPECT_EQ(sessions.value().status, 200);
  EXPECT_EQ(sessions.value().body, "[]\n");  // no wire server attached

  auto resources = HttpGet("127.0.0.1", admin_.port(), "/resources");
  ASSERT_TRUE(resources.ok());
  EXPECT_EQ(resources.value().status, 200);
  EXPECT_NE(resources.value().body.find("\"tables.row_bytes\":"),
            std::string::npos)
      << resources.value().body;

  auto tracez = HttpGet("127.0.0.1", admin_.port(), "/tracez");
  ASSERT_TRUE(tracez.ok());
  EXPECT_EQ(tracez.value().status, 200);
  EXPECT_NE(tracez.value().body.find("traceEvents"), std::string::npos);
}

TEST_F(HttpAdminServerTest, UnknownPathIs404) {
  auto r = HttpGet("127.0.0.1", admin_.port(), "/nope");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().status, 404);
}

TEST_F(HttpAdminServerTest, NonGetIs405) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(admin_.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string req = "POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) raw.append(buf, n);
  close(fd);
  EXPECT_NE(raw.find("HTTP/1.1 405"), std::string::npos) << raw;
  EXPECT_NE(raw.find("Allow: GET"), std::string::npos) << raw;
}

TEST_F(HttpAdminServerTest, OversizedRequestIs431) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(admin_.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string req = "GET /metrics HTTP/1.1\r\nX-Pad: ";
  req.append(4096, 'x');  // head cap is 1024 in this fixture
  ASSERT_EQ(send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) raw.append(buf, n);
  close(fd);
  EXPECT_NE(raw.find("HTTP/1.1 431"), std::string::npos) << raw;
}

TEST_F(HttpAdminServerTest, PipelinedRequestsAnsweredInOrder) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(admin_.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string req =
      "GET /healthz HTTP/1.1\r\n\r\n"
      "GET /nope HTTP/1.1\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string raw;
  char buf[8192];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) raw.append(buf, n);
  close(fd);
  size_t first = raw.find("HTTP/1.1 200");
  size_t second = raw.find("HTTP/1.1 404");
  size_t third = raw.rfind("HTTP/1.1 200");
  ASSERT_NE(first, std::string::npos) << raw;
  ASSERT_NE(second, std::string::npos) << raw;
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
}

TEST_F(HttpAdminServerTest, ConcurrentScrapesUnderQueryLoad) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      ASSERT_TRUE(
          db_.Execute("INSERT INTO t VALUES (" + std::to_string(i++) + ")")
              .ok());
    }
  });
  constexpr int kScrapers = 4;
  constexpr int kScrapesEach = 25;
  std::vector<std::thread> scrapers;
  std::atomic<int> ok_scrapes{0};
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < kScrapesEach; ++i) {
        auto r = HttpGet("127.0.0.1", admin_.port(),
                         i % 2 == 0 ? "/metrics" : "/statements");
        if (r.ok() && r.value().status == 200 && !r.value().body.empty()) {
          ok_scrapes.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : scrapers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(ok_scrapes.load(), kScrapers * kScrapesEach);
}

}  // namespace
}  // namespace xmlrdb::net
