#include "common/str_util.h"

#include <gtest/gtest.h>

namespace xmlrdb {
namespace {

TEST(SplitTest, BasicAndEdgeCases) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StripWhitespaceTest, Variants) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("no-ws"), "no-ws");
}

TEST(IsAllWhitespaceTest, Variants) {
  EXPECT_TRUE(IsAllWhitespace(""));
  EXPECT_TRUE(IsAllWhitespace(" \t\n\r"));
  EXPECT_FALSE(IsAllWhitespace(" x "));
}

TEST(CaseTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD 42!"), "mixed 42!");
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("edge_table", "edge"));
  EXPECT_FALSE(StartsWith("edge", "edge_table"));
  EXPECT_TRUE(EndsWith("foo.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", "foo.xml"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13 ").value(), 13);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12abc").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_EQ(ParseInt64("999999999999999999999999").status().code(),
            StatusCode::kOutOfRange);
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("7").value(), 7.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(XmlEscapeTest, EscapesAllFive) {
  EXPECT_EQ(XmlEscape("<a & 'b' \"c\">"),
            "&lt;a &amp; &apos;b&apos; &quot;c&quot;&gt;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(SqlQuoteTest, EscapesQuotes) {
  EXPECT_EQ(SqlQuote("it's"), "'it''s'");
  EXPECT_EQ(SqlQuote(""), "''");
  EXPECT_EQ(SqlQuote("x"), "'x'");
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(1536 * 1024), "1.5 MiB");
}

}  // namespace
}  // namespace xmlrdb
