// Deterministic fuzz of the frame decoder and payload codecs, in the style
// of persist_fuzz_test: random byte streams, bit-flipped valid streams, and
// truncation sweeps. The invariants under test:
//
//   * the decoder never crashes, hangs, or allocates in proportion to an
//     attacker-claimed length that was not actually received;
//   * every outcome is kFrame, kNeedMore, or a poisoned kError — and once
//     poisoned it stays poisoned;
//   * payload decoders reject garbage with a Status, never UB.
//
// Run under ASan/UBSan in CI; the assertions here are deliberately loose so
// the sanitizers are the real oracle.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "net/protocol.h"

namespace xmlrdb::net {
namespace {

constexpr uint32_t kSmallMax = 4096;  // small frame cap keeps the fuzz fast

/// Drains the decoder, returning how many frames came out; stops on error.
size_t Drain(FrameDecoder* d) {
  size_t frames = 0;
  Frame f;
  while (true) {
    switch (d->Poll(&f)) {
      case FrameDecoder::PollResult::kFrame:
        ++frames;
        EXPECT_LE(f.payload.size(), d->max_frame_bytes());
        break;
      case FrameDecoder::PollResult::kNeedMore:
        return frames;
      case FrameDecoder::PollResult::kError:
        EXPECT_FALSE(d->error().ok());
        return frames;
    }
  }
}

TEST(FrameFuzzTest, RandomBytesNeverCrashOrBloat) {
  Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder d(kSmallMax);
    size_t fed = 0;
    for (int chunk = 0; chunk < 20; ++chunk) {
      std::string bytes;
      size_t n = static_cast<size_t>(rng.Uniform(0, 300));
      for (size_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<char>(rng.Uniform(0, 255)));
      }
      fed += bytes.size();
      d.Feed(bytes);
      Drain(&d);
      // The decoder may hold at most one incomplete frame plus the header:
      // anything more means a hostile length drove buffering.
      if (d.error().ok()) {
        EXPECT_LE(d.buffered_bytes(), kSmallMax + kFrameHeaderBytes);
      }
    }
    (void)fed;
  }
}

TEST(FrameFuzzTest, BitFlippedValidStreamsFailCleanly) {
  Rng rng(7);
  // A realistic pipelined stream of every request type.
  std::string valid;
  AppendFrame(&valid, Frame{MsgType::kQuery, 1, "SELECT a FROM t WHERE b = 1"});
  AppendFrame(&valid, Frame{MsgType::kPrepare, 2, "SELECT ?"});
  AppendFrame(&valid, Frame{MsgType::kExecPrepared, 3,
                            EncodeExecPrepared(1, {rdb::Value(int64_t{9})})});
  AppendFrame(&valid, Frame{MsgType::kXPath, 4,
                            EncodeXPathRequest(1, "edge", "//item")});
  AppendFrame(&valid, Frame{MsgType::kCloseStmt, 5, EncodeCloseStmt(1)});
  AppendFrame(&valid, Frame{MsgType::kPing, 6, ""});
  // Sanity: the pristine stream yields all six frames.
  {
    FrameDecoder d(kSmallMax);
    d.Feed(valid);
    EXPECT_EQ(Drain(&d), 6u);
    EXPECT_TRUE(d.error().ok());
  }
  for (int round = 0; round < 500; ++round) {
    std::string mutated = valid;
    int flips = static_cast<int>(rng.Uniform(1, 4));
    for (int i = 0; i < flips; ++i) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(
          mutated[pos] ^ (1 << rng.Uniform(0, 7)));
    }
    FrameDecoder d(kSmallMax);
    // Feed in random chunk sizes to exercise resumption boundaries.
    size_t pos = 0;
    while (pos < mutated.size()) {
      size_t n = static_cast<size_t>(
          rng.Uniform(1, static_cast<int64_t>(mutated.size() - pos)));
      d.Feed(mutated.data() + pos, n);
      pos += n;
      Drain(&d);
    }
    size_t more = Drain(&d);
    EXPECT_LE(more, 6u);
    if (!d.error().ok()) {
      // Poisoned decoders must stay poisoned even when valid bytes follow.
      d.Feed(valid);
      Frame f;
      EXPECT_EQ(d.Poll(&f), FrameDecoder::PollResult::kError);
    }
  }
}

TEST(FrameFuzzTest, PayloadDecodersSurviveRandomPayloads) {
  Rng rng(99);
  for (int round = 0; round < 2000; ++round) {
    std::string payload;
    size_t n = static_cast<size_t>(rng.Uniform(0, 120));
    for (size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    rdb::QueryResult qr;
    (void)DecodeResultSet(payload, &qr);
    (void)DecodeError(payload);
    uint32_t id, pc;
    (void)DecodePrepared(payload, &id, &pc);
    std::vector<rdb::Value> params;
    (void)DecodeExecPrepared(payload, &id, &params);
    (void)DecodeCloseStmt(payload, &id);
    int64_t doc;
    std::string mapping, xpath;
    (void)DecodeXPathRequest(payload, &doc, &mapping, &xpath);
  }
}

TEST(FrameFuzzTest, TruncationSweepOverTypedPayloads) {
  // Every strict prefix of a valid payload must decode to an error.
  std::string exec = EncodeExecPrepared(
      3, {rdb::Value(int64_t{1}), rdb::Value("abc"), rdb::Value(2.5),
          rdb::Value(true), rdb::Value::Null()});
  uint32_t id;
  std::vector<rdb::Value> params;
  ASSERT_TRUE(DecodeExecPrepared(exec, &id, &params).ok());
  for (size_t cut = 0; cut < exec.size(); ++cut) {
    EXPECT_FALSE(DecodeExecPrepared(exec.substr(0, cut), &id, &params).ok())
        << cut;
  }
  std::string xp = EncodeXPathRequest(5, "interval", "//open_auction");
  int64_t doc;
  std::string mapping, xpath;
  ASSERT_TRUE(DecodeXPathRequest(xp, &doc, &mapping, &xpath).ok());
  for (size_t cut = 0; cut < 9; ++cut) {  // fixed-width prefix region
    EXPECT_FALSE(
        DecodeXPathRequest(xp.substr(0, cut), &doc, &mapping, &xpath).ok())
        << cut;
  }
}

TEST(FrameFuzzTest, HeaderLengthSweepNeverOverAllocates) {
  // Sweep hostile length fields across the u32 range; the decoder must
  // either ask for more bytes (len <= max) or poison itself — and never
  // buffer more than it was actually fed.
  const uint32_t lens[] = {0,          1,          kSmallMax,     kSmallMax + 1,
                           1u << 20,   1u << 24,   0x7FFFFFFFu,   0xFFFFFFFFu};
  for (uint32_t len : lens) {
    FrameDecoder d(kSmallMax);
    std::string header;
    for (int i = 0; i < 4; ++i) {
      header.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
    }
    header.push_back(static_cast<char>(MsgType::kQuery));
    header.append(4, '\0');  // seq
    d.Feed(header);
    Frame f;
    auto r = d.Poll(&f);
    if (len > kSmallMax) {
      EXPECT_EQ(r, FrameDecoder::PollResult::kError) << len;
    } else {
      EXPECT_EQ(r, len == 0 ? FrameDecoder::PollResult::kFrame
                            : FrameDecoder::PollResult::kNeedMore)
          << len;
    }
    EXPECT_LE(d.buffered_bytes(), header.size());
  }
}

}  // namespace
}  // namespace xmlrdb::net
