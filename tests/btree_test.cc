// B+-tree unit and property tests, including differential testing against
// std::set over random operation sequences.

#include "rdb/btree.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace xmlrdb::rdb {
namespace {

Row K(int64_t a) { return {Value(a)}; }
Row K2(int64_t a, int64_t b) { return {Value(a), Value(b)}; }

TEST(BTreeTest, InsertAndContains) {
  BTree t(8);
  EXPECT_TRUE(t.Insert(K(5)));
  EXPECT_TRUE(t.Insert(K(1)));
  EXPECT_TRUE(t.Insert(K(9)));
  EXPECT_FALSE(t.Insert(K(5)));  // duplicate
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.Contains(K(5)));
  EXPECT_FALSE(t.Contains(K(6)));
}

TEST(BTreeTest, EraseRemovesOnlyExactKey) {
  BTree t(8);
  t.Insert(K(1));
  t.Insert(K(2));
  EXPECT_FALSE(t.Erase(K(3)));
  EXPECT_TRUE(t.Erase(K(2)));
  EXPECT_FALSE(t.Erase(K(2)));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Contains(K(1)));
}

TEST(BTreeTest, SplitsKeepOrder) {
  BTree t(4);  // tiny fanout forces many splits
  for (int64_t i = 100; i >= 1; --i) EXPECT_TRUE(t.Insert(K(i)));
  EXPECT_EQ(t.size(), 100u);
  EXPECT_GT(t.height(), 1u);
  EXPECT_TRUE(t.CheckInvariants().ok());
  int64_t expect = 1;
  for (auto it = t.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key()[0].AsInt(), expect++);
  }
  EXPECT_EQ(expect, 101);
}

TEST(BTreeTest, SeekAtLeastExactAndBetween) {
  BTree t(4);
  for (int64_t i = 0; i < 100; i += 10) t.Insert(K(i));
  auto it = t.SeekAtLeast(K(30));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 30);
  it = t.SeekAtLeast(K(31));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 40);
  it = t.SeekAtLeast(K(30), /*inclusive=*/false);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 40);
  it = t.SeekAtLeast(K(1000));
  EXPECT_FALSE(it.Valid());
  it = t.SeekAtLeast(K(-5));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 0);
}

TEST(BTreeTest, PrefixSeekOverCompositeKeys) {
  BTree t(4);
  for (int64_t a = 0; a < 10; ++a) {
    for (int64_t b = 0; b < 5; ++b) t.Insert(K2(a, b));
  }
  // Seek to prefix (7): should land on (7,0).
  auto it = t.SeekAtLeast(K(7));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 7);
  EXPECT_EQ(it.key()[1].AsInt(), 0);
  // Iterate the whole (7,*) group.
  int count = 0;
  while (it.Valid() && PrefixCompareRows(it.key(), K(7)) == 0) {
    ++count;
    it.Next();
  }
  EXPECT_EQ(count, 5);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 8);
}

TEST(BTreeTest, StringKeys) {
  BTree t(4);
  for (const char* s : {"pear", "apple", "fig", "kiwi", "banana"}) {
    t.Insert({Value(s)});
  }
  auto it = t.Begin();
  std::vector<std::string> got;
  for (; it.Valid(); it.Next()) got.push_back(it.key()[0].AsString());
  EXPECT_EQ(got, (std::vector<std::string>{"apple", "banana", "fig", "kiwi",
                                           "pear"}));
}

TEST(BTreeTest, EmptyTree) {
  BTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Begin().Valid());
  EXPECT_FALSE(t.SeekAtLeast(K(0)).Valid());
  EXPECT_FALSE(t.Contains(K(0)));
  EXPECT_FALSE(t.Erase(K(0)));
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(BTreeTest, EraseThenIterateSkipsEmptyLeaves) {
  BTree t(4);
  for (int64_t i = 0; i < 50; ++i) t.Insert(K(i));
  // Erase a whole leaf's worth in the middle.
  for (int64_t i = 10; i < 20; ++i) EXPECT_TRUE(t.Erase(K(i)));
  EXPECT_TRUE(t.CheckInvariants().ok());
  auto it = t.SeekAtLeast(K(9));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 9);
  it.Next();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 20);
}

class BTreeFanoutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BTreeFanoutTest, DifferentialAgainstStdSet) {
  BTree t(GetParam());
  std::set<int64_t> oracle;
  Rng rng(GetParam() * 7919 + 1);
  for (int op = 0; op < 5000; ++op) {
    int64_t key = rng.Uniform(0, 400);
    double dice = rng.NextDouble();
    if (dice < 0.6) {
      EXPECT_EQ(t.Insert(K(key)), oracle.insert(key).second);
    } else if (dice < 0.9) {
      EXPECT_EQ(t.Erase(K(key)), oracle.erase(key) > 0);
    } else {
      EXPECT_EQ(t.Contains(K(key)), oracle.count(key) > 0);
    }
  }
  EXPECT_EQ(t.size(), oracle.size());
  ASSERT_TRUE(t.CheckInvariants().ok());
  // Full scan equals oracle order.
  auto it = t.Begin();
  for (int64_t v : oracle) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key()[0].AsInt(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
  // Random range scans equal oracle ranges.
  for (int trial = 0; trial < 50; ++trial) {
    int64_t lo = rng.Uniform(0, 400);
    auto tit = t.SeekAtLeast(K(lo));
    auto oit = oracle.lower_bound(lo);
    for (int k = 0; k < 10 && oit != oracle.end(); ++k, ++oit, tit.Next()) {
      ASSERT_TRUE(tit.Valid());
      EXPECT_EQ(tit.key()[0].AsInt(), *oit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreeFanoutTest,
                         ::testing::Values(4, 8, 32, 128));

}  // namespace
}  // namespace xmlrdb::rdb
