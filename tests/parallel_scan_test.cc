// Parallel sequential scan: plan shape, exact result equivalence with the
// serial plans, and the Q1–Q12 workload differential over edge and interval
// mappings with parallelism enabled.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "rdb/database.h"
#include "shred/evaluator.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

using rdb::Database;
using rdb::PlannerOptions;
using rdb::QueryResult;

PlannerOptions ParallelOptions() {
  PlannerOptions opts;
  opts.max_parallelism = 4;
  opts.parallel_scan_min_rows = 1;  // parallelise even tiny tables in tests
  return opts;
}

void FillNumbers(Database* db, int64_t n) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE nums (x INTEGER NOT NULL, y INTEGER)").ok());
  for (int64_t base = 0; base < n; base += 500) {
    std::string sql = "INSERT INTO nums VALUES ";
    for (int64_t i = base; i < std::min(base + 500, n); ++i) {
      if (i != base) sql += ", ";
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 97) + ")";
    }
    ASSERT_TRUE(db->Execute(sql).ok());
  }
}

TEST(ParallelScanTest, PlannerEmitsParallelScanWhenEnabled) {
  Database db;
  FillNumbers(&db, 1000);
  db.set_planner_options(ParallelOptions());
  auto plan = db.Execute("EXPLAIN SELECT * FROM nums WHERE y = 3");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().plan_text.find("ParallelSeqScan"), std::string::npos)
      << plan.value().plan_text;
  EXPECT_NE(plan.value().plan_text.find("workers=4"), std::string::npos)
      << plan.value().plan_text;
  // The filter is pushed into the scan, not stacked above it.
  EXPECT_EQ(plan.value().plan_text.find("Filter"), std::string::npos)
      << plan.value().plan_text;
}

TEST(ParallelScanTest, SerialPlanBelowRowThreshold) {
  Database db;
  FillNumbers(&db, 100);
  PlannerOptions opts;
  opts.max_parallelism = 4;
  opts.parallel_scan_min_rows = 4096;
  db.set_planner_options(opts);
  auto plan = db.Execute("EXPLAIN SELECT * FROM nums");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().plan_text.find("ParallelSeqScan"), std::string::npos)
      << plan.value().plan_text;
}

TEST(ParallelScanTest, ResultsAndOrderMatchSerialExactly) {
  Database serial_db, parallel_db;
  FillNumbers(&serial_db, 5000);
  FillNumbers(&parallel_db, 5000);
  parallel_db.set_planner_options(ParallelOptions());
  // Delete some rows so tombstone skipping is exercised in both.
  for (Database* db : {&serial_db, &parallel_db}) {
    ASSERT_TRUE(db->Execute("DELETE FROM nums WHERE x % 7 = 0").ok());
  }
  const std::vector<std::string> queries = {
      "SELECT * FROM nums",
      "SELECT x FROM nums WHERE y = 13",
      "SELECT x, y FROM nums WHERE x > 1000 AND y < 50",
      "SELECT COUNT(*), SUM(x) FROM nums WHERE y >= 10",
      "SELECT y, COUNT(*) FROM nums GROUP BY y ORDER BY y",
      "SELECT a.x FROM nums a, nums b WHERE a.x = b.y ORDER BY a.x",
      "SELECT DISTINCT y FROM nums ORDER BY y DESC LIMIT 10",
  };
  for (const std::string& q : queries) {
    auto serial = serial_db.Execute(q);
    auto parallel = parallel_db.Execute(q);
    ASSERT_TRUE(serial.ok()) << q << ": " << serial.status();
    ASSERT_TRUE(parallel.ok()) << q << ": " << parallel.status();
    ASSERT_EQ(serial.value().rows.size(), parallel.value().rows.size()) << q;
    for (size_t i = 0; i < serial.value().rows.size(); ++i) {
      ASSERT_EQ(rdb::RowToString(serial.value().rows[i]),
                rdb::RowToString(parallel.value().rows[i]))
          << q << " row " << i;
    }
  }
}

TEST(ParallelScanTest, ExplainAnalyzeReportsParallelScanRows) {
  Database db;
  FillNumbers(&db, 2000);
  db.set_planner_options(ParallelOptions());
  auto res = db.Execute("EXPLAIN ANALYZE SELECT * FROM nums WHERE y = 5");
  ASSERT_TRUE(res.ok());
  EXPECT_NE(res.value().plan_text.find("ParallelSeqScan"), std::string::npos)
      << res.value().plan_text;
  EXPECT_NE(res.value().plan_text.find("actual rows="), std::string::npos)
      << res.value().plan_text;
}

class ParallelWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelWorkloadTest, AuctionQueriesMatchSerial) {
  auto serial_mapping = shred::CreateMapping(GetParam());
  auto parallel_mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(serial_mapping.ok() && parallel_mapping.ok());
  Database serial_db, parallel_db;
  ASSERT_TRUE(serial_mapping.value()->Initialize(&serial_db).ok());
  ASSERT_TRUE(parallel_mapping.value()->Initialize(&parallel_db).ok());

  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  auto serial_id = serial_mapping.value()->Store(*doc, &serial_db);
  auto parallel_id = parallel_mapping.value()->Store(*doc, &parallel_db);
  ASSERT_TRUE(serial_id.ok() && parallel_id.ok());
  parallel_db.set_planner_options(ParallelOptions());

  for (const auto& q : workload::AuctionQueries()) {
    auto path = xpath::ParseXPath(q.xpath);
    ASSERT_TRUE(path.ok()) << q.id;
    auto serial = shred::EvalPath(path.value(), serial_mapping.value().get(),
                                  &serial_db, serial_id.value());
    auto parallel = shred::EvalPath(path.value(),
                                    parallel_mapping.value().get(),
                                    &parallel_db, parallel_id.value());
    ASSERT_TRUE(serial.ok()) << q.id << ": " << serial.status();
    ASSERT_TRUE(parallel.ok()) << q.id << ": " << parallel.status();
    // Exact equality, including order: the parallel scan merges morsel
    // buffers in slot order, so plans stay order-equivalent.
    EXPECT_EQ(serial.value(), parallel.value()) << GetParam() << " " << q.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Mappings, ParallelWorkloadTest,
                         ::testing::Values("edge", "interval"));

}  // namespace
}  // namespace xmlrdb
