// Randomized differential testing: generate random XPath expressions over
// random documents and require every mapping to agree with the DOM oracle.
// This sweeps corners the hand-written query lists miss.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "shred/evaluator.h"
#include "shred/registry.h"
#include "workload/random_tree.h"
#include "xpath/dom_eval.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

/// Builds a random (syntactically valid) path over tag alphabet t0..t{n-1}
/// and attribute alphabet a0..a{m-1}.
std::string RandomPath(Rng* rng, int tags, int attrs) {
  int steps = static_cast<int>(rng->Uniform(1, 4));
  std::string out;
  for (int i = 0; i < steps; ++i) {
    out += rng->Bernoulli(0.3) ? "//" : "/";
    bool attr_step = i == steps - 1 && rng->Bernoulli(0.15);
    if (attr_step) {
      out += "@a" + std::to_string(rng->Uniform(0, attrs - 1));
      break;
    }
    if (rng->Bernoulli(0.15)) {
      out += "*";
    } else if (i == 0 && rng->Bernoulli(0.3)) {
      out += "root";
    } else {
      out += "t" + std::to_string(rng->Uniform(0, tags - 1));
    }
    // Predicates.
    if (rng->Bernoulli(0.35)) {
      double dice = rng->NextDouble();
      if (dice < 0.2) {
        out += "[" + std::to_string(rng->Uniform(1, 3)) + "]";
      } else if (dice < 0.3) {
        out += "[last()]";
      } else if (dice < 0.55) {
        out += "[t" + std::to_string(rng->Uniform(0, tags - 1)) + "]";
      } else if (dice < 0.7) {
        out += "[@a" + std::to_string(rng->Uniform(0, attrs - 1)) + "]";
      } else if (dice < 0.85) {
        out += "[t" + std::to_string(rng->Uniform(0, tags - 1)) + " > " +
               std::to_string(rng->Uniform(0, 500)) + "]";
      } else {
        out += "[@a" + std::to_string(rng->Uniform(0, attrs - 1)) + " = " +
               std::to_string(rng->Uniform(0, 99)) + "]";
      }
    }
  }
  return out;
}

class RandomPathFuzzTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RandomPathFuzzTest, AgreesWithOracleOnRandomPaths) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  Rng rng(2026);
  int executed = 0;
  for (uint64_t doc_seed = 1; doc_seed <= 3; ++doc_seed) {
    workload::RandomTreeConfig cfg;
    cfg.seed = doc_seed;
    cfg.tag_alphabet = 4;
    cfg.attr_alphabet = 3;
    cfg.numeric_text = true;
    auto doc = workload::GenerateRandomTree(cfg);
    rdb::Database db;
    ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
    auto id = mapping.value()->Store(*doc, &db);
    ASSERT_TRUE(id.ok()) << id.status();

    for (int trial = 0; trial < 60; ++trial) {
      std::string path_text = RandomPath(&rng, 4, 3);
      auto path = xpath::ParseXPath(path_text);
      ASSERT_TRUE(path.ok()) << path_text << ": " << path.status();
      // Oracle.
      auto oracle_nodes = xpath::EvalOnDom(path.value(), *doc->doc_node());
      ASSERT_TRUE(oracle_nodes.ok()) << path_text;
      std::vector<std::string> expect;
      for (const xml::Node* n : oracle_nodes.value()) {
        expect.push_back(n->StringValue());
      }
      std::sort(expect.begin(), expect.end());
      // Mapping.
      auto got = shred::EvalPathStrings(path.value(), mapping.value().get(),
                                        &db, id.value());
      ASSERT_TRUE(got.ok()) << path_text << ": " << got.status();
      std::vector<std::string> actual = got.value();
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(expect, actual)
          << "mapping=" << GetParam() << " doc_seed=" << doc_seed
          << " path=" << path_text;
      ++executed;
    }
  }
  EXPECT_EQ(executed, 180);
}

INSTANTIATE_TEST_SUITE_P(AllMappings, RandomPathFuzzTest,
                         ::testing::ValuesIn(shred::GenericMappingNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace xmlrdb
