// Tests for the Database facade beyond what the SQL end-to-end suite covers.

#include "rdb/database.h"

#include <gtest/gtest.h>

namespace xmlrdb::rdb {
namespace {

TEST(DatabaseTest, CatalogOperations) {
  Database db;
  EXPECT_TRUE(db.TableNames().empty());
  auto t = db.CreateTable("a", Schema({{"x", DataType::kInt, true, ""}}));
  ASSERT_TRUE(t.ok());
  EXPECT_NE(db.FindTable("a"), nullptr);
  EXPECT_EQ(db.FindTable("b"), nullptr);
  EXPECT_EQ(db.CreateTable("a", Schema()).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.CreateTable("b", Schema({{"y", DataType::kString, true, ""}}))
                  .ok());
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(db.DropTable("a").ok());
  EXPECT_EQ(db.DropTable("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"b"}));
}

TEST(DatabaseTest, DropTableIfExistsViaSql) {
  Database db;
  EXPECT_TRUE(db.Execute("DROP TABLE IF EXISTS ghost").ok());
  EXPECT_FALSE(db.Execute("DROP TABLE ghost").ok());
}

TEST(DatabaseTest, QueryResultToString) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'x'), (2, NULL)").ok());
  auto r = db.Execute("SELECT a, b FROM t ORDER BY a");
  ASSERT_TRUE(r.ok());
  std::string s = r.value().ToString();
  EXPECT_NE(s.find("a | b"), std::string::npos) << s;
  EXPECT_NE(s.find("1 | x"), std::string::npos) << s;
  EXPECT_NE(s.find("2 | NULL"), std::string::npos) << s;
  EXPECT_NE(s.find("(2 rows)"), std::string::npos) << s;
}

TEST(DatabaseTest, FootprintTracksData) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (s VARCHAR)").ok());
  size_t before = db.FootprintBytes();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES ('some sizeable payload')")
                    .ok());
  }
  EXPECT_GT(db.FootprintBytes(), before);
}

TEST(DatabaseTest, InsertExpressionsMustBeConstant) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  // Arithmetic over literals is fine.
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1 + 2 * 3)").ok());
  auto r = db.Execute("SELECT a FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 7);
  // Column references in VALUES are rejected.
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (a)").ok());
}

TEST(DatabaseTest, UpdateUsesOldRowValuesConsistently) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER, b INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 10)").ok());
  // Both assignments read the pre-update row.
  ASSERT_TRUE(db.Execute("UPDATE t SET a = b, b = a").ok());
  auto r = db.Execute("SELECT a, b FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 10);
  EXPECT_EQ(r.value().rows[0][1].AsInt(), 1);
}

TEST(DatabaseTest, DeleteAllWithoutWhere) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  auto r = db.Execute("DELETE FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().affected, 3);
  EXPECT_EQ(db.Execute("SELECT a FROM t").value().rows.size(), 0u);
}

TEST(DatabaseTest, UpdateWithIndexMaintainsIt) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX ia ON t (a)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(db.Execute("UPDATE t SET a = a + 10").ok());
  auto r = db.Execute("SELECT a FROM t WHERE a = 11");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 1u);
  auto plan = db.PlanSql("SELECT a FROM t WHERE a = 11");
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan.value()->CountOperators("IndexScan"), 0);
}

}  // namespace
}  // namespace xmlrdb::rdb
