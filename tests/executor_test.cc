// Direct tests of the physical operators (plan.h), independent of SQL.

#include "rdb/plan.h"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

namespace xmlrdb::rdb {
namespace {

Schema TwoCol() {
  return Schema({{"a", DataType::kInt, true, ""},
                 {"b", DataType::kString, true, ""}});
}

std::vector<Row> MakeRows(std::initializer_list<std::pair<int64_t, const char*>> rs) {
  std::vector<Row> out;
  for (const auto& [a, b] : rs) out.push_back({Value(a), Value(b)});
  return out;
}

PlanPtr Values(std::vector<Row> rows) {
  return std::make_unique<ValuesNode>(TwoCol(), std::move(rows));
}

std::vector<Row> Drain(PlanPtr plan) {
  auto r = ExecutePlan(plan.get());
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : std::vector<Row>{};
}

TEST(ExecutorTest, ValuesAndFilter) {
  auto plan = std::make_unique<FilterNode>(
      Values(MakeRows({{1, "x"}, {2, "y"}, {3, "z"}})),
      Bin(BinOp::kGe, Col("a"), Lit(int64_t{2})));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsString(), "y");
}

TEST(ExecutorTest, ProjectComputesAndNames) {
  auto plan = std::make_unique<ProjectNode>(
      Values(MakeRows({{3, "x"}})),
      [] {
        std::vector<ExprPtr> es;
        es.push_back(Bin(BinOp::kMul, Col("a"), Lit(int64_t{10})));
        es.push_back(Col("b"));
        return es;
      }(),
      std::vector<std::string>{"a10", ""});
  EXPECT_EQ(plan->output_schema().column(0).name, "a10");
  EXPECT_EQ(plan->output_schema().column(1).name, "b");
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 30);
}

TEST(ExecutorTest, NestedLoopJoinCrossAndPredicate) {
  auto cross = std::make_unique<NestedLoopJoinNode>(
      Values(MakeRows({{1, "l1"}, {2, "l2"}})),
      Values(MakeRows({{1, "r1"}, {2, "r2"}, {3, "r3"}})), nullptr);
  EXPECT_EQ(Drain(std::move(cross)).size(), 6u);

  // Rebind: schemas of both sides share names, so qualify via projections is
  // overkill here — use a literal-only predicate instead.
  auto joined = std::make_unique<NestedLoopJoinNode>(
      Values(MakeRows({{1, "l1"}, {2, "l2"}})),
      Values(MakeRows({{9, "r"}})),
      Bin(BinOp::kGt, Lit(int64_t{1}), Lit(int64_t{0})));
  EXPECT_EQ(Drain(std::move(joined)).size(), 2u);
}

TEST(ExecutorTest, HashJoinMatchesOnKeys) {
  std::vector<ExprPtr> lk, rk;
  lk.push_back(Col("a"));
  rk.push_back(Col("a"));
  auto plan = std::make_unique<HashJoinNode>(
      Values(MakeRows({{1, "l1"}, {2, "l2"}, {2, "l2b"}, {4, "l4"}})),
      Values(MakeRows({{2, "r2"}, {2, "r2b"}, {4, "r4"}, {5, "r5"}})),
      std::move(lk), std::move(rk), nullptr);
  auto rows = Drain(std::move(plan));
  // 2 matches 2x2 = 4, 4 matches 1.
  EXPECT_EQ(rows.size(), 5u);
  for (const Row& r : rows) {
    EXPECT_EQ(r[0].AsInt(), r[2].AsInt());
  }
}

TEST(ExecutorTest, HashJoinSkipsNullKeys) {
  std::vector<Row> left = MakeRows({{7, "x"}});
  left.push_back({Value::Null(), Value("n")});
  std::vector<ExprPtr> lk, rk;
  lk.push_back(Col("a"));
  rk.push_back(Col("a"));
  std::vector<Row> right = MakeRows({{7, "y"}});
  right.push_back({Value::Null(), Value("m")});
  auto plan = std::make_unique<HashJoinNode>(
      Values(std::move(left)), Values(std::move(right)), std::move(lk),
      std::move(rk), nullptr);
  EXPECT_EQ(Drain(std::move(plan)).size(), 1u);
}

TEST(ExecutorTest, SortAscDescStable) {
  std::vector<SortKey> keys;
  keys.push_back({Col("a"), false});
  auto plan = std::make_unique<SortNode>(
      Values(MakeRows({{2, "first2"}, {1, "one"}, {2, "second2"}, {3, "three"}})),
      std::move(keys));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsInt(), 3);
  // Stability: equal keys keep input order.
  EXPECT_EQ(rows[1][1].AsString(), "first2");
  EXPECT_EQ(rows[2][1].AsString(), "second2");
  EXPECT_EQ(rows[3][0].AsInt(), 1);
}

TEST(ExecutorTest, SortNullsFirst) {
  std::vector<Row> rows = MakeRows({{5, "x"}});
  rows.push_back({Value::Null(), Value("n")});
  std::vector<SortKey> keys;
  keys.push_back({Col("a"), true});
  auto plan = std::make_unique<SortNode>(Values(std::move(rows)), std::move(keys));
  auto out = Drain(std::move(plan));
  EXPECT_TRUE(out[0][0].is_null());
}

TEST(ExecutorTest, AggregateGroupsAndFunctions) {
  std::vector<ExprPtr> groups;
  groups.push_back(Col("b"));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr, "cnt"});
  aggs.push_back({AggFunc::kSum, Col("a"), "total"});
  aggs.push_back({AggFunc::kMin, Col("a"), "lo"});
  aggs.push_back({AggFunc::kMax, Col("a"), "hi"});
  aggs.push_back({AggFunc::kAvg, Col("a"), "mean"});
  auto plan = std::make_unique<AggregateNode>(
      Values(MakeRows({{1, "g1"}, {2, "g1"}, {30, "g2"}})), std::move(groups),
      std::vector<std::string>{"grp"}, std::move(aggs));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 2u);
  // Deterministic order: sorted by group key.
  EXPECT_EQ(rows[0][0].AsString(), "g1");
  EXPECT_EQ(rows[0][1].AsInt(), 2);
  EXPECT_EQ(rows[0][2].AsInt(), 3);
  EXPECT_EQ(rows[0][3].AsInt(), 1);
  EXPECT_EQ(rows[0][4].AsInt(), 2);
  EXPECT_DOUBLE_EQ(rows[0][5].AsDouble(), 1.5);
  EXPECT_EQ(rows[1][1].AsInt(), 1);
}

TEST(ExecutorTest, DistinctRemovesDuplicates) {
  auto plan = std::make_unique<DistinctNode>(
      Values(MakeRows({{1, "a"}, {1, "a"}, {1, "b"}, {2, "a"}, {1, "a"}})));
  EXPECT_EQ(Drain(std::move(plan)).size(), 3u);
}

TEST(ExecutorTest, LimitAndOffset) {
  auto mk = [] {
    return Values(MakeRows({{1, "a"}, {2, "b"}, {3, "c"}, {4, "d"}}));
  };
  EXPECT_EQ(Drain(std::make_unique<LimitNode>(mk(), 2, 0)).size(), 2u);
  auto rows = Drain(std::make_unique<LimitNode>(mk(), 2, 3));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 4);
  EXPECT_EQ(Drain(std::make_unique<LimitNode>(mk(), 0, 0)).size(), 0u);
  EXPECT_EQ(Drain(std::make_unique<LimitNode>(mk(), -1, 1)).size(), 3u);
}

TEST(ExecutorTest, ExplainShowsTree) {
  std::vector<SortKey> keys;
  keys.push_back({Col("a"), true});
  auto plan = std::make_unique<SortNode>(
      std::make_unique<FilterNode>(Values({}),
                                   Eq(Col("a"), Lit(int64_t{1}))),
      std::move(keys));
  std::string text = plan->Explain();
  EXPECT_NE(text.find("Sort"), std::string::npos);
  EXPECT_NE(text.find("  Filter"), std::string::npos);
  EXPECT_NE(text.find("    Values"), std::string::npos);
  EXPECT_EQ(plan->CountOperators("Filter"), 1);
  EXPECT_EQ(plan->CountOperators("HashJoin"), 0);
}

TEST(ExecutorTest, ScanSkipsTombstones) {
  Table t("t", TwoCol());
  RowId r0 = t.Insert({Value(int64_t{1}), Value("a")}).value();
  t.Insert({Value(int64_t{2}), Value("b")}).value();
  ASSERT_TRUE(t.Delete(r0).ok());
  auto scan = std::make_unique<SeqScanNode>(&t, "t");
  auto rows = Drain(std::move(scan));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 2);
}

TEST(ExecutorTest, IndexScanRespectsBounds) {
  Table t("t", TwoCol());
  ASSERT_TRUE(t.CreateIndex("ia", {"a"}).ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("v")}).ok());
  }
  auto scan = std::make_unique<IndexScanNode>(
      &t, t.FindIndex("ia"), "t", Row{Value(int64_t{3})}, true,
      Row{Value(int64_t{6})}, false);
  auto rows = Drain(std::move(scan));
  ASSERT_EQ(rows.size(), 3u);  // 3, 4, 5
  EXPECT_EQ(rows[0][0].AsInt(), 3);
  EXPECT_EQ(rows[2][0].AsInt(), 5);
}

// SUM/AVG over int64 must accumulate in int64: a double accumulator silently
// rounds values beyond 2^53. 2^53 + 1 is the first integer a double cannot
// represent, so summing three of them catches any double round-trip.
TEST(ExecutorTest, SumInt64ExactBeyondDoublePrecision) {
  const int64_t big = (int64_t{1} << 53) + 1;  // 9007199254740993
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col("a"), "total"});
  auto plan = std::make_unique<AggregateNode>(
      Values(MakeRows({{big, "x"}, {big, "y"}, {big, "z"}})),
      std::vector<ExprPtr>{}, std::vector<std::string>{}, std::move(aggs));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].type(), DataType::kInt);
  EXPECT_EQ(rows[0][0].AsInt(), 3 * big);  // 27021597764222979, not ...976
}

TEST(ExecutorTest, SumInt64OverflowDemotesToDouble) {
  const int64_t max = std::numeric_limits<int64_t>::max();
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col("a"), "total"});
  auto plan = std::make_unique<AggregateNode>(
      Values(MakeRows({{max, "x"}, {max, "y"}})), std::vector<ExprPtr>{},
      std::vector<std::string>{}, std::move(aggs));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].type(), DataType::kDouble);
  EXPECT_NEAR(rows[0][0].AsDouble(), 2.0 * static_cast<double>(max),
              1e4);  // approximate is the best a demoted sum can do
}

TEST(ExecutorTest, SumMixedIntDoubleDemotesExactPrefix) {
  std::vector<Row> rows = MakeRows({{10, "x"}, {20, "y"}});
  rows.push_back({Value(0.5), Value("z")});
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kSum, Col("a"), "total"});
  aggs.push_back({AggFunc::kAvg, Col("a"), "mean"});
  auto plan = std::make_unique<AggregateNode>(
      Values(std::move(rows)), std::vector<ExprPtr>{},
      std::vector<std::string>{}, std::move(aggs));
  auto out = Drain(std::move(plan));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0].type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(out[0][0].AsDouble(), 30.5);
  EXPECT_DOUBLE_EQ(out[0][1].AsDouble(), 30.5 / 3.0);
}

// Differential check: hash join and nested-loop join must agree on
// NULL-bearing inputs — SQL equality never matches NULL against anything,
// including another NULL.
TEST(ExecutorTest, HashJoinAgreesWithNestedLoopOnNulls) {
  Schema left_schema({{"la", DataType::kInt, true, ""},
                      {"lb", DataType::kString, true, ""}});
  Schema right_schema({{"ra", DataType::kInt, true, ""},
                       {"rb", DataType::kString, true, ""}});
  auto make_left = [&] {
    std::vector<Row> rows;
    rows.push_back({Value(int64_t{1}), Value("l1")});
    rows.push_back({Value::Null(), Value("lnull")});
    rows.push_back({Value(int64_t{2}), Value("l2")});
    rows.push_back({Value::Null(), Value("lnull2")});
    rows.push_back({Value(int64_t{2}), Value("l2b")});
    return std::make_unique<ValuesNode>(left_schema, std::move(rows));
  };
  auto make_right = [&] {
    std::vector<Row> rows;
    rows.push_back({Value::Null(), Value("rnull")});
    rows.push_back({Value(int64_t{2}), Value("r2")});
    rows.push_back({Value::Null(), Value("rnull2")});
    rows.push_back({Value(int64_t{3}), Value("r3")});
    return std::make_unique<ValuesNode>(right_schema, std::move(rows));
  };

  std::vector<ExprPtr> lk, rk;
  lk.push_back(Col("la"));
  rk.push_back(Col("ra"));
  auto hash_rows = Drain(std::make_unique<HashJoinNode>(
      make_left(), make_right(), std::move(lk), std::move(rk), nullptr));
  auto nlj_rows = Drain(std::make_unique<NestedLoopJoinNode>(
      make_left(), make_right(), Eq(Col("la"), Col("ra"))));

  auto key = [](const Row& r) {
    return r[1].AsString() + "/" + r[3].AsString();
  };
  std::vector<std::string> hk, nk;
  for (const Row& r : hash_rows) hk.push_back(key(r));
  for (const Row& r : nlj_rows) nk.push_back(key(r));
  std::sort(hk.begin(), hk.end());
  std::sort(nk.begin(), nk.end());
  EXPECT_EQ(hk, nk);
  // Only la=2 matches ra=2 (2 left dups x 1 right): no NULL=NULL pairs.
  ASSERT_EQ(hash_rows.size(), 2u);
  for (const Row& r : hash_rows) {
    EXPECT_FALSE(r[0].is_null());
    EXPECT_FALSE(r[2].is_null());
  }
}

TEST(ExecutorTest, LimitZeroProducesNothing) {
  auto plan = std::make_unique<LimitNode>(
      Values(MakeRows({{1, "a"}, {2, "b"}})), 0, 0);
  ASSERT_TRUE(plan->Open().ok());
  Row row;
  auto more = plan->Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
  // Next() past exhaustion stays exhausted.
  more = plan->Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
  plan->Close();
}

TEST(ExecutorTest, OffsetPastEndOfInput) {
  auto plan = std::make_unique<LimitNode>(
      Values(MakeRows({{1, "a"}, {2, "b"}, {3, "c"}})), 10, 99);
  EXPECT_EQ(Drain(std::move(plan)).size(), 0u);
}

// DISTINCT must compare rows, not hashes: rows engineered to collide in
// HashRow must still be treated as distinct.
TEST(ExecutorTest, DistinctSeparatesHashCollidingRows) {
  Schema two_ints({{"a", DataType::kInt, true, ""},
                   {"b", DataType::kInt, true, ""}});
  // HashRow((a,b)) = (HashRow((a)) ^ Hash(b)) * prime, so when std::hash of
  // int64 is the identity (libstdc++/libc++), b2 below makes (a2,b2) collide
  // with (a1,b1).
  const int64_t a1 = 1, b1 = 2, a2 = 3;
  size_t want_hash_b2 = HashRow({Value(a1)}) ^ HashRow({Value(a2)}) ^
                        Value(b1).Hash();
  const int64_t b2 = static_cast<int64_t>(want_hash_b2);
  Row r1{Value(a1), Value(b1)};
  Row r2{Value(a2), Value(b2)};
  ASSERT_NE(CompareRows(r1, r2), 0);
  if (HashRow(r1) != HashRow(r2)) {
    GTEST_SKIP() << "std::hash<int64_t> is not identity here; "
                    "cannot construct a collision deterministically";
  }
  auto plan = std::make_unique<DistinctNode>(
      std::make_unique<ValuesNode>(two_ints,
                                   std::vector<Row>{r1, r2, r1, r2}));
  EXPECT_EQ(Drain(std::move(plan)).size(), 2u);
}

TEST(ExecutorTest, GlobalAggregateOverEmptyInput) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr, "cnt"});
  aggs.push_back({AggFunc::kCount, Col("a"), "cnta"});
  aggs.push_back({AggFunc::kSum, Col("a"), "total"});
  aggs.push_back({AggFunc::kAvg, Col("a"), "mean"});
  aggs.push_back({AggFunc::kMin, Col("a"), "lo"});
  aggs.push_back({AggFunc::kMax, Col("a"), "hi"});
  auto plan = std::make_unique<AggregateNode>(
      Values({}), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
  EXPECT_EQ(rows[0][1].AsInt(), 0);
  EXPECT_TRUE(rows[0][2].is_null());
  EXPECT_TRUE(rows[0][3].is_null());
  EXPECT_TRUE(rows[0][4].is_null());
  EXPECT_TRUE(rows[0][5].is_null());
}

TEST(ExecutorTest, GroupedAggregateOverEmptyInputYieldsNoRows) {
  std::vector<ExprPtr> groups;
  groups.push_back(Col("b"));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr, "cnt"});
  auto plan = std::make_unique<AggregateNode>(
      Values({}), std::move(groups), std::vector<std::string>{"grp"},
      std::move(aggs));
  EXPECT_EQ(Drain(std::move(plan)).size(), 0u);
}

TEST(ExecutorTest, OperatorStatsCountRowsAndCalls) {
  ScopedExecMode row_mode(ExecMode::kRow);
  auto filter = std::make_unique<FilterNode>(
      Values(MakeRows({{1, "x"}, {2, "y"}, {3, "z"}})),
      Bin(BinOp::kGe, Col("a"), Lit(int64_t{2})));
  ASSERT_TRUE(ExecutePlan(filter.get()).ok());
  EXPECT_EQ(filter->stats().rows, 2);
  EXPECT_EQ(filter->stats().open_calls, 1);
  EXPECT_EQ(filter->stats().next_calls, 3);  // 2 rows + exhaustion
  EXPECT_EQ(filter->stats().batches, 0);     // row path never builds batches
  const PlanNode* values = filter->Children()[0];
  EXPECT_EQ(values->stats().rows, 3);
  EXPECT_EQ(values->stats().next_calls, 4);
  // Timers stay zero without EnableAnalyze().
  EXPECT_EQ(filter->stats().open_ns, 0);
  EXPECT_EQ(filter->stats().next_ns, 0);
}

TEST(ExecutorTest, OperatorStatsCountBatches) {
  ScopedExecMode batch_mode(ExecMode::kBatch);
  auto filter = std::make_unique<FilterNode>(
      Values(MakeRows({{1, "x"}, {2, "y"}, {3, "z"}})),
      Bin(BinOp::kGe, Col("a"), Lit(int64_t{2})));
  auto rows = ExecutePlan(filter.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(filter->stats().rows, 2);
  EXPECT_EQ(filter->stats().batches, 1);
  EXPECT_EQ(filter->stats().next_calls, 0);  // fully vectorized: no row pulls
  const PlanNode* values = filter->Children()[0];
  EXPECT_EQ(values->stats().rows, 3);
  EXPECT_EQ(values->stats().batches, 1);
}

}  // namespace
}  // namespace xmlrdb::rdb
