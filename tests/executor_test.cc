// Direct tests of the physical operators (plan.h), independent of SQL.

#include "rdb/plan.h"

#include <gtest/gtest.h>

namespace xmlrdb::rdb {
namespace {

Schema TwoCol() {
  return Schema({{"a", DataType::kInt, true, ""},
                 {"b", DataType::kString, true, ""}});
}

std::vector<Row> MakeRows(std::initializer_list<std::pair<int64_t, const char*>> rs) {
  std::vector<Row> out;
  for (const auto& [a, b] : rs) out.push_back({Value(a), Value(b)});
  return out;
}

PlanPtr Values(std::vector<Row> rows) {
  return std::make_unique<ValuesNode>(TwoCol(), std::move(rows));
}

std::vector<Row> Drain(PlanPtr plan) {
  auto r = ExecutePlan(plan.get());
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : std::vector<Row>{};
}

TEST(ExecutorTest, ValuesAndFilter) {
  auto plan = std::make_unique<FilterNode>(
      Values(MakeRows({{1, "x"}, {2, "y"}, {3, "z"}})),
      Bin(BinOp::kGe, Col("a"), Lit(int64_t{2})));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsString(), "y");
}

TEST(ExecutorTest, ProjectComputesAndNames) {
  auto plan = std::make_unique<ProjectNode>(
      Values(MakeRows({{3, "x"}})),
      [] {
        std::vector<ExprPtr> es;
        es.push_back(Bin(BinOp::kMul, Col("a"), Lit(int64_t{10})));
        es.push_back(Col("b"));
        return es;
      }(),
      std::vector<std::string>{"a10", ""});
  EXPECT_EQ(plan->output_schema().column(0).name, "a10");
  EXPECT_EQ(plan->output_schema().column(1).name, "b");
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 30);
}

TEST(ExecutorTest, NestedLoopJoinCrossAndPredicate) {
  auto cross = std::make_unique<NestedLoopJoinNode>(
      Values(MakeRows({{1, "l1"}, {2, "l2"}})),
      Values(MakeRows({{1, "r1"}, {2, "r2"}, {3, "r3"}})), nullptr);
  EXPECT_EQ(Drain(std::move(cross)).size(), 6u);

  // Rebind: schemas of both sides share names, so qualify via projections is
  // overkill here — use a literal-only predicate instead.
  auto joined = std::make_unique<NestedLoopJoinNode>(
      Values(MakeRows({{1, "l1"}, {2, "l2"}})),
      Values(MakeRows({{9, "r"}})),
      Bin(BinOp::kGt, Lit(int64_t{1}), Lit(int64_t{0})));
  EXPECT_EQ(Drain(std::move(joined)).size(), 2u);
}

TEST(ExecutorTest, HashJoinMatchesOnKeys) {
  std::vector<ExprPtr> lk, rk;
  lk.push_back(Col("a"));
  rk.push_back(Col("a"));
  auto plan = std::make_unique<HashJoinNode>(
      Values(MakeRows({{1, "l1"}, {2, "l2"}, {2, "l2b"}, {4, "l4"}})),
      Values(MakeRows({{2, "r2"}, {2, "r2b"}, {4, "r4"}, {5, "r5"}})),
      std::move(lk), std::move(rk), nullptr);
  auto rows = Drain(std::move(plan));
  // 2 matches 2x2 = 4, 4 matches 1.
  EXPECT_EQ(rows.size(), 5u);
  for (const Row& r : rows) {
    EXPECT_EQ(r[0].AsInt(), r[2].AsInt());
  }
}

TEST(ExecutorTest, HashJoinSkipsNullKeys) {
  std::vector<Row> left = MakeRows({{7, "x"}});
  left.push_back({Value::Null(), Value("n")});
  std::vector<ExprPtr> lk, rk;
  lk.push_back(Col("a"));
  rk.push_back(Col("a"));
  std::vector<Row> right = MakeRows({{7, "y"}});
  right.push_back({Value::Null(), Value("m")});
  auto plan = std::make_unique<HashJoinNode>(
      Values(std::move(left)), Values(std::move(right)), std::move(lk),
      std::move(rk), nullptr);
  EXPECT_EQ(Drain(std::move(plan)).size(), 1u);
}

TEST(ExecutorTest, SortAscDescStable) {
  std::vector<SortKey> keys;
  keys.push_back({Col("a"), false});
  auto plan = std::make_unique<SortNode>(
      Values(MakeRows({{2, "first2"}, {1, "one"}, {2, "second2"}, {3, "three"}})),
      std::move(keys));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsInt(), 3);
  // Stability: equal keys keep input order.
  EXPECT_EQ(rows[1][1].AsString(), "first2");
  EXPECT_EQ(rows[2][1].AsString(), "second2");
  EXPECT_EQ(rows[3][0].AsInt(), 1);
}

TEST(ExecutorTest, SortNullsFirst) {
  std::vector<Row> rows = MakeRows({{5, "x"}});
  rows.push_back({Value::Null(), Value("n")});
  std::vector<SortKey> keys;
  keys.push_back({Col("a"), true});
  auto plan = std::make_unique<SortNode>(Values(std::move(rows)), std::move(keys));
  auto out = Drain(std::move(plan));
  EXPECT_TRUE(out[0][0].is_null());
}

TEST(ExecutorTest, AggregateGroupsAndFunctions) {
  std::vector<ExprPtr> groups;
  groups.push_back(Col("b"));
  std::vector<AggSpec> aggs;
  aggs.push_back({AggFunc::kCountStar, nullptr, "cnt"});
  aggs.push_back({AggFunc::kSum, Col("a"), "total"});
  aggs.push_back({AggFunc::kMin, Col("a"), "lo"});
  aggs.push_back({AggFunc::kMax, Col("a"), "hi"});
  aggs.push_back({AggFunc::kAvg, Col("a"), "mean"});
  auto plan = std::make_unique<AggregateNode>(
      Values(MakeRows({{1, "g1"}, {2, "g1"}, {30, "g2"}})), std::move(groups),
      std::vector<std::string>{"grp"}, std::move(aggs));
  auto rows = Drain(std::move(plan));
  ASSERT_EQ(rows.size(), 2u);
  // Deterministic order: sorted by group key.
  EXPECT_EQ(rows[0][0].AsString(), "g1");
  EXPECT_EQ(rows[0][1].AsInt(), 2);
  EXPECT_EQ(rows[0][2].AsInt(), 3);
  EXPECT_EQ(rows[0][3].AsInt(), 1);
  EXPECT_EQ(rows[0][4].AsInt(), 2);
  EXPECT_DOUBLE_EQ(rows[0][5].AsDouble(), 1.5);
  EXPECT_EQ(rows[1][1].AsInt(), 1);
}

TEST(ExecutorTest, DistinctRemovesDuplicates) {
  auto plan = std::make_unique<DistinctNode>(
      Values(MakeRows({{1, "a"}, {1, "a"}, {1, "b"}, {2, "a"}, {1, "a"}})));
  EXPECT_EQ(Drain(std::move(plan)).size(), 3u);
}

TEST(ExecutorTest, LimitAndOffset) {
  auto mk = [] {
    return Values(MakeRows({{1, "a"}, {2, "b"}, {3, "c"}, {4, "d"}}));
  };
  EXPECT_EQ(Drain(std::make_unique<LimitNode>(mk(), 2, 0)).size(), 2u);
  auto rows = Drain(std::make_unique<LimitNode>(mk(), 2, 3));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 4);
  EXPECT_EQ(Drain(std::make_unique<LimitNode>(mk(), 0, 0)).size(), 0u);
  EXPECT_EQ(Drain(std::make_unique<LimitNode>(mk(), -1, 1)).size(), 3u);
}

TEST(ExecutorTest, ExplainShowsTree) {
  std::vector<SortKey> keys;
  keys.push_back({Col("a"), true});
  auto plan = std::make_unique<SortNode>(
      std::make_unique<FilterNode>(Values({}),
                                   Eq(Col("a"), Lit(int64_t{1}))),
      std::move(keys));
  std::string text = plan->Explain();
  EXPECT_NE(text.find("Sort"), std::string::npos);
  EXPECT_NE(text.find("  Filter"), std::string::npos);
  EXPECT_NE(text.find("    Values"), std::string::npos);
  EXPECT_EQ(plan->CountOperators("Filter"), 1);
  EXPECT_EQ(plan->CountOperators("HashJoin"), 0);
}

TEST(ExecutorTest, ScanSkipsTombstones) {
  Table t("t", TwoCol());
  RowId r0 = t.Insert({Value(int64_t{1}), Value("a")}).value();
  t.Insert({Value(int64_t{2}), Value("b")}).value();
  ASSERT_TRUE(t.Delete(r0).ok());
  auto scan = std::make_unique<SeqScanNode>(&t, "t");
  auto rows = Drain(std::move(scan));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 2);
}

TEST(ExecutorTest, IndexScanRespectsBounds) {
  Table t("t", TwoCol());
  ASSERT_TRUE(t.CreateIndex("ia", {"a"}).ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value(i), Value("v")}).ok());
  }
  auto scan = std::make_unique<IndexScanNode>(
      &t, t.FindIndex("ia"), "t", Row{Value(int64_t{3})}, true,
      Row{Value(int64_t{6})}, false);
  auto rows = Drain(std::move(scan));
  ASSERT_EQ(rows.size(), 3u);  // 3, 4, 5
  EXPECT_EQ(rows[0][0].AsInt(), 3);
  EXPECT_EQ(rows[2][0].AsInt(), 5);
}

}  // namespace
}  // namespace xmlrdb::rdb
