#include "rdb/value.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace xmlrdb::rdb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt);
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("hi").type(), DataType::kString);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(true).type(), DataType::kBool);
}

TEST(ValueTest, IntDoubleCrossComparison) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
  EXPECT_TRUE(Value(int64_t{2}) == Value(2.0));
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value::Null().Compare(Value("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_GT(Value("b").Compare(Value("azzz")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, NanOrdersAfterAllDoublesAndEqualsItself) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // NaN sorts after every non-NaN double, including +inf...
  EXPECT_GT(Value(nan).Compare(Value(inf)), 0);
  EXPECT_GT(Value(nan).Compare(Value(0.0)), 0);
  EXPECT_GT(Value(nan).Compare(Value(-inf)), 0);
  EXPECT_LT(Value(inf).Compare(Value(nan)), 0);
  // ...and after every integer.
  EXPECT_GT(Value(nan).Compare(Value(std::numeric_limits<int64_t>::max())), 0);
  EXPECT_LT(Value(int64_t{0}).Compare(Value(nan)), 0);
  // NaN compares equal to NaN so sort/distinct/group-by treat it as one key.
  EXPECT_EQ(Value(nan).Compare(Value(nan)), 0);
  EXPECT_EQ(Value(nan).Hash(), Value(nan).Hash());
}

TEST(ValueTest, NanKeepsSortStrictWeakOrdering) {
  // Before the NaN fix, comparing through NaN was not a strict weak ordering
  // and std::sort on such data was UB. Sort a mix and check NaNs land last.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Value> vs = {Value(3.0), Value(nan),  Value(-1.5), Value(nan),
                           Value(0.0), Value(1e18), Value(nan),  Value(2.5)};
  std::sort(vs.begin(), vs.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  for (size_t i = 0; i < 5; ++i) EXPECT_FALSE(std::isnan(vs[i].AsDouble())) << i;
  for (size_t i = 5; i < 8; ++i) EXPECT_TRUE(std::isnan(vs[i].AsDouble())) << i;
  EXPECT_DOUBLE_EQ(vs[0].AsDouble(), -1.5);
  EXPECT_DOUBLE_EQ(vs[4].AsDouble(), 1e18);
}

TEST(ValueTest, LargeIntDoubleComparisonIsExact) {
  // 2^53 + 1 is not representable as a double; the old cast-to-double
  // comparison reported equality with 2^53.
  const int64_t big = (int64_t{1} << 53) + 1;
  EXPECT_GT(Value(big).Compare(Value(9007199254740992.0)), 0);  // 2^53
  EXPECT_LT(Value(9007199254740992.0).Compare(Value(big)), 0);
  // INT64_MAX is below 2^63 (the nearest double), not equal to it.
  const int64_t imax = std::numeric_limits<int64_t>::max();
  EXPECT_LT(Value(imax).Compare(Value(9223372036854775808.0)), 0);
  EXPECT_GT(Value(9223372036854775808.0).Compare(Value(imax)), 0);
  // INT64_MIN == -2^63 exactly.
  const int64_t imin = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(Value(imin).Compare(Value(-9223372036854775808.0)), 0);
  // Fractional doubles order strictly between neighbouring integers.
  EXPECT_LT(Value(int64_t{4}).Compare(Value(4.5)), 0);
  EXPECT_GT(Value(int64_t{5}).Compare(Value(4.5)), 0);
  EXPECT_LT(Value(int64_t{-5}).Compare(Value(-4.5)), 0);
  EXPECT_GT(Value(int64_t{-4}).Compare(Value(-4.5)), 0);
}

TEST(ValueTest, IntAndIntValuedDoubleHashEqually) {
  // Required so mixed-type equi-joins work in the hash join.
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("txt").ToString(), "txt");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, ToStringRoundTripsDoubles) {
  // %.6g used to collapse distinct doubles to the same text. ToString now
  // emits the shortest string that strtod parses back to the same bits.
  for (double d : {0.1, 1.0 / 3.0, 1e-7, 123456.789012345, 2.5e300,
                   9007199254740993.0, -0.0001}) {
    std::string s = Value(d).ToString();
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), d) << s;
  }
}

TEST(ValueTest, DoubleToIntCastOverflowIsErrorNotUB) {
  // static_cast of an out-of-range double to int64 is UB; CastTo must refuse.
  EXPECT_FALSE(Value(1e19).CastTo(DataType::kInt).ok());
  EXPECT_FALSE(Value(-1e19).CastTo(DataType::kInt).ok());
  EXPECT_FALSE(Value(std::numeric_limits<double>::infinity())
                   .CastTo(DataType::kInt).ok());
  EXPECT_FALSE(Value(std::numeric_limits<double>::quiet_NaN())
                   .CastTo(DataType::kInt).ok());
  // 2^63 itself is the first unrepresentable value; just below is fine.
  EXPECT_FALSE(Value(9223372036854775808.0).CastTo(DataType::kInt).ok());
  EXPECT_EQ(Value(9223372036854774784.0).CastTo(DataType::kInt).value().AsInt(),
            int64_t{9223372036854774784});
  EXPECT_EQ(Value(-9223372036854775808.0).CastTo(DataType::kInt).value().AsInt(),
            std::numeric_limits<int64_t>::min());
}

TEST(ValueTest, Casts) {
  EXPECT_EQ(Value("42").CastTo(DataType::kInt).value().AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value("2.5").CastTo(DataType::kDouble).value().AsDouble(), 2.5);
  EXPECT_EQ(Value(int64_t{3}).CastTo(DataType::kDouble).value().AsDouble(), 3.0);
  EXPECT_EQ(Value(3.9).CastTo(DataType::kInt).value().AsInt(), 3);
  EXPECT_EQ(Value(int64_t{1}).CastTo(DataType::kBool).value().AsBool(), true);
  EXPECT_EQ(Value(int64_t{9}).CastTo(DataType::kString).value().AsString(), "9");
  EXPECT_FALSE(Value("abc").CastTo(DataType::kInt).ok());
  EXPECT_TRUE(Value::Null().CastTo(DataType::kInt).value().is_null());
}

TEST(ValueTest, ParseDataTypeNames) {
  EXPECT_EQ(ParseDataType("INTEGER").value(), DataType::kInt);
  EXPECT_EQ(ParseDataType("int").value(), DataType::kInt);
  EXPECT_EQ(ParseDataType("BIGINT").value(), DataType::kInt);
  EXPECT_EQ(ParseDataType("double").value(), DataType::kDouble);
  EXPECT_EQ(ParseDataType("REAL").value(), DataType::kDouble);
  EXPECT_EQ(ParseDataType("VARCHAR").value(), DataType::kString);
  EXPECT_EQ(ParseDataType("text").value(), DataType::kString);
  EXPECT_EQ(ParseDataType("BOOLEAN").value(), DataType::kBool);
  EXPECT_FALSE(ParseDataType("blob").ok());
}

TEST(RowTest, CompareRowsLexicographic) {
  Row a{Value(int64_t{1}), Value("x")};
  Row b{Value(int64_t{1}), Value("y")};
  Row c{Value(int64_t{2})};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_GT(CompareRows(b, a), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
  EXPECT_LT(CompareRows(a, c), 0);
  // Prefix ordering: shorter row that is a prefix compares less.
  Row p{Value(int64_t{1})};
  EXPECT_LT(CompareRows(p, a), 0);
}

TEST(RowTest, HashRowConsistentWithEquality) {
  Row a{Value(int64_t{1}), Value("x")};
  Row b{Value(int64_t{1}), Value("x")};
  EXPECT_EQ(HashRow(a), HashRow(b));
}

TEST(RowTest, HashRowMixesPosition) {
  // Permuted rows must hash differently: join/distinct/group-by keys like
  // (parent, child) and (child, parent) are distinct rows.
  Row ab{Value(int64_t{7}), Value(int64_t{42})};
  Row ba{Value(int64_t{42}), Value(int64_t{7})};
  EXPECT_NE(HashRow(ab), HashRow(ba));

  Row xy{Value("x"), Value("y")};
  Row yx{Value("y"), Value("x")};
  EXPECT_NE(HashRow(xy), HashRow(yx));

  // Shifting a value across columns must change the hash too.
  Row left{Value(int64_t{5}), Value(int64_t{0})};
  Row right{Value(int64_t{0}), Value(int64_t{5})};
  EXPECT_NE(HashRow(left), HashRow(right));
}

TEST(RowTest, RowToString) {
  Row r{Value(int64_t{1}), Value("a"), Value::Null()};
  EXPECT_EQ(RowToString(r), "(1, a, NULL)");
}

}  // namespace
}  // namespace xmlrdb::rdb
