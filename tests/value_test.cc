#include "rdb/value.h"

#include <gtest/gtest.h>

namespace xmlrdb::rdb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt);
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("hi").type(), DataType::kString);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(true).type(), DataType::kBool);
}

TEST(ValueTest, IntDoubleCrossComparison) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(int64_t{3})), 0);
  EXPECT_TRUE(Value(int64_t{2}) == Value(2.0));
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value::Null().Compare(Value("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_GT(Value("b").Compare(Value("azzz")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, IntAndIntValuedDoubleHashEqually) {
  // Required so mixed-type equi-joins work in the hash join.
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("txt").ToString(), "txt");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, Casts) {
  EXPECT_EQ(Value("42").CastTo(DataType::kInt).value().AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value("2.5").CastTo(DataType::kDouble).value().AsDouble(), 2.5);
  EXPECT_EQ(Value(int64_t{3}).CastTo(DataType::kDouble).value().AsDouble(), 3.0);
  EXPECT_EQ(Value(3.9).CastTo(DataType::kInt).value().AsInt(), 3);
  EXPECT_EQ(Value(int64_t{1}).CastTo(DataType::kBool).value().AsBool(), true);
  EXPECT_EQ(Value(int64_t{9}).CastTo(DataType::kString).value().AsString(), "9");
  EXPECT_FALSE(Value("abc").CastTo(DataType::kInt).ok());
  EXPECT_TRUE(Value::Null().CastTo(DataType::kInt).value().is_null());
}

TEST(ValueTest, ParseDataTypeNames) {
  EXPECT_EQ(ParseDataType("INTEGER").value(), DataType::kInt);
  EXPECT_EQ(ParseDataType("int").value(), DataType::kInt);
  EXPECT_EQ(ParseDataType("BIGINT").value(), DataType::kInt);
  EXPECT_EQ(ParseDataType("double").value(), DataType::kDouble);
  EXPECT_EQ(ParseDataType("REAL").value(), DataType::kDouble);
  EXPECT_EQ(ParseDataType("VARCHAR").value(), DataType::kString);
  EXPECT_EQ(ParseDataType("text").value(), DataType::kString);
  EXPECT_EQ(ParseDataType("BOOLEAN").value(), DataType::kBool);
  EXPECT_FALSE(ParseDataType("blob").ok());
}

TEST(RowTest, CompareRowsLexicographic) {
  Row a{Value(int64_t{1}), Value("x")};
  Row b{Value(int64_t{1}), Value("y")};
  Row c{Value(int64_t{2})};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_GT(CompareRows(b, a), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
  EXPECT_LT(CompareRows(a, c), 0);
  // Prefix ordering: shorter row that is a prefix compares less.
  Row p{Value(int64_t{1})};
  EXPECT_LT(CompareRows(p, a), 0);
}

TEST(RowTest, HashRowConsistentWithEquality) {
  Row a{Value(int64_t{1}), Value("x")};
  Row b{Value(int64_t{1}), Value("x")};
  EXPECT_EQ(HashRow(a), HashRow(b));
}

TEST(RowTest, HashRowMixesPosition) {
  // Permuted rows must hash differently: join/distinct/group-by keys like
  // (parent, child) and (child, parent) are distinct rows.
  Row ab{Value(int64_t{7}), Value(int64_t{42})};
  Row ba{Value(int64_t{42}), Value(int64_t{7})};
  EXPECT_NE(HashRow(ab), HashRow(ba));

  Row xy{Value("x"), Value("y")};
  Row yx{Value("y"), Value("x")};
  EXPECT_NE(HashRow(xy), HashRow(yx));

  // Shifting a value across columns must change the hash too.
  Row left{Value(int64_t{5}), Value(int64_t{0})};
  Row right{Value(int64_t{0}), Value(int64_t{5})};
  EXPECT_NE(HashRow(left), HashRow(right));
}

TEST(RowTest, RowToString) {
  Row r{Value(int64_t{1}), Value("a"), Value::Null()};
  EXPECT_EQ(RowToString(r), "(1, a, NULL)");
}

}  // namespace
}  // namespace xmlrdb::rdb
