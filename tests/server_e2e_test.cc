// End-to-end tests through a real loopback socket: an ephemeral-port server
// fronting a Database, exercised with the blocking client. The headline
// test is differential — Q1–Q12 over the XMark document, on all six
// mappings, answered through the wire must be byte-identical to the
// embedded evaluator.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/dtd.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::net {
namespace {

/// One stored copy of the XMark document under a given mapping, with its
/// own Database (each mapping owns its table namespace independently).
struct StoredMapping {
  std::unique_ptr<shred::Mapping> mapping;
  std::unique_ptr<rdb::Database> db;
  shred::DocId doc = 0;
};

/// Shared fixture: generate XMark once, store under all six mappings once,
/// run one server for the whole suite. SetUpTestSuite keeps the cost to a
/// single shred per mapping.
class ServerE2ETest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    doc_ = workload::GenerateXMark({}).release();
    stored_ = new std::map<std::string, StoredMapping>();
    for (const std::string& name : shred::GenericMappingNames()) {
      auto m = shred::CreateMapping(name);
      ASSERT_TRUE(m.ok()) << m.status();
      AddStored(name, std::move(m.value()));
    }
    auto dtd = xml::ParseDtd(workload::XMarkDtd());
    ASSERT_TRUE(dtd.ok()) << dtd.status();
    auto inline_m = shred::InlineMapping::Create(*dtd.value(), "site");
    ASSERT_TRUE(inline_m.ok()) << inline_m.status();
    AddStored("inline", std::move(inline_m.value()));

    server_db_ = new rdb::Database();
    ServerConfig cfg;
    cfg.workers = 4;
    server_ = new Server(server_db_, cfg);
    server_->set_xpath_handler(
        [](int64_t doc, const std::string& mapping,
           const std::string& xpath) -> Result<std::vector<std::string>> {
          auto it = stored_->find(mapping);
          if (it == stored_->end()) {
            return Status::InvalidArgument("unknown mapping '" + mapping +
                                           "'");
          }
          ASSIGN_OR_RETURN(xpath::PathExpr path, xpath::ParseXPath(xpath));
          (void)doc;
          return shred::EvalPathStrings(path, it->second.mapping.get(),
                                        it->second.db.get(), it->second.doc);
        });
    ASSERT_TRUE(server_->Start().ok());
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    delete server_db_;
    delete stored_;
    delete doc_;
    server_ = nullptr;
    server_db_ = nullptr;
    stored_ = nullptr;
    doc_ = nullptr;
  }

  static void AddStored(const std::string& name,
                        std::unique_ptr<shred::Mapping> mapping) {
    StoredMapping s;
    s.mapping = std::move(mapping);
    s.db = std::make_unique<rdb::Database>();
    ASSERT_TRUE(s.mapping->Initialize(s.db.get()).ok());
    auto id = s.mapping->Store(*doc_, s.db.get());
    ASSERT_TRUE(id.ok()) << name << ": " << id.status();
    s.doc = id.value();
    (*stored_)[name] = std::move(s);
  }

  static Client Connect() {
    Client c;
    Status st = c.Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(st.ok()) << st;
    return c;
  }

  /// Embedded-evaluator oracle for one (mapping, xpath) pair.
  static std::vector<std::string> Embedded(const std::string& mapping,
                                           const std::string& xpath) {
    auto& s = stored_->at(mapping);
    auto path = xpath::ParseXPath(xpath);
    EXPECT_TRUE(path.ok()) << path.status();
    auto vals =
        shred::EvalPathStrings(path.value(), s.mapping.get(), s.db.get(),
                               s.doc);
    EXPECT_TRUE(vals.ok()) << mapping << ": " << vals.status();
    return vals.ok() ? vals.value() : std::vector<std::string>{};
  }

  static xml::Document* doc_;
  static std::map<std::string, StoredMapping>* stored_;
  static rdb::Database* server_db_;
  static Server* server_;
};

xml::Document* ServerE2ETest::doc_ = nullptr;
std::map<std::string, StoredMapping>* ServerE2ETest::stored_ = nullptr;
rdb::Database* ServerE2ETest::server_db_ = nullptr;
Server* ServerE2ETest::server_ = nullptr;

TEST_F(ServerE2ETest, PingRoundTrip) {
  Client c = Connect();
  EXPECT_TRUE(c.Ping().ok());
  EXPECT_TRUE(c.Ping().ok());
}

TEST_F(ServerE2ETest, SqlOverTheWireMatchesEmbedded) {
  Client c = Connect();
  ASSERT_TRUE(
      c.Query("CREATE TABLE kv (k INTEGER, v VARCHAR)").status().ok());
  for (int i = 0; i < 10; ++i) {
    auto r = c.Query("INSERT INTO kv VALUES (" + std::to_string(i) + ", 'v" +
                     std::to_string(i) + "')");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r.value().affected, 1);
  }
  auto wire = c.Query("SELECT k, v FROM kv WHERE k >= 5 ORDER BY k");
  ASSERT_TRUE(wire.ok()) << wire.status();
  auto local = server_db_->Execute("SELECT k, v FROM kv WHERE k >= 5 ORDER BY k");
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(wire.value().rows.size(), local.value().rows.size());
  for (size_t i = 0; i < wire.value().rows.size(); ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_TRUE(wire.value().rows[i][j] == local.value().rows[i][j]);
    }
  }
  ASSERT_TRUE(c.Query("DROP TABLE kv").status().ok());
}

TEST_F(ServerE2ETest, XMarkQueriesMatchEmbeddedOnAllSixMappings) {
  Client c = Connect();
  const auto queries = workload::AuctionQueries();
  ASSERT_EQ(queries.size(), 12u);
  for (const auto& [name, s] : *stored_) {
    for (const auto& q : queries) {
      auto wire = c.XPath(s.doc, name, q.xpath);
      ASSERT_TRUE(wire.ok()) << name << "/" << q.id << ": " << wire.status();
      // Byte-identical, including order: both sides run the same evaluator.
      EXPECT_EQ(wire.value(), Embedded(name, q.xpath)) << name << "/" << q.id;
    }
  }
}

TEST_F(ServerE2ETest, PreparedStatementsOverTheWire) {
  Client c = Connect();
  ASSERT_TRUE(c.Query("CREATE TABLE nums (n INTEGER)").status().ok());
  auto ins = c.Prepare("INSERT INTO nums VALUES (?)");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(ins.value().param_count, 1u);
  for (int64_t i = 1; i <= 20; ++i) {
    auto r = c.ExecPrepared(ins.value().stmt_id, {rdb::Value(i)});
    ASSERT_TRUE(r.ok()) << r.status();
  }
  auto sel = c.Prepare("SELECT n FROM nums WHERE n > ? ORDER BY n");
  ASSERT_TRUE(sel.ok());
  auto rows = c.ExecPrepared(sel.value().stmt_id, {rdb::Value(int64_t{17})});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.value().rows.size(), 3u);
  EXPECT_EQ(rows.value().rows[0][0].AsInt(), 18);
  // Wrong arity is an execution error, not a connection killer.
  EXPECT_FALSE(c.ExecPrepared(sel.value().stmt_id, {}).ok());
  EXPECT_TRUE(c.Ping().ok());
  // Close, then use-after-close is an error; unknown ids likewise.
  ASSERT_TRUE(c.CloseStmt(sel.value().stmt_id).ok());
  EXPECT_FALSE(
      c.ExecPrepared(sel.value().stmt_id, {rdb::Value(int64_t{1})}).ok());
  EXPECT_FALSE(c.ExecPrepared(9999, {}).ok());
  EXPECT_TRUE(c.Ping().ok());
  ASSERT_TRUE(c.Query("DROP TABLE nums").status().ok());
}

TEST_F(ServerE2ETest, PreparedStatementsHitThePlanCache) {
  Client c = Connect();
  ASSERT_TRUE(c.Query("CREATE TABLE pc (a INTEGER)").status().ok());
  ASSERT_TRUE(c.Query("INSERT INTO pc VALUES (1)").status().ok());
  // First Prepare populates the shared cache; every further Prepare of the
  // same text — same connection or a different one — is a cache hit.
  auto h = c.Prepare("SELECT a FROM pc WHERE a = ?");
  ASSERT_TRUE(h.ok());
  auto before = server_db_->plan_cache().stats();
  Client c2 = Connect();
  for (int i = 0; i < 4; ++i) {
    auto again = (i % 2 == 0 ? c : c2).Prepare("SELECT a FROM pc WHERE a = ?");
    ASSERT_TRUE(again.ok());
    ASSERT_TRUE(
        c.ExecPrepared(h.value().stmt_id, {rdb::Value(int64_t{1})}).ok());
  }
  auto after = server_db_->plan_cache().stats();
  EXPECT_GE(after.hits, before.hits + 4);
  ASSERT_TRUE(c.Query("DROP TABLE pc").status().ok());
}

TEST_F(ServerE2ETest, ExecutionErrorsKeepTheConnectionAlive) {
  Client c = Connect();
  auto r = c.Query("SELECT nope FROM missing_table");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().message().empty());
  // The connection survives execution errors...
  EXPECT_TRUE(c.Ping().ok());
  auto x = c.XPath(1, "no_such_mapping", "//a");
  EXPECT_FALSE(x.ok());
  auto bad_path = c.XPath(1, "edge", "//[[[");
  EXPECT_FALSE(bad_path.ok());
  EXPECT_TRUE(c.Ping().ok());
  // ...and so does a well-framed request whose payload fails to decode:
  // that is a statement error, not a frame-level violation. Raw frames so
  // the client's automatic seq assignment stays out of the way.
  Client raw = Connect();
  ASSERT_TRUE(
      raw.SendRaw(EncodeFrame(Frame{MsgType::kExecPrepared, 1, "xy"})).ok());
  auto f = raw.ReadResponse();
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f.value().type, MsgType::kError);
  EXPECT_EQ(f.value().seq, 1u);
  ASSERT_TRUE(raw.SendRaw(EncodeFrame(Frame{MsgType::kPing, 2, ""})).ok());
  auto pong = raw.ReadResponse();
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong.value().type, MsgType::kPong);
}

TEST_F(ServerE2ETest, ProtocolViolationsCloseTheConnection) {
  struct Case {
    const char* what;
    std::string bytes;
  };
  std::vector<Case> cases;
  // Oversized frame: header claims more than max_frame_bytes.
  Frame big{MsgType::kQuery, 1, ""};
  std::string oversized = EncodeFrame(big);
  oversized[3] = '\x7F';  // length high byte -> ~2 GB
  cases.push_back({"oversized", oversized});
  // Unknown type byte.
  std::string unknown = EncodeFrame(Frame{MsgType::kPing, 1, ""});
  unknown[4] = '\x42';
  cases.push_back({"unknown type", unknown});
  // Response type sent as a request.
  cases.push_back({"response type", EncodeFrame(Frame{MsgType::kPong, 1, ""})});
  // Out-of-sequence seq (first request must be seq 1).
  cases.push_back({"bad seq", EncodeFrame(Frame{MsgType::kPing, 99, ""})});
  // Empty payload on a type that requires one.
  cases.push_back({"empty query", EncodeFrame(Frame{MsgType::kQuery, 1, ""})});

  for (const auto& kase : cases) {
    Client c = Connect();
    ASSERT_TRUE(c.SendRaw(kase.bytes).ok()) << kase.what;
    // One ERROR response (when the violation is expressible as a frame),
    // then EOF. ReadResponse eventually fails either way.
    bool saw_error = false;
    for (int i = 0; i < 2; ++i) {
      auto f = c.ReadResponse();
      if (!f.ok()) break;
      EXPECT_EQ(f.value().type, MsgType::kError) << kase.what;
      saw_error = true;
      // The next read must hit EOF: the server closed after the write.
      auto eof = c.ReadResponse();
      EXPECT_FALSE(eof.ok()) << kase.what;
      break;
    }
    (void)saw_error;
  }
  // Fresh connections still work afterwards.
  Client ok = Connect();
  EXPECT_TRUE(ok.Ping().ok());
}

TEST_F(ServerE2ETest, SessionsVirtualTableSeesTheServingSession) {
  Client c = Connect();
  auto r = c.Query("SELECT id, peer, state, statements FROM xmlrdb_sessions");
  ASSERT_TRUE(r.ok()) << r.status();
  // At least the session running this very query, which must be active.
  ASSERT_GE(r.value().rows.size(), 1u);
  bool found_active = false;
  for (const auto& row : r.value().rows) {
    if (row[2].AsString() == "active") found_active = true;
    EXPECT_NE(row[1].AsString().find("127.0.0.1"), std::string::npos);
  }
  EXPECT_TRUE(found_active);
}

TEST_F(ServerE2ETest, StatsCountTraffic) {
  auto before = server_->stats();
  Client c = Connect();
  ASSERT_TRUE(c.Ping().ok());
  auto r = c.Query("SELECT COUNT(*) FROM xmlrdb_tables");
  ASSERT_TRUE(r.ok()) << r.status();
  c.Close();
  auto after = server_->stats();
  EXPECT_GT(after.sessions_opened, before.sessions_opened);
  EXPECT_GT(after.requests, before.requests);
}

// -- protocol v2: hello negotiation + wire tracing -------------------------

TEST_F(ServerE2ETest, HelloNegotiatesVersion2) {
  Client c = Connect();
  EXPECT_EQ(c.negotiated_version(), 1u);
  ASSERT_TRUE(c.Hello().ok());
  EXPECT_EQ(c.negotiated_version(), 2u);
  // The connection keeps working normally after negotiation.
  EXPECT_TRUE(c.Ping().ok());
}

TEST_F(ServerE2ETest, TracingWithoutHelloIsRejectedClientSide) {
  Client c = Connect();
  c.set_tracing(true);
  auto r = c.Query("SELECT COUNT(*) FROM xmlrdb_tables");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Hello"), std::string::npos);
}

TEST_F(ServerE2ETest, TracedQueriesEchoServerTiming) {
  Client c = Connect();
  ASSERT_TRUE(c.Hello().ok());
  c.set_tracing(true);
  EXPECT_FALSE(c.last_server_timing().valid);

  auto r = c.Query("SELECT COUNT(*) FROM xmlrdb_tables");
  ASSERT_TRUE(r.ok()) << r.status();
  const ServerTiming& timing = c.last_server_timing();
  EXPECT_TRUE(timing.valid);
  EXPECT_EQ(timing.request_id, c.last_request_id());
  EXPECT_GE(timing.exec_us, 0u);

  // The fast-path PING echo carries the request id too.
  ASSERT_TRUE(c.Ping().ok());
  EXPECT_EQ(c.last_server_timing().request_id, c.last_request_id());

  // Tracing off again: plain frames, timing no longer updates.
  c.set_tracing(false);
  uint64_t last = c.last_server_timing().request_id;
  ASSERT_TRUE(c.Query("SELECT COUNT(*) FROM xmlrdb_tables").ok());
  EXPECT_EQ(c.last_server_timing().request_id, last);
}

TEST_F(ServerE2ETest, RequestIdRoundTripsIntoStatementLogAndTrace) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Clear();
  collector.set_enabled(true);

  Client c = Connect();
  ASSERT_TRUE(c.Hello().ok());
  c.set_tracing(true);
  c.set_next_request_id(777001);
  ASSERT_TRUE(c.Query("SELECT COUNT(*) FROM xmlrdb_tables").ok());
  EXPECT_EQ(c.last_request_id(), 777001u);
  collector.set_enabled(false);

  // The wire request id reached the statement log of the serving database...
  bool in_log = false;
  for (const auto& e : server_db_->statement_log().Entries()) {
    if (e.request_id == 777001) in_log = true;
  }
  EXPECT_TRUE(in_log);

  // ...and every span recorded under the statement carries it.
  bool in_trace = false;
  for (const auto& event : collector.Snapshot()) {
    if (event.request_id == 777001) in_trace = true;
  }
  EXPECT_TRUE(in_trace);
  collector.Clear();
}

// -- dedicated small servers for admission-control behaviour ---------------

TEST(ServerAdmissionTest, PipelineOverflowIsShedWithBusy) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_in_flight = 1;
  cfg.session_queue_cap = 2;
  Server server(&db, cfg);
  ASSERT_TRUE(server.Start().ok());
  {
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
    // Blast a deep pipeline; with a queue cap of 2 most must be shed.
    constexpr int kBurst = 64;
    std::vector<uint32_t> seqs;
    for (int i = 0; i < kBurst; ++i) {
      auto s = c.SendQuery("SELECT COUNT(*) FROM t WHERE a >= 0");
      ASSERT_TRUE(s.ok());
      seqs.push_back(s.value());
    }
    int ok = 0, busy = 0;
    std::vector<uint32_t> seen;
    for (int i = 0; i < kBurst; ++i) {
      auto f = c.ReadResponse();
      ASSERT_TRUE(f.ok()) << f.status();
      seen.push_back(f.value().seq);
      if (Client::IsBusy(f.value())) {
        ++busy;
      } else {
        ASSERT_EQ(f.value().type, MsgType::kOkResult);
        ++ok;
      }
    }
    EXPECT_EQ(ok + busy, kBurst);
    EXPECT_GT(busy, 0) << "queue cap never shed load";
    EXPECT_GT(ok, 0) << "everything was shed";
    // Every request got exactly one response, matched by seq.
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, seqs);
    // The connection is still healthy after shedding.
    EXPECT_TRUE(c.Ping().ok());
    EXPECT_GT(server.stats().busy_rejected, 0);
  }
  server.Stop();
}

TEST(ServerAdmissionTest, SessionCapRejectsExtraConnections) {
  rdb::Database db;
  ServerConfig cfg;
  cfg.max_sessions = 1;
  Server server(&db, cfg);
  ASSERT_TRUE(server.Start().ok());
  {
    Client first;
    ASSERT_TRUE(first.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(first.Ping().ok());
    // Second connection is accepted at the TCP level, answered with one
    // BUSY (seq 0) frame, and closed.
    Client second;
    ASSERT_TRUE(second.Connect("127.0.0.1", server.port()).ok());
    auto f = second.ReadResponse();
    ASSERT_TRUE(f.ok()) << f.status();
    EXPECT_TRUE(Client::IsBusy(f.value()));
    EXPECT_EQ(f.value().seq, 0u);
    auto eof = second.ReadResponse();
    EXPECT_FALSE(eof.ok());
    // The first session is unaffected.
    EXPECT_TRUE(first.Ping().ok());
  }
  server.Stop();
}

TEST(ServerLifecycleTest, StopIsIdempotentAndRestartableConfig) {
  rdb::Database db;
  Server server(&db, {});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  uint16_t port = server.port();
  EXPECT_NE(port, 0);
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_FALSE(server.running());
  // The session provider must be unregistered: the virtual table now
  // reports no sessions instead of touching a dead server.
  auto r = db.Execute("SELECT COUNT(*) FROM xmlrdb_sessions");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 0);
}

TEST(ServerLifecycleTest, StopWithIdleConnectionsDoesNotHang) {
  rdb::Database db;
  Server server(&db, {});
  ASSERT_TRUE(server.Start().ok());
  std::vector<Client> idle(8);
  for (auto& c : idle) {
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(c.Ping().ok());
  }
  server.Stop();  // must tear down the idle sockets and return
  for (auto& c : idle) {
    EXPECT_FALSE(c.Ping().ok());  // server side is gone
  }
}

}  // namespace
}  // namespace xmlrdb::net
