// Rebalance tests: the consistent-hash movement bound (adding a shard to an
// N-shard ring moves ~1/(N+1) of the keys, all TO the new shard), the
// router's live migration honoring that bound, and queries racing AddShard
// never observing a missing or duplicated document.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/hash_ring.h"
#include "shard/shard_router.h"
#include "shred/registry.h"
#include "workload/random_tree.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

using shred::DocId;
using shred::Mapping;

shard::MappingFactory EdgeFactory() {
  return []() -> Result<std::unique_ptr<Mapping>> {
    return shred::CreateMapping("edge");
  };
}

/// Distinct small documents: seed-varied random trees, so every document
/// answers queries differently and a cross-wired migration is visible.
std::unique_ptr<xml::Document> SmallDoc(uint64_t seed) {
  workload::RandomTreeConfig cfg;
  cfg.seed = seed;
  return workload::GenerateRandomTree(cfg);
}

TEST(HashRingRebalanceTest, AddShardMovesBoundedFractionToNewShardOnly) {
  constexpr int kDocs = 2000;
  for (int n : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    shard::HashRing old_ring;
    for (int s = 0; s < n; ++s) old_ring.AddShard(s);
    shard::HashRing new_ring;
    for (int s = 0; s <= n; ++s) new_ring.AddShard(s);

    int moved = 0;
    for (int64_t doc = 1; doc <= kDocs; ++doc) {
      const int before = old_ring.OwnerOf(doc);
      const int after = new_ring.OwnerOf(doc);
      if (before == after) continue;
      ++moved;
      // The consistent-hash guarantee: every reassignment targets the new
      // shard; keys never shuffle between pre-existing shards.
      EXPECT_EQ(after, n) << "doc " << doc << " moved " << before << " -> "
                          << after;
    }
    // ~1/(N+1) of the keys move; allow 2x slack for hash-spread variance.
    EXPECT_GT(moved, 0);
    EXPECT_LE(moved, 2 * kDocs / (n + 1))
        << moved << " of " << kDocs << " docids moved";
  }
}

TEST(ShardRebalanceTest, AddShardMigratesExactlyTheRingReassignedDocs) {
  constexpr int kDocs = 40;
  shard::ShardRouterOptions opts;
  opts.shards = 3;
  auto router = shard::ShardRouter::Create(EdgeFactory(), opts);
  ASSERT_TRUE(router.ok()) << router.status();

  std::vector<DocId> ids;
  std::map<DocId, std::vector<std::string>> baseline;
  auto path = xpath::ParseXPath("//t1");
  ASSERT_TRUE(path.ok());
  for (int i = 0; i < kDocs; ++i) {
    auto doc = SmallDoc(i + 1);
    auto id = router.value()->Store(*doc);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
    auto values = router.value()->EvalPathStrings(path.value(), id.value());
    ASSERT_TRUE(values.ok()) << values.status();
    baseline[id.value()] = values.value();
  }

  std::map<DocId, int> owner_before;
  for (DocId id : ids) owner_before[id] = router.value()->OwnerOf(id);

  // Predict the migration set with a scratch ring built exactly like the
  // router's (same default virtual-node count).
  shard::HashRing scratch(opts.virtual_nodes);
  for (int s = 0; s < 4; ++s) scratch.AddShard(s);

  ASSERT_TRUE(router.value()->AddShard().ok());
  ASSERT_EQ(router.value()->num_shards(), 4);

  int moved = 0;
  for (DocId id : ids) {
    const int after = router.value()->OwnerOf(id);
    if (after != owner_before[id]) {
      ++moved;
      EXPECT_EQ(after, 3) << "doc " << id << " moved to an old shard";
    }
    // Exactly the ring-reassigned documents moved, nothing else.
    EXPECT_EQ(after, scratch.OwnerOf(id) == 3 ? 3 : owner_before[id])
        << "doc " << id;
    // Every document still answers identically from wherever it lives.
    auto values = router.value()->EvalPathStrings(path.value(), id);
    ASSERT_TRUE(values.ok()) << values.status();
    EXPECT_EQ(values.value(), baseline[id]) << "doc " << id;
  }
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, 2 * kDocs / 4) << moved << " of " << kDocs << " docs moved";

  // The corpus is intact: fan-out sees every document exactly once.
  auto merged = router.value()->EvalPathStringsAll(path.value());
  ASSERT_TRUE(merged.ok()) << merged.status();
  ASSERT_EQ(merged.value().size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(merged.value()[i].doc, ids[i]);
  }
}

TEST(ShardRebalanceTest, QueriesConcurrentWithAddShardSeeEveryDocOnce) {
  constexpr int kDocs = 24;
  shard::ShardRouterOptions opts;
  opts.shards = 2;
  auto router = shard::ShardRouter::Create(EdgeFactory(), opts);
  ASSERT_TRUE(router.ok()) << router.status();

  std::vector<DocId> ids;
  std::map<DocId, std::vector<std::string>> baseline;
  auto path = xpath::ParseXPath("//t1");
  ASSERT_TRUE(path.ok());
  for (int i = 0; i < kDocs; ++i) {
    auto doc = SmallDoc(100 + i);
    auto id = router.value()->Store(*doc);
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.value());
    auto values = router.value()->EvalPathStrings(path.value(), id.value());
    ASSERT_TRUE(values.ok()) << values.status();
    baseline[id.value()] = values.value();
  }

  // Readers hammer routed lookups and fan-outs while the main thread grows
  // the ring. A document observed missing (NotFound), answering wrongly, or
  // counted twice in a fan-out is a migration atomicity bug.
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      size_t i = r;  // staggered start: threads disagree on current doc
      while (!stop.load(std::memory_order_relaxed)) {
        const DocId id = ids[i++ % ids.size()];
        auto values = router.value()->EvalPathStrings(path.value(), id);
        if (!values.ok() || values.value() != baseline[id]) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 8 == 0) {
          auto merged = router.value()->EvalPathStringsAll(path.value());
          if (!merged.ok() ||
              merged.value().size() != static_cast<size_t>(kDocs)) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  ASSERT_TRUE(router.value()->AddShard().ok());
  ASSERT_TRUE(router.value()->AddShard().ok());
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
  ASSERT_EQ(router.value()->num_shards(), 4);

  // Post-rebalance: still one copy of everything, all answers unchanged.
  for (DocId id : ids) {
    auto values = router.value()->EvalPathStrings(path.value(), id);
    ASSERT_TRUE(values.ok()) << values.status();
    EXPECT_EQ(values.value(), baseline[id]) << "doc " << id;
  }
}

}  // namespace
}  // namespace xmlrdb
