// Sharded-serving differential tests: a ShardRouter at 1, 2, and 4 shards
// must answer exactly like a single engine holding the same corpus — for
// every mapping, every Q1–Q12 auction query, byte-identical result vectors
// (same values, same order), and fan-out results merged in document order.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "shard/shard_router.h"
#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/dtd.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

using shred::DocId;
using shred::Mapping;

/// All six mappings: the five generic ones plus the DTD-driven inline
/// mapping, built against the XMark DTD.
std::vector<std::string> ShardMappingNames() {
  std::vector<std::string> names = shred::GenericMappingNames();
  names.push_back("inline");
  return names;
}

std::unique_ptr<Mapping> MustMapping(const std::string& name) {
  if (name == "inline") {
    auto dtd = xml::ParseDtd(workload::XMarkDtd());
    EXPECT_TRUE(dtd.ok()) << dtd.status();
    if (!dtd.ok()) return nullptr;
    auto m = shred::InlineMapping::Create(*dtd.value(), "site");
    EXPECT_TRUE(m.ok()) << m.status();
    return m.ok() ? std::move(m).value() : nullptr;
  }
  auto m = shred::CreateMapping(name);
  EXPECT_TRUE(m.ok()) << m.status();
  return m.ok() ? std::move(m).value() : nullptr;
}

shard::MappingFactory FactoryFor(const std::string& name) {
  return [name]() -> Result<std::unique_ptr<Mapping>> {
    auto m = MustMapping(name);
    if (m == nullptr) {
      return Status::Internal("mapping construction failed: " + name);
    }
    return m;
  };
}

/// The corpus: XMark documents at distinct scales, so every document gives
/// distinct answers and ordering mistakes cannot cancel out.
const std::vector<std::unique_ptr<xml::Document>>& Corpus() {
  static const auto* corpus = [] {
    auto* docs = new std::vector<std::unique_ptr<xml::Document>>();
    for (double scale : {0.01, 0.02, 0.03, 0.015}) {
      workload::XMarkConfig cfg;
      cfg.scale = scale;
      docs->push_back(workload::GenerateXMark(cfg));
    }
    return docs;
  }();
  return *corpus;
}

std::vector<std::string> SingleEngineStrings(Mapping* mapping,
                                             rdb::Database* db, DocId doc,
                                             const std::string& xpath) {
  auto path = xpath::ParseXPath(xpath);
  EXPECT_TRUE(path.ok()) << path.status();
  auto values = shred::EvalPathStrings(path.value(), mapping, db, doc);
  EXPECT_TRUE(values.ok()) << mapping->name() << ": " << values.status();
  return values.ok() ? values.value() : std::vector<std::string>{};
}

/// One single-engine store of the corpus: the oracle the router is diffed
/// against.
struct SingleEngine {
  std::unique_ptr<Mapping> mapping;
  rdb::Database db;
  std::vector<DocId> ids;  ///< ids[i] holds Corpus()[i]
};

std::unique_ptr<SingleEngine> BuildSingleEngine(const std::string& name) {
  auto engine = std::make_unique<SingleEngine>();
  engine->mapping = MustMapping(name);
  if (engine->mapping == nullptr) return nullptr;
  EXPECT_TRUE(engine->mapping->Initialize(&engine->db).ok());
  for (const auto& doc : Corpus()) {
    auto id = engine->mapping->Store(*doc, &engine->db);
    EXPECT_TRUE(id.ok()) << id.status();
    if (!id.ok()) return nullptr;
    engine->ids.push_back(id.value());
  }
  return engine;
}

class ShardDifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardDifferentialTest, RoutedQueriesMatchSingleEngine) {
  const std::string name = GetParam();
  auto engine = BuildSingleEngine(name);
  ASSERT_NE(engine, nullptr);

  for (int shards : {1, 2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    shard::ShardRouterOptions opts;
    opts.shards = shards;
    auto router = shard::ShardRouter::Create(FactoryFor(name), opts);
    ASSERT_TRUE(router.ok()) << router.status();
    std::vector<DocId> routed_ids;
    for (const auto& doc : Corpus()) {
      auto id = router.value()->Store(*doc);
      ASSERT_TRUE(id.ok()) << id.status();
      routed_ids.push_back(id.value());
    }

    for (const auto& q : workload::AuctionQueries()) {
      auto path = xpath::ParseXPath(q.xpath);
      ASSERT_TRUE(path.ok()) << path.status();
      for (size_t i = 0; i < routed_ids.size(); ++i) {
        auto routed = router.value()->EvalPathStrings(path.value(),
                                                      routed_ids[i]);
        ASSERT_TRUE(routed.ok()) << q.id << ": " << routed.status();
        // Exact vector equality: values AND their document order.
        EXPECT_EQ(routed.value(),
                  SingleEngineStrings(engine->mapping.get(), &engine->db,
                                      engine->ids[i], q.xpath))
            << "query=" << q.id << " (" << q.xpath << ") doc#" << i;
      }
    }
  }
}

TEST_P(ShardDifferentialTest, FanOutMergesInDocumentOrder) {
  const std::string name = GetParam();
  auto engine = BuildSingleEngine(name);
  ASSERT_NE(engine, nullptr);

  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    shard::ShardRouterOptions opts;
    opts.shards = shards;
    auto router = shard::ShardRouter::Create(FactoryFor(name), opts);
    ASSERT_TRUE(router.ok()) << router.status();
    std::vector<DocId> routed_ids;
    for (const auto& doc : Corpus()) {
      auto id = router.value()->Store(*doc);
      ASSERT_TRUE(id.ok()) << id.status();
      routed_ids.push_back(id.value());
    }

    for (const std::string& xpath :
         {std::string("//item/name"), std::string("//person/@id"),
          std::string("/site/regions//item/location")}) {
      auto path = xpath::ParseXPath(xpath);
      ASSERT_TRUE(path.ok()) << path.status();
      auto merged = router.value()->EvalPathStringsAll(path.value());
      ASSERT_TRUE(merged.ok()) << merged.status();
      ASSERT_EQ(merged.value().size(), routed_ids.size());
      for (size_t i = 0; i < merged.value().size(); ++i) {
        // Ascending docid across the corpus = document order (routed ids
        // are assigned in store order).
        EXPECT_EQ(merged.value()[i].doc, routed_ids[i]);
        EXPECT_EQ(merged.value()[i].values,
                  SingleEngineStrings(engine->mapping.get(), &engine->db,
                                      engine->ids[i], xpath))
            << "xpath=" << xpath << " doc#" << i;
      }
    }
  }
}

TEST_P(ShardDifferentialTest, SingleDocumentOpsRouteToExactlyOneShard) {
  const std::string name = GetParam();
  shard::ShardRouterOptions opts;
  opts.shards = 4;
  auto router = shard::ShardRouter::Create(FactoryFor(name), opts);
  ASSERT_TRUE(router.ok()) << router.status();
  auto id = router.value()->Store(*Corpus()[0]);
  ASSERT_TRUE(id.ok()) << id.status();
  const int owner = router.value()->OwnerOf(id.value());
  ASSERT_GE(owner, 0);

  auto before = router.value()->SnapshotShards();
  auto path = xpath::ParseXPath("//item/name");
  ASSERT_TRUE(path.ok());
  constexpr int kQueries = 5;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(
        router.value()->EvalPathStrings(path.value(), id.value()).ok());
  }
  auto after = router.value()->SnapshotShards();
  ASSERT_EQ(before.size(), after.size());
  for (size_t s = 0; s < after.size(); ++s) {
    const int64_t delta = after[s].requests - before[s].requests;
    EXPECT_EQ(delta, after[s].shard == owner ? kQueries : 0)
        << "shard " << after[s].shard;
    EXPECT_EQ(after[s].errors, 0) << "shard " << after[s].shard;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMappings, ShardDifferentialTest,
                         ::testing::ValuesIn(ShardMappingNames()),
                         [](const auto& info) { return info.param; });

// SELECT fan-out through the prepared-statement layer: the merged relation
// must be row-identical to the single engine's, and rows must come back in
// global document order when the statement projects a docid column.
TEST(ShardExecuteAllTest, MergedSelectMatchesSingleEngine) {
  auto engine = BuildSingleEngine("edge");
  ASSERT_NE(engine, nullptr);
  shard::ShardRouterOptions opts;
  opts.shards = 4;
  auto router = shard::ShardRouter::Create(FactoryFor("edge"), opts);
  ASSERT_TRUE(router.ok()) << router.status();
  for (const auto& doc : Corpus()) {
    ASSERT_TRUE(router.value()->Store(*doc).ok());
  }

  const std::string sql =
      "SELECT docid, source, ordinal, name FROM edge WHERE kind = 'elem'";
  auto single = engine->db.Execute(sql);
  ASSERT_TRUE(single.ok()) << single.status();
  auto merged = router.value()->ExecuteAll(sql);
  ASSERT_TRUE(merged.ok()) << merged.status();

  ASSERT_EQ(merged.value().rows.size(), single.value().rows.size());
  for (size_t r = 0; r < merged.value().rows.size(); ++r) {
    const auto& a = merged.value().rows[r];
    const auto& b = single.value().rows[r];
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c].Compare(b[c]), 0) << "row " << r << " col " << c;
    }
  }

  // Without a docid column the partials concatenate: one COUNT row per
  // shard, summing to the single-engine total.
  const std::string count_sql = "SELECT COUNT(*) FROM edge";
  auto single_count = engine->db.Execute(count_sql);
  ASSERT_TRUE(single_count.ok());
  auto merged_count = router.value()->ExecuteAll(count_sql);
  ASSERT_TRUE(merged_count.ok());
  ASSERT_EQ(merged_count.value().rows.size(), 4u);
  int64_t total = 0;
  for (const auto& row : merged_count.value().rows) {
    total += row[0].AsInt();
  }
  ASSERT_EQ(single_count.value().rows.size(), 1u);
  EXPECT_EQ(total, single_count.value().rows[0][0].AsInt());
}

}  // namespace
}  // namespace xmlrdb
