// Update tests across all generic mappings: subtree insert/append and
// subtree delete must leave the store equal to the equivalently-mutated DOM.

#include <gtest/gtest.h>

#include "shred/evaluator.h"
#include "shred/registry.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

using shred::DocId;
using shred::Mapping;

class UpdateTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto m = shred::CreateMapping(GetParam());
    ASSERT_TRUE(m.ok());
    mapping_ = std::move(m).value();
    ASSERT_TRUE(mapping_->Initialize(&db_).ok());
    auto doc = xml::Parse(
        "<shop><item id=\"1\"><name>apple</name><price>3</price></item>"
        "<item id=\"2\"><name>pear</name><price>5</price></item>"
        "<note>open</note></shop>");
    ASSERT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    auto stored = mapping_->Store(*doc_, &db_);
    ASSERT_TRUE(stored.ok()) << stored.status();
    id_ = stored.value();
  }

  /// Node set for an xpath against the store.
  shred::NodeSet Find(const std::string& xpath) {
    auto p = xpath::ParseXPath(xpath);
    EXPECT_TRUE(p.ok());
    auto nodes = shred::EvalPath(p.value(), mapping_.get(), &db_, id_);
    EXPECT_TRUE(nodes.ok()) << nodes.status();
    return nodes.ok() ? nodes.value() : shred::NodeSet{};
  }

  std::string Stored() {
    auto rebuilt = mapping_->Reconstruct(&db_, id_);
    EXPECT_TRUE(rebuilt.ok()) << rebuilt.status();
    return rebuilt.ok() ? xml::Canonicalize(*rebuilt.value()) : "";
  }

  std::unique_ptr<Mapping> mapping_;
  std::unique_ptr<xml::Document> doc_;
  rdb::Database db_;
  DocId id_ = 0;
};

TEST_P(UpdateTest, AppendSubtreeUnderRoot) {
  auto frag = xml::ParseFragment(
      "<item id=\"3\"><name>plum</name><price>4</price></item>");
  ASSERT_TRUE(frag.ok());
  auto root = mapping_->RootElement(&db_, id_);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(
      mapping_->InsertSubtree(&db_, id_, root.value(), *frag.value()).ok());

  // Mirror the mutation on the DOM and compare canonical forms.
  doc_->root()->AddChild(frag.value()->Clone());
  EXPECT_EQ(xml::Canonicalize(*doc_), Stored());
  EXPECT_EQ(Find("/shop/item").size(), 3u);
  EXPECT_EQ(Find("/shop/item[@id = '3']/name").size(), 1u);
}

TEST_P(UpdateTest, AppendNestedSubtree) {
  auto frag = xml::ParseFragment("<tag>fruit</tag>");
  ASSERT_TRUE(frag.ok());
  shred::NodeSet items = Find("/shop/item[@id = '2']");
  ASSERT_EQ(items.size(), 1u);
  ASSERT_TRUE(mapping_->InsertSubtree(&db_, id_, items[0], *frag.value()).ok());
  EXPECT_EQ(Find("/shop/item/tag").size(), 1u);
  auto strs = shred::EvalPathStrings(
      xpath::ParseXPath("/shop/item[@id = '2']/tag").value(), mapping_.get(),
      &db_, id_);
  ASSERT_TRUE(strs.ok());
  ASSERT_EQ(strs.value().size(), 1u);
  EXPECT_EQ(strs.value()[0], "fruit");
}

TEST_P(UpdateTest, DeleteSubtree) {
  shred::NodeSet items = Find("/shop/item[@id = '1']");
  ASSERT_EQ(items.size(), 1u);
  ASSERT_TRUE(mapping_->DeleteSubtree(&db_, id_, items[0]).ok());

  auto doc = xml::Parse(
      "<shop><item id=\"2\"><name>pear</name><price>5</price></item>"
      "<note>open</note></shop>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(xml::Canonicalize(*doc.value()), Stored());
  EXPECT_EQ(Find("/shop/item").size(), 1u);
  EXPECT_EQ(Find("//name").size(), 1u);
}

TEST_P(UpdateTest, DeleteThenInsertKeepsConsistency) {
  shred::NodeSet notes = Find("/shop/note");
  ASSERT_EQ(notes.size(), 1u);
  ASSERT_TRUE(mapping_->DeleteSubtree(&db_, id_, notes[0]).ok());
  EXPECT_EQ(Find("/shop/note").size(), 0u);

  auto frag = xml::ParseFragment("<note>closed</note>");
  ASSERT_TRUE(frag.ok());
  auto root = mapping_->RootElement(&db_, id_);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(
      mapping_->InsertSubtree(&db_, id_, root.value(), *frag.value()).ok());
  auto strs = shred::EvalPathStrings(xpath::ParseXPath("/shop/note").value(),
                                     mapping_.get(), &db_, id_);
  ASSERT_TRUE(strs.ok());
  ASSERT_EQ(strs.value().size(), 1u);
  EXPECT_EQ(strs.value()[0], "closed");
}

TEST_P(UpdateTest, ManySequentialInserts) {
  auto root = mapping_->RootElement(&db_, id_);
  ASSERT_TRUE(root.ok());
  for (int i = 10; i < 30; ++i) {
    auto frag = xml::ParseFragment("<item id=\"" + std::to_string(i) +
                                   "\"><name>n" + std::to_string(i) +
                                   "</name></item>");
    ASSERT_TRUE(frag.ok());
    ASSERT_TRUE(
        mapping_->InsertSubtree(&db_, id_, root.value(), *frag.value()).ok())
        << "i=" << i;
  }
  EXPECT_EQ(Find("/shop/item").size(), 22u);
  // Structure stays queryable and reconstructable.
  EXPECT_EQ(Find("//name").size(), 22u);
  EXPECT_FALSE(Stored().empty());
}

INSTANTIATE_TEST_SUITE_P(AllMappings, UpdateTest,
                         ::testing::ValuesIn(shred::GenericMappingNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace xmlrdb
