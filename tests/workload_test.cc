#include <gtest/gtest.h>

#include "workload/biblio.h"
#include "workload/queries.h"
#include "workload/random_tree.h"
#include "workload/xmark.h"
#include "xml/dtd.h"
#include "xml/serializer.h"
#include "xml/stats.h"

namespace xmlrdb::workload {
namespace {

TEST(RandomTreeTest, DeterministicInSeed) {
  RandomTreeConfig cfg;
  cfg.seed = 77;
  auto a = GenerateRandomTree(cfg);
  auto b = GenerateRandomTree(cfg);
  EXPECT_EQ(xml::Canonicalize(*a), xml::Canonicalize(*b));
  cfg.seed = 78;
  auto c = GenerateRandomTree(cfg);
  EXPECT_NE(xml::Canonicalize(*a), xml::Canonicalize(*c));
}

TEST(RandomTreeTest, RespectsDepthBound) {
  RandomTreeConfig cfg;
  cfg.max_depth = 3;
  for (uint64_t s = 0; s < 5; ++s) {
    cfg.seed = s;
    auto doc = GenerateRandomTree(cfg);
    xml::DocStats st = xml::ComputeStats(*doc->root());
    EXPECT_LE(st.max_depth, 3u);
  }
}

TEST(XMarkTest, ScaleControlsSize) {
  XMarkConfig small;
  small.scale = 0.05;
  XMarkConfig big;
  big.scale = 0.5;
  auto sdoc = GenerateXMark(small);
  auto bdoc = GenerateXMark(big);
  xml::DocStats ss = xml::ComputeStats(*sdoc->root());
  xml::DocStats bs = xml::ComputeStats(*bdoc->root());
  EXPECT_GT(bs.element_count, ss.element_count * 4);
}

TEST(XMarkTest, StructureMatchesVocabulary) {
  XMarkConfig cfg;
  cfg.scale = 0.1;
  auto doc = GenerateXMark(cfg);
  const xml::Node* site = doc->root();
  ASSERT_EQ(site->name(), "site");
  EXPECT_NE(site->FindChildElement("regions"), nullptr);
  EXPECT_NE(site->FindChildElement("people"), nullptr);
  EXPECT_NE(site->FindChildElement("open_auctions"), nullptr);
  EXPECT_NE(site->FindChildElement("closed_auctions"), nullptr);
  xml::DocStats st = xml::ComputeStats(*site);
  EXPECT_GT(st.tag_counts.at("item"), 0u);
  EXPECT_GT(st.tag_counts.at("person"), 0u);
}

TEST(XMarkTest, DtdParsesAndCoversVocabulary) {
  auto dtd = xml::ParseDtd(XMarkDtd());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = GenerateXMark(cfg);
  xml::DocStats st = xml::ComputeStats(*doc->root());
  for (const auto& [tag, count] : st.tag_counts) {
    (void)count;
    EXPECT_NE(dtd.value()->FindElement(tag), nullptr)
        << "generator emits undeclared element " << tag;
  }
}

TEST(XMarkTest, ReferencesPointAtExistingIds) {
  XMarkConfig cfg;
  cfg.scale = 0.1;
  auto doc = GenerateXMark(cfg);
  // Collect person ids.
  std::set<std::string> person_ids;
  const xml::Node* people = doc->root()->FindChildElement("people");
  ASSERT_NE(people, nullptr);
  for (const auto& p : people->children()) {
    if (p->IsElement()) person_ids.insert(p->FindAttribute("id")->value());
  }
  // Every seller must reference an existing person.
  const xml::Node* open = doc->root()->FindChildElement("open_auctions");
  ASSERT_NE(open, nullptr);
  for (const auto& a : open->children()) {
    const xml::Node* seller = a->FindChildElement("seller");
    ASSERT_NE(seller, nullptr);
    EXPECT_TRUE(person_ids.count(seller->FindAttribute("person")->value()) > 0);
  }
}

TEST(BiblioTest, CountsAndDtd) {
  BiblioConfig cfg;
  cfg.books = 7;
  cfg.articles = 9;
  auto doc = GenerateBiblio(cfg);
  xml::DocStats st = xml::ComputeStats(*doc->root());
  EXPECT_EQ(st.tag_counts.at("book"), 7u);
  EXPECT_EQ(st.tag_counts.at("article"), 9u);
  auto dtd = xml::ParseDtd(BiblioDtd());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  for (const auto& [tag, count] : st.tag_counts) {
    (void)count;
    EXPECT_NE(dtd.value()->FindElement(tag), nullptr) << tag;
  }
}

TEST(QueriesTest, SuitesAreWellFormed) {
  auto qs = AuctionQueries();
  EXPECT_EQ(qs.size(), 12u);
  std::set<std::string> ids;
  for (const auto& q : qs) {
    EXPECT_TRUE(ids.insert(q.id).second) << "duplicate id " << q.id;
    EXPECT_FALSE(q.xpath.empty());
    EXPECT_FALSE(q.description.empty());
  }
  EXPECT_EQ(BiblioQueries().size(), 5u);
}

}  // namespace
}  // namespace xmlrdb::workload
