// End-to-end SQL tests: parse -> plan -> execute against a Database.

#include <gtest/gtest.h>

#include "rdb/database.h"

namespace xmlrdb::rdb {
namespace {

class SqlEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Run("CREATE TABLE emp (id INTEGER NOT NULL, name VARCHAR, dept INTEGER, "
        "salary DOUBLE)");
    Run("CREATE TABLE dept (id INTEGER NOT NULL, name VARCHAR)");
    Run("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')");
    Run("INSERT INTO emp VALUES "
        "(1, 'ada', 1, 120.0), "
        "(2, 'bob', 1, 95.5), "
        "(3, 'cyd', 2, 80.0), "
        "(4, 'dee', 2, 85.0), "
        "(5, 'eve', 1, 130.0)");
  }

  QueryResult Run(const std::string& sql) {
    auto res = db_.Execute(sql);
    EXPECT_TRUE(res.ok()) << sql << " -> " << res.status().ToString();
    return res.ok() ? std::move(res).value() : QueryResult{};
  }

  Status RunErr(const std::string& sql) { return db_.Execute(sql).status(); }

  Database db_;
};

TEST_F(SqlEndToEndTest, SelectAll) {
  QueryResult r = Run("SELECT * FROM emp");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.schema.size(), 4u);
}

TEST_F(SqlEndToEndTest, Projection) {
  QueryResult r = Run("SELECT name, salary FROM emp WHERE id = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ada");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 120.0);
}

TEST_F(SqlEndToEndTest, WhereComparisons) {
  EXPECT_EQ(Run("SELECT id FROM emp WHERE salary > 90").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE salary >= 95.5").rows.size(), 3u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE dept = 1 AND salary < 100").rows.size(),
            1u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE dept = 1 OR dept = 2").rows.size(), 5u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE NOT (dept = 1)").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE name <> 'ada'").rows.size(), 4u);
}

TEST_F(SqlEndToEndTest, Like) {
  EXPECT_EQ(Run("SELECT id FROM emp WHERE name LIKE '%e%'").rows.size(), 2u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE name LIKE '_o_'").rows.size(), 1u);
}

TEST_F(SqlEndToEndTest, InList) {
  EXPECT_EQ(Run("SELECT id FROM emp WHERE name IN ('ada', 'eve')").rows.size(),
            2u);
}

TEST_F(SqlEndToEndTest, OrderByAndLimit) {
  QueryResult r = Run("SELECT name FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "eve");
  EXPECT_EQ(r.rows[1][0].AsString(), "ada");
}

TEST_F(SqlEndToEndTest, OrderByNonProjectedColumn) {
  QueryResult r = Run("SELECT name FROM emp ORDER BY id DESC LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "eve");
}

TEST_F(SqlEndToEndTest, LimitOffset) {
  QueryResult r = Run("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[1][0].AsInt(), 4);
}

TEST_F(SqlEndToEndTest, JoinCommaSyntax) {
  QueryResult r = Run(
      "SELECT e.name, d.name FROM emp e, dept d WHERE e.dept = d.id AND "
      "d.name = 'sales' ORDER BY e.id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "cyd");
  EXPECT_EQ(r.rows[0][1].AsString(), "sales");
}

TEST_F(SqlEndToEndTest, JoinOnSyntax) {
  QueryResult r = Run(
      "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id "
      "WHERE d.name = 'eng' ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ada");
}

TEST_F(SqlEndToEndTest, SelfJoin) {
  QueryResult r = Run(
      "SELECT a.id, b.id FROM emp a, emp b "
      "WHERE a.dept = b.dept AND a.id < b.id ORDER BY a.id, b.id");
  // dept 1: (1,2),(1,5),(2,5); dept 2: (3,4)
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(SqlEndToEndTest, GroupByWithAggregates) {
  QueryResult r = Run(
      "SELECT dept, COUNT(*) AS cnt, AVG(salary) AS avg_sal, MIN(name), "
      "MAX(salary) FROM emp GROUP BY dept ORDER BY dept");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_NEAR(r.rows[0][2].AsDouble(), (120.0 + 95.5 + 130.0) / 3, 1e-9);
  EXPECT_EQ(r.rows[0][3].AsString(), "ada");
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsDouble(), 130.0);
}

TEST_F(SqlEndToEndTest, GlobalAggregate) {
  QueryResult r = Run("SELECT COUNT(*), SUM(salary) FROM emp");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_NEAR(r.rows[0][1].AsDouble(), 510.5, 1e-9);
}

TEST_F(SqlEndToEndTest, GlobalAggregateEmptyInput) {
  QueryResult r = Run("SELECT COUNT(*) FROM emp WHERE id > 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(SqlEndToEndTest, Having) {
  QueryResult r = Run(
      "SELECT dept, COUNT(*) AS cnt FROM emp GROUP BY dept "
      "HAVING COUNT(*) > 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
}

TEST_F(SqlEndToEndTest, Distinct) {
  QueryResult r = Run("SELECT DISTINCT dept FROM emp");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlEndToEndTest, Arithmetic) {
  QueryResult r = Run("SELECT salary * 2 + 1 FROM emp WHERE id = 3");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 161.0);
}

TEST_F(SqlEndToEndTest, DeleteWithWhere) {
  QueryResult r = Run("DELETE FROM emp WHERE dept = 2");
  EXPECT_EQ(r.affected, 2);
  EXPECT_EQ(Run("SELECT id FROM emp").rows.size(), 3u);
}

TEST_F(SqlEndToEndTest, Update) {
  QueryResult r = Run("UPDATE emp SET salary = salary + 10 WHERE dept = 1");
  EXPECT_EQ(r.affected, 3);
  QueryResult q = Run("SELECT salary FROM emp WHERE id = 1");
  EXPECT_DOUBLE_EQ(q.rows[0][0].AsDouble(), 130.0);
}

TEST_F(SqlEndToEndTest, IndexedLookupMatchesSeqScan) {
  Run("CREATE INDEX emp_dept ON emp (dept, salary)");
  QueryResult with_index =
      Run("SELECT id FROM emp WHERE dept = 1 AND salary > 100 ORDER BY id");
  ASSERT_EQ(with_index.rows.size(), 2u);
  EXPECT_EQ(with_index.rows[0][0].AsInt(), 1);
  EXPECT_EQ(with_index.rows[1][0].AsInt(), 5);
  // Plan should actually use the index.
  auto plan = db_.PlanSql("SELECT id FROM emp WHERE dept = 1 AND salary > 100");
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan.value()->CountOperators("IndexScan"), 0)
      << plan.value()->Explain();
}

TEST_F(SqlEndToEndTest, Explain) {
  QueryResult r = Run("EXPLAIN SELECT e.name FROM emp e JOIN dept d ON "
                      "e.dept = d.id WHERE d.name = 'eng'");
  EXPECT_NE(r.plan_text.find("HashJoin"), std::string::npos) << r.plan_text;
}

TEST_F(SqlEndToEndTest, Errors) {
  EXPECT_EQ(RunErr("SELECT * FROM missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(RunErr("SELECT bogus FROM emp").code(), StatusCode::kNotFound);
  EXPECT_EQ(RunErr("CREATE TABLE emp (x INTEGER)").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(RunErr("SELECT FROM emp").code(), StatusCode::kParseError);
  EXPECT_EQ(RunErr("INSERT INTO emp VALUES (1)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RunErr("INSERT INTO emp VALUES (NULL, 'x', 1, 1.0)").code(),
            StatusCode::kConstraintError);
}

TEST_F(SqlEndToEndTest, NullHandling) {
  Run("INSERT INTO emp VALUES (6, NULL, NULL, NULL)");
  EXPECT_EQ(Run("SELECT id FROM emp WHERE name IS NULL").rows.size(), 1u);
  EXPECT_EQ(Run("SELECT id FROM emp WHERE name IS NOT NULL").rows.size(), 5u);
  // NULL never matches comparisons.
  EXPECT_EQ(Run("SELECT id FROM emp WHERE dept = 1").rows.size(), 3u);
  // NULL keys never join.
  EXPECT_EQ(Run("SELECT e.id FROM emp e, dept d WHERE e.dept = d.id").rows.size(),
            5u);
  // Aggregates skip NULLs; COUNT(*) does not.
  QueryResult r = Run("SELECT COUNT(*), COUNT(dept) FROM emp");
  EXPECT_EQ(r.rows[0][0].AsInt(), 6);
  EXPECT_EQ(r.rows[0][1].AsInt(), 5);
}

}  // namespace
}  // namespace xmlrdb::rdb
