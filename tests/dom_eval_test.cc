// Direct tests of the DOM evaluator (the oracle itself needs pinning).

#include "xpath/dom_eval.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::xpath {
namespace {

class DomEvalTest : public ::testing::Test {
 protected:
  void Load(const std::string& text) {
    auto doc = xml::Parse(text);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::move(doc).value();
  }

  std::vector<std::string> Eval(const std::string& xpath) {
    auto p = ParseXPath(xpath);
    EXPECT_TRUE(p.ok()) << p.status();
    auto nodes = EvalOnDom(p.value(), *doc_->doc_node());
    EXPECT_TRUE(nodes.ok()) << nodes.status();
    std::vector<std::string> out;
    for (const xml::Node* n : nodes.value()) out.push_back(n->StringValue());
    return out;
  }

  std::unique_ptr<xml::Document> doc_;
};

TEST_F(DomEvalTest, ChildSteps) {
  Load("<a><b>1</b><c>skip</c><b>2</b></a>");
  EXPECT_EQ(Eval("/a/b"), (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(Eval("/a/c"), (std::vector<std::string>{"skip"}));
  EXPECT_TRUE(Eval("/a/missing").empty());
  EXPECT_TRUE(Eval("/wrongroot").empty());
}

TEST_F(DomEvalTest, DescendantIncludesAllLevels) {
  Load("<a><b>1<b>2<b>3</b></b></b></a>");
  EXPECT_EQ(Eval("//b").size(), 3u);
  EXPECT_EQ(Eval("/a//b").size(), 3u);
  EXPECT_EQ(Eval("//b//b").size(), 2u);
  // '//a' from the document includes the root element itself.
  EXPECT_EQ(Eval("//a").size(), 1u);
}

TEST_F(DomEvalTest, DescendantDeduplicates) {
  Load("<a><b><b><c>x</c></b></b></a>");
  // c is a descendant of both b's, but must appear once.
  EXPECT_EQ(Eval("//b//c").size(), 1u);
}

TEST_F(DomEvalTest, Wildcard) {
  Load("<a><b>1</b><c>2</c></a>");
  EXPECT_EQ(Eval("/a/*").size(), 2u);
  EXPECT_EQ(Eval("/*").size(), 1u);
}

TEST_F(DomEvalTest, Attributes) {
  Load("<a x=\"1\"><b x=\"2\" y=\"3\"/></a>");
  EXPECT_EQ(Eval("/a/@x"), (std::vector<std::string>{"1"}));
  EXPECT_EQ(Eval("/a/b/@*").size(), 2u);
  // //@x expands to //*/@x; //* from the document node includes the root.
  EXPECT_EQ(Eval("//@x").size(), 2u);
}

TEST_F(DomEvalTest, PositionalPredicates) {
  Load("<a><b>1</b><b>2</b><b>3</b><c><b>4</b></c></a>");
  EXPECT_EQ(Eval("/a/b[2]"), (std::vector<std::string>{"2"}));
  EXPECT_EQ(Eval("/a/b[last()]"), (std::vector<std::string>{"3"}));
  // Positions are per parent: both /a and /c contribute their first b.
  EXPECT_EQ(Eval("//*/b[1]").size(), 2u);
}

TEST_F(DomEvalTest, ExistencePredicates) {
  Load("<r><p><q/></p><p/><p><q/><s/></p></r>");
  EXPECT_EQ(Eval("/r/p[q]").size(), 2u);
  EXPECT_EQ(Eval("/r/p[s]").size(), 1u);
  EXPECT_EQ(Eval("/r/p[q/missing]").size(), 0u);
}

TEST_F(DomEvalTest, ValuePredicatesStringAndNumeric) {
  Load("<r><i><v>10</v></i><i><v>9</v></i><i><v>abc</v></i></r>");
  EXPECT_EQ(Eval("/r/i[v = 10]").size(), 1u);
  EXPECT_EQ(Eval("/r/i[v > 8]").size(), 2u);
  EXPECT_EQ(Eval("/r/i[v = 'abc']").size(), 1u);
  // Numeric comparison with a non-numeric node value never matches.
  EXPECT_EQ(Eval("/r/i[v < 100]").size(), 2u);
  // String comparison is lexicographic: "10" < "9".
  EXPECT_EQ(Eval("/r/i[v < '9']").size(), 1u);
}

TEST_F(DomEvalTest, ExistentialComparisonSemantics) {
  // Any matching node satisfies the predicate (XPath 1.0 node-set compare).
  Load("<r><i><v>1</v><v>5</v></i><i><v>2</v></i></r>");
  EXPECT_EQ(Eval("/r/i[v = 5]").size(), 1u);
  EXPECT_EQ(Eval("/r/i[v > 1]").size(), 2u);
}

TEST_F(DomEvalTest, AttributePredicates) {
  Load("<r><i k=\"a\"/><i k=\"b\"/><i/></r>");
  EXPECT_EQ(Eval("/r/i[@k]").size(), 2u);
  EXPECT_EQ(Eval("/r/i[@k = 'b']").size(), 1u);
}

TEST_F(DomEvalTest, MultiplePredicatesConjoin) {
  Load("<r><i k=\"a\"><v>1</v></i><i k=\"a\"><v>2</v></i><i k=\"b\"><v>1</v></i></r>");
  EXPECT_EQ(Eval("/r/i[@k = 'a'][v = 1]").size(), 1u);
}

TEST_F(DomEvalTest, MixedContentStringValue) {
  Load("<r><p>one<b>two</b>three</p></r>");
  EXPECT_EQ(Eval("/r/p"), (std::vector<std::string>{"onetwothree"}));
}

TEST(CompareNodeValueTest, Operators) {
  rdb::Value five(int64_t{5});
  EXPECT_TRUE(CompareNodeValue("5", CmpOp::kEq, five));
  EXPECT_TRUE(CompareNodeValue("5.0", CmpOp::kEq, five));
  EXPECT_TRUE(CompareNodeValue("6", CmpOp::kGt, five));
  EXPECT_TRUE(CompareNodeValue("4", CmpOp::kLt, five));
  EXPECT_TRUE(CompareNodeValue("5", CmpOp::kLe, five));
  EXPECT_TRUE(CompareNodeValue("5", CmpOp::kGe, five));
  EXPECT_TRUE(CompareNodeValue("4", CmpOp::kNe, five));
  EXPECT_FALSE(CompareNodeValue("abc", CmpOp::kEq, five));
  rdb::Value s("abc");
  EXPECT_TRUE(CompareNodeValue("abc", CmpOp::kEq, s));
  EXPECT_TRUE(CompareNodeValue("abd", CmpOp::kGt, s));
}

}  // namespace
}  // namespace xmlrdb::xpath
