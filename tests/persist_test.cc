// Save/load round-trip tests for database persistence.

#include "rdb/persist.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "shred/evaluator.h"
#include "shred/registry.h"
#include "workload/xmark.h"
#include "xml/serializer.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::rdb {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("xmlrdb_persist_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistTest, EmptyDatabaseRoundTrips) {
  Database db;
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded.value()->TableNames().empty());
}

TEST_F(PersistTest, SchemaRowsAndIndexesSurvive) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (i INTEGER NOT NULL, d DOUBLE, "
                         "s VARCHAR, b BOOLEAN)")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX t_i ON t (i, s)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES "
                         "(1, 1.5, 'plain', TRUE), "
                         "(2, NULL, 'tab\tand\nnewline \\ backslash', FALSE), "
                         "(3, 0.1, '', NULL)")
                  .ok());
  // Delete one row: tombstones must compact away.
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE i = 3").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (4, 2.25, 'four', TRUE)").ok());

  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  auto r = loaded.value()->Execute("SELECT i, d, s, b FROM t ORDER BY i");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r.value().rows.size(), 3u);
  EXPECT_EQ(r.value().rows[1][2].AsString(), "tab\tand\nnewline \\ backslash");
  EXPECT_TRUE(r.value().rows[1][1].is_null());
  EXPECT_DOUBLE_EQ(r.value().rows[2][1].AsDouble(), 2.25);
  // The index came back and is used.
  auto plan = loaded.value()->PlanSql("SELECT s FROM t WHERE i = 2");
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan.value()->CountOperators("IndexScan"), 0)
      << plan.value()->Explain();
}

TEST_F(PersistTest, DoubleValuesRoundTripExactly) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE d (x DOUBLE)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO d VALUES (0.1), (3.141592653589793), "
                         "(1e300), (-2.5e-10)")
                  .ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok());
  auto a = db.Execute("SELECT x FROM d ORDER BY x");
  auto b = loaded.value()->Execute("SELECT x FROM d ORDER BY x");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().rows.size(), b.value().rows.size());
  for (size_t i = 0; i < a.value().rows.size(); ++i) {
    EXPECT_EQ(a.value().rows[i][0].AsDouble(), b.value().rows[i][0].AsDouble());
  }
}

TEST_F(PersistTest, ShreddedDocumentSurvivesReload) {
  // The end-to-end story: shred, save, load, query + reconstruct the
  // document from the loaded database.
  auto mapping = shred::CreateMapping("interval");
  ASSERT_TRUE(mapping.ok());
  Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  auto id = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(id.ok());

  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());
  auto loaded = LoadDatabase(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  auto path = xpath::ParseXPath("//person[creditcard]/name");
  auto before = shred::EvalPathStrings(path.value(), mapping.value().get(), &db,
                                       id.value());
  auto after = shred::EvalPathStrings(path.value(), mapping.value().get(),
                                      loaded.value().get(), id.value());
  ASSERT_TRUE(before.ok() && after.ok()) << after.status();
  EXPECT_EQ(before.value(), after.value());

  auto rebuilt = mapping.value()->Reconstruct(loaded.value().get(), id.value());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(xml::Canonicalize(*doc), xml::Canonicalize(*rebuilt.value()));
}

TEST_F(PersistTest, LoadErrors) {
  EXPECT_EQ(LoadDatabase((dir_ / "missing").string()).status().code(),
            StatusCode::kNotFound);
  // Corrupt catalog header.
  std::filesystem::create_directories(dir_);
  {
    std::ofstream f(dir_ / "catalog.xdb");
    f << "not-a-catalog\n";
  }
  EXPECT_EQ(LoadDatabase(dir_.string()).status().code(),
            StatusCode::kParseError);
}

}  // namespace
}  // namespace xmlrdb::rdb
