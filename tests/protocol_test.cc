// Wire-protocol unit tests: frame round trips, the incremental decoder's
// hostile-input discipline, and every typed payload codec.

#include "net/protocol.h"

#include <gtest/gtest.h>

#include "rdb/database.h"
#include "rdb/value.h"

namespace xmlrdb::net {
namespace {

Frame MustPoll(FrameDecoder* d) {
  Frame f;
  EXPECT_EQ(d->Poll(&f), FrameDecoder::PollResult::kFrame);
  return f;
}

TEST(ProtocolTest, FrameRoundTrip) {
  Frame in{MsgType::kQuery, 42, "SELECT 1"};
  std::string bytes = EncodeFrame(in);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + in.payload.size());
  FrameDecoder d;
  d.Feed(bytes);
  Frame out = MustPoll(&d);
  EXPECT_EQ(out.type, MsgType::kQuery);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.payload, "SELECT 1");
  Frame extra;
  EXPECT_EQ(d.Poll(&extra), FrameDecoder::PollResult::kNeedMore);
}

TEST(ProtocolTest, DecoderHandlesBytewiseDelivery) {
  // A frame arriving one byte at a time must come out identical.
  Frame in{MsgType::kPrepare, 7, "INSERT INTO t VALUES (?)"};
  std::string bytes = EncodeFrame(in);
  FrameDecoder d;
  Frame out;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (i + 1 < bytes.size()) {
      EXPECT_EQ(d.Poll(&out), FrameDecoder::PollResult::kNeedMore) << i;
    }
    d.Feed(bytes.data() + i, 1);
  }
  out = MustPoll(&d);
  EXPECT_EQ(out.seq, 7u);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(ProtocolTest, DecoderYieldsPipelinedFrames) {
  std::string bytes;
  for (uint32_t seq = 1; seq <= 5; ++seq) {
    AppendFrame(&bytes, Frame{MsgType::kPing, seq, ""});
  }
  FrameDecoder d;
  d.Feed(bytes);
  for (uint32_t seq = 1; seq <= 5; ++seq) {
    EXPECT_EQ(MustPoll(&d).seq, seq);
  }
  Frame f;
  EXPECT_EQ(d.Poll(&f), FrameDecoder::PollResult::kNeedMore);
}

TEST(ProtocolTest, ZeroLengthPayloadFramesAreValid) {
  // PING/PONG/BUSY legitimately carry no payload; the *server* rejects
  // empty payloads for types that need one, not the decoder.
  FrameDecoder d;
  d.Feed(EncodeFrame(Frame{MsgType::kPing, 1, ""}));
  EXPECT_EQ(MustPoll(&d).type, MsgType::kPing);
}

TEST(ProtocolTest, DecoderRejectsOversizedFrameFromHeaderAlone) {
  // The hostile length is rejected as soon as the 9 header bytes arrive —
  // no allocation proportional to the claimed length, no waiting for the
  // (never-sent) payload.
  FrameDecoder d(1024);
  Frame huge{MsgType::kQuery, 1, std::string(2048, 'x')};
  std::string bytes = EncodeFrame(huge);
  d.Feed(bytes.data(), kFrameHeaderBytes);  // header only
  Frame f;
  EXPECT_EQ(d.Poll(&f), FrameDecoder::PollResult::kError);
  EXPECT_FALSE(d.error().ok());
  EXPECT_NE(d.error().message().find("frame limit"), std::string::npos);
  // Poisoned: more bytes are dropped, every Poll errors.
  d.Feed("garbage");
  EXPECT_EQ(d.Poll(&f), FrameDecoder::PollResult::kError);
  EXPECT_LE(d.buffered_bytes(), kFrameHeaderBytes);
}

TEST(ProtocolTest, DecoderRejectsUnknownType) {
  std::string bytes = EncodeFrame(Frame{MsgType::kPing, 1, ""});
  bytes[4] = 0x7F;  // not a request or response type
  FrameDecoder d;
  d.Feed(bytes);
  Frame f;
  EXPECT_EQ(d.Poll(&f), FrameDecoder::PollResult::kError);
  EXPECT_NE(d.error().message().find("unknown frame type"), std::string::npos);
}

TEST(ProtocolTest, TruncatedFrameIsNeedMoreNotError) {
  // A partial frame is not hostile — the rest may still arrive. (A peer
  // that hangs up mid-frame is detected by the read returning EOF.)
  Frame in{MsgType::kQuery, 3, "SELECT * FROM t"};
  std::string bytes = EncodeFrame(in);
  FrameDecoder d;
  d.Feed(bytes.substr(0, bytes.size() - 4));
  Frame f;
  EXPECT_EQ(d.Poll(&f), FrameDecoder::PollResult::kNeedMore);
  d.Feed(bytes.substr(bytes.size() - 4));
  EXPECT_EQ(MustPoll(&d).payload, in.payload);
}

TEST(ProtocolTest, DecoderBufferStaysBoundedAcrossManyFrames) {
  // The consumed prefix must be compacted away; a long-lived connection
  // cannot grow the buffer without bound.
  FrameDecoder d;
  std::string one = EncodeFrame(Frame{MsgType::kQuery, 1, std::string(512, 'q')});
  for (int i = 0; i < 1000; ++i) {
    d.Feed(one);
    Frame f;
    ASSERT_EQ(d.Poll(&f), FrameDecoder::PollResult::kFrame);
  }
  EXPECT_LT(d.buffered_bytes() + one.size() * 2, one.size() * 8);
}

TEST(ProtocolTest, ValueRoundTrip) {
  std::vector<rdb::Value> vals = {
      rdb::Value::Null(),       rdb::Value(int64_t{-5}),
      rdb::Value(int64_t{1} << 40), rdb::Value(3.25),
      rdb::Value(std::string("hello \0 world", 13)),  // embedded NUL survives
      rdb::Value(std::string()), rdb::Value(true),    rdb::Value(false),
  };
  std::string bytes;
  for (const auto& v : vals) AppendValue(&bytes, v);
  WireReader r(bytes);
  for (const auto& v : vals) {
    auto got = r.ReadValue();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got.value().is_null() ? v.is_null() : got.value() == v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(ProtocolTest, ResultSetRoundTrip) {
  rdb::QueryResult in;
  in.affected = 3;
  in.schema = rdb::Schema({{.name = "id", .type = rdb::DataType::kInt},
                           {.name = "name", .type = rdb::DataType::kString},
                           {.name = "score", .type = rdb::DataType::kDouble}});
  in.rows.push_back({rdb::Value(int64_t{1}), rdb::Value("a"), rdb::Value(0.5)});
  in.rows.push_back({rdb::Value(int64_t{2}), rdb::Value::Null(),
                     rdb::Value(-1.0)});
  rdb::QueryResult out;
  ASSERT_TRUE(DecodeResultSet(EncodeResultSet(in), &out).ok());
  EXPECT_EQ(out.affected, 3);
  ASSERT_EQ(out.schema.size(), 3u);
  EXPECT_EQ(out.schema.columns()[1].name, "name");
  EXPECT_EQ(out.schema.columns()[2].type, rdb::DataType::kDouble);
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0][1].AsString(), "a");
  EXPECT_TRUE(out.rows[1][1].is_null());
  EXPECT_EQ(out.rows[1][0].AsInt(), 2);
}

TEST(ProtocolTest, EmptyResultSetRoundTrip) {
  rdb::QueryResult in;
  in.affected = 7;
  rdb::QueryResult out;
  ASSERT_TRUE(DecodeResultSet(EncodeResultSet(in), &out).ok());
  EXPECT_EQ(out.affected, 7);
  EXPECT_EQ(out.schema.size(), 0u);
  EXPECT_TRUE(out.rows.empty());
}

TEST(ProtocolTest, ResultSetDecodeRejectsHostilePayloads) {
  rdb::QueryResult scratch;
  // Hostile column count: u32 max columns but almost no bytes behind it.
  std::string p;
  for (int i = 0; i < 8; ++i) p.push_back('\0');  // affected = 0
  p += std::string("\xFF\xFF\xFF\xFF", 4);        // ncols = 2^32-1
  EXPECT_FALSE(DecodeResultSet(p, &scratch).ok());
  // Rows claimed without columns.
  rdb::QueryResult empty;
  std::string q = EncodeResultSet(empty);
  q[q.size() - 4] = 5;  // nrows = 5, ncols = 0
  EXPECT_FALSE(DecodeResultSet(q, &scratch).ok());
  // Trailing bytes after a valid result set.
  std::string r = EncodeResultSet(empty) + "x";
  EXPECT_FALSE(DecodeResultSet(r, &scratch).ok());
  // Truncation at every prefix must fail cleanly, never crash.
  rdb::QueryResult full;
  full.schema = rdb::Schema({{.name = "v", .type = rdb::DataType::kString}});
  full.rows.push_back({rdb::Value("payload")});
  std::string whole = EncodeResultSet(full);
  for (size_t cut = 0; cut < whole.size(); ++cut) {
    EXPECT_FALSE(DecodeResultSet(whole.substr(0, cut), &scratch).ok()) << cut;
  }
}

TEST(ProtocolTest, ReadStringValidatesLengthBeforeAllocating) {
  // length prefix says 100 MB; only 3 bytes follow.
  std::string p("\x00\x00\x40\x06" "abc", 7);
  WireReader r(p);
  auto s = r.ReadString();
  EXPECT_FALSE(s.ok());
}

TEST(ProtocolTest, ErrorRoundTrip) {
  Status in = Status::InvalidArgument("no such table 'phantom'");
  Status out = DecodeError(EncodeError(in));
  EXPECT_EQ(out.code(), in.code());
  EXPECT_EQ(out.message(), in.message());
  EXPECT_FALSE(DecodeError("").ok());  // empty payload decodes to an error too
}

TEST(ProtocolTest, PreparedRoundTrip) {
  uint32_t id = 0, n = 0;
  ASSERT_TRUE(DecodePrepared(EncodePrepared(9, 2), &id, &n).ok());
  EXPECT_EQ(id, 9u);
  EXPECT_EQ(n, 2u);
  EXPECT_FALSE(DecodePrepared("\x01", &id, &n).ok());
  EXPECT_FALSE(DecodePrepared(EncodePrepared(9, 2) + "x", &id, &n).ok());
}

TEST(ProtocolTest, ExecPreparedRoundTrip) {
  std::vector<rdb::Value> params = {rdb::Value(int64_t{11}),
                                    rdb::Value("bidder"), rdb::Value::Null()};
  std::string bytes = EncodeExecPrepared(4, params);
  uint32_t id = 0;
  std::vector<rdb::Value> out;
  ASSERT_TRUE(DecodeExecPrepared(bytes, &id, &out).ok());
  EXPECT_EQ(id, 4u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].AsInt(), 11);
  EXPECT_EQ(out[1].AsString(), "bidder");
  EXPECT_TRUE(out[2].is_null());
  // Hostile param count with no bytes behind it.
  std::string hostile = EncodeExecPrepared(4, {});
  hostile[4] = '\xFF';
  hostile[5] = '\xFF';
  EXPECT_FALSE(DecodeExecPrepared(hostile, &id, &out).ok());
}

TEST(ProtocolTest, XPathRequestRoundTrip) {
  std::string bytes = EncodeXPathRequest(12, "dewey", "//item/name");
  int64_t doc = 0;
  std::string mapping, xpath;
  ASSERT_TRUE(DecodeXPathRequest(bytes, &doc, &mapping, &xpath).ok());
  EXPECT_EQ(doc, 12);
  EXPECT_EQ(mapping, "dewey");
  EXPECT_EQ(xpath, "//item/name");
  // Empty mapping / empty path / short payloads are rejected.
  EXPECT_FALSE(
      DecodeXPathRequest(EncodeXPathRequest(1, "", "//a"), &doc, &mapping,
                         &xpath)
          .ok());
  EXPECT_FALSE(
      DecodeXPathRequest(EncodeXPathRequest(1, "edge", ""), &doc, &mapping,
                         &xpath)
          .ok());
  EXPECT_FALSE(DecodeXPathRequest("\x01\x02", &doc, &mapping, &xpath).ok());
  // Mapping-name length pointing past the payload.
  std::string hostile = EncodeXPathRequest(1, "edge", "//a");
  hostile[8] = '\xFF';
  EXPECT_FALSE(DecodeXPathRequest(hostile, &doc, &mapping, &xpath).ok());
}

TEST(ProtocolTest, TypePredicates) {
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MsgType::kQuery)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MsgType::kXPath)));
  EXPECT_TRUE(IsRequestType(static_cast<uint8_t>(MsgType::kHello)));
  EXPECT_FALSE(IsRequestType(0));
  EXPECT_FALSE(IsRequestType(static_cast<uint8_t>(MsgType::kOkResult)));
  EXPECT_TRUE(IsResponseType(static_cast<uint8_t>(MsgType::kBusy)));
  EXPECT_TRUE(IsResponseType(static_cast<uint8_t>(MsgType::kHelloOk)));
  EXPECT_FALSE(IsResponseType(static_cast<uint8_t>(MsgType::kPing)));
  EXPECT_STREQ(MsgTypeName(MsgType::kExecPrepared), "EXEC_PREPARED");
  EXPECT_STREQ(MsgTypeName(MsgType::kHello), "HELLO");
}

// -- protocol v2: hello + traced frames ------------------------------------

TEST(ProtocolTest, HelloRoundTripAndHostileDecode) {
  uint32_t version = 0;
  ASSERT_TRUE(DecodeHello(EncodeHello(2), &version).ok());
  EXPECT_EQ(version, 2u);
  EXPECT_FALSE(DecodeHello("", &version).ok());
  EXPECT_FALSE(DecodeHello("\x01\x02", &version).ok());            // short
  EXPECT_FALSE(DecodeHello(EncodeHello(2) + "x", &version).ok());  // long
  EXPECT_FALSE(DecodeHello(EncodeHello(0), &version).ok());  // version 0
}

TEST(ProtocolTest, TracedFlagSurvivesEncodeDecode) {
  Frame frame;
  frame.type = MsgType::kQuery;
  frame.seq = 9;
  AppendTracedRequestPrefix(&frame.payload, 0xDEADBEEFCAFEF00Dull);
  frame.payload += "SELECT 1";
  frame.traced = true;

  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(frame));
  Frame out;
  ASSERT_EQ(decoder.Poll(&out), FrameDecoder::PollResult::kFrame);
  EXPECT_EQ(out.type, MsgType::kQuery);
  EXPECT_TRUE(out.traced);

  uint64_t request_id = 0;
  std::string_view rest;
  ASSERT_TRUE(StripTracedRequestPrefix(out.payload, &request_id, &rest).ok());
  EXPECT_EQ(request_id, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(rest, "SELECT 1");
}

TEST(ProtocolTest, UntracedFramesStayUntraced) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(Frame{MsgType::kPing, 1, {}}));
  Frame out;
  ASSERT_EQ(decoder.Poll(&out), FrameDecoder::PollResult::kFrame);
  EXPECT_FALSE(out.traced);
}

TEST(ProtocolTest, TracedResponsePrefixRoundTrip) {
  ServerTiming in;
  in.request_id = 42;
  in.queue_us = 17;
  in.exec_us = 230;
  std::string payload;
  AppendTracedResponsePrefix(&payload, in);
  payload += "body";

  ServerTiming out;
  std::string_view rest;
  ASSERT_TRUE(StripTracedResponsePrefix(payload, &out, &rest).ok());
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.queue_us, 17u);
  EXPECT_EQ(out.exec_us, 230u);
  EXPECT_EQ(rest, "body");
}

TEST(ProtocolTest, TracedPrefixStripRejectsShortPayloads) {
  uint64_t request_id = 0;
  ServerTiming timing;
  std::string_view rest;
  EXPECT_FALSE(StripTracedRequestPrefix("short", &request_id, &rest).ok());
  EXPECT_FALSE(StripTracedResponsePrefix("0123456789", &timing, &rest).ok());
}

TEST(ProtocolTest, DecoderRejectsTracedUnknownBaseType) {
  // kTracedFlag OR-ed into a type that is not a valid message: still hostile.
  std::string raw;
  Frame frame;
  frame.type = static_cast<MsgType>(0x3F);  // not a message type
  frame.traced = true;
  raw = EncodeFrame(frame);
  FrameDecoder decoder;
  decoder.Feed(raw);
  Frame out;
  EXPECT_EQ(decoder.Poll(&out), FrameDecoder::PollResult::kError);
}

}  // namespace
}  // namespace xmlrdb::net
