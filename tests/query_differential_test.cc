// Differential property tests: every mapping's XPath answers must equal the
// DOM oracle's, compared as multisets of (string-value) results and as
// canonical result-subtree sets.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "shred/evaluator.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/random_tree.h"
#include "workload/xmark.h"
#include "xml/serializer.h"
#include "xpath/dom_eval.h"

namespace xmlrdb {
namespace {

using shred::DocId;
using shred::Mapping;

/// Oracle answer: sorted string-values of the DOM result nodes.
std::vector<std::string> OracleStrings(const xml::Document& doc,
                                       const std::string& xpath) {
  auto path = xpath::ParseXPath(xpath);
  EXPECT_TRUE(path.ok()) << path.status();
  auto nodes = xpath::EvalOnDom(path.value(), *doc.doc_node());
  EXPECT_TRUE(nodes.ok()) << nodes.status();
  std::vector<std::string> out;
  for (const xml::Node* n : nodes.value()) out.push_back(n->StringValue());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> MappingStrings(Mapping* mapping, rdb::Database* db,
                                        DocId doc, const std::string& xpath) {
  auto path = xpath::ParseXPath(xpath);
  EXPECT_TRUE(path.ok()) << path.status();
  auto values = shred::EvalPathStrings(path.value(), mapping, db, doc);
  EXPECT_TRUE(values.ok()) << mapping->name() << ": " << values.status();
  std::vector<std::string> out = values.ok() ? values.value()
                                             : std::vector<std::string>{};
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<std::string>& TestPaths() {
  static const std::vector<std::string> kPaths = {
      "/root",
      "/root/t0",
      "/root/t0/t1",
      "/root/*",
      "/root/*/t2",
      "//t1",
      "//t1/t2",
      "/root//t3",
      "//t2//t1",
      "//t0/@a0",
      "/root/t0[@a1]",
      "//t1[@a0 = 'x']",
      "/root/t0[2]",
      "/root/t0[last()]",
      "//t2[t1]",
      "//*[@a2]",
      "//t0[t1/t2]",
  };
  return kPaths;
}

class DifferentialTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DifferentialTest, RandomTreesMatchOracle) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomTreeConfig cfg;
    cfg.seed = seed;
    cfg.tag_alphabet = 4;  // dense tag reuse => deeper recursion of same names
    auto doc = workload::GenerateRandomTree(cfg);
    rdb::Database db;
    ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
    auto stored = mapping.value()->Store(*doc, &db);
    ASSERT_TRUE(stored.ok()) << stored.status();
    for (const std::string& xpath : TestPaths()) {
      EXPECT_EQ(OracleStrings(*doc, xpath),
                MappingStrings(mapping.value().get(), &db, stored.value(), xpath))
          << "mapping=" << GetParam() << " seed=" << seed << " path=" << xpath;
    }
  }
}

TEST_P(DifferentialTest, NumericPredicatesMatchOracle) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::RandomTreeConfig cfg;
  cfg.seed = 5;
  cfg.numeric_text = true;
  auto doc = workload::GenerateRandomTree(cfg);
  rdb::Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  auto stored = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();
  for (const std::string& xpath : std::vector<std::string>{
           "//t1[t0 > 500]",
           "//t1[t0 < 500]/t2",
           "//t2[@a0 >= 50]",
           "//t0[t1 != 3]",
           "//*[t3 <= 100]",
       }) {
    EXPECT_EQ(OracleStrings(*doc, xpath),
              MappingStrings(mapping.value().get(), &db, stored.value(), xpath))
        << "mapping=" << GetParam() << " path=" << xpath;
  }
}

TEST_P(DifferentialTest, AuctionWorkloadMatchesOracle) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  rdb::Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  auto stored = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();
  for (const std::string& xpath : std::vector<std::string>{
           "/site/people/person/name",
           "/site/people/person[@id = 'person0']/name",
           "//item/name",
           "/site/regions//item/name",
           "/site/regions/*/item/location",
           "//item[quantity = 2]/name",
           "/site/regions/africa/item[3]/name",
           "//person[creditcard]/name",
           "//open_auction[initial > 200]/current",
           "//person/@id",
       }) {
    EXPECT_EQ(OracleStrings(*doc, xpath),
              MappingStrings(mapping.value().get(), &db, stored.value(), xpath))
        << "mapping=" << GetParam() << " path=" << xpath;
  }
}

TEST_P(DifferentialTest, ResultSubtreesMatchOracle) {
  // Compare not just string-values but whole reconstructed result subtrees.
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::RandomTreeConfig cfg;
  cfg.seed = 3;
  auto doc = workload::GenerateRandomTree(cfg);
  rdb::Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  auto stored = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();

  auto path = xpath::ParseXPath("//t1");
  ASSERT_TRUE(path.ok());
  auto oracle_nodes = xpath::EvalOnDom(path.value(), *doc->doc_node());
  ASSERT_TRUE(oracle_nodes.ok());
  std::vector<std::string> oracle;
  for (const xml::Node* n : oracle_nodes.value()) {
    oracle.push_back(xml::Canonicalize(*n));
  }
  std::sort(oracle.begin(), oracle.end());

  auto nodes = shred::EvalPath(path.value(), mapping.value().get(), &db,
                               stored.value());
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  std::vector<std::string> got;
  for (const rdb::Value& id : nodes.value()) {
    auto subtree =
        mapping.value()->ReconstructSubtree(&db, stored.value(), id);
    ASSERT_TRUE(subtree.ok()) << subtree.status();
    got.push_back(xml::Canonicalize(*subtree.value()));
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(oracle, got) << "mapping=" << GetParam();
}

TEST_P(DifferentialTest, PreparedPathEqualsUnpreparedOnAuctionQueries) {
  // The mappings issue their step/string-value SQL through the prepared
  // path. Re-running Q1–Q12 with the plan cache disabled (capacity 0 =>
  // every statement parses and plans fresh) must give identical answers:
  // caching is purely an execution-strategy change.
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  rdb::Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  auto stored = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();

  std::vector<std::vector<std::string>> cached, uncached;
  for (const auto& q : workload::AuctionQueries()) {
    cached.push_back(
        MappingStrings(mapping.value().get(), &db, stored.value(), q.xpath));
  }
  db.plan_cache().set_capacity(0);
  db.plan_cache().Clear();
  for (const auto& q : workload::AuctionQueries()) {
    uncached.push_back(
        MappingStrings(mapping.value().get(), &db, stored.value(), q.xpath));
  }
  const auto queries = workload::AuctionQueries();
  ASSERT_EQ(cached.size(), uncached.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i], uncached[i])
        << "mapping=" << GetParam() << " query=" << queries[i].id << " ("
        << queries[i].xpath << ")";
  }
}

TEST_P(DifferentialTest, RepeatedAuctionQueriesReparseNothingAfterWarmup) {
  if (GetParam() == "blob") GTEST_SKIP() << "blob evaluates on a cached DOM";
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::XMarkConfig cfg;
  cfg.scale = 0.02;
  auto doc = workload::GenerateXMark(cfg);
  rdb::Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  auto stored = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();

  ScopedMetricsCapture capture;
  for (const auto& q : workload::AuctionQueries()) {
    MappingStrings(mapping.value().get(), &db, stored.value(), q.xpath);
  }
  const int64_t parsed_after_warmup =
      MetricsRegistry::Global().Get("sql.parsed");
  for (int round = 0; round < 3; ++round) {
    for (const auto& q : workload::AuctionQueries()) {
      MappingStrings(mapping.value().get(), &db, stored.value(), q.xpath);
    }
  }
  EXPECT_EQ(MetricsRegistry::Global().Get("sql.parsed"), parsed_after_warmup)
      << "mapping=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllMappings, DifferentialTest,
                         ::testing::ValuesIn(shred::GenericMappingNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace xmlrdb
