// Differential tests for the vectorized executor: the batch path must be
// byte-identical to the row path on every workload, and the batched
// expression kernels (EvalBatch / FilterBatch) must agree with per-row Eval
// on randomly generated predicates and data.

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rdb/batch.h"
#include "rdb/plan.h"
#include "shred/evaluator.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::rdb {
namespace {

using shred::DocId;
using shred::Mapping;

// ---------------------------------------------------------------------------
// Whole-query differential: Q1-Q12 over every mapping, batch vs row.

std::vector<std::string> RunQuery(Mapping* mapping, Database* db, DocId doc,
                                  const std::string& xpath) {
  auto path = xpath::ParseXPath(xpath);
  EXPECT_TRUE(path.ok()) << path.status();
  auto values = shred::EvalPathStrings(path.value(), mapping, db, doc);
  EXPECT_TRUE(values.ok()) << mapping->name() << ": " << values.status();
  std::vector<std::string> out =
      values.ok() ? values.value() : std::vector<std::string>{};
  std::sort(out.begin(), out.end());
  return out;
}

class BatchExecutorTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchExecutorTest, AuctionQueriesMatchRowPath) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  auto stored = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();

  for (const auto& q : workload::AuctionQueries()) {
    std::vector<std::string> batch_result, row_result;
    {
      ScopedExecMode mode(ExecMode::kBatch);
      batch_result =
          RunQuery(mapping.value().get(), &db, stored.value(), q.xpath);
    }
    {
      ScopedExecMode mode(ExecMode::kRow);
      row_result =
          RunQuery(mapping.value().get(), &db, stored.value(), q.xpath);
    }
    EXPECT_EQ(batch_result, row_result)
        << "mapping=" << GetParam() << " query=" << q.id;
  }
}

TEST_P(BatchExecutorTest, SmallBatchSizesMatchRowPath) {
  // Tiny batch sizes maximise batch-boundary traffic (Limit/OFFSET spanning
  // batches, filters emptying whole batches, join probes split mid-key).
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::XMarkConfig cfg;
  cfg.scale = 0.02;
  auto doc = workload::GenerateXMark(cfg);
  Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  auto stored = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();

  std::vector<std::string> row_results;
  {
    ScopedExecMode mode(ExecMode::kRow);
    for (const auto& q : workload::AuctionQueries()) {
      auto r = RunQuery(mapping.value().get(), &db, stored.value(), q.xpath);
      for (auto& s : r) row_results.push_back(std::move(s));
    }
  }
  const int saved = DefaultBatchSize();
  for (int bs : {1, 3, 7}) {
    SetDefaultBatchSize(bs);
    ScopedExecMode mode(ExecMode::kBatch);
    std::vector<std::string> batch_results;
    for (const auto& q : workload::AuctionQueries()) {
      auto r = RunQuery(mapping.value().get(), &db, stored.value(), q.xpath);
      for (auto& s : r) batch_results.push_back(std::move(s));
    }
    EXPECT_EQ(batch_results, row_results)
        << "mapping=" << GetParam() << " batch_size=" << bs;
  }
  SetDefaultBatchSize(saved);
}

INSTANTIATE_TEST_SUITE_P(AllMappings, BatchExecutorTest,
                         ::testing::ValuesIn(shred::GenericMappingNames()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Expression-kernel fuzz: EvalBatch must agree with per-row Eval.

Schema FuzzSchema() {
  return Schema({{"i", DataType::kInt, true, "t"},
                 {"d", DataType::kDouble, true, "t"},
                 {"s", DataType::kString, true, "t"},
                 {"b", DataType::kBool, true, "t"}});
}

Value RandomValue(Rng& rng, DataType t) {
  if (rng.Bernoulli(0.15)) return Value::Null();
  switch (t) {
    case DataType::kInt:
      return Value(rng.Uniform(-50, 50));
    case DataType::kDouble:
      if (rng.Bernoulli(0.05)) {
        return Value(std::numeric_limits<double>::quiet_NaN());
      }
      return Value(static_cast<double>(rng.Uniform(-500, 500)) / 10.0);
    case DataType::kString:
      return Value(rng.Word(0, 4));
    case DataType::kBool:
      return Value(rng.Bernoulli(0.5));
    default:
      return Value::Null();
  }
}

ExprPtr RandomPredicate(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.3)) {
    // Leaf: comparison, LIKE, IS NULL, or IN.
    switch (rng.Uniform(0, 3)) {
      case 0: {
        static const BinOp kCmps[] = {BinOp::kEq, BinOp::kNe, BinOp::kLt,
                                      BinOp::kLe, BinOp::kGt, BinOp::kGe};
        BinOp op = kCmps[rng.Uniform(0, 5)];
        static const char* kCols[] = {"i", "d", "s"};
        const char* col = kCols[rng.Uniform(0, 2)];
        Value lit = col[0] == 's' ? Value(rng.Word(0, 4))
                                  : Value(rng.Uniform(-50, 50));
        return Bin(op, Col(col), Lit(std::move(lit)));
      }
      case 1:
        return std::make_unique<LikeExpr>(
            Col("s"), rng.Bernoulli(0.5) ? "%a%" : std::string(1, 'a') + "_%");
      case 2:
        return std::make_unique<IsNullExpr>(
            Col(rng.Bernoulli(0.5) ? "i" : "d"), rng.Bernoulli(0.5));
      default: {
        std::vector<Value> items;
        for (int64_t i = rng.Uniform(1, 3); i > 0; --i) {
          items.push_back(Value(rng.Uniform(-50, 50)));
        }
        return std::make_unique<InListExpr>(Col("i"), std::move(items));
      }
    }
  }
  switch (rng.Uniform(0, 2)) {
    case 0:
      return Bin(BinOp::kAnd, RandomPredicate(rng, depth - 1),
                 RandomPredicate(rng, depth - 1));
    case 1:
      return Bin(BinOp::kOr, RandomPredicate(rng, depth - 1),
                 RandomPredicate(rng, depth - 1));
    default:
      return std::make_unique<NotExpr>(RandomPredicate(rng, depth - 1));
  }
}

TEST(BatchExprFuzzTest, EvalBatchAgreesWithRowEval) {
  Schema schema = FuzzSchema();
  Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    ExprPtr pred = RandomPredicate(rng, 3);
    ASSERT_TRUE(pred->Bind(schema).ok()) << pred->ToString();

    Batch batch;
    batch.Reset(schema.size());
    size_t n = static_cast<size_t>(rng.Uniform(1, 64));
    std::vector<Row> rows;
    for (size_t r = 0; r < n; ++r) {
      Row row;
      for (size_t c = 0; c < schema.size(); ++c) {
        row.push_back(RandomValue(rng, schema.column(c).type));
      }
      batch.AppendRow(row);
      rows.push_back(std::move(row));
    }
    // Random selection vector half the time.
    std::vector<uint32_t> rids;
    if (rng.Bernoulli(0.5)) {
      for (uint32_t r = 0; r < n; ++r) {
        if (rng.Bernoulli(0.6)) rids.push_back(r);
      }
      batch.SetSelection(rids);
    } else {
      rids = batch.ActiveRids();
    }

    std::vector<Value> batched;
    Status st = pred->EvalBatch(batch, rids, &batched);
    ASSERT_TRUE(st.ok()) << pred->ToString() << ": " << st;
    ASSERT_EQ(batched.size(), rids.size());
    std::vector<uint32_t> sel;
    ASSERT_TRUE(pred->FilterBatch(batch, rids, &sel).ok());

    std::vector<uint32_t> expect_sel;
    for (size_t i = 0; i < rids.size(); ++i) {
      auto row_val = pred->Eval(rows[rids[i]]);
      ASSERT_TRUE(row_val.ok()) << pred->ToString() << ": " << row_val.status();
      EXPECT_EQ(batched[i].Compare(row_val.value()), 0)
          << "round=" << round << " expr=" << pred->ToString() << " rid="
          << rids[i] << " batch=" << batched[i].ToString() << " row="
          << row_val.value().ToString();
      auto pass = pred->EvalBool(rows[rids[i]]);
      ASSERT_TRUE(pass.ok());
      if (pass.value()) expect_sel.push_back(rids[i]);
    }
    EXPECT_EQ(sel, expect_sel) << "round=" << round
                               << " expr=" << pred->ToString();
  }
}

// ---------------------------------------------------------------------------
// Operator-level regressions exercised through both executor paths.

Schema NumSchema() {
  return Schema({{"x", DataType::kDouble, true, ""}});
}

PlanPtr DoubleValues(std::vector<double> xs) {
  std::vector<Row> rows;
  for (double x : xs) rows.push_back({Value(x)});
  return std::make_unique<ValuesNode>(NumSchema(), std::move(rows));
}

std::vector<Row> MustExecute(PlanNode* plan) {
  auto r = ExecutePlan(plan);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? r.value() : std::vector<Row>{};
}

TEST(BatchOperatorTest, SortWithNansIsStableAndNanLast) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (ExecMode m : {ExecMode::kRow, ExecMode::kBatch}) {
    ScopedExecMode mode(m);
    std::vector<SortKey> keys;
    keys.push_back({Col("x"), /*ascending=*/true});
    auto sort = std::make_unique<SortNode>(
        DoubleValues({3.0, nan, -1.0, nan, 2.0}), std::move(keys));
    auto rows = MustExecute(sort.get());
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), -1.0);
    EXPECT_DOUBLE_EQ(rows[1][0].AsDouble(), 2.0);
    EXPECT_DOUBLE_EQ(rows[2][0].AsDouble(), 3.0);
    EXPECT_TRUE(std::isnan(rows[3][0].AsDouble()));
    EXPECT_TRUE(std::isnan(rows[4][0].AsDouble()));
  }
}

TEST(BatchOperatorTest, DistinctCollapsesNans) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (ExecMode m : {ExecMode::kRow, ExecMode::kBatch}) {
    ScopedExecMode mode(m);
    auto distinct = std::make_unique<DistinctNode>(
        DoubleValues({nan, 1.0, nan, 1.0, nan}));
    auto rows = MustExecute(distinct.get());
    ASSERT_EQ(rows.size(), 2u);
  }
}

TEST(BatchOperatorTest, LimitOffsetAcrossBatchBoundaries) {
  const int saved = DefaultBatchSize();
  SetDefaultBatchSize(2);  // force OFFSET/LIMIT to straddle batches
  std::vector<double> xs;
  for (int i = 0; i < 11; ++i) xs.push_back(i);
  for (ExecMode m : {ExecMode::kRow, ExecMode::kBatch}) {
    ScopedExecMode mode(m);
    auto limit =
        std::make_unique<LimitNode>(DoubleValues(xs), /*limit=*/5, /*offset=*/3);
    auto rows = MustExecute(limit.get());
    ASSERT_EQ(rows.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_DOUBLE_EQ(rows[static_cast<size_t>(i)][0].AsDouble(), 3.0 + i);
    }
  }
  SetDefaultBatchSize(saved);
}

TEST(BatchOperatorTest, NullLikeIsNullNotFalse) {
  // NOT (NULL LIKE '%') must not become true: LIKE over NULL yields NULL,
  // and NOT propagates it, so the row is filtered out under both paths.
  Schema s({{"s", DataType::kString, true, ""}});
  std::vector<Row> rows = {{Value("abc")}, {Value::Null()}, {Value("zzz")}};
  for (ExecMode m : {ExecMode::kRow, ExecMode::kBatch}) {
    ScopedExecMode mode(m);
    auto filter = std::make_unique<FilterNode>(
        std::make_unique<ValuesNode>(s, rows),
        std::make_unique<NotExpr>(
            std::make_unique<LikeExpr>(Col("s"), "a%")));
    auto got = MustExecute(filter.get());
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0][0].AsString(), "zzz");
  }
}

}  // namespace
}  // namespace xmlrdb::rdb
