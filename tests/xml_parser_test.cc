#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"

namespace xmlrdb::xml {
namespace {

Result<std::unique_ptr<Document>> P(const std::string& text,
                                    const ParseOptions& opt = {}) {
  return Parse(text, opt);
}

TEST(XmlParserTest, MinimalDocument) {
  auto doc = P("<a/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_NE(doc.value()->root(), nullptr);
  EXPECT_EQ(doc.value()->root()->name(), "a");
  EXPECT_TRUE(doc.value()->root()->children().empty());
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto doc = P("<a><b>hello</b><c><d>world</d></c></a>");
  ASSERT_TRUE(doc.ok());
  const Node* root = doc.value()->root();
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children()[0]->name(), "b");
  EXPECT_EQ(root->children()[0]->StringValue(), "hello");
  EXPECT_EQ(root->StringValue(), "helloworld");
}

TEST(XmlParserTest, Attributes) {
  auto doc = P("<a x=\"1\" y='two' z=\"a&amp;b\"/>");
  ASSERT_TRUE(doc.ok());
  const Node* root = doc.value()->root();
  ASSERT_EQ(root->attributes().size(), 3u);
  EXPECT_EQ(root->FindAttribute("x")->value(), "1");
  EXPECT_EQ(root->FindAttribute("y")->value(), "two");
  EXPECT_EQ(root->FindAttribute("z")->value(), "a&b");
  EXPECT_EQ(root->FindAttribute("missing"), nullptr);
}

TEST(XmlParserTest, EntityReferences) {
  auto doc = P("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->root()->StringValue(), "<tag> & \"q\" 's'");
}

TEST(XmlParserTest, CharacterReferences) {
  auto doc = P("<a>&#65;&#x42;&#x263A;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->root()->StringValue(), "AB\xE2\x98\xBA");
}

TEST(XmlParserTest, CharacterReferenceRejectsTrailingGarbage) {
  // strtol-style lenience ("&#12abc;" == 12) is not well-formed XML.
  EXPECT_FALSE(P("<a>&#12abc;</a>").ok());
  EXPECT_FALSE(P("<a>&#x1G;</a>").ok());
  EXPECT_FALSE(P("<a>&#x 41;</a>").ok());
  EXPECT_FALSE(P("<a>&#-5;</a>").ok());
}

TEST(XmlParserTest, CharacterReferenceRejectsEmptyAndZero) {
  EXPECT_FALSE(P("<a>&#;</a>").ok());
  EXPECT_FALSE(P("<a>&#x;</a>").ok());
  EXPECT_FALSE(P("<a>&#0;</a>").ok());
}

TEST(XmlParserTest, CharacterReferenceRejectsSurrogates) {
  // U+D800..U+DFFF are not characters; encoding them yields invalid UTF-8.
  EXPECT_FALSE(P("<a>&#xD800;</a>").ok());
  EXPECT_FALSE(P("<a>&#xDBFF;</a>").ok());
  EXPECT_FALSE(P("<a>&#xDFFF;</a>").ok());
  EXPECT_FALSE(P("<a>&#55296;</a>").ok());
  // The neighbours are fine.
  EXPECT_TRUE(P("<a>&#xD7FF;</a>").ok());
  EXPECT_TRUE(P("<a>&#xE000;</a>").ok());
}

TEST(XmlParserTest, CharacterReferenceRejectsOutOfRange) {
  EXPECT_FALSE(P("<a>&#x110000;</a>").ok());
  // Huge digit strings must not overflow into the valid range.
  EXPECT_FALSE(P("<a>&#99999999999999999999;</a>").ok());
  EXPECT_TRUE(P("<a>&#x10FFFF;</a>").ok());
}

TEST(XmlParserTest, OverlongReferenceReportsTooLongNotUnterminated) {
  std::string ref = "&#" + std::string(40, '1') + ";";
  auto doc = P("<a>" + ref + "</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("too long"), std::string::npos)
      << doc.status();
  auto eof = P("<a>&amp");
  ASSERT_FALSE(eof.ok());
  EXPECT_NE(eof.status().message().find("unterminated"), std::string::npos)
      << eof.status();
}

TEST(XmlParserTest, CharacterReferencesRoundTripThroughSerializer) {
  for (const std::string body :
       {"&#65;&#x42;", "&#x263A;", "&#xD7FF;", "&#xE000;", "&#x10FFFF;",
        "&lt;&amp;&gt;"}) {
    auto doc = P("<a>" + body + "</a>");
    ASSERT_TRUE(doc.ok()) << body << ": " << doc.status();
    std::string text = Serialize(*doc.value());
    auto again = P(text);
    ASSERT_TRUE(again.ok()) << text << ": " << again.status();
    EXPECT_EQ(again.value()->root()->StringValue(),
              doc.value()->root()->StringValue())
        << body;
  }
}

TEST(XmlParserTest, CData) {
  auto doc = P("<a><![CDATA[<raw> & stuff]]></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->root()->StringValue(), "<raw> & stuff");
}

TEST(XmlParserTest, CommentsDroppedByDefault) {
  auto doc = P("<a><!-- note --><b/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->root()->children().size(), 1u);
}

TEST(XmlParserTest, CommentsKeptWhenAsked) {
  ParseOptions opt;
  opt.keep_comments = true;
  auto doc = P("<a><!-- note --></a>", opt);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value()->root()->children().size(), 1u);
  EXPECT_EQ(doc.value()->root()->children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(doc.value()->root()->children()[0]->value(), " note ");
}

TEST(XmlParserTest, ProcessingInstructions) {
  ParseOptions opt;
  opt.keep_processing_instructions = true;
  auto doc = P("<a><?target data here?></a>", opt);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value()->root()->children().size(), 1u);
  const Node* pi = doc.value()->root()->children()[0].get();
  EXPECT_EQ(pi->kind(), NodeKind::kProcessingInstruction);
  EXPECT_EQ(pi->name(), "target");
  EXPECT_EQ(pi->value(), "data here");
}

TEST(XmlParserTest, XmlDeclarationAndDoctype) {
  auto doc = P("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
               "<!DOCTYPE bib [<!ELEMENT bib (#PCDATA)>]>\n"
               "<bib>x</bib>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value()->doctype_name(), "bib");
  EXPECT_NE(doc.value()->dtd_text().find("<!ELEMENT bib"), std::string::npos);
}

TEST(XmlParserTest, WhitespaceStrippingToggle) {
  auto stripped = P("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped.value()->root()->children().size(), 1u);

  ParseOptions keep;
  keep.strip_ignorable_whitespace = false;
  auto kept = P("<a>\n  <b/>\n</a>", keep);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept.value()->root()->children().size(), 3u);
}

TEST(XmlParserTest, MixedContentPreserved) {
  auto doc = P("<p>one<b>two</b>three</p>");
  ASSERT_TRUE(doc.ok());
  const Node* root = doc.value()->root();
  ASSERT_EQ(root->children().size(), 3u);
  EXPECT_TRUE(root->children()[0]->IsText());
  EXPECT_TRUE(root->children()[1]->IsElement());
  EXPECT_TRUE(root->children()[2]->IsText());
  EXPECT_EQ(root->StringValue(), "onetwothree");
}

TEST(XmlParserTest, ErrorMismatchedTags) {
  auto doc = P("<a><b></a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
  EXPECT_NE(doc.status().message().find("mismatched"), std::string::npos);
}

TEST(XmlParserTest, ErrorReportsLineAndColumn) {
  auto doc = P("<a>\n<b>\n</wrong>\n</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 3"), std::string::npos)
      << doc.status();
}

TEST(XmlParserTest, ErrorCases) {
  EXPECT_FALSE(P("").ok());
  EXPECT_FALSE(P("plain text").ok());
  EXPECT_FALSE(P("<a>").ok());                     // unterminated
  EXPECT_FALSE(P("<a x=1/>").ok());                // unquoted attribute
  EXPECT_FALSE(P("<a x=\"1\" x=\"2\"/>").ok());    // duplicate attribute
  EXPECT_FALSE(P("<a>&unknown;</a>").ok());        // unknown entity
  EXPECT_FALSE(P("<a></a><b/>").ok());             // two roots
  EXPECT_FALSE(P("<a><b attr></b></a>").ok());     // attr without value
  EXPECT_FALSE(P("<a>&#xFFFFFFFF;</a>").ok());     // invalid char ref
  EXPECT_FALSE(P("<1a/>").ok());                   // bad name start
}

TEST(XmlParserTest, FragmentParsing) {
  auto frag = ParseFragment("<item id=\"3\"><name>x</name></item>");
  ASSERT_TRUE(frag.ok()) << frag.status();
  EXPECT_EQ(frag.value()->name(), "item");
  EXPECT_FALSE(ParseFragment("<a/><b/>").ok());
  EXPECT_FALSE(ParseFragment("just text").ok());
}

TEST(XmlParserTest, RoundTripThroughSerializer) {
  const std::string text =
      "<order id=\"4711\"><date>2003-08-19</date>"
      "<lineitem sku=\"a&amp;b\">2 &lt; 3</lineitem></order>";
  auto doc = P(text);
  ASSERT_TRUE(doc.ok());
  std::string serialized = Serialize(*doc.value());
  auto again = P(serialized);
  ASSERT_TRUE(again.ok()) << serialized;
  EXPECT_EQ(Canonicalize(*doc.value()), Canonicalize(*again.value()));
}

TEST(XmlParserTest, NamespacePrefixesTreatedLexically) {
  auto doc = P("<ns:a xmlns:ns=\"http://x\" ns:attr=\"v\"><ns:b/></ns:a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->root()->name(), "ns:a");
  EXPECT_EQ(doc.value()->root()->children()[0]->name(), "ns:b");
  EXPECT_NE(doc.value()->root()->FindAttribute("ns:attr"), nullptr);
}

TEST(XmlParserTest, DeepNestingNoStackIssues) {
  std::string text;
  const int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) text += "<d>";
  for (int i = 0; i < kDepth; ++i) text += "</d>";
  auto doc = P(text);
  ASSERT_TRUE(doc.ok());
  const Node* n = doc.value()->root();
  int depth = 1;
  while (!n->children().empty()) {
    n = n->children()[0].get();
    ++depth;
  }
  EXPECT_EQ(depth, kDepth);
}

}  // namespace
}  // namespace xmlrdb::xml
