// Tests for the global metrics registry (common/metrics.h).

#include "common/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xmlrdb {
namespace {

// The registry is process-global; each test restores the disabled default.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(MetricsTest, DisabledAddIsANoOp) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_FALSE(reg.enabled());
  reg.Add("x", 5);
  EXPECT_EQ(reg.Get("x"), 0);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST_F(MetricsTest, EnabledCountersAccumulate) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("x", 5);
  reg.Add("x", 2);
  reg.Add("y", 1);
  EXPECT_EQ(reg.Get("x"), 7);
  EXPECT_EQ(reg.Get("y"), 1);
  EXPECT_EQ(reg.Get("unset"), 0);
  EXPECT_EQ(reg.Snapshot().size(), 2u);
}

TEST_F(MetricsTest, DeltaReportsOnlyChangedCounters) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("stable", 3);
  reg.Add("moves", 1);
  MetricsSnapshot before = reg.Snapshot();
  reg.Add("moves", 4);
  reg.Add("fresh", 9);
  MetricsSnapshot delta = MetricsRegistry::Delta(before, reg.Snapshot());
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta["moves"], 4);
  EXPECT_EQ(delta["fresh"], 9);
}

TEST_F(MetricsTest, ResetClearsCountersButKeepsEnabledFlag) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("x", 5);
  reg.Reset();
  EXPECT_EQ(reg.Get("x"), 0);
  EXPECT_TRUE(reg.enabled());
}

TEST_F(MetricsTest, ScopedCaptureEnablesAndRestores) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_FALSE(reg.enabled());
  {
    ScopedMetricsCapture capture;
    EXPECT_TRUE(reg.enabled());
    reg.Add("inside", 2);
    MetricsSnapshot delta = capture.Delta();
    ASSERT_EQ(delta.size(), 1u);
    EXPECT_EQ(delta["inside"], 2);
  }
  EXPECT_FALSE(reg.enabled());
}

TEST_F(MetricsTest, NestedCapturesKeepRegistryEnabledUntilOutermostEnds) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_FALSE(reg.enabled());
  {
    ScopedMetricsCapture outer;
    {
      ScopedMetricsCapture inner;
      EXPECT_TRUE(reg.enabled());
    }
    // The inner capture ending must not turn metrics off for the outer one.
    EXPECT_TRUE(reg.enabled());
    reg.Add("after_inner", 1);
    EXPECT_EQ(outer.Delta()["after_inner"], 1);
  }
  EXPECT_FALSE(reg.enabled());
}

TEST_F(MetricsTest, CaptureDoesNotClobberManualEnable) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  { ScopedMetricsCapture capture; }
  // A capture ending never disables a manually-enabled registry.
  EXPECT_TRUE(reg.enabled());
}

TEST_F(MetricsTest, ConcurrentOverlappingCaptures) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 200; ++i) {
        ScopedMetricsCapture capture;
        EXPECT_TRUE(reg.enabled());
        reg.Add("thread." + std::to_string(t), 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(reg.enabled());
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.Get("thread." + std::to_string(t)), 200);
  }
}

TEST_F(MetricsTest, ConcurrentAddsAcrossShardsLoseNothing) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.Add("shared", 1);
        reg.Add("counter." + std::to_string(i % 32), 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.Get("shared"), kThreads * kPerThread);
  int64_t spread = 0;
  for (int i = 0; i < 32; ++i) spread += reg.Get("counter." + std::to_string(i));
  EXPECT_EQ(spread, kThreads * kPerThread);
}

TEST_F(MetricsTest, GetHistogramReturnsStableReference) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram& h1 = reg.GetHistogram("lat");
  Histogram& h2 = reg.GetHistogram("lat");
  EXPECT_EQ(&h1, &h2);
  reg.Reset();  // zeroes contents but never destroys the histogram
  EXPECT_EQ(&reg.GetHistogram("lat"), &h1);
}

TEST_F(MetricsTest, RecordLatencyRespectsEnabledFlag) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.RecordLatency("lat", 10);  // disabled: dropped
  EXPECT_EQ(reg.GetHistogram("lat").count(), 0);
  reg.set_enabled(true);
  reg.RecordLatency("lat", 10);
  reg.RecordLatency("lat", 20);
  auto snaps = reg.HistogramSnapshots();
  ASSERT_EQ(snaps.count("lat"), 1u);
  EXPECT_EQ(snaps["lat"].count, 2);
  EXPECT_EQ(snaps["lat"].max, 20);
}

TEST_F(MetricsTest, ResetZeroesHistograms) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.RecordLatency("lat", 100);
  reg.Reset();
  EXPECT_EQ(reg.GetHistogram("lat").count(), 0);
  EXPECT_EQ(reg.GetHistogram("lat").max(), 0);
}

TEST_F(MetricsTest, RenderPrometheusExposesCountersAndQuantiles) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("sql.statements", 7);
  reg.RecordLatency("sql.select.latency_us", 100);
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("xmlrdb_sql_statements 7"), std::string::npos) << text;
  EXPECT_NE(text.find("xmlrdb_sql_select_latency_us_count 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos) << text;
  EXPECT_NE(text.find("xmlrdb_sql_select_latency_us_max 100"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace xmlrdb
