// Tests for the global metrics registry (common/metrics.h).

#include "common/metrics.h"

#include <gtest/gtest.h>

namespace xmlrdb {
namespace {

// The registry is process-global; each test restores the disabled default.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(MetricsTest, DisabledAddIsANoOp) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_FALSE(reg.enabled());
  reg.Add("x", 5);
  EXPECT_EQ(reg.Get("x"), 0);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST_F(MetricsTest, EnabledCountersAccumulate) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("x", 5);
  reg.Add("x", 2);
  reg.Add("y", 1);
  EXPECT_EQ(reg.Get("x"), 7);
  EXPECT_EQ(reg.Get("y"), 1);
  EXPECT_EQ(reg.Get("unset"), 0);
  EXPECT_EQ(reg.Snapshot().size(), 2u);
}

TEST_F(MetricsTest, DeltaReportsOnlyChangedCounters) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("stable", 3);
  reg.Add("moves", 1);
  MetricsSnapshot before = reg.Snapshot();
  reg.Add("moves", 4);
  reg.Add("fresh", 9);
  MetricsSnapshot delta = MetricsRegistry::Delta(before, reg.Snapshot());
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta["moves"], 4);
  EXPECT_EQ(delta["fresh"], 9);
}

TEST_F(MetricsTest, ResetClearsCountersButKeepsEnabledFlag) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("x", 5);
  reg.Reset();
  EXPECT_EQ(reg.Get("x"), 0);
  EXPECT_TRUE(reg.enabled());
}

TEST_F(MetricsTest, ScopedCaptureEnablesAndRestores) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_FALSE(reg.enabled());
  {
    ScopedMetricsCapture capture;
    EXPECT_TRUE(reg.enabled());
    reg.Add("inside", 2);
    MetricsSnapshot delta = capture.Delta();
    ASSERT_EQ(delta.size(), 1u);
    EXPECT_EQ(delta["inside"], 2);
  }
  EXPECT_FALSE(reg.enabled());
}

}  // namespace
}  // namespace xmlrdb
