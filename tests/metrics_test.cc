// Tests for the global metrics registry (common/metrics.h).

#include "common/metrics.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/resource_tracker.h"

namespace xmlrdb {
namespace {

// The registry is process-global; each test restores the disabled default.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(MetricsTest, DisabledAddIsANoOp) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_FALSE(reg.enabled());
  reg.Add("x", 5);
  EXPECT_EQ(reg.Get("x"), 0);
  EXPECT_TRUE(reg.Snapshot().empty());
}

TEST_F(MetricsTest, EnabledCountersAccumulate) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("x", 5);
  reg.Add("x", 2);
  reg.Add("y", 1);
  EXPECT_EQ(reg.Get("x"), 7);
  EXPECT_EQ(reg.Get("y"), 1);
  EXPECT_EQ(reg.Get("unset"), 0);
  EXPECT_EQ(reg.Snapshot().size(), 2u);
}

TEST_F(MetricsTest, DeltaReportsOnlyChangedCounters) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("stable", 3);
  reg.Add("moves", 1);
  MetricsSnapshot before = reg.Snapshot();
  reg.Add("moves", 4);
  reg.Add("fresh", 9);
  MetricsSnapshot delta = MetricsRegistry::Delta(before, reg.Snapshot());
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta["moves"], 4);
  EXPECT_EQ(delta["fresh"], 9);
}

TEST_F(MetricsTest, ResetClearsCountersButKeepsEnabledFlag) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("x", 5);
  reg.Reset();
  EXPECT_EQ(reg.Get("x"), 0);
  EXPECT_TRUE(reg.enabled());
}

TEST_F(MetricsTest, ScopedCaptureEnablesAndRestores) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_FALSE(reg.enabled());
  {
    ScopedMetricsCapture capture;
    EXPECT_TRUE(reg.enabled());
    reg.Add("inside", 2);
    MetricsSnapshot delta = capture.Delta();
    ASSERT_EQ(delta.size(), 1u);
    EXPECT_EQ(delta["inside"], 2);
  }
  EXPECT_FALSE(reg.enabled());
}

TEST_F(MetricsTest, NestedCapturesKeepRegistryEnabledUntilOutermostEnds) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_FALSE(reg.enabled());
  {
    ScopedMetricsCapture outer;
    {
      ScopedMetricsCapture inner;
      EXPECT_TRUE(reg.enabled());
    }
    // The inner capture ending must not turn metrics off for the outer one.
    EXPECT_TRUE(reg.enabled());
    reg.Add("after_inner", 1);
    EXPECT_EQ(outer.Delta()["after_inner"], 1);
  }
  EXPECT_FALSE(reg.enabled());
}

TEST_F(MetricsTest, CaptureDoesNotClobberManualEnable) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  { ScopedMetricsCapture capture; }
  // A capture ending never disables a manually-enabled registry.
  EXPECT_TRUE(reg.enabled());
}

TEST_F(MetricsTest, ConcurrentOverlappingCaptures) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < 200; ++i) {
        ScopedMetricsCapture capture;
        EXPECT_TRUE(reg.enabled());
        reg.Add("thread." + std::to_string(t), 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(reg.enabled());
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.Get("thread." + std::to_string(t)), 200);
  }
}

TEST_F(MetricsTest, ConcurrentAddsAcrossShardsLoseNothing) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.Add("shared", 1);
        reg.Add("counter." + std::to_string(i % 32), 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.Get("shared"), kThreads * kPerThread);
  int64_t spread = 0;
  for (int i = 0; i < 32; ++i) spread += reg.Get("counter." + std::to_string(i));
  EXPECT_EQ(spread, kThreads * kPerThread);
}

TEST_F(MetricsTest, GetHistogramReturnsStableReference) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram& h1 = reg.GetHistogram("lat");
  Histogram& h2 = reg.GetHistogram("lat");
  EXPECT_EQ(&h1, &h2);
  reg.Reset();  // zeroes contents but never destroys the histogram
  EXPECT_EQ(&reg.GetHistogram("lat"), &h1);
}

TEST_F(MetricsTest, RecordLatencyRespectsEnabledFlag) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.RecordLatency("lat", 10);  // disabled: dropped
  EXPECT_EQ(reg.GetHistogram("lat").count(), 0);
  reg.set_enabled(true);
  reg.RecordLatency("lat", 10);
  reg.RecordLatency("lat", 20);
  auto snaps = reg.HistogramSnapshots();
  ASSERT_EQ(snaps.count("lat"), 1u);
  EXPECT_EQ(snaps["lat"].count, 2);
  EXPECT_EQ(snaps["lat"].max, 20);
}

TEST_F(MetricsTest, ResetZeroesHistograms) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.RecordLatency("lat", 100);
  reg.Reset();
  EXPECT_EQ(reg.GetHistogram("lat").count(), 0);
  EXPECT_EQ(reg.GetHistogram("lat").max(), 0);
}

// -- Prometheus exposition -------------------------------------------------

namespace {

/// Minimal parse of the text exposition format: every line must be either
/// `# TYPE <name> <kind>` or `<name>[{labels}] <integer>`, and every sample
/// must belong to a preceding TYPE declaration (histogram samples to their
/// base name's declaration, counters to the `_total` name).
struct Exposition {
  std::map<std::string, std::string> types;              // name -> kind
  std::vector<std::pair<std::string, int64_t>> samples;  // full line name
};

Exposition ParseExposition(const std::string& text) {
  Exposition out;
  size_t start = 0;
  while (start < text.size()) {
    size_t eol = text.find('\n', start);
    EXPECT_NE(eol, std::string::npos) << "unterminated last line";
    std::string line = text.substr(start, eol - start);
    start = eol + 1;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::string rest = line.substr(7);
      size_t sp = rest.find(' ');
      if (sp == std::string::npos) {
        ADD_FAILURE() << "malformed TYPE line: " << line;
        continue;
      }
      std::string kind = rest.substr(sp + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      out.types[rest.substr(0, sp)] = kind;
      continue;
    }
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      ADD_FAILURE() << "malformed sample line: " << line;
      continue;
    }
    std::string name = line.substr(0, sp);
    std::string value = line.substr(sp + 1);
    if (value != "+Inf") {
      errno = 0;
      char* end = nullptr;
      int64_t v = std::strtoll(value.c_str(), &end, 10);
      EXPECT_TRUE(errno == 0 && end != nullptr && *end == '\0')
          << "non-integer sample value: " << line;
      out.samples.emplace_back(name, v);
    }
    // The sample's metric family must have been declared.
    std::string base = name.substr(0, name.find('{'));
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t n = std::strlen(suffix);
      if (base.size() > n && base.compare(base.size() - n, n, suffix) == 0) {
        std::string stripped = base.substr(0, base.size() - n);
        if (out.types.count(stripped)) base = stripped;
        break;
      }
    }
    EXPECT_TRUE(out.types.count(base)) << "undeclared sample: " << line;
  }
  return out;
}

int64_t SampleValue(const Exposition& exp, const std::string& name) {
  for (const auto& [n, v] : exp.samples) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "missing sample " << name;
  return -1;
}

}  // namespace

TEST_F(MetricsTest, RenderPrometheusParsesAsValidExposition) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.set_enabled(true);
  reg.Add("sql.statements", 7);
  reg.RecordLatency("sql.select.latency_us", 3);
  reg.RecordLatency("sql.select.latency_us", 100);

  std::string text = reg.RenderPrometheus();
  Exposition exp = ParseExposition(text);

  // Counter: `_total` suffix and a counter TYPE line.
  EXPECT_EQ(exp.types["xmlrdb_sql_statements_total"], "counter") << text;
  EXPECT_EQ(SampleValue(exp, "xmlrdb_sql_statements_total"), 7) << text;

  // Histogram: declared, with cumulative buckets ending in +Inf == count.
  EXPECT_EQ(exp.types["xmlrdb_sql_select_latency_us"], "histogram") << text;
  EXPECT_EQ(SampleValue(exp, "xmlrdb_sql_select_latency_us_sum"), 103)
      << text;
  EXPECT_EQ(SampleValue(exp, "xmlrdb_sql_select_latency_us_count"), 2)
      << text;
  int64_t prev_cumulative = 0;
  int64_t prev_le = -1;
  int buckets = 0;
  for (const auto& [name, value] : exp.samples) {
    if (name.rfind("xmlrdb_sql_select_latency_us_bucket{le=\"", 0) != 0) {
      continue;
    }
    ++buckets;
    std::string le = name.substr(name.find('"') + 1);
    le = le.substr(0, le.find('"'));
    if (le != "+Inf") {
      int64_t le_v = std::strtoll(le.c_str(), nullptr, 10);
      EXPECT_GT(le_v, prev_le) << "le bounds must increase: " << name;
      prev_le = le_v;
    }
    EXPECT_GE(value, prev_cumulative)
        << "buckets must be cumulative: " << name;
    prev_cumulative = value;
  }
  EXPECT_GT(buckets, 1) << text;
  EXPECT_NE(text.find("xmlrdb_sql_select_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;

  // Resource gauges ride along even though they live outside the registry.
  ResourceTracker::Global().GetGauge("test.prom_gauge").Set(42);
  exp = ParseExposition(reg.RenderPrometheus());
  EXPECT_EQ(exp.types["xmlrdb_test_prom_gauge"], "gauge");
  EXPECT_EQ(SampleValue(exp, "xmlrdb_test_prom_gauge"), 42);
  ResourceTracker::Global().GetGauge("test.prom_gauge").Set(0);
}

}  // namespace
}  // namespace xmlrdb
