// Concurrency tests for the RW-locked engine: readers see every statement
// as an atomic unit, DDL churn never dangles a table, and parallel bulk
// shredding matches serial storage.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "rdb/database.h"
#include "shred/evaluator.h"
#include "shred/registry.h"
#include "workload/random_tree.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlrdb {
namespace {

using rdb::Database;
using rdb::QueryResult;

TEST(ConcurrencyTest, ReadersSeeAtomicInsertDeleteBatches) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INTEGER NOT NULL)").ok());
  constexpr int64_t kBase = 200;
  constexpr int64_t kBatch = 8;
  {
    std::string sql = "INSERT INTO t VALUES (0)";
    for (int64_t i = 1; i < kBase; ++i) sql += ", (" + std::to_string(i) + ")";
    ASSERT_TRUE(db.Execute(sql).ok());
  }
  // One multi-row INSERT statement per round, then one DELETE of the same
  // rows. Statement-scope exclusive locks make each statement atomic, so a
  // concurrent COUNT(*) may only ever see kBase or kBase + kBatch.
  std::string insert_sql = "INSERT INTO t VALUES (1000)";
  for (int64_t i = 1; i < kBatch; ++i) {
    insert_sql += ", (" + std::to_string(1000 + i) + ")";
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::atomic<int64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto res = db.Execute("SELECT COUNT(*) FROM t");
        ASSERT_TRUE(res.ok()) << res.status();
        int64_t n = res.value().rows[0][0].AsInt();
        if (n != kBase && n != kBase + kBatch) bad.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 300; ++round) {
      ASSERT_TRUE(db.Execute(insert_sql).ok());
      ASSERT_TRUE(db.Execute("DELETE FROM t WHERE x >= 1000").ok());
    }
    stop.store(true);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(reads.load(), 0);
  auto final_count = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count.value().rows[0][0].AsInt(), kBase);
}

TEST(ConcurrencyTest, SelectsSurviveCreateDropChurnOnOtherTables) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE stable (x INTEGER NOT NULL)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO stable VALUES (1), (2), (3)").ok());
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto res = db.Execute("SELECT SUM(x) FROM stable");
        ASSERT_TRUE(res.ok()) << res.status();
        EXPECT_EQ(res.value().rows[0][0].AsInt(), 6);
      }
    });
  }
  std::thread ddl([&] {
    for (int i = 0; i < 200; ++i) {
      std::string name = "scratch" + std::to_string(i % 4);
      auto created =
          db.Execute("CREATE TABLE " + name + " (y INTEGER NOT NULL)");
      ASSERT_TRUE(created.ok()) << created.status();
      ASSERT_TRUE(db.Execute("INSERT INTO " + name + " VALUES (7)").ok());
      ASSERT_TRUE(db.Execute("DROP TABLE " + name).ok());
    }
    stop.store(true);
  });
  ddl.join();
  for (auto& t : readers) t.join();
}

TEST(ConcurrencyTest, PreparedExecutionSurvivesConcurrentDdl) {
  // Prepared statements share one plan-cache entry across threads while a
  // DDL thread churns the catalog: every execution must either reuse a
  // still-valid plan or replan, never touch dropped metadata.
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE stable (x INTEGER NOT NULL, "
                         "grp INTEGER NOT NULL)")
                  .ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO stable VALUES (" + std::to_string(i) +
                           ", " + std::to_string(i % 4) + ")")
                    .ok());
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      int64_t g = 0;
      while (!stop.load()) {
        auto stmt = db.Prepare("SELECT COUNT(x) FROM stable WHERE grp = ?");
        ASSERT_TRUE(stmt.ok()) << stmt.status();
        auto res = stmt.value().Execute({rdb::Value(g % 4)});
        ASSERT_TRUE(res.ok()) << res.status();
        EXPECT_EQ(res.value().rows[0][0].AsInt(), 16);
        ++g;
      }
    });
  }
  std::thread ddl([&] {
    for (int i = 0; i < 100; ++i) {
      // Churn unrelated tables (bumps the schema version => forces version
      // re-checks) and add an index on the queried table mid-run (switches
      // the cached plan's access path under the readers).
      std::string name = "scratch" + std::to_string(i % 4);
      ASSERT_TRUE(
          db.Execute("CREATE TABLE " + name + " (y INTEGER NOT NULL)").ok());
      ASSERT_TRUE(db.Execute("DROP TABLE " + name).ok());
      if (i == 50) {
        ASSERT_TRUE(
            db.Execute("CREATE INDEX stable_grp ON stable (grp)").ok());
      }
    }
    stop.store(true);
  });
  ddl.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(db.plan_cache().stats().hits, 0);
}

TEST(ConcurrencyTest, ConcurrentXPathQueriesOverOneDatabase) {
  // Shared scratch tables used to make this impossible: two threads running
  // multi-step paths over the same Database clobbered each other's context
  // tables. ScratchName() gives each thread its own.
  auto mapping = shred::CreateMapping("edge");
  ASSERT_TRUE(mapping.ok());
  Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  workload::RandomTreeConfig cfg;
  cfg.seed = 7;
  auto doc = workload::GenerateRandomTree(cfg);
  auto id = mapping.value()->Store(*doc, &db);
  ASSERT_TRUE(id.ok());

  auto path = xpath::ParseXPath("//t1/t2");
  ASSERT_TRUE(path.ok());
  auto expected = shred::EvalPath(path.value(), mapping.value().get(), &db,
                                  id.value());
  ASSERT_TRUE(expected.ok());

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto got = shred::EvalPath(path.value(), mapping.value().get(), &db,
                                   id.value());
        ASSERT_TRUE(got.ok()) << got.status();
        if (got.value() != expected.value()) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelStoreAllMatchesSerialStore) {
  std::vector<std::unique_ptr<xml::Document>> docs;
  std::vector<const xml::Document*> doc_ptrs;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    workload::RandomTreeConfig cfg;
    cfg.seed = seed;
    docs.push_back(workload::GenerateRandomTree(cfg));
    doc_ptrs.push_back(docs.back().get());
  }
  for (const char* name : {"edge", "interval", "dewey", "blob"}) {
    auto serial_mapping = shred::CreateMapping(name);
    auto parallel_mapping = shred::CreateMapping(name);
    ASSERT_TRUE(serial_mapping.ok() && parallel_mapping.ok());
    EXPECT_TRUE(parallel_mapping.value()->SupportsParallelStore()) << name;

    Database serial_db, parallel_db;
    ASSERT_TRUE(serial_mapping.value()->Initialize(&serial_db).ok());
    ASSERT_TRUE(parallel_mapping.value()->Initialize(&parallel_db).ok());
    std::vector<shred::DocId> serial_ids;
    for (const auto* d : doc_ptrs) {
      auto id = serial_mapping.value()->Store(*d, &serial_db);
      ASSERT_TRUE(id.ok()) << name << ": " << id.status();
      serial_ids.push_back(id.value());
    }
    auto parallel_ids =
        parallel_mapping.value()->StoreAll(doc_ptrs, &parallel_db);
    ASSERT_TRUE(parallel_ids.ok()) << name << ": " << parallel_ids.status();
    ASSERT_EQ(parallel_ids.value().size(), doc_ptrs.size());

    // Same ids assigned, and every reconstructed document identical.
    EXPECT_EQ(parallel_ids.value(), serial_ids) << name;
    for (size_t i = 0; i < doc_ptrs.size(); ++i) {
      auto serial_doc = serial_mapping.value()->Reconstruct(&serial_db,
                                                            serial_ids[i]);
      auto parallel_doc = parallel_mapping.value()->Reconstruct(
          &parallel_db, parallel_ids.value()[i]);
      ASSERT_TRUE(serial_doc.ok() && parallel_doc.ok()) << name;
      EXPECT_EQ(xml::Serialize(*serial_doc.value()),
                xml::Serialize(*parallel_doc.value()))
          << name << " doc " << i;
    }
  }
}

// The atomic-batches scenario again, but with the full observability stack
// on: metrics, tracing, statement logging, and slow-query plan capture all
// record from every reader and writer thread at once. TSan runs this suite;
// the point is that the instrumentation itself is data-race-free.
TEST(ConcurrencyTest, ObservabilityEnabledUnderConcurrentLoad) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  reg.set_enabled(true);
  TraceCollector::Global().Clear();
  TraceCollector::Global().set_enabled(true);

  Database db;
  db.set_slow_query_threshold_us(0);  // capture a plan for every SELECT
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INTEGER NOT NULL)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto res = db.Execute("SELECT COUNT(*) FROM t");
        ASSERT_TRUE(res.ok()) << res.status();
        auto metrics = db.Execute("SELECT * FROM xmlrdb_metrics");
        ASSERT_TRUE(metrics.ok()) << metrics.status();
        auto log = db.Execute("SELECT * FROM xmlrdb_statements");
        ASSERT_TRUE(log.ok()) << log.status();
      }
    });
  }
  std::thread writer([&] {
    for (int round = 0; round < 100; ++round) {
      ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (100)").ok());
      ASSERT_TRUE(db.Execute("DELETE FROM t WHERE x = 100").ok());
    }
    stop.store(true);
  });
  writer.join();
  for (auto& t : readers) t.join();

  TraceCollector::Global().set_enabled(false);
  reg.set_enabled(false);
  EXPECT_GT(reg.Get("sql.statements"), 0);
  EXPECT_GT(TraceCollector::Global().size(), 0u);
  // Every SELECT was slow (threshold 0) and carries its analyzed plan.
  auto entries = db.statement_log().Entries();
  ASSERT_FALSE(entries.empty());
  bool saw_select_plan = false;
  for (const auto& e : entries) {
    if (e.kind == "select" && !e.plan.empty()) saw_select_plan = true;
  }
  EXPECT_TRUE(saw_select_plan);
  std::string json = TraceCollector::Global().RenderChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  TraceCollector::Global().Clear();
  reg.Reset();
}

TEST(ConcurrencyTest, InlineMappingFallsBackToSerialStoreAll) {
  auto mapping = shred::CreateMapping("binary");
  ASSERT_TRUE(mapping.ok());
  EXPECT_FALSE(mapping.value()->SupportsParallelStore());
  Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  workload::RandomTreeConfig cfg;
  cfg.seed = 3;
  auto doc = workload::GenerateRandomTree(cfg);
  std::vector<const xml::Document*> docs = {doc.get(), doc.get()};
  auto ids = mapping.value()->StoreAll(docs, &db);
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(ids.value().size(), 2u);
  EXPECT_NE(ids.value()[0], ids.value()[1]);
}

}  // namespace
}  // namespace xmlrdb
