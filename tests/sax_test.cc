// SAX parser tests: event sequences, error propagation, and differential
// equivalence with the DOM parser; plus the streaming shredders.

#include "xml/sax.h"

#include <gtest/gtest.h>

#include "shred/dewey_mapping.h"
#include "shred/edge_mapping.h"
#include "shred/streaming.h"
#include "workload/random_tree.h"
#include "workload/xmark.h"
#include "xml/serializer.h"

namespace xmlrdb {
namespace {

/// Records events as a flat trace for assertions.
class TraceHandler : public xml::SaxHandler {
 public:
  Status StartElement(std::string_view name) override {
    trace_.push_back("<" + std::string(name));
    return Status::OK();
  }
  Status Attribute(std::string_view name, std::string_view value) override {
    trace_.push_back("@" + std::string(name) + "=" + std::string(value));
    return Status::OK();
  }
  Status Text(std::string_view text) override {
    trace_.push_back("#" + std::string(text));
    return Status::OK();
  }
  Status EndElement(std::string_view name) override {
    trace_.push_back(">" + std::string(name));
    return Status::OK();
  }
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  std::vector<std::string> trace_;
};

/// Rebuilds a DOM from SAX events — used for the differential test.
class BuildHandler : public xml::SaxHandler {
 public:
  BuildHandler() : doc_(std::make_unique<xml::Document>()) {
    stack_.push_back(doc_->doc_node());
  }
  Status StartElement(std::string_view name) override {
    stack_.push_back(stack_.back()->AddElement(std::string(name)));
    return Status::OK();
  }
  Status Attribute(std::string_view name, std::string_view value) override {
    stack_.back()->SetAttr(std::string(name), std::string(value));
    return Status::OK();
  }
  Status Text(std::string_view text) override {
    stack_.back()->AddText(std::string(text));
    return Status::OK();
  }
  Status EndElement(std::string_view) override {
    stack_.pop_back();
    return Status::OK();
  }
  std::unique_ptr<xml::Document> Take() { return std::move(doc_); }

 private:
  std::unique_ptr<xml::Document> doc_;
  std::vector<xml::Node*> stack_;
};

TEST(SaxTest, EventSequence) {
  TraceHandler h;
  ASSERT_TRUE(
      xml::ParseSax("<a x=\"1\"><b>hi</b><c/></a>", &h).ok());
  EXPECT_EQ(h.trace(),
            (std::vector<std::string>{"<a", "@x=1", "<b", "#hi", ">b", "<c",
                                      ">c", ">a"}));
}

TEST(SaxTest, EntitiesAndCData) {
  TraceHandler h;
  ASSERT_TRUE(xml::ParseSax("<a>&lt;x&gt;<![CDATA[ & raw ]]></a>", &h).ok());
  EXPECT_EQ(h.trace(),
            (std::vector<std::string>{"<a", "#<x> & raw ", ">a"}));
}

TEST(SaxTest, CharacterReferencesRejectGarbage) {
  // Regression: the char-ref path used strtol, which stops at the first
  // non-digit byte — "&#12abc;" parsed as code point 12 instead of failing.
  // This path is reachable from network payloads via the blob mapping, so
  // it must follow the same strict discipline as parser.cc.
  TraceHandler ok;
  ASSERT_TRUE(xml::ParseSax("<a>&#65;&#x41;</a>", &ok).ok());
  EXPECT_EQ(ok.trace(), (std::vector<std::string>{"<a", "#AA", ">a"}));
  const char* bad[] = {
      "<a>&#12abc;</a>",       // trailing garbage after digits
      "<a>&#;</a>",            // no digits at all
      "<a>&#x;</a>",           // hex marker without digits
      "<a>&#xG1;</a>",         // non-hex digit
      "<a>&#0;</a>",           // NUL is not a valid XML char
      "<a>&#-5;</a>",          // sign is not a digit
      "<a>&#1114112;</a>",     // one past U+10FFFF
      "<a>&#x110000;</a>",     // same, hex spelling
      "<a>&#99999999999999999999;</a>",  // overflow (used to clamp)
      "<a>&#xD800;</a>",       // surrogate low bound
      "<a>&#xDFFF;</a>",       // surrogate high bound
      "<a b='&#12abc;'/>",     // same path via attribute values
  };
  for (const char* doc : bad) {
    TraceHandler h;
    EXPECT_FALSE(xml::ParseSax(doc, &h).ok()) << doc;
  }
  // Boundary values that must still be accepted.
  TraceHandler h2;
  EXPECT_TRUE(xml::ParseSax("<a>&#x10FFFF;&#xD7FF;&#xE000;</a>", &h2).ok());
}

TEST(SaxTest, ErrorsPropagate) {
  TraceHandler h;
  EXPECT_FALSE(xml::ParseSax("<a><b></a>", &h).ok());
  EXPECT_FALSE(xml::ParseSax("", &h).ok());
  EXPECT_FALSE(xml::ParseSax("<a x=1/>", &h).ok());
}

class AbortingHandler : public TraceHandler {
 public:
  Status Text(std::string_view) override {
    return Status::Internal("stop here");
  }
};

TEST(SaxTest, HandlerErrorAbortsParse) {
  AbortingHandler h;
  Status st = xml::ParseSax("<a><b>boom</b><c/></a>", &h);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // Nothing after the aborting text event.
  EXPECT_EQ(h.trace().back(), "<b");
}

TEST(SaxTest, DifferentialAgainstDomParser) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    workload::RandomTreeConfig cfg;
    cfg.seed = seed;
    cfg.mixed_prob = 0.4;
    auto doc = workload::GenerateRandomTree(cfg);
    std::string text = xml::Serialize(*doc);
    BuildHandler builder;
    ASSERT_TRUE(xml::ParseSax(text, &builder).ok()) << text;
    auto via_dom = xml::Parse(text);
    ASSERT_TRUE(via_dom.ok());
    EXPECT_EQ(xml::Canonicalize(*via_dom.value()),
              xml::Canonicalize(*builder.Take()))
        << "seed " << seed;
  }
}

TEST(StreamingShredTest, EdgeRowsIdenticalToDomPath) {
  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  std::string text = xml::Serialize(*doc);

  shred::EdgeMapping mapping;
  rdb::Database via_dom, via_stream;
  ASSERT_TRUE(mapping.Initialize(&via_dom).ok());
  ASSERT_TRUE(mapping.Initialize(&via_stream).ok());
  auto id1 = mapping.Store(*doc, &via_dom);
  auto id2 = shred::StreamStoreEdge(text, &via_stream);
  ASSERT_TRUE(id1.ok() && id2.ok()) << id2.status();
  EXPECT_EQ(id1.value(), id2.value());

  auto r1 = via_dom.Execute("SELECT * FROM edge ORDER BY target");
  auto r2 = via_stream.Execute("SELECT * FROM edge ORDER BY target");
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1.value().rows.size(), r2.value().rows.size());
  for (size_t i = 0; i < r1.value().rows.size(); ++i) {
    EXPECT_EQ(rdb::CompareRows(r1.value().rows[i], r2.value().rows[i]), 0)
        << "row " << i << ": " << rdb::RowToString(r1.value().rows[i]) << " vs "
        << rdb::RowToString(r2.value().rows[i]);
  }
}

TEST(StreamingShredTest, DeweyRowsIdenticalToDomPath) {
  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  std::string text = xml::Serialize(*doc);

  shred::DeweyMapping mapping;
  rdb::Database via_dom, via_stream;
  ASSERT_TRUE(mapping.Initialize(&via_dom).ok());
  ASSERT_TRUE(mapping.Initialize(&via_stream).ok());
  auto id1 = mapping.Store(*doc, &via_dom);
  auto id2 = shred::StreamStoreDewey(text, &via_stream);
  ASSERT_TRUE(id1.ok() && id2.ok()) << id2.status();

  auto r1 = via_dom.Execute("SELECT * FROM dw_nodes ORDER BY dewey");
  auto r2 = via_stream.Execute("SELECT * FROM dw_nodes ORDER BY dewey");
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1.value().rows.size(), r2.value().rows.size());
  for (size_t i = 0; i < r1.value().rows.size(); ++i) {
    EXPECT_EQ(rdb::CompareRows(r1.value().rows[i], r2.value().rows[i]), 0)
        << "row " << i;
  }
}

TEST(StreamingShredTest, RequiresInitializedTables) {
  rdb::Database db;
  EXPECT_EQ(shred::StreamStoreEdge("<a/>", &db).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(shred::StreamStoreDewey("<a/>", &db).status().code(),
            StatusCode::kNotFound);
}

TEST(StreamingShredTest, MalformedInputLeavesNoPartialRows) {
  shred::EdgeMapping mapping;
  rdb::Database db;
  ASSERT_TRUE(mapping.Initialize(&db).ok());
  EXPECT_FALSE(shred::StreamStoreEdge("<a><b></a>", &db).ok());
  auto r = db.Execute("SELECT COUNT(*) FROM edge");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 0);
}

}  // namespace
}  // namespace xmlrdb
