// Focused semantics tests for the generic relational evaluator
// (shred::EvalPath), beyond what the broad differential sweeps cover:
// per-context positional groups, predicate interaction, and error paths.

#include <gtest/gtest.h>

#include "shred/evaluator.h"
#include "shred/registry.h"
#include "xml/parser.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

class EvaluatorTest : public ::testing::TestWithParam<std::string> {
 protected:
  void Load(const std::string& xml_text) {
    auto m = shred::CreateMapping(GetParam());
    ASSERT_TRUE(m.ok());
    mapping_ = std::move(m).value();
    ASSERT_TRUE(mapping_->Initialize(&db_).ok());
    auto doc = xml::Parse(xml_text);
    ASSERT_TRUE(doc.ok()) << doc.status();
    auto id = mapping_->Store(*doc.value(), &db_);
    ASSERT_TRUE(id.ok()) << id.status();
    id_ = id.value();
  }

  std::vector<std::string> Strings(const std::string& xpath) {
    auto p = xpath::ParseXPath(xpath);
    EXPECT_TRUE(p.ok()) << p.status();
    auto v = shred::EvalPathStrings(p.value(), mapping_.get(), &db_, id_);
    EXPECT_TRUE(v.ok()) << v.status();
    auto out = v.ok() ? v.value() : std::vector<std::string>{};
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<shred::Mapping> mapping_;
  rdb::Database db_;
  shred::DocId id_ = 0;
};

TEST_P(EvaluatorTest, PositionalPredicateIsPerParent) {
  Load("<r><g><i>a</i><i>b</i></g><g><i>c</i></g></r>");
  // i[1] per parent group: a and c.
  EXPECT_EQ(Strings("/r/g/i[1]"), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Strings("/r/g/i[2]"), (std::vector<std::string>{"b"}));
  EXPECT_EQ(Strings("/r/g/i[last()]"), (std::vector<std::string>{"b", "c"}));
  EXPECT_TRUE(Strings("/r/g/i[3]").empty());
}

TEST_P(EvaluatorTest, PositionCountsOnlyMatchingNames) {
  Load("<r><x>skip</x><i>first</i><x>skip</x><i>second</i></r>");
  // The position is within the i-siblings, not among all children.
  EXPECT_EQ(Strings("/r/i[1]"), (std::vector<std::string>{"first"}));
  EXPECT_EQ(Strings("/r/i[2]"), (std::vector<std::string>{"second"}));
}

TEST_P(EvaluatorTest, MultiplePredicatesUseOriginalPositions) {
  Load("<r><i k=\"y\">1</i><i>2</i><i k=\"y\">3</i></r>");
  // Both predicates see the original 3-element group: [2] is the middle i
  // (no @k), so [@k][2] matches nothing; [3][@k] matches the third.
  EXPECT_TRUE(Strings("/r/i[@k][2]").empty());
  EXPECT_EQ(Strings("/r/i[3][@k]"), (std::vector<std::string>{"3"}));
}

TEST_P(EvaluatorTest, PredicateRelPathDescendsMultipleSteps) {
  Load("<r><p><q><s>ok</s></q></p><p><q/></p></r>");
  EXPECT_EQ(Strings("/r/p[q/s]").size(), 1u);
  EXPECT_EQ(Strings("/r/p[q/s = 'ok']").size(), 1u);
  EXPECT_TRUE(Strings("/r/p[q/s = 'no']").empty());
}

TEST_P(EvaluatorTest, PredicateOnWildcardRelPath) {
  Load("<r><p><a>1</a></p><p><b>2</b></p><p/></r>");
  EXPECT_EQ(Strings("/r/p[*]").size(), 2u);
  EXPECT_EQ(Strings("/r/p[* = 2]").size(), 1u);
}

TEST_P(EvaluatorTest, EmptyIntermediateStepsShortCircuit) {
  Load("<r><a/></r>");
  EXPECT_TRUE(Strings("/r/zzz/deeper/path").empty());
  EXPECT_TRUE(Strings("//zzz//deeper").empty());
}

TEST_P(EvaluatorTest, DescendantFromNestedContextsDeduplicates) {
  Load("<r><a><a><b>x</b></a></a></r>");
  // //a yields nested contexts; //a//b must still return b once.
  EXPECT_EQ(Strings("//a//b"), (std::vector<std::string>{"x"}));
}

TEST_P(EvaluatorTest, AttributeAtPathHeadSelectsNothing) {
  // The document node has no attributes; /@x is empty, matching the oracle.
  Load("<r x=\"1\"/>");
  auto p = xpath::ParseXPath("/@x");
  ASSERT_TRUE(p.ok());
  auto v = shred::EvalPath(p.value(), mapping_.get(), &db_, id_);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(v.value().empty());
}

TEST_P(EvaluatorTest, UnknownDocumentFails) {
  Load("<r/>");
  auto p = xpath::ParseXPath("/r");
  ASSERT_TRUE(p.ok());
  auto v = shred::EvalPath(p.value(), mapping_.get(), &db_, id_ + 999);
  EXPECT_FALSE(v.ok());
}

TEST_P(EvaluatorTest, RootNameMismatchYieldsEmpty) {
  Load("<r><a/></r>");
  EXPECT_TRUE(Strings("/not_r").empty());
  EXPECT_TRUE(Strings("/not_r/a").empty());
}

TEST_P(EvaluatorTest, StringValueConcatenatesDescendantText) {
  Load("<r><p>one<q>two</q>three</p></r>");
  EXPECT_EQ(Strings("/r/p"), (std::vector<std::string>{"onetwothree"}));
}

INSTANTIATE_TEST_SUITE_P(AllMappings, EvaluatorTest,
                         ::testing::ValuesIn(shred::GenericMappingNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace xmlrdb
