#include "common/thread_pool.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xmlrdb {
namespace {

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  // The destructor drains the queue; check after scope instead.
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&visits](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&calls](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int count = 0;
  pool.Submit([&count] { ++count; });
  pool.ParallelFor(10, [&count](size_t) { ++count; });
  EXPECT_EQ(count, 11);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // ParallelFor from inside a worker must fall back to inline execution —
  // a pool-in-pool wait would deadlock once all workers block.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](size_t) {
    EXPECT_TRUE(ThreadPool::OnWorkerThread());
    pool.ParallelFor(8, [&count](size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ParallelForUsesWorkerThreads) {
  ThreadPool pool(4);
  std::atomic<int> on_worker{0};
  pool.ParallelFor(100, [&on_worker](size_t) {
    if (ThreadPool::OnWorkerThread()) on_worker.fetch_add(1);
  });
  EXPECT_EQ(on_worker.load(), 100);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ThreadPoolTest, SharedPoolIsUsableAndStable) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 2u);
  std::atomic<int> count{0};
  a.ParallelFor(100, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace xmlrdb
