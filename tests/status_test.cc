#include "common/status.h"

#include <gtest/gtest.h>

namespace xmlrdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ConstraintError("x").code(), StatusCode::kConstraintError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("table t").WithContext("executing query");
  EXPECT_EQ(s.message(), "executing query: table t");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  // No-op on OK.
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(StatusTest, CopySharesRepresentation) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(a.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ASSIGN_OR_RETURN(int h, Half(x));
  ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

Status CheckPositive(int x) {
  if (x <= 0) return Status::OutOfRange("non-positive");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  RETURN_IF_ERROR(CheckPositive(a));
  RETURN_IF_ERROR(CheckPositive(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
}

}  // namespace
}  // namespace xmlrdb
