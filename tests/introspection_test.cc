// Tests for SQL-visible engine introspection: the statement log, the
// slow-query EXPLAIN ANALYZE capture, and the xmlrdb_* virtual tables.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/trace.h"
#include "rdb/database.h"
#include "rdb/planner.h"

namespace xmlrdb::rdb {
namespace {

std::vector<std::string> ColumnNames(const Schema& schema) {
  std::vector<std::string> out;
  for (size_t i = 0; i < schema.size(); ++i) {
    out.push_back(schema.column(i).name);
  }
  return out;
}

TEST(StatementLogTest, AssignsSequentialSeqNumbers) {
  StatementLog log(8);
  for (int i = 0; i < 3; ++i) {
    StatementLogEntry e;
    e.sql = "stmt " + std::to_string(i);
    log.Append(std::move(e));
  }
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].seq, 0);
  EXPECT_EQ(entries[1].seq, 1);
  EXPECT_EQ(entries[2].seq, 2);
  EXPECT_EQ(log.total_appended(), 3);
}

TEST(StatementLogTest, RingWrapsAroundAtCapacity) {
  StatementLog log(4);
  for (int i = 0; i < 6; ++i) {
    StatementLogEntry e;
    e.sql = "stmt " + std::to_string(i);
    log.Append(std::move(e));
  }
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 4u);
  // The two oldest were evicted; seq numbers keep counting.
  EXPECT_EQ(entries.front().seq, 2);
  EXPECT_EQ(entries.back().seq, 5);
  EXPECT_EQ(entries.front().sql, "stmt 2");
  EXPECT_EQ(log.total_appended(), 6);
}

TEST(StatementLogTest, ZeroCapacityDisablesLogging) {
  StatementLog log(0);
  log.Append(StatementLogEntry{});
  EXPECT_TRUE(log.Entries().empty());
  EXPECT_EQ(log.total_appended(), 0);
}

TEST(StatementLogTest, ShrinkingCapacityDropsOldest) {
  StatementLog log(8);
  for (int i = 0; i < 5; ++i) log.Append(StatementLogEntry{});
  log.set_capacity(2);
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.front().seq, 3);
  EXPECT_EQ(entries.back().seq, 4);
}

TEST(IntrospectionTest, ExecuteAppendsToStatementLog) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  auto select = db.Execute("SELECT a FROM t");
  ASSERT_TRUE(select.ok());

  auto entries = db.statement_log().Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].kind, "create_table");
  EXPECT_EQ(entries[1].kind, "insert");
  EXPECT_EQ(entries[1].rows, 3);
  EXPECT_EQ(entries[2].kind, "select");
  EXPECT_EQ(entries[2].rows, 3);
  EXPECT_GE(entries[2].duration_us, 0);
  EXPECT_EQ(entries[2].sql, "SELECT a FROM t");
}

TEST(IntrospectionTest, FailedStatementLogsMinusOneRows) {
  Database db;
  EXPECT_FALSE(db.Execute("SELECT x FROM missing").ok());
  auto entries = db.statement_log().Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rows, -1);
}

TEST(IntrospectionTest, SlowQueryCapturesExplainAnalyze) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2)").ok());
  // Threshold 0: every statement qualifies as slow.
  db.set_slow_query_threshold_us(0);
  ASSERT_TRUE(db.Execute("SELECT a FROM t WHERE a > 1").ok());

  auto entries = db.statement_log().Entries();
  ASSERT_FALSE(entries.empty());
  const StatementLogEntry& last = entries.back();
  EXPECT_TRUE(last.slow);
  // The captured plan is the EXPLAIN ANALYZE tree the statement actually ran.
  EXPECT_NE(last.plan.find("SeqScan"), std::string::npos) << last.plan;
  EXPECT_NE(last.plan.find("actual"), std::string::npos) << last.plan;
}

TEST(IntrospectionTest, NegativeThresholdDisablesSlowTracking) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  db.set_slow_query_threshold_us(-1);
  ASSERT_TRUE(db.Execute("SELECT a FROM t").ok());
  auto entries = db.statement_log().Entries();
  ASSERT_FALSE(entries.empty());
  EXPECT_FALSE(entries.back().slow);
  EXPECT_TRUE(entries.back().plan.empty());
}

TEST(IntrospectionTest, XmlrdbTablesListsCatalog) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  ASSERT_TRUE(db.Execute("CREATE INDEX idx_a ON t (a)").ok());

  auto r = db.Execute("SELECT * FROM xmlrdb_tables");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(ColumnNames(r.value().schema),
            (std::vector<std::string>{"name", "rows", "bytes", "indexes"}));
  ASSERT_EQ(r.value().rows.size(), 1u);
  const Row& row = r.value().rows[0];
  EXPECT_EQ(row[0].AsString(), "t");
  EXPECT_EQ(row[1].AsInt(), 2);
  EXPECT_GT(row[2].AsInt(), 0);
  EXPECT_EQ(row[3].AsInt(), 1);
}

TEST(IntrospectionTest, XmlrdbStatementsReflectsTheLog) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (7)").ok());

  auto r = db.Execute(
      "SELECT kind, rows FROM xmlrdb_statements WHERE kind = 'insert'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "insert");
  EXPECT_EQ(r.value().rows[0][1].AsInt(), 1);

  auto full = db.Execute("SELECT * FROM xmlrdb_statements");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(ColumnNames(full.value().schema),
            (std::vector<std::string>{"seq", "kind", "sql", "duration_us",
                                      "lock_wait_us", "rows", "slow",
                                      "cache_hit", "request_id", "plan"}));
  // The snapshot is taken at statement-lock time, before the running
  // statement itself is logged: CREATE + INSERT + the first SELECT.
  EXPECT_EQ(full.value().rows.size(), 3u);
}

TEST(IntrospectionTest, XmlrdbMetricsExposesCountersAndPercentiles) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Reset();
  reg.set_enabled(true);
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db.Execute("SELECT a FROM t").ok());

  auto r = db.Execute(
      "SELECT name, value FROM xmlrdb_metrics WHERE name = 'sql.statements'");
  reg.set_enabled(false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  // CREATE + INSERT + SELECT at minimum; the introspection SELECT itself
  // counts too, depending on when the snapshot is cut.
  EXPECT_GE(r.value().rows[0][1].AsInt(), 3);

  // Histograms surface as .count/.p50/.p95/.p99/.max rows.
  auto hist = db.Execute(
      "SELECT name, value FROM xmlrdb_metrics "
      "WHERE name = 'sql.select.latency_us.count'");
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist.value().rows.size(), 1u);
  EXPECT_GE(hist.value().rows[0][1].AsInt(), 1);
  reg.Reset();
}

TEST(IntrospectionTest, VirtualTablesJoinWithBaseTables) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  // The virtual table goes through the normal planner: projections, filters,
  // and ORDER BY all work.
  auto r = db.Execute(
      "SELECT name FROM xmlrdb_tables WHERE rows = 0 ORDER BY name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "t");
}

TEST(IntrospectionTest, VirtualTablesAreReadOnly) {
  Database db;
  auto ins = db.Execute("INSERT INTO xmlrdb_metrics VALUES ('x', 1)");
  EXPECT_FALSE(ins.ok());
  EXPECT_NE(ins.status().ToString().find("read-only"), std::string::npos);
  auto del = db.Execute("DELETE FROM xmlrdb_statements");
  EXPECT_FALSE(del.ok());
  auto drop = db.Execute("DROP TABLE xmlrdb_tables");
  EXPECT_FALSE(drop.ok());
}

// Acceptance scenario: trace a parallel-scan SELECT and export Chrome JSON.
// The statement span must exist, and every morsel span recorded on a pool
// worker must name it (transitively) as an ancestor.
TEST(IntrospectionTest, TracedParallelScanNestsMorselSpans) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Clear();
  collector.set_enabled(true);

  Database db;
  PlannerOptions opts;
  opts.max_parallelism = 4;
  opts.parallel_scan_min_rows = 1;
  db.set_planner_options(opts);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  std::string insert = "INSERT INTO t VALUES (0)";
  for (int i = 1; i < 512; ++i) insert += ", (" + std::to_string(i) + ")";
  ASSERT_TRUE(db.Execute(insert).ok());
  auto r = db.Execute("SELECT a FROM t WHERE a >= 0");
  collector.set_enabled(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 512u);

  auto events = collector.Snapshot();
  uint64_t statement_span = 0;
  for (const auto& e : events) {
    if (e.name == "sql.select") statement_span = e.id;
  }
  ASSERT_NE(statement_span, 0u);

  std::map<uint64_t, uint64_t> parent_of;
  for (const auto& e : events) parent_of[e.id] = e.parent_id;
  size_t morsels = 0;
  for (const auto& e : events) {
    if (e.name != "scan.morsel") continue;
    ++morsels;
    // Walk up to the root; the statement span must be on the path.
    bool under_statement = false;
    for (uint64_t cur = e.id; cur != 0; cur = parent_of.count(cur) ? parent_of[cur] : 0) {
      if (cur == statement_span) {
        under_statement = true;
        break;
      }
    }
    EXPECT_TRUE(under_statement) << "morsel span " << e.id
                                 << " not nested under the statement";
  }
  EXPECT_GT(morsels, 0u);

  std::string json = collector.RenderChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("scan.morsel"), std::string::npos);
  EXPECT_NE(json.find("sql.select"), std::string::npos);
  collector.Clear();
}

TEST(IntrospectionTest, ReservedPrefixRejectedForBaseTables) {
  Database db;
  auto r = db.Execute("CREATE TABLE xmlrdb_mine (a INTEGER)");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("reserved"), std::string::npos);
}

}  // namespace
}  // namespace xmlrdb::rdb
