#include <gtest/gtest.h>

#include "xpath/xpath_ast.h"

namespace xmlrdb::xpath {
namespace {

Result<PathExpr> P(const std::string& s) { return ParseXPath(s); }

TEST(XPathParserTest, SimpleSteps) {
  auto p = P("/a/b/c");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p.value().steps.size(), 3u);
  EXPECT_EQ(p.value().steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.value().steps[2].name, "c");
  EXPECT_EQ(p.value().ToString(), "/a/b/c");
  EXPECT_FALSE(p.value().HasDescendant());
  EXPECT_TRUE(p.value().PredicateFree());
}

TEST(XPathParserTest, DescendantAxes) {
  auto p = P("//a/b//c");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(p.value().steps[1].axis, Axis::kChild);
  EXPECT_EQ(p.value().steps[2].axis, Axis::kDescendant);
  EXPECT_TRUE(p.value().HasDescendant());
  EXPECT_EQ(p.value().ToString(), "//a/b//c");
}

TEST(XPathParserTest, WildcardsAndAttributes) {
  auto p = P("/a/*/@id");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().steps[1].IsWildcard());
  EXPECT_EQ(p.value().steps[2].axis, Axis::kAttribute);
  EXPECT_EQ(p.value().steps[2].name, "id");
}

TEST(XPathParserTest, DescendantAttributeExpands) {
  auto p = P("/a//@id");
  ASSERT_TRUE(p.ok()) << p.status();
  // Expands to /a//*/@id.
  ASSERT_EQ(p.value().steps.size(), 3u);
  EXPECT_EQ(p.value().steps[1].axis, Axis::kDescendant);
  EXPECT_TRUE(p.value().steps[1].IsWildcard());
  EXPECT_EQ(p.value().steps[2].axis, Axis::kAttribute);
}

TEST(XPathParserTest, PositionalPredicates) {
  auto p = P("/a/b[3]");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.value().steps[1].predicates.size(), 1u);
  EXPECT_EQ(p.value().steps[1].predicates[0].kind, Predicate::Kind::kPosition);
  EXPECT_EQ(p.value().steps[1].predicates[0].position, 3);
  auto last = P("/a/b[last()]");
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value().steps[1].predicates[0].kind, Predicate::Kind::kLast);
  EXPECT_FALSE(P("/a/b[0]").ok());  // positions are 1-based
}

TEST(XPathParserTest, ExistencePredicates) {
  auto p = P("/a[b/c][@x]");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p.value().steps[0].predicates.size(), 2u);
  const auto& p0 = p.value().steps[0].predicates[0];
  EXPECT_EQ(p0.kind, Predicate::Kind::kExists);
  ASSERT_EQ(p0.rel.steps.size(), 2u);
  EXPECT_EQ(p0.rel.steps[1].name, "c");
  const auto& p1 = p.value().steps[0].predicates[1];
  EXPECT_TRUE(p1.rel.steps[0].attribute);
}

TEST(XPathParserTest, ValuePredicates) {
  auto p = P("/a[b = 'x'][c != 3][@d >= 2.5]");
  ASSERT_TRUE(p.ok()) << p.status();
  const auto& preds = p.value().steps[0].predicates;
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds[0].op, CmpOp::kEq);
  EXPECT_EQ(preds[0].literal.AsString(), "x");
  EXPECT_EQ(preds[1].op, CmpOp::kNe);
  EXPECT_EQ(preds[1].literal.AsInt(), 3);
  EXPECT_EQ(preds[2].op, CmpOp::kGe);
  EXPECT_DOUBLE_EQ(preds[2].literal.AsDouble(), 2.5);
}

TEST(XPathParserTest, NegativeNumericLiteral) {
  auto p = P("/a[b < -5]");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p.value().steps[0].predicates[0].literal.AsInt(), -5);
}

TEST(XPathParserTest, DoubleQuotedStrings) {
  auto p = P("/a[b = \"double\"]");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().steps[0].predicates[0].literal.AsString(), "double");
}

TEST(XPathParserTest, ToStringRoundTrips) {
  for (const std::string& s : std::vector<std::string>{
           "/a/b/c", "//x", "/a//b", "/a/*/@id", "/a/b[2]",
           "/a[b = 'x']", "/a[@y > 3]", "/a/b[last()]"}) {
    auto p = P(s);
    ASSERT_TRUE(p.ok()) << s << ": " << p.status();
    auto again = P(p.value().ToString());
    ASSERT_TRUE(again.ok()) << p.value().ToString();
    EXPECT_EQ(p.value().ToString(), again.value().ToString());
  }
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(P("").ok());
  EXPECT_FALSE(P("a/b").ok());           // must start with /
  EXPECT_FALSE(P("/").ok());             // empty step
  EXPECT_FALSE(P("/a[").ok());           // unterminated predicate
  EXPECT_FALSE(P("/a[b = ]").ok());      // missing literal
  EXPECT_FALSE(P("/a[b = 'x]").ok());    // unterminated string
  EXPECT_FALSE(P("/a/b extra").ok());    // trailing garbage
  EXPECT_FALSE(P("/@x[1]").ok());        // predicate on attribute step
}

}  // namespace
}  // namespace xmlrdb::xpath
