// White-box property tests for the interval mapping: the (pre, size, level)
// encoding must stay a consistent tree encoding through arbitrary update
// sequences.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "shred/evaluator.h"
#include "shred/interval_mapping.h"
#include "workload/random_tree.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

using rdb::QueryResult;
using rdb::Value;

/// Checks the structural invariants of the stored encoding:
///  * pres are dense 1..N
///  * the root has pre 1, level 1, size N-1
///  * every node's subtree range nests properly inside its parent's
///  * size equals the number of rows in (pre, pre+size]
void CheckEncoding(rdb::Database* db, shred::DocId doc) {
  auto r = db->Execute(
      "SELECT pre, size, level FROM iv_nodes WHERE docid = " +
      std::to_string(doc) + " ORDER BY pre");
  ASSERT_TRUE(r.ok()) << r.status();
  const auto& rows = r.value().rows;
  ASSERT_FALSE(rows.empty());
  int64_t n = static_cast<int64_t>(rows.size());
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[0][2].AsInt(), 1);
  EXPECT_EQ(rows[0][1].AsInt(), n - 1);
  // Stack-based validation of nesting.
  struct Open {
    int64_t end;   // last pre contained
    int64_t level;
  };
  std::vector<Open> stack;
  for (int64_t i = 0; i < n; ++i) {
    int64_t pre = rows[static_cast<size_t>(i)][0].AsInt();
    int64_t size = rows[static_cast<size_t>(i)][1].AsInt();
    int64_t level = rows[static_cast<size_t>(i)][2].AsInt();
    EXPECT_EQ(pre, i + 1) << "pres must be dense";
    while (!stack.empty() && stack.back().end < pre) stack.pop_back();
    if (!stack.empty()) {
      EXPECT_LE(pre + size, stack.back().end)
          << "child subtree must nest in parent range";
      EXPECT_EQ(level, stack.back().level + 1)
          << "child level must be parent level + 1 at pre " << pre;
    }
    stack.push_back({pre + size, level});
  }
}

TEST(IntervalInvariantTest, FreshStoreIsConsistent) {
  shred::IntervalMapping m;
  rdb::Database db;
  ASSERT_TRUE(m.Initialize(&db).ok());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    workload::RandomTreeConfig cfg;
    cfg.seed = seed;
    auto doc = workload::GenerateRandomTree(cfg);
    auto id = m.Store(*doc, &db);
    ASSERT_TRUE(id.ok());
    CheckEncoding(&db, id.value());
  }
}

TEST(IntervalInvariantTest, RandomUpdateSequencePreservesEncoding) {
  shred::IntervalMapping m;
  rdb::Database db;
  ASSERT_TRUE(m.Initialize(&db).ok());
  auto doc = xml::Parse(
      "<r><a><x>1</x></a><b><x>2</x><x>3</x></b><c/></r>");
  ASSERT_TRUE(doc.ok());
  auto id = m.Store(*doc.value(), &db);
  ASSERT_TRUE(id.ok());

  Rng rng(1234);
  auto any_elem = xpath::ParseXPath("//*").value();
  for (int step = 0; step < 40; ++step) {
    auto nodes = shred::EvalPath(any_elem, &m, &db, id.value());
    ASSERT_TRUE(nodes.ok());
    ASSERT_FALSE(nodes.value().empty());
    const Value& target = nodes.value()[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(nodes.value().size()) - 1))];
    if (rng.Bernoulli(0.6) || nodes.value().size() < 3) {
      auto frag = xml::ParseFragment(
          "<n" + std::to_string(step) + "><leaf>" + std::to_string(step) +
          "</leaf></n" + std::to_string(step) + ">");
      ASSERT_TRUE(frag.ok());
      ASSERT_TRUE(m.InsertSubtree(&db, id.value(), target, *frag.value()).ok());
    } else {
      // Never delete the root (pre 1).
      if (target.AsInt() == 1) continue;
      ASSERT_TRUE(m.DeleteSubtree(&db, id.value(), target).ok());
    }
    CheckEncoding(&db, id.value());
  }
  // The tree must still reconstruct cleanly.
  auto rebuilt = m.Reconstruct(&db, id.value());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_NE(xml::Serialize(*rebuilt.value()).find("<r"), std::string::npos);
}

TEST(IntervalInvariantTest, DeleteShiftsFollowingPres) {
  shred::IntervalMapping m;
  rdb::Database db;
  ASSERT_TRUE(m.Initialize(&db).ok());
  auto doc = xml::Parse("<r><a><b/><c/></a><d/></r>");
  ASSERT_TRUE(doc.ok());
  auto id = m.Store(*doc.value(), &db);
  ASSERT_TRUE(id.ok());
  // Delete <a> (pre 2, size 2): d must move from pre 5 to pre 2.
  ASSERT_TRUE(m.DeleteSubtree(&db, id.value(), Value(int64_t{2})).ok());
  auto r = db.Execute("SELECT pre, name FROM iv_nodes WHERE docid = " +
                      std::to_string(id.value()) + " ORDER BY pre");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_EQ(r.value().rows[1][0].AsInt(), 2);
  EXPECT_EQ(r.value().rows[1][1].AsString(), "d");
  CheckEncoding(&db, id.value());
}

}  // namespace
}  // namespace xmlrdb
