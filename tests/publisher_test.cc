#include "publish/publisher.h"

#include <gtest/gtest.h>

#include "shred/registry.h"
#include "xml/parser.h"

namespace xmlrdb {
namespace {

class PublisherTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    auto m = shred::CreateMapping(GetParam());
    ASSERT_TRUE(m.ok());
    mapping_ = std::move(m).value();
    ASSERT_TRUE(mapping_->Initialize(&db_).ok());
    auto doc = xml::Parse(
        "<library><book lang=\"en\"><title>Dune</title></book>"
        "<book lang=\"de\"><title>Faust</title></book></library>");
    ASSERT_TRUE(doc.ok());
    auto stored = mapping_->Store(*doc.value(), &db_);
    ASSERT_TRUE(stored.ok());
    id_ = stored.value();
  }

  std::unique_ptr<shred::Mapping> mapping_;
  rdb::Database db_;
  shred::DocId id_ = 0;
};

TEST_P(PublisherTest, PublishDocumentRoundTrips) {
  auto text = publish::PublishDocument(mapping_.get(), &db_, id_);
  ASSERT_TRUE(text.ok()) << text.status();
  auto reparsed = xml::Parse(text.value());
  ASSERT_TRUE(reparsed.ok()) << text.value();
  EXPECT_EQ(reparsed.value()->root()->name(), "library");
  EXPECT_EQ(reparsed.value()->root()->children().size(), 2u);
}

TEST_P(PublisherTest, PublishQueryResultsWrapsMatches) {
  auto out = publish::PublishQueryResults("/library/book[@lang = 'de']",
                                          mapping_.get(), &db_, id_);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out.value().find("<results>"), std::string::npos);
  EXPECT_NE(out.value().find("Faust"), std::string::npos);
  EXPECT_EQ(out.value().find("Dune"), std::string::npos);
}

TEST_P(PublisherTest, PublishSubtree) {
  auto out = publish::PublishQueryResults("//title", mapping_.get(), &db_, id_);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out.value().find("<title>Dune</title>"), std::string::npos);
  EXPECT_NE(out.value().find("<title>Faust</title>"), std::string::npos);
}

TEST_P(PublisherTest, PrettyOutputIsReparseable) {
  xml::SerializeOptions opt;
  opt.pretty = true;
  auto text = publish::PublishDocument(mapping_.get(), &db_, id_, opt);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find('\n'), std::string::npos);
  EXPECT_TRUE(xml::Parse(text.value()).ok()) << text.value();
}

INSTANTIATE_TEST_SUITE_P(AllMappings, PublisherTest,
                         ::testing::ValuesIn(shred::GenericMappingNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace xmlrdb
