#include "shred/shred_util.h"

#include <gtest/gtest.h>

namespace xmlrdb::shred {
namespace {

using rdb::DataType;
using rdb::Value;

TEST(SanitizeNameTest, KeepsSafeCharacters) {
  EXPECT_EQ(SanitizeName("item"), "item");
  EXPECT_EQ(SanitizeName("open_auction"), "open_auction");
  EXPECT_EQ(SanitizeName("Item42"), "Item42");
}

TEST(SanitizeNameTest, ReplacesUnsafeCharacters) {
  EXPECT_EQ(SanitizeName("ns:name"), "ns_name");
  EXPECT_EQ(SanitizeName("a-b.c"), "a_b_c");
}

TEST(SanitizeNameTest, NeverEmptyOrDigitLed) {
  EXPECT_EQ(SanitizeName(""), "x");
  EXPECT_EQ(SanitizeName("1abc"), "x1abc");
}

TEST(SqlLiteralTest, QuotesStringsOnly) {
  EXPECT_EQ(SqlLiteral(Value("o'brien")), "'o''brien'");
  EXPECT_EQ(SqlLiteral(Value(int64_t{42})), "42");
  EXPECT_EQ(SqlLiteral(Value(1.5)), "1.5");
  EXPECT_EQ(SqlLiteral(Value::Null()), "NULL");
}

TEST(ContextTableTest, CreatesAndReplaces) {
  rdb::Database db;
  NodeSet ids{Value(int64_t{3}), Value(int64_t{1}), Value(int64_t{2})};
  ASSERT_TRUE(LoadContextTable(&db, "_ctx", DataType::kInt, ids).ok());
  auto r = db.Execute("SELECT id FROM _ctx ORDER BY id");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 3u);
  // Reload replaces the previous contents.
  ASSERT_TRUE(LoadContextTable(&db, "_ctx", DataType::kInt,
                               {Value(int64_t{9})})
                  .ok());
  r = db.Execute("SELECT id FROM _ctx");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 9);
}

TEST(FrontierTableTest, TwoColumns) {
  rdb::Database db;
  std::vector<std::pair<Value, Value>> rows{
      {Value(int64_t{1}), Value(int64_t{10})},
      {Value(int64_t{1}), Value(int64_t{11})},
  };
  ASSERT_TRUE(LoadFrontierTable(&db, "_fr", DataType::kInt, rows).ok());
  auto r = db.Execute("SELECT origin, id FROM _fr ORDER BY id");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_EQ(r.value().rows[1][1].AsInt(), 11);
}

TEST(NextIdFromMaxTest, EmptyAndNonEmpty) {
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INTEGER)").ok());
  auto next = NextIdFromMax(&db, "t", "x");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 1);
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (41)").ok());
  next = NextIdFromMax(&db, "t", "x");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 42);
}

}  // namespace
}  // namespace xmlrdb::shred
