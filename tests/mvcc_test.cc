// MVCC snapshot-read semantics: readers pinned to a snapshot see the exact
// pre-image while writers update and delete underneath them, garbage
// collection never reclaims versions an open snapshot can still reach,
// index scans under a snapshot emit each visible row exactly once, DDL
// under a pinned snapshot surfaces a clear TxnError, and multi-statement
// XPath evaluation stays byte-identical to a single-threaded run while
// concurrent DML churns the same mapping tables.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rdb/database.h"
#include "rdb/mvcc.h"
#include "shred/evaluator.h"
#include "shred/registry.h"
#include "workload/random_tree.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

using rdb::Database;
using rdb::QueryResult;
using rdb::ReadSnapshot;

std::string Select(Database* db, const std::string& sql) {
  auto res = db->Execute(sql);
  EXPECT_TRUE(res.ok()) << sql << ": " << res.status();
  return res.ok() ? res.value().ToString() : std::string();
}

TEST(MvccTest, PinnedReaderSeesPreImageWhileWriterUpdatesAndDeletes) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER NOT NULL, "
                         "v VARCHAR)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'orig" + std::to_string(i) + "')")
                    .ok());
  }
  const std::string kQuery = "SELECT id, v FROM t ORDER BY id";
  const std::string before = Select(&db, kQuery);

  ReadSnapshot snap(&db);
  // Overwrite every row, then delete half of them. The pinned snapshot was
  // acquired before either commit, so it must keep serving the pre-image.
  ASSERT_TRUE(db.Execute("UPDATE t SET v = 'changed'").ok());
  ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id >= 25").ok());

  EXPECT_EQ(Select(&db, kQuery), before);  // byte-identical pre-image
  EXPECT_EQ(Select(&db, "SELECT COUNT(*) FROM t"),
            Select(&db, "SELECT COUNT(*) FROM t"));
}

TEST(MvccTest, FreshSnapshotSeesPostImageAfterPinnedOneReleases) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INTEGER NOT NULL)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  {
    ReadSnapshot snap(&db);
    ASSERT_TRUE(db.Execute("UPDATE t SET x = x + 10").ok());
    auto pinned = db.Execute("SELECT SUM(x) FROM t");
    ASSERT_TRUE(pinned.ok());
    EXPECT_EQ(pinned.value().rows[0][0].AsInt(), 6);
  }
  auto fresh = db.Execute("SELECT SUM(x) FROM t");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().rows[0][0].AsInt(), 36);
}

TEST(MvccTest, GcNeverReclaimsVersionsVisibleToOldestSnapshot) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER NOT NULL, "
                         "v VARCHAR)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'old')")
                    .ok());
  }
  const std::string kQuery = "SELECT id, v FROM t ORDER BY id";
  const std::string before = Select(&db, kQuery);
  {
    ReadSnapshot snap(&db);
    ASSERT_TRUE(db.Execute("UPDATE t SET v = 'new'").ok());
    // The old versions are still visible to `snap`, so a GC pass must not
    // unlink them.
    db.CollectVersionGarbage();
    EXPECT_EQ(Select(&db, kQuery), before);
  }
  // Snapshot released: the pre-image versions are now unreachable. One pass
  // unlinks them into limbo and — with no snapshot active — frees them too.
  rdb::TableGcStats stats = db.CollectVersionGarbage();
  EXPECT_GT(stats.versions_freed, 0u);
  const rdb::Table* t = db.FindTable("t");
  ASSERT_NE(t, nullptr);
  // A second pass drains whatever limbo remains; nothing may linger.
  db.CollectVersionGarbage();
  EXPECT_EQ(t->LimboSize(), 0u);
  auto after = db.Execute("SELECT COUNT(*) FROM t WHERE v = 'new'");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().rows[0][0].AsInt(), 20);
}

TEST(MvccTest, DdlUnderPinnedSnapshotIsAClearTxnError) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INTEGER NOT NULL)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());

  ReadSnapshot snap(&db);
  EXPECT_TRUE(db.Execute("SELECT x FROM t").ok());
  // Base-table DDL commits after the snapshot was acquired: the pin can no
  // longer promise a consistent catalog, so reads fail loudly instead of
  // silently mixing schema generations.
  ASSERT_TRUE(db.Execute("CREATE TABLE other (y INTEGER NOT NULL)").ok());
  auto res = db.Execute("SELECT x FROM t");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kTxnError) << res.status();
  EXPECT_NE(res.status().message().find("schema changed"), std::string::npos)
      << res.status();
}

TEST(MvccTest, IndexScanUnderSnapshotEmitsEachVisibleRowOnce) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (k INTEGER NOT NULL, "
                         "tag VARCHAR)").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'pre')")
                    .ok());
  }
  ASSERT_TRUE(db.Execute("CREATE INDEX t_k ON t (k)").ok());
  // Index range query both before and after the writer moves every key to a
  // different value *inside the same range*. Lazy index maintenance leaves
  // both the old and the new key entries pointing at the row, so a naive
  // scan would emit duplicates; the snapshot scan must emit the pre-image
  // keys exactly once each.
  const std::string kQuery =
      "SELECT k FROM t WHERE k >= 0 AND k <= 100 ORDER BY k";
  auto plan = db.Execute("EXPLAIN " + kQuery);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().ToString().find("IndexScan"), std::string::npos)
      << plan.value().ToString();
  const std::string before = Select(&db, kQuery);

  ReadSnapshot snap(&db);
  ASSERT_TRUE(db.Execute("UPDATE t SET k = k + 40, tag = 'post'").ok());
  EXPECT_EQ(Select(&db, kQuery), before);
  {
    // And a fresh snapshot sees only the new keys, also exactly once.
    auto res = db.Execute(
        "SELECT COUNT(*) FROM t WHERE k >= 0 AND k <= 1000");
    // Still pinned: count reflects the pre-image.
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value().rows[0][0].AsInt(), 40);
  }
}

TEST(MvccTest, IndexScanAfterSnapshotSeesOnlyNewKeysOnce) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (k INTEGER NOT NULL)").ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  ASSERT_TRUE(db.Execute("CREATE INDEX t_k ON t (k)").ok());
  ASSERT_TRUE(db.Execute("UPDATE t SET k = k + 30").ok());
  auto res = db.Execute("SELECT k FROM t WHERE k >= 0 AND k <= 1000 ORDER BY k");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().rows.size(), 30u);
  for (size_t i = 0; i < res.value().rows.size(); ++i) {
    EXPECT_EQ(res.value().rows[i][0].AsInt(), static_cast<int64_t>(i) + 30);
  }
}

TEST(MvccTest, ConcurrentReadersNeverSeeTornStatesUnderIndexedDml) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (k INTEGER NOT NULL)").ok());
  constexpr int64_t kRows = 64;
  for (int64_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  ASSERT_TRUE(db.Execute("CREATE INDEX t_k ON t (k)").ok());
  // Writer shifts the whole key range back and forth by kRows; each UPDATE
  // is one statement, so every snapshot sees all keys low or all keys high.
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto res = db.Execute(
            "SELECT COUNT(*), MIN(k), MAX(k) FROM t "
            "WHERE k >= 0 AND k <= 10000");
        ASSERT_TRUE(res.ok()) << res.status();
        const auto& row = res.value().rows[0];
        int64_t n = row[0].AsInt(), lo = row[1].AsInt(), hi = row[2].AsInt();
        bool low_state = lo == 0 && hi == kRows - 1;
        bool high_state = lo == kRows && hi == 2 * kRows - 1;
        if (n != kRows || (!low_state && !high_state)) bad.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(db.Execute("UPDATE t SET k = k + " +
                           std::to_string(kRows)).ok());
    ASSERT_TRUE(db.Execute("UPDATE t SET k = k - " +
                           std::to_string(kRows)).ok());
    if (round % 25 == 0) db.CollectVersionGarbage();
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(MvccTest, BackgroundGcDrainsVersionsWithoutDisturbingReaders) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (x INTEGER NOT NULL)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3), (4)").ok());
  db.StartVersionGc(/*interval_ms=*/1);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto res = db.Execute("SELECT COUNT(*) FROM t");
      ASSERT_TRUE(res.ok()) << res.status();
      ASSERT_EQ(res.value().rows[0][0].AsInt(), 4);
    }
  });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Execute("UPDATE t SET x = x + 1").ok());
  }
  stop.store(true);
  reader.join();
  db.StopVersionGc();
  db.CollectVersionGarbage();
  db.CollectVersionGarbage();
  const rdb::Table* t = db.FindTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->LimboSize(), 0u);
}

// Multi-statement XPath evaluation under concurrent DML on the *same*
// mapping tables: a writer stores and removes a second document in a loop
// while readers evaluate paths against the first document across every
// generic mapping. Results must be byte-identical to the single-threaded
// baseline on every read (EvalPath pins one snapshot per evaluation).
TEST(MvccTest, EvalPathIsByteIdenticalUnderConcurrentStoreRemove) {
  workload::RandomTreeConfig cfg;
  cfg.seed = 7;
  auto doc = workload::GenerateRandomTree(cfg);
  auto churn_doc = workload::GenerateRandomTree([] {
    workload::RandomTreeConfig c;
    c.seed = 8;
    return c;
  }());
  const std::vector<std::string> kPaths = {
      "/root", "//t1", "/root/*", "//t1/t2", "/root//t3", "//t0/@a0",
  };
  for (const std::string& name : shred::GenericMappingNames()) {
    SCOPED_TRACE(name);
    auto mapping = shred::CreateMapping(name);
    ASSERT_TRUE(mapping.ok()) << mapping.status();
    Database db;
    ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
    auto doc_id = mapping.value()->Store(*doc, &db);
    ASSERT_TRUE(doc_id.ok()) << doc_id.status();

    // Single-threaded baseline per path.
    std::vector<std::vector<std::string>> baseline;
    for (const auto& p : kPaths) {
      auto parsed = xpath::ParseXPath(p);
      ASSERT_TRUE(parsed.ok());
      auto vals = shred::EvalPathStrings(parsed.value(), mapping.value().get(),
                                         &db, doc_id.value());
      ASSERT_TRUE(vals.ok()) << vals.status();
      std::sort(vals.value().begin(), vals.value().end());
      baseline.push_back(std::move(vals.value()));
    }

    std::atomic<bool> stop{false};
    std::atomic<int> bad{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&] {
        while (!stop.load()) {
          for (size_t i = 0; i < kPaths.size(); ++i) {
            auto parsed = xpath::ParseXPath(kPaths[i]);
            ASSERT_TRUE(parsed.ok());
            auto vals = shred::EvalPathStrings(
                parsed.value(), mapping.value().get(), &db, doc_id.value());
            ASSERT_TRUE(vals.ok()) << vals.status();
            std::sort(vals.value().begin(), vals.value().end());
            if (vals.value() != baseline[i]) bad.fetch_add(1);
          }
        }
      });
    }
    for (int round = 0; round < 8; ++round) {
      auto id2 = mapping.value()->Store(*churn_doc, &db);
      ASSERT_TRUE(id2.ok()) << id2.status();
      ASSERT_TRUE(mapping.value()->Remove(id2.value(), &db).ok());
    }
    stop.store(true);
    for (auto& t : readers) t.join();
    EXPECT_EQ(bad.load(), 0) << name;
  }
}

TEST(MvccTest, LegacyLockModeStillAnswersCorrectly) {
  // XMLRDB_MVCC=off flips Database into the pre-MVCC shared-lock mode; the
  // toggle is read at construction, so exercise it via a dedicated instance.
  ::setenv("XMLRDB_MVCC", "off", 1);
  {
    Database db;
    EXPECT_FALSE(db.snapshot_reads_enabled());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (x INTEGER NOT NULL)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
    ASSERT_TRUE(db.Execute("UPDATE t SET x = x * 2").ok());
    auto res = db.Execute("SELECT SUM(x) FROM t");
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value().rows[0][0].AsInt(), 12);
  }
  ::unsetenv("XMLRDB_MVCC");
}

}  // namespace
}  // namespace xmlrdb
