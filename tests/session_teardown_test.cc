// Session teardown under fire: clients that connect, pipeline a 90/10
// read/write mix, and hang up at random moments — including with
// statements still executing and responses still unread. The invariants:
//
//   * no session/statement races (run under TSan in CI);
//   * every opened session is eventually closed and unregistered, even
//     when the peer vanished mid-statement;
//   * prepared-statement handles die with their session without leaking
//     plan-cache pins;
//   * a stable bystander connection sees correct answers throughout.

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/client.h"
#include "net/server.h"
#include "rdb/database.h"

namespace xmlrdb::net {
namespace {

using namespace std::chrono_literals;

bool WaitFor(const std::function<bool()>& cond,
             std::chrono::milliseconds deadline) {
  auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

TEST(SessionTeardownTest, DisconnectStormUnderMixedLoad) {
#ifdef NDEBUG
  constexpr int kChurners = 6;
  constexpr int kIterations = 40;
#else
  constexpr int kChurners = 4;
  constexpr int kIterations = 25;
#endif
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE events (id INTEGER, v VARCHAR)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO events VALUES (0, 'seed')").ok());

  ServerConfig cfg;
  cfg.workers = 4;
  cfg.max_in_flight = 8;
  cfg.session_queue_cap = 4;
  Server server(&db, cfg);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::atomic<bool> failed{false};
  std::atomic<int64_t> writes{0};

  auto churn = [&](int tid) {
    Rng rng(1000 + static_cast<uint64_t>(tid));
    for (int iter = 0; iter < kIterations && !failed.load(); ++iter) {
      Client c;
      if (!c.Connect("127.0.0.1", port).ok()) {
        failed = true;
        return;
      }
      // Prepare a statement so teardown has a plan-cache pin to release.
      auto h = c.Prepare("SELECT COUNT(*) FROM events WHERE id >= ?");
      const int depth = static_cast<int>(rng.Uniform(1, 6));
      int sent = 0;
      for (int i = 0; i < depth; ++i) {
        bool write = rng.Uniform(1, 10) == 1;  // the 10% of the 90/10 mix
        if (write) {
          int64_t id = writes.fetch_add(1) + 1;
          if (c.SendQuery("INSERT INTO events VALUES (" +
                          std::to_string(id) + ", 't" +
                          std::to_string(tid) + "')")
                  .ok()) {
            ++sent;
          }
        } else if (h.ok() && rng.Uniform(0, 1) == 0) {
          if (c.SendExecPrepared(h.value().stmt_id,
                                 {rdb::Value(int64_t{0})})
                  .ok()) {
            ++sent;
          }
        } else {
          if (c.SendQuery("SELECT COUNT(*) FROM events").ok()) ++sent;
        }
      }
      // Read back a random prefix of the responses — 0 reads means we hang
      // up with everything still in flight.
      int reads = static_cast<int>(rng.Uniform(0, sent));
      for (int i = 0; i < reads; ++i) {
        auto f = c.ReadResponse();
        if (!f.ok()) break;  // server may close first under shed/overlap
      }
      c.Close();  // abrupt: unread responses and queued statements remain
    }
  };

  std::atomic<bool> stop_bystander{false};
  auto bystander = [&]() {
    Client c;
    if (!c.Connect("127.0.0.1", port).ok()) {
      failed = true;
      return;
    }
    while (!stop_bystander.load()) {
      auto r = c.Query("SELECT COUNT(*) FROM events");
      if (!r.ok()) {
        // BUSY shed is legitimate under load; anything else is not.
        if (r.status().message().find("busy") == std::string::npos) {
          ADD_FAILURE() << r.status();
          failed = true;
          return;
        }
        continue;
      }
      if (r.value().rows.size() != 1 || r.value().rows[0][0].AsInt() < 1) {
        ADD_FAILURE() << "bogus count";
        failed = true;
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(bystander);
  for (int t = 0; t < kChurners; ++t) threads.emplace_back(churn, t);
  for (size_t t = 1; t < threads.size(); ++t) threads[t].join();
  stop_bystander = true;
  threads[0].join();
  ASSERT_FALSE(failed.load());

  // Every abruptly-dropped session must be reaped: the server notices the
  // EOF, lets the in-flight statement finish, and unregisters.
  EXPECT_TRUE(WaitFor([&] { return server.SnapshotSessions().empty(); }, 10s))
      << server.SnapshotSessions().size() << " sessions still registered";
  auto stats = server.stats();
  EXPECT_EQ(stats.sessions_opened, stats.sessions_closed);
  EXPECT_GT(stats.requests, 0);

  server.Stop();
  // The database must be fully consistent after the storm: every INSERT
  // that executed is visible and the table is scannable.
  auto r = db.Execute("SELECT COUNT(*) FROM events");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().rows[0][0].AsInt(), 1);
  EXPECT_LE(r.value().rows[0][0].AsInt(), writes.load() + 1);
}

TEST(SessionTeardownTest, StopWhileStatementsInFlight) {
  // Stop() must wait for executing statements, discard queued ones, and
  // never leave a worker touching a dead session.
  rdb::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_in_flight = 4;
  Server server(&db, cfg);
  ASSERT_TRUE(server.Start().ok());

  std::vector<Client> clients(4);
  for (auto& c : clients) {
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
    // Pipeline several scans, never read the responses.
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          c.SendQuery("SELECT COUNT(*) FROM t WHERE a >= " + std::to_string(i))
              .ok());
    }
  }
  // Give the workers a moment to pick statements up, then yank the server
  // out from under them.
  std::this_thread::sleep_for(5ms);
  server.Stop();
  // Reaching here without TSan reports, hangs, or crashes is the test; the
  // database must still be usable.
  auto r = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 500);
}

TEST(SessionTeardownTest, ServerDestructorStopsImplicitly) {
  rdb::Database db;
  {
    Server server(&db, {});
    ASSERT_TRUE(server.Start().ok());
    Client c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(c.SendQuery("SELECT COUNT(*) FROM xmlrdb_tables").ok());
    // ~Server runs with the response possibly unflushed.
  }
  auto r = db.Execute("SELECT COUNT(*) FROM xmlrdb_sessions");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 0);
}

}  // namespace
}  // namespace xmlrdb::net
