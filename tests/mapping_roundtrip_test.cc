// Property tests: shred -> reconstruct must reproduce the document exactly
// (canonical-form equality) for every mapping, across many random trees and
// the realistic workloads.

#include <gtest/gtest.h>

#include "shred/registry.h"
#include "workload/biblio.h"
#include "workload/random_tree.h"
#include "workload/xmark.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlrdb {
namespace {

using shred::DocId;
using shred::Mapping;

class RoundtripTest : public ::testing::TestWithParam<std::string> {};

void ExpectRoundtrip(Mapping* mapping, const xml::Document& doc) {
  rdb::Database db;
  ASSERT_TRUE(mapping->Initialize(&db).ok());
  auto stored = mapping->Store(doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();
  auto rebuilt = mapping->Reconstruct(&db, stored.value());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(xml::Canonicalize(doc), xml::Canonicalize(*rebuilt.value()))
      << "mapping: " << mapping->name();
}

TEST_P(RoundtripTest, TinyDocument) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  auto doc = xml::Parse(
      "<a x=\"1\" y=\"two\"><b>hi</b><c/><b>ho<d z=\"3\"/>t</b></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ExpectRoundtrip(mapping.value().get(), *doc.value());
}

TEST_P(RoundtripTest, SpecialCharacters) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  auto doc = xml::Parse(
      "<a note=\"5 &lt; 6 &amp; 7 &gt; 2\"><b>it&apos;s &quot;quoted&quot; "
      "&amp; escaped</b></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ExpectRoundtrip(mapping.value().get(), *doc.value());
}

TEST_P(RoundtripTest, DeepChain) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  std::string text;
  for (int i = 0; i < 30; ++i) text += "<n" + std::to_string(i) + ">";
  text += "deep";
  for (int i = 29; i >= 0; --i) text += "</n" + std::to_string(i) + ">";
  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status();
  ExpectRoundtrip(mapping.value().get(), *doc.value());
}

TEST_P(RoundtripTest, RandomTrees) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    workload::RandomTreeConfig cfg;
    cfg.seed = seed;
    cfg.max_depth = 4 + static_cast<int>(seed % 3);
    auto doc = workload::GenerateRandomTree(cfg);
    ExpectRoundtrip(mapping.value().get(), *doc);
  }
}

TEST_P(RoundtripTest, MixedContentTrees) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::RandomTreeConfig cfg;
  cfg.seed = 99;
  cfg.mixed_prob = 0.9;
  cfg.text_prob = 0.9;
  auto doc = workload::GenerateRandomTree(cfg);
  ExpectRoundtrip(mapping.value().get(), *doc);
}

TEST_P(RoundtripTest, AuctionDocument) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  ExpectRoundtrip(mapping.value().get(), *doc);
}

TEST_P(RoundtripTest, BiblioDocument) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  workload::BiblioConfig cfg;
  cfg.books = 20;
  cfg.articles = 25;
  auto doc = workload::GenerateBiblio(cfg);
  ExpectRoundtrip(mapping.value().get(), *doc);
}

TEST_P(RoundtripTest, MultipleDocumentsIndependent) {
  auto mapping = shred::CreateMapping(GetParam());
  ASSERT_TRUE(mapping.ok());
  rdb::Database db;
  ASSERT_TRUE(mapping.value()->Initialize(&db).ok());
  auto doc1 = xml::Parse("<a><b>one</b></a>");
  auto doc2 = xml::Parse("<x><y>two</y><y>three</y></x>");
  ASSERT_TRUE(doc1.ok() && doc2.ok());
  auto id1 = mapping.value()->Store(*doc1.value(), &db);
  auto id2 = mapping.value()->Store(*doc2.value(), &db);
  ASSERT_TRUE(id1.ok() && id2.ok());
  EXPECT_NE(id1.value(), id2.value());
  auto r1 = mapping.value()->Reconstruct(&db, id1.value());
  auto r2 = mapping.value()->Reconstruct(&db, id2.value());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(xml::Canonicalize(*doc1.value()), xml::Canonicalize(*r1.value()));
  EXPECT_EQ(xml::Canonicalize(*doc2.value()), xml::Canonicalize(*r2.value()));
  // Removing doc1 must not disturb doc2.
  ASSERT_TRUE(mapping.value()->Remove(id1.value(), &db).ok());
  auto r2b = mapping.value()->Reconstruct(&db, id2.value());
  ASSERT_TRUE(r2b.ok()) << r2b.status();
  EXPECT_EQ(xml::Canonicalize(*doc2.value()), xml::Canonicalize(*r2b.value()));
  auto gone = mapping.value()->Reconstruct(&db, id1.value());
  EXPECT_FALSE(gone.ok());
}

INSTANTIATE_TEST_SUITE_P(AllMappings, RoundtripTest,
                         ::testing::ValuesIn(shred::GenericMappingNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace xmlrdb
