#include "rdb/expr.h"

#include <gtest/gtest.h>

namespace xmlrdb::rdb {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : schema_({{"i", DataType::kInt, true, "t"},
                 {"d", DataType::kDouble, true, "t"},
                 {"s", DataType::kString, true, "t"},
                 {"b", DataType::kBool, true, "t"}}) {}

  Value Eval(ExprPtr e, const Row& row) {
    EXPECT_TRUE(e->Bind(schema_).ok());
    auto r = e->Eval(row);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r.value() : Value::Null();
  }

  Row row_{Value(int64_t{10}), Value(2.5), Value("hello"), Value(true)};
  Schema schema_;
};

TEST_F(ExprTest, ColumnAndLiteral) {
  EXPECT_EQ(Eval(Col("i"), row_).AsInt(), 10);
  EXPECT_EQ(Eval(Col("t.s"), row_).AsString(), "hello");
  EXPECT_EQ(Eval(Lit(int64_t{7}), row_).AsInt(), 7);
  ExprPtr bad = Col("missing");
  EXPECT_FALSE(bad->Bind(schema_).ok());
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(Eval(Bin(BinOp::kAdd, Col("i"), Lit(int64_t{5})), row_).AsInt(), 15);
  EXPECT_DOUBLE_EQ(Eval(Bin(BinOp::kMul, Col("d"), Lit(int64_t{4})), row_)
                       .AsDouble(),
                   10.0);
  EXPECT_EQ(Eval(Bin(BinOp::kMod, Col("i"), Lit(int64_t{3})), row_).AsInt(), 1);
  EXPECT_EQ(Eval(Bin(BinOp::kDiv, Col("i"), Lit(int64_t{4})), row_).AsInt(), 2);
  // Division by zero is an error, not UB.
  ExprPtr div = Bin(BinOp::kDiv, Col("i"), Lit(int64_t{0}));
  ASSERT_TRUE(div->Bind(schema_).ok());
  EXPECT_FALSE(div->Eval(row_).ok());
}

TEST_F(ExprTest, StringConcatenationViaPlus) {
  EXPECT_EQ(Eval(Bin(BinOp::kAdd, Col("s"), Lit(std::string("!"))), row_)
                .AsString(),
            "hello!");
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_TRUE(Eval(Bin(BinOp::kGt, Col("i"), Lit(int64_t{9})), row_).AsBool());
  EXPECT_FALSE(Eval(Bin(BinOp::kLt, Col("i"), Lit(int64_t{9})), row_).AsBool());
  EXPECT_TRUE(Eval(Eq(Col("s"), Lit(std::string("hello"))), row_).AsBool());
  // Int column vs double literal.
  EXPECT_TRUE(Eval(Eq(Col("i"), Lit(Value(10.0))), row_).AsBool());
}

TEST_F(ExprTest, StringNumberComparisonParsesString) {
  // A string column holding a number compares numerically vs numeric literal.
  Row r{Value(int64_t{1}), Value(1.0), Value("42"), Value(false)};
  EXPECT_TRUE(Eval(Bin(BinOp::kGt, Col("s"), Lit(int64_t{10})), r).AsBool());
  // Non-numeric strings never match numeric comparisons.
  Row r2{Value(int64_t{1}), Value(1.0), Value("abc"), Value(false)};
  EXPECT_FALSE(Eval(Bin(BinOp::kGt, Col("s"), Lit(int64_t{10})), r2).AsBool());
  EXPECT_FALSE(Eval(Eq(Col("s"), Lit(int64_t{10})), r2).AsBool());
}

TEST_F(ExprTest, NullComparisonsAreNullAndFilterAsFalse) {
  // Comparisons against NULL yield NULL (three-valued logic)...
  Row r{Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(Eval(Eq(Col("i"), Lit(int64_t{1})), r).is_null());
  EXPECT_TRUE(Eval(Bin(BinOp::kNe, Col("i"), Lit(int64_t{1})), r).is_null());
  EXPECT_TRUE(Eval(Bin(BinOp::kLt, Col("i"), Lit(int64_t{1})), r).is_null());
  // ...which the predicate boundary (EvalBool) collapses to false.
  ExprPtr e = Eq(Col("i"), Lit(int64_t{1}));
  ASSERT_TRUE(e->Bind(schema_).ok());
  auto pass = e->EvalBool(r);
  ASSERT_TRUE(pass.ok()) << pass.status();
  EXPECT_FALSE(pass.value());
  // NOT propagates NULL instead of turning it into true.
  ExprPtr ne = std::make_unique<NotExpr>(Eq(Col("i"), Lit(int64_t{1})));
  ASSERT_TRUE(ne->Bind(schema_).ok());
  auto nv = ne->Eval(r);
  ASSERT_TRUE(nv.ok()) << nv.status();
  EXPECT_TRUE(nv.value().is_null());
}

TEST_F(ExprTest, LogicShortCircuits) {
  // (i > 5) OR (1/0) — never evaluates the error branch.
  ExprPtr e = Bin(BinOp::kOr, Bin(BinOp::kGt, Col("i"), Lit(int64_t{5})),
                  Bin(BinOp::kDiv, Lit(int64_t{1}), Lit(int64_t{0})));
  ASSERT_TRUE(e->Bind(schema_).ok());
  auto r = e->Eval(row_);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r.value().AsBool());
  // AND short-circuit on false.
  ExprPtr e2 = Bin(BinOp::kAnd, Bin(BinOp::kLt, Col("i"), Lit(int64_t{5})),
                   Bin(BinOp::kDiv, Lit(int64_t{1}), Lit(int64_t{0})));
  ASSERT_TRUE(e2->Bind(schema_).ok());
  EXPECT_FALSE(e2->Eval(row_).value().AsBool());
}

TEST_F(ExprTest, NotAndIsNull) {
  EXPECT_FALSE(Eval(std::make_unique<NotExpr>(Col("b")), row_).AsBool());
  EXPECT_FALSE(Eval(std::make_unique<IsNullExpr>(Col("i"), false), row_).AsBool());
  EXPECT_TRUE(Eval(std::make_unique<IsNullExpr>(Col("i"), true), row_).AsBool());
  Row r{Value::Null(), Value(1.0), Value("x"), Value(true)};
  EXPECT_TRUE(Eval(std::make_unique<IsNullExpr>(Col("i"), false), r).AsBool());
}

TEST(LikeMatcherTest, Patterns) {
  EXPECT_TRUE(LikeExpr::Match("hello", "hello"));
  EXPECT_TRUE(LikeExpr::Match("hello", "h%"));
  EXPECT_TRUE(LikeExpr::Match("hello", "%o"));
  EXPECT_TRUE(LikeExpr::Match("hello", "%ell%"));
  EXPECT_TRUE(LikeExpr::Match("hello", "h_llo"));
  EXPECT_TRUE(LikeExpr::Match("hello", "%"));
  EXPECT_TRUE(LikeExpr::Match("", "%"));
  EXPECT_FALSE(LikeExpr::Match("hello", "h_o"));
  EXPECT_FALSE(LikeExpr::Match("hello", "hello!"));
  EXPECT_FALSE(LikeExpr::Match("", "_"));
  EXPECT_TRUE(LikeExpr::Match("a%b", "a%b"));
  EXPECT_TRUE(LikeExpr::Match("abcabc", "%abc"));
  EXPECT_TRUE(LikeExpr::Match("aaab", "%a_b"));
}

TEST_F(ExprTest, InList) {
  ExprPtr e = std::make_unique<InListExpr>(
      Col("i"), std::vector<Value>{Value(int64_t{1}), Value(int64_t{10})});
  EXPECT_TRUE(Eval(std::move(e), row_).AsBool());
  ExprPtr e2 = std::make_unique<InListExpr>(
      Col("i"), std::vector<Value>{Value(int64_t{2})});
  EXPECT_FALSE(Eval(std::move(e2), row_).AsBool());
}

TEST_F(ExprTest, CloneIsIndependentAndEquivalent) {
  ExprPtr orig = Bin(BinOp::kAnd, Eq(Col("s"), Lit(std::string("hello"))),
                     Bin(BinOp::kGe, Col("i"), Lit(int64_t{10})));
  ExprPtr copy = orig->Clone();
  ASSERT_TRUE(orig->Bind(schema_).ok());
  ASSERT_TRUE(copy->Bind(schema_).ok());
  EXPECT_EQ(orig->Eval(row_).value().AsBool(), copy->Eval(row_).value().AsBool());
  EXPECT_EQ(orig->ToString(), copy->ToString());
}

TEST(ExprHelpersTest, SplitConjuncts) {
  ExprPtr e = And(And(Eq(Col("a"), Lit(int64_t{1})), Eq(Col("b"), Lit(int64_t{2}))),
                  Eq(Col("c"), Lit(int64_t{3})));
  std::vector<ExprPtr> parts;
  SplitConjuncts(std::move(e), &parts);
  EXPECT_EQ(parts.size(), 3u);
  // OR is not split.
  ExprPtr o = Bin(BinOp::kOr, Eq(Col("a"), Lit(int64_t{1})),
                  Eq(Col("b"), Lit(int64_t{2})));
  parts.clear();
  SplitConjuncts(std::move(o), &parts);
  EXPECT_EQ(parts.size(), 1u);
}

TEST(ExprHelpersTest, AndAll) {
  EXPECT_EQ(AndAll({}), nullptr);
  std::vector<ExprPtr> one;
  one.push_back(Eq(Col("a"), Lit(int64_t{1})));
  ExprPtr combined = AndAll(std::move(one));
  EXPECT_EQ(combined->ToString(), "(a = 1)");
}

TEST_F(ExprTest, CollectColumns) {
  ExprPtr e = And(Eq(Col("t.i"), Lit(int64_t{1})),
                  Bin(BinOp::kLt, Col("t.d"), Col("t.i")));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"t.i", "t.d", "t.i"}));
}

}  // namespace
}  // namespace xmlrdb::rdb
