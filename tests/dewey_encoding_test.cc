// White-box tests for the Dewey key encoding and its ordering properties.

#include <gtest/gtest.h>

#include <iterator>

#include "shred/dewey_mapping.h"
#include "shred/evaluator.h"
#include "xml/parser.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::shred {
namespace {

TEST(DeweyEncodingTest, ComponentIsFixedWidth) {
  EXPECT_EQ(DeweyComponent(1), "000001");
  EXPECT_EQ(DeweyComponent(42), "000042");
  EXPECT_EQ(DeweyComponent(999999), "999999");
}

TEST(DeweyEncodingTest, ComponentOrderSurvivesWidthBoundary) {
  // The classic 6-digit pad breaks at 1000000: "1000000" < "999999" as
  // strings. The escape prefix keeps string order = numeric order.
  const int64_t ordinals[] = {1,          42,         999998,    999999,
                              1000000,    1000001,    9999999,   10000000,
                              123456789,  9999999999, 10000000000};
  for (size_t i = 0; i + 1 < std::size(ordinals); ++i) {
    EXPECT_LT(DeweyComponent(ordinals[i]), DeweyComponent(ordinals[i + 1]))
        << ordinals[i] << " vs " << ordinals[i + 1];
  }
}

TEST(DeweyEncodingTest, ComponentRoundTripsThroughDecoder) {
  for (int64_t n : {int64_t{1}, int64_t{999999}, int64_t{1000000},
                    int64_t{1000001}, int64_t{123456789}, int64_t{9999999999}}) {
    auto ordinal = DeweyComponentOrdinal(DeweyComponent(n));
    ASSERT_TRUE(ordinal.ok()) << n;
    EXPECT_EQ(ordinal.value(), n) << n;
  }
}

TEST(DeweyEncodingTest, DecoderRejectsCorruptComponents) {
  // Regression: the decoder used to run these through strtoll with no
  // errno/end-pointer checking, so garbage decoded to 0 (and overflow
  // clamped to INT64_MAX) instead of failing.
  const char* corrupt[] = {
      "",          // empty
      "abcdef",    // non-digits at full width
      "00001x",    // trailing garbage inside the fixed width
      "12345",     // wrong width (not a component the encoder emits)
      "1234567",   // wrong width, too long without escape
      "-00001",    // sign byte is not a digit position
      ":",         // escape marker alone
      ":3",        // escape marker without digits
      ":9123",     // escape width byte disagrees with digit count
      ":099999999999999999999999999",  // overflow (used to clamp)
      "      ",    // whitespace is not a digit
  };
  for (const char* c : corrupt) {
    auto ordinal = DeweyComponentOrdinal(c);
    EXPECT_FALSE(ordinal.ok()) << "'" << c << "' decoded to "
                               << (ordinal.ok() ? ordinal.value() : 0);
  }
}

TEST(DeweyEncodingTest, InsertSubtreeFailsOnCorruptStoredLabel) {
  DeweyMapping m;
  rdb::Database db;
  ASSERT_TRUE(m.Initialize(&db).ok());
  auto doc = xml::Parse("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  auto id = m.Store(*doc.value(), &db);
  ASSERT_TRUE(id.ok());
  // Corrupt the stored child label so the MAX(dewey) slot probe reads
  // garbage text where a component should be.
  auto upd = db.Execute(
      "UPDATE dw_nodes SET dewey = '000001.00bad!' WHERE name = 'b'");
  ASSERT_TRUE(upd.ok()) << upd.status();
  auto frag = xml::ParseFragment("<d/>");
  ASSERT_TRUE(frag.ok());
  auto status =
      m.InsertSubtree(&db, id.value(), rdb::Value("000001"), *frag.value());
  // Pre-fix this succeeded and landed the new node at slot 1 — on top of
  // the existing (corrupt-labelled) child.
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("corrupt dewey component"),
            std::string::npos)
      << status.ToString();
}

TEST(DeweyEncodingTest, WideComponentsKeepSubtreeRangeTight) {
  // Components never contain '.' or '/' and every character sorts above
  // '/', so the [d + ".", d + "/") subtree range still works.
  std::string wide = DeweyComponent(1000000);
  EXPECT_EQ(wide.find('.'), std::string::npos);
  EXPECT_EQ(wide.find('/'), std::string::npos);
  for (char c : wide) EXPECT_GT(c, '/');
  std::string d = DeweyChild("000001", 2);
  std::string wide_child = DeweyChild(d, 1000000);
  EXPECT_GT(wide_child, d + ".");
  EXPECT_LT(wide_child, d + "/");
}

TEST(DeweyEncodingTest, InsertSubtreeDecodesWideSiblingSlots) {
  DeweyMapping m;
  rdb::Database db;
  ASSERT_TRUE(m.Initialize(&db).ok());
  auto doc = xml::Parse("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  auto id = m.Store(*doc.value(), &db);
  ASSERT_TRUE(id.ok());
  // Simulate an element whose last child slot already crossed the boundary.
  auto t = db.FindTable("dw_nodes");
  ASSERT_NE(t, nullptr);
  ASSERT_TRUE(t->Insert({rdb::Value(id.value()),
                         rdb::Value(DeweyChild("000001", 1000000)),
                         rdb::Value(int64_t{2}), rdb::Value("elem"),
                         rdb::Value("wide"), rdb::Value::Null()})
                  .ok());
  auto frag = xml::ParseFragment("<d/>");
  ASSERT_TRUE(frag.ok());
  ASSERT_TRUE(
      m.InsertSubtree(&db, id.value(), rdb::Value("000001"), *frag.value())
          .ok());
  // The new node must take slot 1000001, not a re-used small slot.
  auto r = db.Execute(
      "SELECT dewey FROM dw_nodes WHERE name = 'd'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(),
            DeweyChild("000001", 1000001));
}

TEST(DeweyEncodingTest, ChildAppendsComponent) {
  EXPECT_EQ(DeweyChild("", 1), "000001");
  EXPECT_EQ(DeweyChild("000001", 3), "000001.000003");
  EXPECT_EQ(DeweyChild("000001.000003", 12), "000001.000003.000012");
}

TEST(DeweyEncodingTest, StringOrderIsDocumentOrder) {
  // Sibling order.
  EXPECT_LT(DeweyChild("000001", 2), DeweyChild("000001", 10));
  // Parent before child.
  EXPECT_LT(std::string("000001"), DeweyChild("000001", 1));
  // Child of earlier sibling before later sibling.
  EXPECT_LT(DeweyChild(DeweyChild("000001", 1), 5), DeweyChild("000001", 2));
}

TEST(DeweyEncodingTest, SubtreeRangeIsTight) {
  // The subtree of d is exactly [d, d + "/") — "/" = '.'+1 in ASCII.
  std::string d = DeweyChild("000001", 2);
  std::string descendant = DeweyChild(DeweyChild(d, 1), 1);
  std::string next_sibling = DeweyChild("000001", 3);
  EXPECT_GE(descendant, d);
  EXPECT_LT(descendant, d + "/");
  EXPECT_GE(next_sibling, d + "/");
}

TEST(DeweyEncodingTest, StoredKeysFollowStructure) {
  DeweyMapping m;
  rdb::Database db;
  ASSERT_TRUE(m.Initialize(&db).ok());
  auto doc = xml::Parse("<a><b/><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  auto id = m.Store(*doc.value(), &db);
  ASSERT_TRUE(id.ok());
  auto r = db.Execute("SELECT dewey, name FROM dw_nodes ORDER BY dewey");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 4u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "000001");           // a
  EXPECT_EQ(r.value().rows[1][0].AsString(), "000001.000001");    // b
  EXPECT_EQ(r.value().rows[2][0].AsString(), "000001.000002");    // c
  EXPECT_EQ(r.value().rows[3][0].AsString(), "000001.000002.000001");  // d
}

TEST(DeweyEncodingTest, InsertDoesNotTouchExistingRows) {
  DeweyMapping m;
  rdb::Database db;
  ASSERT_TRUE(m.Initialize(&db).ok());
  auto doc = xml::Parse("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  auto id = m.Store(*doc.value(), &db);
  ASSERT_TRUE(id.ok());
  auto before = db.Execute("SELECT dewey FROM dw_nodes ORDER BY dewey");
  ASSERT_TRUE(before.ok());

  auto frag = xml::ParseFragment("<d/>");
  ASSERT_TRUE(frag.ok());
  ASSERT_TRUE(m.InsertSubtree(&db, id.value(), rdb::Value("000001"),
                              *frag.value())
                  .ok());
  // All pre-existing keys unchanged — the headline contrast with interval.
  auto after = db.Execute("SELECT dewey FROM dw_nodes ORDER BY dewey");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().rows.size(), before.value().rows.size() + 1);
  for (size_t i = 0; i < before.value().rows.size(); ++i) {
    EXPECT_EQ(before.value().rows[i][0].AsString(),
              after.value().rows[i][0].AsString());
  }
  // The new node took the next sibling slot.
  EXPECT_EQ(after.value().rows.back()[0].AsString(), "000001.000003");
}

TEST(DeweyEncodingTest, InsertAfterDeleteReusesNoSlot) {
  DeweyMapping m;
  rdb::Database db;
  ASSERT_TRUE(m.Initialize(&db).ok());
  auto doc = xml::Parse("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  auto id = m.Store(*doc.value(), &db);
  ASSERT_TRUE(id.ok());
  // Delete c (slot 2); the next insert must take slot 3 anyway? No — MAX of
  // remaining children is slot 1, so slot 2 is reused, which is safe because
  // the old slot 2 subtree is fully gone.
  ASSERT_TRUE(m.DeleteSubtree(&db, id.value(), rdb::Value("000001.000002")).ok());
  auto frag = xml::ParseFragment("<d/>");
  ASSERT_TRUE(m.InsertSubtree(&db, id.value(), rdb::Value("000001"),
                              *frag.value())
                  .ok());
  auto r = db.Execute("SELECT dewey, name FROM dw_nodes ORDER BY dewey");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows.size(), 3u);
  EXPECT_EQ(r.value().rows[2][1].AsString(), "d");
}

}  // namespace
}  // namespace xmlrdb::shred
