// EXPLAIN ANALYZE end to end: SQL-level plan annotation, per-operator
// runtime stats, query-level metrics from Database::Execute, evaluator
// per-query stats, and the Q1-Q12 suite over the edge/interval mappings.

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "rdb/database.h"
#include "shred/edge_mapping.h"
#include "shred/evaluator.h"
#include "shred/interval_mapping.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), "
                            "(3, 'z'), (4, 'w')").ok());
    ASSERT_TRUE(db_.Execute("CREATE TABLE u (a INTEGER, c VARCHAR)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO u VALUES (2, 'uu'), (3, 'vv')").ok());
  }
  void TearDown() override {
    MetricsRegistry::Global().set_enabled(false);
    MetricsRegistry::Global().Reset();
  }

  rdb::Database db_;
};

TEST_F(ExplainAnalyzeTest, PlainExplainHasNoActualCounts) {
  auto res = db_.Execute("EXPLAIN SELECT * FROM t WHERE a >= 2");
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_NE(res.value().plan_text.find("Filter"), std::string::npos);
  EXPECT_EQ(res.value().plan_text.find("actual rows="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, AnnotatesEveryOperatorWithRowsAndTime) {
  auto res = db_.Execute("EXPLAIN ANALYZE SELECT * FROM t WHERE a >= 2");
  ASSERT_TRUE(res.ok()) << res.status();
  const std::string& text = res.value().plan_text;
  // Every line of the tree carries actual counts.
  size_t lines = std::count(text.begin(), text.end(), '\n');
  size_t annotated = 0;
  for (size_t pos = 0; (pos = text.find("actual rows=", pos)) != std::string::npos;
       ++pos) {
    ++annotated;
  }
  EXPECT_EQ(annotated, lines);
  EXPECT_NE(text.find("time="), std::string::npos);
  // Batch-mode execution (the default) reports nonzero batch counts.
  EXPECT_NE(text.find("batches="), std::string::npos);
  EXPECT_EQ(text.find("batches=0"), std::string::npos);
  // The query produced 3 rows (a in {2,3,4}).
  EXPECT_EQ(res.value().affected, 3);
}

TEST_F(ExplainAnalyzeTest, ActualRowCountsMatchExecution) {
  auto res = db_.Execute(
      "EXPLAIN ANALYZE SELECT t.b, u.c FROM t JOIN u ON t.a = u.a");
  ASSERT_TRUE(res.ok()) << res.status();
  const std::string& text = res.value().plan_text;
  EXPECT_EQ(res.value().affected, 2);
  // The join line reports 2 actual rows.
  size_t join = text.find("Join");
  ASSERT_NE(join, std::string::npos);
  size_t annot = text.find("actual rows=", join);
  ASSERT_NE(annot, std::string::npos);
  EXPECT_EQ(text.substr(annot, std::string("actual rows=2").size()),
            "actual rows=2");
}

TEST_F(ExplainAnalyzeTest, ParsesWithTrailingSemicolonAndRejectsNonSelect) {
  EXPECT_TRUE(db_.Execute("EXPLAIN ANALYZE SELECT a FROM t;").ok());
  EXPECT_FALSE(db_.Execute("EXPLAIN ANALYZE INSERT INTO t VALUES (9, 'q')").ok());
}

TEST_F(ExplainAnalyzeTest, ExecuteFillsQueryLevelCounters) {
  ScopedMetricsCapture capture;
  ASSERT_TRUE(db_.Execute("SELECT * FROM t WHERE a >= 2").ok());
  ASSERT_TRUE(db_.Execute("SELECT COUNT(*) FROM u").ok());
  MetricsSnapshot delta = capture.Delta();
  EXPECT_EQ(delta["sql.statements"], 2);
  EXPECT_EQ(delta["sql.select"], 2);
  EXPECT_EQ(delta["table.t.scans"], 1);
  EXPECT_EQ(delta["table.u.scans"], 1);
  EXPECT_EQ(delta["exec.rows_scanned"], 6);  // 4 from t + 2 from u
  EXPECT_EQ(delta["op.SeqScan.rows"], 6);
  EXPECT_GT(delta["op.Filter.rows"], 0);
}

class ExplainAnalyzeMappingTest : public ::testing::Test {
 protected:
  void StoreInto(shred::Mapping* m) {
    workload::XMarkConfig cfg;
    cfg.scale = 0.05;
    auto doc = workload::GenerateXMark(cfg);
    ASSERT_TRUE(m->Initialize(&db_).ok());
    auto stored = m->Store(*doc, &db_);
    ASSERT_TRUE(stored.ok()) << stored.status();
    id_ = stored.value();
  }

  /// Runs EXPLAIN ANALYZE over every Q1-Q12 query the mapping can translate
  /// to one SQL statement; returns how many were analyzed.
  int AnalyzeSuite(shred::Mapping* m) {
    int analyzed = 0;
    for (const auto& query : workload::AuctionQueries()) {
      auto path = xpath::ParseXPath(query.xpath);
      EXPECT_TRUE(path.ok()) << query.id;
      if (!path.ok()) continue;
      auto sql = m->TranslatePathToSql(id_, path.value());
      if (!sql.ok()) continue;  // closure axes etc.: not one statement
      auto res = db_.Execute("EXPLAIN ANALYZE " + sql.value());
      EXPECT_TRUE(res.ok()) << query.id << ": " << res.status();
      if (!res.ok()) continue;
      const std::string& text = res.value().plan_text;
      EXPECT_NE(text.find("actual rows="), std::string::npos) << query.id;
      EXPECT_NE(text.find("time="), std::string::npos) << query.id;
      ++analyzed;
    }
    return analyzed;
  }

  rdb::Database db_;
  shred::DocId id_ = 0;
};

TEST_F(ExplainAnalyzeMappingTest, EdgeMappingSuite) {
  shred::EdgeMapping m;
  StoreInto(&m);
  EXPECT_GE(AnalyzeSuite(&m), 1);
}

TEST_F(ExplainAnalyzeMappingTest, IntervalMappingSuite) {
  shred::IntervalMapping m;
  StoreInto(&m);
  EXPECT_GE(AnalyzeSuite(&m), 3);
}

TEST_F(ExplainAnalyzeMappingTest, EvaluatorReportsPerQueryStats) {
  shred::EdgeMapping m;
  StoreInto(&m);
  auto path = xpath::ParseXPath("/site/people/person/name");
  ASSERT_TRUE(path.ok());
  shred::EvalStats stats;
  auto nodes = shred::EvalPath(path.value(), &m, &db_, id_, &stats);
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  EXPECT_FALSE(nodes.value().empty());
  EXPECT_GT(stats.sql_statements, 0);
  EXPECT_GT(stats.tables_touched, 0);
  EXPECT_GT(stats.rows_scanned, 0);
  // The registry was only force-enabled for the stats call.
  EXPECT_FALSE(MetricsRegistry::Global().enabled());

  // Without a stats sink the same query runs with the registry untouched.
  auto plain = shred::EvalPath(path.value(), &m, &db_, id_);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().size(), nodes.value().size());
}

}  // namespace
}  // namespace xmlrdb
