// Prepared statements and the shared plan cache: parameter binding, hit/miss
// accounting, LRU eviction, and DDL invalidation (a cached plan must never
// outlive a schema change that affects it).

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "rdb/database.h"

namespace xmlrdb::rdb {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (id INTEGER NOT NULL, "
                            "grp INTEGER NOT NULL, name VARCHAR)")
                    .ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                              ", " + std::to_string(i % 10) + ", 'n" +
                              std::to_string(i) + "')")
                      .ok());
    }
  }

  Database db_;
};

TEST_F(PlanCacheTest, ParamsBindPerExecution) {
  auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt.value().param_count(), 1u);
  auto r3 = stmt.value().Execute({Value(static_cast<int64_t>(3))});
  ASSERT_TRUE(r3.ok()) << r3.status();
  EXPECT_EQ(r3.value().rows.size(), 10u);
  for (const auto& row : r3.value().rows) EXPECT_EQ(row[0].AsInt() % 10, 3);
  auto r7 = stmt.value().Execute({Value(static_cast<int64_t>(7))});
  ASSERT_TRUE(r7.ok());
  EXPECT_EQ(r7.value().rows.size(), 10u);
  for (const auto& row : r7.value().rows) EXPECT_EQ(row[0].AsInt() % 10, 7);
}

TEST_F(PlanCacheTest, ParamCountMismatchIsAnError) {
  auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ? AND id = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value().param_count(), 2u);
  EXPECT_FALSE(stmt.value().Execute({Value(static_cast<int64_t>(1))}).ok());
  EXPECT_FALSE(stmt.value().Execute().ok());
}

TEST_F(PlanCacheTest, RepeatedPrepareHitsTheCache) {
  const auto before = db_.plan_cache().stats();
  for (int i = 0; i < 5; ++i) {
    auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
    ASSERT_TRUE(stmt.ok());
    ASSERT_TRUE(stmt.value().Execute({Value(static_cast<int64_t>(i))}).ok());
  }
  const auto after = db_.plan_cache().stats();
  EXPECT_EQ(after.misses - before.misses, 1);
  EXPECT_EQ(after.hits - before.hits, 4);
}

TEST_F(PlanCacheTest, RepeatedExecutionParsesOnce) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ScopedMetricsCapture capture;
  auto warm = db_.Prepare("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm.value().Execute({Value(static_cast<int64_t>(1))}).ok());
  const int64_t parsed_after_warmup = reg.Get("sql.parsed");
  for (int i = 0; i < 20; ++i) {
    auto stmt = db_.Prepare("SELECT name FROM t WHERE id = ?");
    ASSERT_TRUE(stmt.ok());
    ASSERT_TRUE(stmt.value().Execute({Value(static_cast<int64_t>(i))}).ok());
  }
  EXPECT_EQ(reg.Get("sql.parsed"), parsed_after_warmup);
}

TEST_F(PlanCacheTest, CreateIndexInvalidatesCachedPlan) {
  auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt.value().Execute({Value(static_cast<int64_t>(2))}).ok());
  auto before = stmt.value().ExplainPlan();
  ASSERT_TRUE(before.ok());
  EXPECT_NE(before.value().find("SeqScan"), std::string::npos);
  EXPECT_EQ(before.value().find("IndexScan"), std::string::npos);

  const auto stats_before = db_.plan_cache().stats();
  ASSERT_TRUE(db_.Execute("CREATE INDEX t_grp ON t (grp)").ok());

  // The same prepared handle must notice the DDL and pick up the index.
  auto r = stmt.value().Execute({Value(static_cast<int64_t>(2))});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().rows.size(), 10u);
  auto after = stmt.value().ExplainPlan();
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().find("IndexScan"), std::string::npos);
  EXPECT_GE(db_.plan_cache().stats().invalidations,
            stats_before.invalidations + 1);
}

TEST_F(PlanCacheTest, DropAndRecreateWithDifferentSchema) {
  auto stmt = db_.Prepare("SELECT * FROM t WHERE grp = ?");
  ASSERT_TRUE(stmt.ok());
  auto r1 = stmt.value().Execute({Value(static_cast<int64_t>(0))});
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1.value().schema.size(), 3u);

  ASSERT_TRUE(db_.DropTable("t").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (grp INTEGER NOT NULL, "
                          "extra VARCHAR, note VARCHAR, pad INTEGER)")
                  .ok());
  ASSERT_TRUE(
      db_.Execute("INSERT INTO t VALUES (0, 'e', 'n', 9)").ok());

  // The stale plan must be replaced, not executed against freed metadata.
  auto r2 = stmt.value().Execute({Value(static_cast<int64_t>(0))});
  ASSERT_TRUE(r2.ok()) << r2.status();
  ASSERT_EQ(r2.value().rows.size(), 1u);
  EXPECT_EQ(r2.value().schema.size(), 4u);
  EXPECT_EQ(r2.value().rows[0][3].AsInt(), 9);
}

TEST_F(PlanCacheTest, DropTableMakesPreparedExecutionFailCleanly) {
  auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt.value().Execute({Value(static_cast<int64_t>(1))}).ok());
  ASSERT_TRUE(db_.DropTable("t").ok());
  EXPECT_FALSE(stmt.value().Execute({Value(static_cast<int64_t>(1))}).ok());
}

TEST_F(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  db_.plan_cache().Clear();
  db_.plan_cache().set_capacity(2);
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t WHERE grp = 0").ok());   // A
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t WHERE grp = 1").ok());   // B
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t WHERE grp = 0").ok());   // touch A
  const auto before = db_.plan_cache().stats();
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t WHERE grp = 2").ok());   // evicts B
  EXPECT_EQ(db_.plan_cache().stats().evictions, before.evictions + 1);
  EXPECT_EQ(db_.plan_cache().size(), 2u);
  const auto hits_before = db_.plan_cache().stats().hits;
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t WHERE grp = 0").ok());   // A: hit
  EXPECT_EQ(db_.plan_cache().stats().hits, hits_before + 1);
  const auto misses_before = db_.plan_cache().stats().misses;
  ASSERT_TRUE(db_.Prepare("SELECT id FROM t WHERE grp = 1").ok());   // B: miss
  EXPECT_EQ(db_.plan_cache().stats().misses, misses_before + 1);
}

TEST_F(PlanCacheTest, CapacityZeroDisablesCaching) {
  db_.plan_cache().Clear();
  db_.plan_cache().set_capacity(0);
  for (int i = 0; i < 3; ++i) {
    auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
    ASSERT_TRUE(stmt.ok());
    auto r = stmt.value().Execute({Value(static_cast<int64_t>(4))});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().rows.size(), 10u);
  }
  EXPECT_EQ(db_.plan_cache().size(), 0u);
  EXPECT_EQ(db_.plan_cache().stats().hits, 0);
}

TEST_F(PlanCacheTest, VirtualTableQueriesAreNotPlanCached) {
  // xmlrdb_* virtual tables materialize fresh state per execution; their
  // parse is cached but the plan must be rebuilt every time.
  auto stmt = db_.Prepare("SELECT kind FROM xmlrdb_statements");
  ASSERT_TRUE(stmt.ok());
  auto r1 = stmt.value().Execute();
  ASSERT_TRUE(r1.ok());
  size_t n1 = r1.value().rows.size();
  ASSERT_TRUE(db_.Execute("SELECT COUNT(*) FROM t").ok());
  auto r2 = stmt.value().Execute();
  ASSERT_TRUE(r2.ok());
  // New statements were logged between the two executions.
  EXPECT_GT(r2.value().rows.size(), n1);
}

TEST_F(PlanCacheTest, StatementLogRecordsCacheHit) {
  auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt.value().Execute({Value(static_cast<int64_t>(5))}).ok());
  ASSERT_TRUE(stmt.value().Execute({Value(static_cast<int64_t>(6))}).ok());
  auto log = db_.Execute(
      "SELECT cache_hit FROM xmlrdb_statements WHERE sql LIKE '%grp = ?%'");
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_EQ(log.value().rows.size(), 2u);
  // First prepared execution plans; the second reuses the cached plan.
  EXPECT_EQ(log.value().rows[0][0].AsInt(), 0);
  EXPECT_EQ(log.value().rows[1][0].AsInt(), 1);
}

TEST_F(PlanCacheTest, PreparedDmlMatchesDirectExecution) {
  auto ins = db_.Prepare("INSERT INTO t VALUES (?, ?, ?)");
  ASSERT_TRUE(ins.ok());
  ASSERT_TRUE(ins.value()
                  .Execute({Value(static_cast<int64_t>(1000)),
                            Value(static_cast<int64_t>(50)), Value("extra")})
                  .ok());
  auto sel = db_.Execute("SELECT name FROM t WHERE grp = 50");
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel.value().rows.size(), 1u);
  EXPECT_EQ(sel.value().rows[0][0].AsString(), "extra");

  auto upd = db_.Prepare("UPDATE t SET name = ? WHERE id = ?");
  ASSERT_TRUE(upd.ok());
  ASSERT_TRUE(upd.value()
                  .Execute({Value("renamed"), Value(static_cast<int64_t>(1000))})
                  .ok());
  auto check = db_.Execute("SELECT name FROM t WHERE id = 1000");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check.value().rows.size(), 1u);
  EXPECT_EQ(check.value().rows[0][0].AsString(), "renamed");

  auto del = db_.Prepare("DELETE FROM t WHERE id = ?");
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE(del.value().Execute({Value(static_cast<int64_t>(1000))}).ok());
  auto gone = db_.Execute("SELECT id FROM t WHERE id = 1000");
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone.value().rows.empty());
}

TEST_F(PlanCacheTest, ParameterizedIndexBoundsMatchLiteralResults) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX t_grp ON t (grp)").ok());
  auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(stmt.ok());
  for (int64_t g = 0; g < 10; ++g) {
    auto prepared = stmt.value().Execute({Value(g)});
    ASSERT_TRUE(prepared.ok());
    auto direct =
        db_.Execute("SELECT id FROM t WHERE grp = " + std::to_string(g));
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(prepared.value().rows.size(), direct.value().rows.size());
  }
  auto plan = stmt.value().ExplainPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("IndexScan"), std::string::npos);

  // A param of the wrong type must widen to a full scan, not silently
  // mis-seek: the residual filter still applies.
  auto typed = stmt.value().Execute({Value("not a number")});
  ASSERT_TRUE(typed.ok()) << typed.status();
  EXPECT_TRUE(typed.value().rows.empty());
}

TEST_F(PlanCacheTest, ReplanUnderStaleSnapshotIsAClearTxnError) {
  auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(stmt.ok());
  ReadSnapshot snap(&db_);
  ASSERT_TRUE(stmt.value().Execute({Value(static_cast<int64_t>(1))}).ok());
  // DDL invalidates the cached plan *and* commits after the snapshot was
  // pinned. Re-execution must not silently replan against the new catalog
  // under the old snapshot — it fails with a transaction error that names
  // the schema change, so the caller knows to re-acquire and retry.
  ASSERT_TRUE(db_.Execute("CREATE INDEX t_grp ON t (grp)").ok());
  auto res = stmt.value().Execute({Value(static_cast<int64_t>(1))});
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kTxnError) << res.status();
  EXPECT_NE(res.status().message().find("schema changed"), std::string::npos)
      << res.status();
}

TEST_F(PlanCacheTest, PreparedStatementRecoversAfterSnapshotReacquire) {
  auto stmt = db_.Prepare("SELECT id FROM t WHERE grp = ?");
  ASSERT_TRUE(stmt.ok());
  {
    ReadSnapshot snap(&db_);
    ASSERT_TRUE(stmt.value().Execute({Value(static_cast<int64_t>(2))}).ok());
    ASSERT_TRUE(db_.Execute("CREATE INDEX t_grp2 ON t (grp)").ok());
    ASSERT_FALSE(stmt.value().Execute({Value(static_cast<int64_t>(2))}).ok());
  }
  // Fresh snapshot: the statement replans against the current catalog and
  // works again (now through the new index).
  auto res = stmt.value().Execute({Value(static_cast<int64_t>(2))});
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res.value().rows.size(), 10u);
  auto plan = stmt.value().ExplainPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("IndexScan"), std::string::npos);
}

}  // namespace
}  // namespace xmlrdb::rdb
