// WAL unit tests: record framing round-trips, fsync policies, the poisoned
// log, and the corruption matrix — torn tail (truncate at the failed CRC),
// bit flip mid-log (clear error, no silent data loss), truncated header,
// and empty / missing log files (clean cold starts).

#include "rdb/wal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "rdb/fault_env.h"
#include "rdb/table.h"

namespace xmlrdb::rdb {
namespace {

constexpr char kLog[] = "wal.log";

Schema TwoColSchema() {
  return Schema({{"id", DataType::kInt, false, ""},
                 {"name", DataType::kString, true, ""}});
}

/// A Wal over `env` writing to kLog, plus a table to feed the sink.
struct Fixture {
  explicit Fixture(FaultInjectionEnv* e,
                   WalOptions::SyncPolicy policy = WalOptions::SyncPolicy::kCommit,
                   size_t batch_bytes = 64 * 1024)
      : env(e), table("t", TwoColSchema()) {
    WalOptions options;
    options.sync_policy = policy;
    options.batch_bytes = batch_bytes;
    auto file = Wal::CreateLogFile(env, kLog, /*start_lsn=*/1);
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    wal = std::make_unique<Wal>(env, kLog, std::move(file.value()), options,
                                /*next_lsn=*/1);
  }

  Row MakeRow(int64_t id, const std::string& name) {
    return {Value(id), Value(name)};
  }

  FaultInjectionEnv* env;
  Table table;
  std::unique_ptr<Wal> wal;
};

/// Reads kLog back, expecting success.
WalReadResult MustRead(Env* env) {
  auto read = ReadWal(env, kLog);
  EXPECT_TRUE(read.ok()) << read.status().ToString();
  return std::move(read.value());
}

std::string FileBytes(FaultInjectionEnv* env) {
  auto data = env->ReadFileToString(kLog);
  EXPECT_TRUE(data.ok());
  return data.value();
}

void RewriteFile(FaultInjectionEnv* env, const std::string& bytes) {
  auto file = env->NewWritableFile(kLog, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->Append(bytes).ok());
  ASSERT_TRUE(file.value()->Sync().ok());
}

TEST(WalTest, PayloadRoundTripsEveryRecordType) {
  WalRecord rec;
  rec.lsn = 42;
  rec.txn = 7;
  rec.type = WalRecordType::kUpdate;
  rec.table = "items\twith\nodd chars";
  rec.old_row = {Value(int64_t{1}), Value("before"), Value::Null(),
                 Value(true), Value(3.25)};
  rec.row = {Value(int64_t{1}), Value("after"), Value("x"), Value(false),
             Value(-0.5)};
  auto decoded = DecodeWalPayload(EncodeWalPayload(rec));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().lsn, rec.lsn);
  EXPECT_EQ(decoded.value().txn, rec.txn);
  EXPECT_EQ(decoded.value().type, rec.type);
  EXPECT_EQ(decoded.value().table, rec.table);
  EXPECT_EQ(CompareRows(decoded.value().old_row, rec.old_row), 0);
  EXPECT_EQ(CompareRows(decoded.value().row, rec.row), 0);

  WalRecord ddl;
  ddl.type = WalRecordType::kCreateTable;
  ddl.table = "t2";
  ddl.columns = TwoColSchema().columns();
  auto ddl2 = DecodeWalPayload(EncodeWalPayload(ddl));
  ASSERT_TRUE(ddl2.ok());
  ASSERT_EQ(ddl2.value().columns.size(), 2u);
  EXPECT_EQ(ddl2.value().columns[0].name, "id");
  EXPECT_EQ(ddl2.value().columns[0].type, DataType::kInt);
  EXPECT_FALSE(ddl2.value().columns[0].nullable);

  WalRecord idx;
  idx.type = WalRecordType::kCreateIndex;
  idx.table = "t2";
  idx.index_name = "t2_by_name";
  idx.index_columns = {"name", "id"};
  auto idx2 = DecodeWalPayload(EncodeWalPayload(idx));
  ASSERT_TRUE(idx2.ok());
  EXPECT_EQ(idx2.value().index_name, "t2_by_name");
  EXPECT_EQ(idx2.value().index_columns,
            (std::vector<std::string>{"name", "id"}));
}

TEST(WalTest, AppendedRecordsReadBackInOrderWithSequentialLsns) {
  FaultInjectionEnv env;
  Fixture fx(&env);
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "a")).ok());
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "b")).ok());
  ASSERT_TRUE(
      fx.wal->OnUpdate(fx.table, fx.MakeRow(2, "b"), fx.MakeRow(2, "c")).ok());
  ASSERT_TRUE(fx.wal->OnDelete(fx.table, fx.MakeRow(1, "a")).ok());

  WalReadResult read = MustRead(&env);
  ASSERT_EQ(read.records.size(), 4u);
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.next_lsn, 5u);
  for (size_t i = 0; i < read.records.size(); ++i) {
    EXPECT_EQ(read.records[i].lsn, i + 1);
  }
  EXPECT_EQ(read.records[2].type, WalRecordType::kUpdate);
  EXPECT_EQ(read.records[3].type, WalRecordType::kDelete);
}

TEST(WalTest, CommitPolicySyncsEveryAutocommitRecord) {
  FaultInjectionEnv env;
  Fixture fx(&env, WalOptions::SyncPolicy::kCommit);
  const int64_t before = env.syncs();
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "a")).ok());
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "b")).ok());
  EXPECT_EQ(env.syncs() - before, 2);
}

TEST(WalTest, CommitPolicySyncsOncePerTransaction) {
  FaultInjectionEnv env;
  Fixture fx(&env, WalOptions::SyncPolicy::kCommit);
  const int64_t before = env.syncs();
  const uint64_t txn = fx.wal->BeginTxn();
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "a")).ok());
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "b")).ok());
  EXPECT_EQ(env.syncs() - before, 0) << "mid-transaction records don't sync";
  ASSERT_TRUE(fx.wal->Commit(txn).ok());
  EXPECT_EQ(env.syncs() - before, 1) << "the commit record syncs";
}

TEST(WalTest, NeverPolicyNeverSyncs) {
  FaultInjectionEnv env;
  Fixture fx(&env, WalOptions::SyncPolicy::kNever);
  const int64_t before = env.syncs();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(i, "x")).ok());
  }
  EXPECT_EQ(env.syncs() - before, 0);
}

TEST(WalTest, BatchPolicySyncsAtThreshold) {
  FaultInjectionEnv env;
  Fixture fx(&env, WalOptions::SyncPolicy::kBatch, /*batch_bytes=*/256);
  const int64_t before = env.syncs();
  int64_t appends = 0;
  while (env.syncs() == before && appends < 1000) {
    ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(appends, "row")).ok());
    ++appends;
  }
  EXPECT_EQ(env.syncs() - before, 1);
  EXPECT_GT(appends, 1) << "several appends fit under the 256-byte batch";
}

TEST(WalTest, UncommittedRecordsCarryTransactionId) {
  FaultInjectionEnv env;
  Fixture fx(&env);
  const uint64_t txn = fx.wal->BeginTxn();
  ASSERT_GT(txn, 0u);
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "a")).ok());
  Wal::AbandonTxn();
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "b")).ok());

  WalReadResult read = MustRead(&env);
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records[0].txn, txn);
  EXPECT_EQ(read.records[1].txn, 0u) << "after abandon, back to autocommit";
}

TEST(WalTest, FailedAppendPoisonsTheLog) {
  FaultInjectionEnv env;
  Fixture fx(&env);
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "a")).ok());
  env.set_fail_after_data_writes(0);
  EXPECT_FALSE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "b")).ok());
  env.set_fail_after_data_writes(-1);
  EXPECT_FALSE(fx.wal->OnInsert(fx.table, fx.MakeRow(3, "c")).ok())
      << "the log must stay poisoned after an I/O error";
}

// -- corruption matrix --

TEST(WalCorruptionTest, TornTailTruncatesAtFailedCrc) {
  FaultInjectionEnv env;
  {
    Fixture fx(&env);
    ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "a")).ok());
    ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "b")).ok());
  }
  // Tear the tail: drop the last 3 bytes of the final record.
  std::string bytes = FileBytes(&env);
  RewriteFile(&env, bytes.substr(0, bytes.size() - 3));

  WalReadResult read = MustRead(&env);
  EXPECT_TRUE(read.torn_tail);
  ASSERT_EQ(read.records.size(), 1u) << "the intact prefix survives";
  EXPECT_EQ(read.records[0].row[0].AsInt(), 1);
  EXPECT_LT(read.valid_bytes, bytes.size());
}

TEST(WalCorruptionTest, BadCrcOnFinalFullLengthFrameIsTornTail) {
  FaultInjectionEnv env;
  {
    Fixture fx(&env);
    ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "a")).ok());
    ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "b")).ok());
  }
  // Flip a byte inside the LAST record: same length, failing CRC.
  std::string bytes = FileBytes(&env);
  bytes[bytes.size() - 2] ^= 0x40;
  RewriteFile(&env, bytes);

  WalReadResult read = MustRead(&env);
  EXPECT_TRUE(read.torn_tail);
  EXPECT_EQ(read.records.size(), 1u);
}

TEST(WalCorruptionTest, BitFlipMidLogIsAHardError) {
  FaultInjectionEnv env;
  size_t first_record_middle = 0;
  {
    Fixture fx(&env);
    ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "aaaa")).ok());
    first_record_middle = FileBytes(&env).size() - 4;
    ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "bbbb")).ok());
  }
  std::string bytes = FileBytes(&env);
  bytes[first_record_middle] ^= 0x01;
  RewriteFile(&env, bytes);

  auto read = ReadWal(&env, kLog);
  ASSERT_FALSE(read.ok()) << "mid-log corruption must not be dropped quietly";
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_NE(read.status().message().find("checksum"), std::string::npos)
      << read.status().ToString();
}

TEST(WalCorruptionTest, TruncatedHeaderIsAHardError) {
  FaultInjectionEnv env;
  { Fixture fx(&env); }
  std::string bytes = FileBytes(&env);
  RewriteFile(&env, bytes.substr(0, 10));  // header is 20 bytes

  auto read = ReadWal(&env, kLog);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("header"), std::string::npos);
}

TEST(WalCorruptionTest, ForeignMagicIsAHardError) {
  FaultInjectionEnv env;
  RewriteFile(&env, "definitely not a WAL file, but long enough");
  auto read = ReadWal(&env, kLog);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("magic"), std::string::npos);
}

TEST(WalCorruptionTest, EmptyFileIsACleanColdStart) {
  FaultInjectionEnv env;
  RewriteFile(&env, "");
  WalReadResult read = MustRead(&env);
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.next_lsn, 1u);
}

TEST(WalCorruptionTest, MissingFileIsACleanColdStart) {
  FaultInjectionEnv env;
  WalReadResult read = MustRead(&env);
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.torn_tail);
}

TEST(WalCorruptionTest, HeaderOnlyLogHasNoRecords) {
  FaultInjectionEnv env;
  { Fixture fx(&env); }
  WalReadResult read = MustRead(&env);
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.next_lsn, 1u);
}

TEST(WalTest, SwapFileRedirectsAppends) {
  FaultInjectionEnv env;
  Fixture fx(&env);
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(1, "a")).ok());
  const Lsn lsn_after_first = fx.wal->next_lsn();

  auto next = Wal::CreateLogFile(&env, "wal2.log", lsn_after_first);
  ASSERT_TRUE(next.ok());
  fx.wal->SwapFile(std::move(next.value()), "wal2.log");
  ASSERT_TRUE(fx.wal->OnInsert(fx.table, fx.MakeRow(2, "b")).ok());

  auto old_read = ReadWal(&env, kLog);
  ASSERT_TRUE(old_read.ok());
  EXPECT_EQ(old_read.value().records.size(), 1u);
  auto new_read = ReadWal(&env, "wal2.log");
  ASSERT_TRUE(new_read.ok());
  ASSERT_EQ(new_read.value().records.size(), 1u);
  EXPECT_EQ(new_read.value().records[0].lsn, lsn_after_first)
      << "LSNs continue across the swap";
}

}  // namespace
}  // namespace xmlrdb::rdb
