#include "common/trace.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace xmlrdb {
namespace {

/// Enables the global collector for one test, restoring a clean disabled
/// state afterwards so tests do not leak spans into each other.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().Clear();
    TraceCollector::Global().set_enabled(true);
  }
  void TearDown() override {
    TraceCollector::Global().set_enabled(false);
    TraceCollector::Global().Clear();
    TraceCollector::Global().set_capacity(128 * 1024);
  }
};

TEST_F(TraceTest, DisabledCollectorRecordsNothing) {
  TraceCollector::Global().set_enabled(false);
  {
    ScopedSpan span("ignored");
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
}

TEST_F(TraceTest, SameThreadNesting) {
  {
    ScopedSpan outer("outer");
    EXPECT_EQ(trace::CurrentSpanId(), outer.id());
    {
      ScopedSpan inner("inner");
      EXPECT_EQ(trace::CurrentSpanId(), inner.id());
    }
    // Popping the inner span restores the outer as current.
    EXPECT_EQ(trace::CurrentSpanId(), outer.id());
  }
  EXPECT_EQ(trace::CurrentSpanId(), 0u);

  std::vector<TraceEvent> events = TraceCollector::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  std::map<std::string, TraceEvent> by_name;
  for (const auto& e : events) by_name[e.name] = e;
  ASSERT_TRUE(by_name.count("outer"));
  ASSERT_TRUE(by_name.count("inner"));
  EXPECT_EQ(by_name["outer"].parent_id, 0u);
  EXPECT_EQ(by_name["inner"].parent_id, by_name["outer"].id);
  EXPECT_GE(by_name["outer"].dur_us, by_name["inner"].dur_us);
}

TEST_F(TraceTest, NestingPropagatesAcrossParallelFor) {
  constexpr size_t kTasks = 16;
  uint64_t parent_id = 0;
  {
    ScopedSpan parent("parent");
    parent_id = parent.id();
    ThreadPool pool(4);
    pool.ParallelFor(kTasks, [](size_t) { ScopedSpan child("child"); });
  }
  std::vector<TraceEvent> events = TraceCollector::Global().Snapshot();
  size_t children = 0;
  for (const auto& e : events) {
    if (e.name != "child") continue;
    ++children;
    // Every worker-side span nests under the submitting span even though it
    // ran on a different thread.
    EXPECT_EQ(e.parent_id, parent_id);
  }
  EXPECT_EQ(children, kTasks);
}

TEST_F(TraceTest, InlineExecutionKeepsCallerContext) {
  // A pool of size 0 runs Submit() inline on the caller; the caller's span
  // must still be the parent.
  uint64_t parent_id = 0;
  {
    ScopedSpan parent("parent");
    parent_id = parent.id();
    ThreadPool pool(0);
    pool.Submit([] { ScopedSpan child("child"); });
  }
  std::vector<TraceEvent> events = TraceCollector::Global().Snapshot();
  auto it = std::find_if(events.begin(), events.end(),
                         [](const TraceEvent& e) { return e.name == "child"; });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->parent_id, parent_id);
}

TEST_F(TraceTest, ChromeJsonShape) {
  {
    ScopedSpan outer("statement \"quoted\"", "sql");
    ScopedSpan inner("morsel", "exec");
  }
  std::string json = TraceCollector::Global().RenderChromeJson();
  // Structural markers of the trace-event format.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"sql\""), std::string::npos);
  EXPECT_NE(json.find("\"args\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
  // Quotes in span names are escaped.
  EXPECT_NE(json.find("statement \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("statement \"quoted\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(TraceTest, CapacityBoundsBufferAndCountsDrops) {
  TraceCollector::Global().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("s" + std::to_string(i));
  }
  EXPECT_EQ(TraceCollector::Global().size(), 4u);
  EXPECT_EQ(TraceCollector::Global().dropped(), 6);
  TraceCollector::Global().Clear();
  EXPECT_EQ(TraceCollector::Global().size(), 0u);
  EXPECT_EQ(TraceCollector::Global().dropped(), 0);
}

TEST_F(TraceTest, SpanIdsAreUniqueAndNonZero) {
  for (int i = 0; i < 100; ++i) {
    ScopedSpan span("s");
    EXPECT_NE(span.id(), 0u);
  }
  std::vector<TraceEvent> events = TraceCollector::Global().Snapshot();
  std::vector<uint64_t> ids;
  for (const auto& e : events) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

}  // namespace
}  // namespace xmlrdb
