// Property test for the snapshot text format's escaping (persist.cc).
//
// The .tbl format separates fields with tabs and records with newlines, so
// strings containing tabs, newlines, carriage returns, backslashes, the
// literal two-character sequence "\N" (which unescaped means SQL NULL), and
// empty strings are exactly the values that can corrupt a snapshot if the
// escaping has a hole. Every checkpoint and recovery rides this format —
// a silent escaping bug IS data loss.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rdb/fault_env.h"
#include "rdb/persist.h"

namespace xmlrdb::rdb {
namespace {

constexpr char kDir[] = "snap";

/// Strings chosen to attack the escaping: every metacharacter alone, at the
/// ends, doubled, and interleaved.
const std::vector<std::string>& HostileStrings() {
  static const std::vector<std::string> kStrings = {
      "",        "\t",       "\n",       "\r",     "\\",     "\\N",
      "\\\\N",   "\\n",      "\\t",      "a\tb",   "a\nb",   "a\rb",
      "a\\b",    "\ta",      "a\t",      "\na",    "a\n",    "\\",
      "\\\\",    "\t\t\t",   "\n\n",     "\r\n",   "a\t\nb\\c\rd",
      "N",       "\\Nx",     "x\\N",     " ",      "  x  ",
  };
  return kStrings;
}

std::string RandomHostileString(Rng* rng) {
  // Concatenate a few fragments: hostile pieces and plain words.
  std::string out;
  const int pieces = static_cast<int>(rng->Uniform(0, 4));
  for (int i = 0; i < pieces; ++i) {
    if (rng->Bernoulli(0.6)) {
      out += rng->Pick(HostileStrings());
    } else {
      out += rng->Word(1, 6);
    }
  }
  return out;
}

Row RandomRow(Rng* rng) {
  Row row;
  // Schema: (s VARCHAR NULL, t VARCHAR NULL, i INTEGER NULL, d DOUBLE NULL,
  //          b BOOLEAN NULL)
  row.push_back(rng->Bernoulli(0.1) ? Value::Null()
                                    : Value(RandomHostileString(rng)));
  row.push_back(rng->Bernoulli(0.1) ? Value::Null()
                                    : Value(rng->Pick(HostileStrings())));
  row.push_back(rng->Bernoulli(0.1)
                    ? Value::Null()
                    : Value(rng->Uniform(-1000000, 1000000)));
  row.push_back(rng->Bernoulli(0.1) ? Value::Null()
                                    : Value(rng->NextDouble() * 1e6 - 5e5));
  row.push_back(rng->Bernoulli(0.1) ? Value::Null()
                                    : Value(rng->Bernoulli(0.5)));
  return row;
}

Schema FuzzSchema() {
  return Schema({{"s", DataType::kString, true, ""},
                 {"t", DataType::kString, true, ""},
                 {"i", DataType::kInt, true, ""},
                 {"d", DataType::kDouble, true, ""},
                 {"b", DataType::kBool, true, ""}});
}

void ExpectSameRows(const Table* before, const Table* after) {
  ASSERT_NE(after, nullptr);
  ASSERT_EQ(before->num_rows(), after->num_rows());
  // Save compacts tombstones but preserves order of live rows, and these
  // tables never delete, so rows correspond positionally.
  for (RowId rid = 0; rid < before->num_slots(); ++rid) {
    ASSERT_TRUE(after->IsLive(rid));
    const Row& a = before->row(rid);
    const Row& b = after->row(rid);
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
      EXPECT_EQ(a[c].is_null(), b[c].is_null())
          << "row " << rid << " col " << c;
      if (a[c].is_null() || b[c].is_null()) continue;
      if (a[c].type() == DataType::kString) {
        // Byte-identical, the whole point of the test.
        EXPECT_EQ(a[c].AsString(), b[c].AsString())
            << "row " << rid << " col " << c;
      } else {
        EXPECT_EQ(a[c].Compare(b[c]), 0) << "row " << rid << " col " << c;
      }
    }
  }
}

TEST(PersistFuzzTest, HostileStringsRoundTripByteIdentically) {
  FaultInjectionEnv env;
  Database db;
  auto table = db.CreateTable("fuzz", FuzzSchema());
  ASSERT_TRUE(table.ok());
  // Every hostile string in every string column position, deterministically.
  for (const std::string& s : HostileStrings()) {
    for (const std::string& t : HostileStrings()) {
      ASSERT_TRUE(table.value()
                      ->Insert({Value(s), Value(t), Value(int64_t{1}),
                                Value(0.5), Value(true)})
                      .ok());
    }
  }
  ASSERT_TRUE(SaveDatabase(&env, db, kDir).ok());
  auto loaded = LoadDatabase(&env, kDir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameRows(table.value(), loaded.value()->FindTable("fuzz"));
}

TEST(PersistFuzzTest, RandomRowsRoundTripAcrossManySeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultInjectionEnv env;
    Rng rng(seed);
    Database db;
    auto table = db.CreateTable("fuzz", FuzzSchema());
    ASSERT_TRUE(table.ok());
    const int rows = static_cast<int>(rng.Uniform(1, 200));
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(table.value()->Insert(RandomRow(&rng)).ok());
    }
    ASSERT_TRUE(SaveDatabase(&env, db, kDir).ok()) << "seed " << seed;
    auto loaded = LoadDatabase(&env, kDir);
    ASSERT_TRUE(loaded.ok()) << "seed " << seed << ": "
                             << loaded.status().ToString();
    ExpectSameRows(table.value(), loaded.value()->FindTable("fuzz"));
  }
}

TEST(PersistFuzzTest, DoubleSaveLoadIsAFixpoint) {
  FaultInjectionEnv env;
  Rng rng(7);
  Database db;
  auto table = db.CreateTable("fuzz", FuzzSchema());
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.value()->Insert(RandomRow(&rng)).ok());
  }
  ASSERT_TRUE(SaveDatabase(&env, db, "a").ok());
  auto once = LoadDatabase(&env, "a");
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(SaveDatabase(&env, *once.value(), "b").ok());
  auto twice = LoadDatabase(&env, "b");
  ASSERT_TRUE(twice.ok());
  ExpectSameRows(once.value()->FindTable("fuzz"),
                 twice.value()->FindTable("fuzz"));
  // The serialized bytes themselves are identical from the first save on.
  auto bytes_a = env.ReadFileToString("a/fuzz.tbl");
  auto bytes_b = env.ReadFileToString("b/fuzz.tbl");
  ASSERT_TRUE(bytes_a.ok());
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_EQ(bytes_a.value(), bytes_b.value());
}

TEST(PersistFuzzTest, TableNamesWithSchemaEdgeCasesSurvive) {
  // One-column table of nullable strings: empty lines in the .tbl file are
  // real records (the empty string), not separators to skip.
  FaultInjectionEnv env;
  Database db;
  auto table =
      db.CreateTable("one", Schema({{"s", DataType::kString, true, ""}}));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table.value()->Insert({Value(std::string())}).ok());
  ASSERT_TRUE(table.value()->Insert({Value("x")}).ok());
  ASSERT_TRUE(table.value()->Insert({Value(std::string())}).ok());
  ASSERT_TRUE(table.value()->Insert({Value::Null()}).ok());
  ASSERT_TRUE(SaveDatabase(&env, db, kDir).ok());
  auto loaded = LoadDatabase(&env, kDir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameRows(table.value(), loaded.value()->FindTable("one"));
}

}  // namespace
}  // namespace xmlrdb::rdb
