#include "rdb/schema.h"

#include <gtest/gtest.h>

namespace xmlrdb::rdb {
namespace {

Schema MakeTestSchema() {
  return Schema({{"id", DataType::kInt, false, ""},
                 {"name", DataType::kString, true, ""},
                 {"score", DataType::kDouble, true, ""}});
}

TEST(SchemaTest, IndexOfUnqualified) {
  Schema s = MakeTestSchema();
  EXPECT_EQ(s.IndexOf("id").value(), 0u);
  EXPECT_EQ(s.IndexOf("score").value(), 2u);
  EXPECT_FALSE(s.IndexOf("missing").ok());
}

TEST(SchemaTest, QualifiedLookup) {
  Schema s = MakeTestSchema().WithQualifier("t");
  EXPECT_EQ(s.IndexOf("t.name").value(), 1u);
  EXPECT_EQ(s.IndexOf("name").value(), 1u);
  EXPECT_FALSE(s.IndexOf("u.name").ok());
}

TEST(SchemaTest, AmbiguousUnqualifiedFails) {
  Schema joined = Schema::Concat(MakeTestSchema().WithQualifier("a"),
                                 MakeTestSchema().WithQualifier("b"));
  EXPECT_FALSE(joined.IndexOf("id").ok());
  EXPECT_EQ(joined.IndexOf("a.id").value(), 0u);
  EXPECT_EQ(joined.IndexOf("b.id").value(), 3u);
}

TEST(SchemaTest, ValidateRowAcceptsMatchingTypes) {
  Schema s = MakeTestSchema();
  EXPECT_TRUE(s.ValidateRow({Value(int64_t{1}), Value("x"), Value(1.5)}).ok());
  // INT widens into DOUBLE columns.
  EXPECT_TRUE(
      s.ValidateRow({Value(int64_t{1}), Value("x"), Value(int64_t{2})}).ok());
  // NULL allowed in nullable columns only.
  EXPECT_TRUE(s.ValidateRow({Value(int64_t{1}), Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(s.ValidateRow({Value::Null(), Value("x"), Value(1.0)}).code(),
            StatusCode::kConstraintError);
}

TEST(SchemaTest, ValidateRowRejectsBadArityAndTypes) {
  Schema s = MakeTestSchema();
  EXPECT_EQ(s.ValidateRow({Value(int64_t{1})}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ValidateRow({Value("not int"), Value("x"), Value(1.0)}).code(),
            StatusCode::kTypeError);
  // DOUBLE does not narrow into INT.
  EXPECT_EQ(
      s.ValidateRow({Value(1.5), Value("x"), Value(1.0)}).code(),
      StatusCode::kTypeError);
}

TEST(SchemaTest, ToStringListsColumns) {
  std::string str = MakeTestSchema().ToString();
  EXPECT_NE(str.find("id INTEGER"), std::string::npos);
  EXPECT_NE(str.find("score DOUBLE"), std::string::npos);
}

}  // namespace
}  // namespace xmlrdb::rdb
