// Tests for the always-on resource gauge layer (common/resource_tracker.h)
// and its wiring into the engine: table bytes, plan-cache bytes, statement
// log occupancy all return to their baseline when their owners die.

#include "common/resource_tracker.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "rdb/database.h"
#include "rdb/plan_cache.h"

namespace xmlrdb {
namespace {

TEST(ResourceTrackerTest, GaugesAddSetAndSnapshot) {
  ResourceTracker& tracker = ResourceTracker::Global();
  ResourceGauge& g = tracker.GetGauge("test.gauge_a");
  g.Set(0);
  g.Add(5);
  g.Add(-2);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(tracker.Get("test.gauge_a"), 3);
  auto snap = tracker.Snapshot();
  EXPECT_EQ(snap["test.gauge_a"], 3);
  g.Set(0);
}

TEST(ResourceTrackerTest, GaugeReferencesAreStable) {
  ResourceTracker& tracker = ResourceTracker::Global();
  ResourceGauge& g1 = tracker.GetGauge("test.stable");
  ResourceGauge& g2 = tracker.GetGauge("test.stable");
  EXPECT_EQ(&g1, &g2);
}

TEST(ResourceTrackerTest, AlwaysOnEvenWhenMetricsDisabled) {
  MetricsRegistry::Global().set_enabled(false);
  ResourceGauge& g = ResourceTracker::Global().GetGauge("test.always_on");
  g.Set(0);
  g.Add(7);
  EXPECT_EQ(g.value(), 7);
  g.Set(0);
}

TEST(ResourceTrackerTest, ConcurrentAddsLoseNothing) {
  ResourceGauge& g = ResourceTracker::Global().GetGauge("test.concurrent");
  g.Set(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), kThreads * kPerThread);
  g.Set(0);
}

// -- engine wiring ---------------------------------------------------------

TEST(ResourceTrackerTest, TableBytesRiseWithRowsAndFallOnDrop) {
  ResourceTracker& tracker = ResourceTracker::Global();
  int64_t row_base = tracker.Get("tables.row_bytes");
  int64_t idx_base = tracker.Get("tables.index_bytes");
  {
    rdb::Database db;
    ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER, b VARCHAR)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", 'some row payload')")
                      .ok());
    }
    EXPECT_GT(tracker.Get("tables.row_bytes"), row_base);
    ASSERT_TRUE(db.Execute("CREATE INDEX idx_a ON t (a)").ok());
    EXPECT_GT(tracker.Get("tables.index_bytes"), idx_base);

    int64_t before_delete = tracker.Get("tables.row_bytes");
    ASSERT_TRUE(db.Execute("DELETE FROM t WHERE a < 50").ok());
    EXPECT_LT(tracker.Get("tables.row_bytes"), before_delete);
  }
  // Database death returns both gauges to their baseline.
  EXPECT_EQ(tracker.Get("tables.row_bytes"), row_base);
  EXPECT_EQ(tracker.Get("tables.index_bytes"), idx_base);
}

TEST(ResourceTrackerTest, PlanCacheBytesTrackEntriesAndEvictions) {
  ResourceTracker& tracker = ResourceTracker::Global();
  int64_t bytes_base = tracker.Get("plancache.bytes");
  int64_t entries_base = tracker.Get("plancache.entries");
  {
    rdb::Database db;
    ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
    auto stmt = db.Prepare("SELECT a FROM t WHERE a = ?");
    ASSERT_TRUE(stmt.ok());
    ASSERT_TRUE(stmt.value().Execute({rdb::Value(int64_t{1})}).ok());
    EXPECT_GT(tracker.Get("plancache.bytes"), bytes_base);
    EXPECT_GT(tracker.Get("plancache.entries"), entries_base);
  }
  EXPECT_EQ(tracker.Get("plancache.bytes"), bytes_base);
  EXPECT_EQ(tracker.Get("plancache.entries"), entries_base);
}

TEST(ResourceTrackerTest, StatementLogOccupancyTracksRing) {
  ResourceTracker& tracker = ResourceTracker::Global();
  int64_t base = tracker.Get("statementlog.entries");
  {
    rdb::Database db;
    ASSERT_TRUE(db.Execute("CREATE TABLE t (a INTEGER)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
    EXPECT_EQ(tracker.Get("statementlog.entries"), base + 2);
    db.statement_log().Clear();
    EXPECT_EQ(tracker.Get("statementlog.entries"), base);
    ASSERT_TRUE(db.Execute("SELECT a FROM t").ok());
    EXPECT_EQ(tracker.Get("statementlog.entries"), base + 1);
  }
  EXPECT_EQ(tracker.Get("statementlog.entries"), base);
}

TEST(ResourceTrackerTest, XmlrdbResourcesVirtualTableServesGauges) {
  rdb::Database db;
  ResourceTracker::Global().GetGauge("test.vtable").Set(123);
  auto r = db.Execute(
      "SELECT value FROM xmlrdb_resources WHERE name = 'test.vtable'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 123);
  ResourceTracker::Global().GetGauge("test.vtable").Set(0);
}

}  // namespace
}  // namespace xmlrdb
