#include "xml/serializer.h"

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/stats.h"

namespace xmlrdb::xml {
namespace {

TEST(SerializerTest, CompactForm) {
  auto doc = Parse("<a x=\"1\"><b>t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(Serialize(*doc.value()), "<a x=\"1\"><b>t</b><c/></a>");
}

TEST(SerializerTest, EscapesSpecialCharacters) {
  Node el(NodeKind::kElement, "a");
  el.SetAttr("q", "x\"y<z");
  el.AddText("1 < 2 & 3");
  std::string out = Serialize(el);
  EXPECT_EQ(out, "<a q=\"x&quot;y&lt;z\">1 &lt; 2 &amp; 3</a>");
  // Must re-parse to the same tree.
  auto again = Parse(out);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Canonicalize(el), Canonicalize(*again.value()->root()));
}

TEST(SerializerTest, DeclarationOption) {
  auto doc = Parse("<a/>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions opt;
  opt.declaration = true;
  std::string out = Serialize(*doc.value(), opt);
  EXPECT_EQ(out.rfind("<?xml", 0), 0u);
}

TEST(SerializerTest, PrettyPrintingNests) {
  auto doc = Parse("<a><b><c>x</c></b></a>");
  ASSERT_TRUE(doc.ok());
  SerializeOptions opt;
  opt.pretty = true;
  std::string out = Serialize(*doc.value(), opt);
  EXPECT_NE(out.find("\n  <b>"), std::string::npos) << out;
  EXPECT_NE(out.find("\n    <c>x</c>"), std::string::npos) << out;
  // Pretty output still parses back to an equivalent tree (whitespace
  // between elements is ignorable).
  auto again = Parse(out);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Canonicalize(*doc.value()), Canonicalize(*again.value()));
}

TEST(CanonicalizeTest, AttributeOrderInsensitive) {
  auto d1 = Parse("<a x=\"1\" y=\"2\"/>");
  auto d2 = Parse("<a y=\"2\" x=\"1\"/>");
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(Canonicalize(*d1.value()), Canonicalize(*d2.value()));
}

TEST(CanonicalizeTest, DistinguishesStructure) {
  auto d1 = Parse("<a><b/><c/></a>");
  auto d2 = Parse("<a><c/><b/></a>");
  auto d3 = Parse("<a><b/></a>");
  ASSERT_TRUE(d1.ok() && d2.ok() && d3.ok());
  EXPECT_NE(Canonicalize(*d1.value()), Canonicalize(*d2.value()));
  EXPECT_NE(Canonicalize(*d1.value()), Canonicalize(*d3.value()));
}

TEST(CanonicalizeTest, DistinguishesTextSplits) {
  // "ab" as one text node vs "a","b" adjacent: structurally different.
  Node one(NodeKind::kElement, "x");
  one.AddText("ab");
  Node two(NodeKind::kElement, "x");
  two.AddText("a");
  two.AddText("b");
  EXPECT_NE(Canonicalize(one), Canonicalize(two));
}

TEST(NodeTest, CloneIsDeepAndDetached) {
  auto doc = Parse("<a x=\"1\"><b>t</b></a>");
  ASSERT_TRUE(doc.ok());
  auto copy = doc.value()->root()->Clone();
  EXPECT_EQ(copy->parent(), nullptr);
  EXPECT_EQ(Canonicalize(*doc.value()->root()), Canonicalize(*copy));
  copy->SetAttr("x", "changed");
  EXPECT_EQ(doc.value()->root()->FindAttribute("x")->value(), "1");
}

TEST(NodeTest, SubtreeSizeCountsEverything) {
  auto doc = Parse("<a x=\"1\"><b>t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  // a, @x, b, text(t), c
  EXPECT_EQ(doc.value()->root()->SubtreeSize(), 5u);
}

TEST(NodeTest, DetachChildTransfersOwnership) {
  auto doc = Parse("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  Node* root = doc.value()->root();
  std::unique_ptr<Node> b = root->DetachChild(0);
  EXPECT_EQ(b->name(), "b");
  EXPECT_EQ(b->parent(), nullptr);
  EXPECT_EQ(root->children().size(), 1u);
  EXPECT_EQ(root->children()[0]->name(), "c");
}

TEST(StatsTest, CountsAndDepth) {
  auto doc = Parse("<a x=\"1\"><b>text</b><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  DocStats s = ComputeStats(*doc.value()->root());
  EXPECT_EQ(s.element_count, 4u);  // a, b, b, c
  EXPECT_EQ(s.attribute_count, 1u);
  EXPECT_EQ(s.text_node_count, 1u);
  EXPECT_EQ(s.text_bytes, 4u);
  EXPECT_EQ(s.max_depth, 3u);
  EXPECT_EQ(s.distinct_tags, 3u);
  EXPECT_EQ(s.tag_counts.at("b"), 2u);
}

}  // namespace
}  // namespace xmlrdb::xml
