// FaultInjectionEnv semantics: the durability tests are only as good as the
// fault model they run against, so the model itself is pinned down here —
// synced-vs-unsynced data across a crash, torn tails, Nth-write failures,
// short writes, crash-point accounting, and the dead-process behaviour.

#include "rdb/fault_env.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/status.h"

namespace xmlrdb::rdb {
namespace {

std::unique_ptr<WritableFile> MustOpen(Env* env, const std::string& path,
                                       bool truncate = true) {
  auto file = env->NewWritableFile(path, truncate);
  EXPECT_TRUE(file.ok()) << file.status().ToString();
  return std::move(file.value());
}

TEST(FaultEnvTest, ReadBackWhatWasWritten) {
  FaultInjectionEnv env;
  auto f = MustOpen(&env, "dir/a.txt");
  ASSERT_TRUE(f->Append("hello ").ok());
  ASSERT_TRUE(f->Append("world").ok());
  auto data = env.ReadFileToString("dir/a.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello world");
}

TEST(FaultEnvTest, CrashDropsUnsyncedTail) {
  FaultInjectionEnv env;
  auto f = MustOpen(&env, "a");
  ASSERT_TRUE(f->Append("durable").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("volatile").ok());
  env.SimulateCrash();
  EXPECT_TRUE(env.crashed());
  EXPECT_FALSE(f->Append("x").ok()) << "I/O must fail after the crash";
  env.ResetCrash();
  auto data = env.ReadFileToString("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "durable") << "unsynced bytes must not survive";
}

TEST(FaultEnvTest, CrashKeepsTornTailPrefix) {
  FaultInjectionEnv env;
  env.set_torn_tail_bytes(3);
  auto f = MustOpen(&env, "a");
  ASSERT_TRUE(f->Append("base").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("unsynced").ok());
  env.SimulateCrash();
  env.ResetCrash();
  auto data = env.ReadFileToString("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "baseuns") << "3 torn bytes of the tail survive";
}

TEST(FaultEnvTest, NthWriteFailsAndPoisonsNothingElse) {
  FaultInjectionEnv env;
  auto f = MustOpen(&env, "a");
  env.set_fail_after_data_writes(2);
  EXPECT_TRUE(f->Append("one").ok());
  EXPECT_TRUE(f->Append("two").ok());
  EXPECT_FALSE(f->Append("three").ok()) << "third write must fail";
  env.set_fail_after_data_writes(-1);
  EXPECT_TRUE(f->Append("four").ok());
  auto data = env.ReadFileToString("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "onetwofour");
}

TEST(FaultEnvTest, ShortWritePersistsPrefixOfFailedAppend) {
  FaultInjectionEnv env;
  auto f = MustOpen(&env, "a");
  env.set_fail_after_data_writes(0);
  env.set_short_write_bytes(4);
  EXPECT_FALSE(f->Append("torn-record").ok());
  auto data = env.ReadFileToString("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "torn") << "only the short-write prefix lands";
}

TEST(FaultEnvTest, MetadataOpsAreDurableAcrossCrash) {
  FaultInjectionEnv env;
  {
    auto f = MustOpen(&env, "d/from");
    ASSERT_TRUE(f->Append("payload").ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  ASSERT_TRUE(env.RenameFile("d/from", "d/to").ok());
  env.SimulateCrash();
  env.ResetCrash();
  EXPECT_FALSE(env.FileExists("d/from"));
  ASSERT_TRUE(env.FileExists("d/to"));
  auto data = env.ReadFileToString("d/to");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "payload");
}

TEST(FaultEnvTest, ListDirAndRemoveDirRecursive) {
  FaultInjectionEnv env;
  MustOpen(&env, "root/sub/a");
  MustOpen(&env, "root/sub/b");
  MustOpen(&env, "root/c");
  auto names = env.ListDir("root");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"c", "sub"}));
  ASSERT_TRUE(env.RemoveDirRecursive("root/sub").ok());
  EXPECT_FALSE(env.FileExists("root/sub/a"));
  EXPECT_TRUE(env.FileExists("root/c"));
}

TEST(FaultEnvTest, CrashPointsRecordHitsAlways) {
  FaultInjectionEnv env;
  EXPECT_TRUE(env.CrashPoint("alpha").ok());
  EXPECT_TRUE(env.CrashPoint("alpha").ok());
  EXPECT_TRUE(env.CrashPoint("beta").ok());
  auto hits = env.CrashPointHits();
  EXPECT_EQ(hits["alpha"], 2);
  EXPECT_EQ(hits["beta"], 1);
}

TEST(FaultEnvTest, ArmedCrashPointTripsAtRequestedHit) {
  FaultInjectionEnv env;
  auto f = MustOpen(&env, "a");
  ASSERT_TRUE(f->Append("synced").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("lost").ok());

  env.ArmCrashPoint("point", /*hit=*/2);
  EXPECT_TRUE(env.CrashPoint("point").ok()) << "first hit passes";
  Status s = env.CrashPoint("point");
  EXPECT_FALSE(s.ok()) << "second hit crashes";
  EXPECT_TRUE(env.crashed());
  env.ResetCrash();
  auto data = env.ReadFileToString("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "synced");
  // Disarmed after firing: the same point passes now.
  EXPECT_TRUE(env.CrashPoint("point").ok());
}

TEST(FaultEnvTest, ArmingIsRelativeToCurrentHitCount) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CrashPoint("p").ok());
  ASSERT_TRUE(env.CrashPoint("p").ok());
  env.ArmCrashPoint("p", /*hit=*/1);  // the very next hit, not the third ever
  EXPECT_FALSE(env.CrashPoint("p").ok());
}

TEST(FaultEnvTest, TruncateReopenEmptiesFile) {
  FaultInjectionEnv env;
  {
    auto f = MustOpen(&env, "a");
    ASSERT_TRUE(f->Append("old").ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  {
    auto f = MustOpen(&env, "a", /*truncate=*/true);
    ASSERT_TRUE(f->Append("new").ok());
  }
  auto data = env.ReadFileToString("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "new");
}

TEST(FaultEnvTest, AppendReopenKeepsContents) {
  FaultInjectionEnv env;
  {
    auto f = MustOpen(&env, "a");
    ASSERT_TRUE(f->Append("first").ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  {
    auto f = MustOpen(&env, "a", /*truncate=*/false);
    ASSERT_TRUE(f->Append("|second").ok());
  }
  auto data = env.ReadFileToString("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "first|second");
}

}  // namespace
}  // namespace xmlrdb::rdb
