// Tests for the DTD-driven inline mapping: schema planning, round-trip,
// oracle-differential queries, updates, and the no-join SQL translation.

#include <algorithm>

#include <gtest/gtest.h>

#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "workload/biblio.h"
#include "workload/xmark.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/dom_eval.h"

namespace xmlrdb {
namespace {

using shred::InlineMapping;

std::unique_ptr<xml::Dtd> MustParseDtd(const std::string& text) {
  auto dtd = xml::ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  return std::move(dtd).value();
}

std::unique_ptr<InlineMapping> MustCreate(const std::string& dtd_text,
                                          const std::string& root,
                                          bool no_inline = false) {
  auto dtd = MustParseDtd(dtd_text);
  auto m = InlineMapping::Create(*dtd, root, no_inline);
  EXPECT_TRUE(m.ok()) << m.status();
  return std::move(m).value();
}

TEST(InlineSchemaPlan, BiblioTables) {
  auto m = MustCreate(workload::BiblioDtd(), "bib");
  std::vector<std::string> tables = m->TableElementNames();
  std::sort(tables.begin(), tables.end());
  // bib (root), book/article (set-valued under bib), author (set-valued
  // under article + shared with book). title is shared (book & article) so
  // it is a table too. firstname/lastname/publisher/journal inline.
  EXPECT_NE(std::find(tables.begin(), tables.end(), "bib"), tables.end());
  EXPECT_NE(std::find(tables.begin(), tables.end(), "book"), tables.end());
  EXPECT_NE(std::find(tables.begin(), tables.end(), "article"), tables.end());
  EXPECT_NE(std::find(tables.begin(), tables.end(), "author"), tables.end());
  EXPECT_EQ(std::find(tables.begin(), tables.end(), "firstname"), tables.end());
  EXPECT_EQ(std::find(tables.begin(), tables.end(), "lastname"), tables.end());
  EXPECT_EQ(std::find(tables.begin(), tables.end(), "publisher"), tables.end());
}

TEST(InlineSchemaPlan, RecursiveDtdGetsTables) {
  const char* dtd = R"(
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
)";
  auto m = MustCreate(dtd, "part");
  std::vector<std::string> tables = m->TableElementNames();
  EXPECT_NE(std::find(tables.begin(), tables.end(), "part"), tables.end());
}

TEST(InlineSchemaPlan, MissingRootRejected) {
  auto dtd = MustParseDtd("<!ELEMENT a (#PCDATA)>");
  auto m = InlineMapping::Create(*dtd, "nonexistent");
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

void ExpectInlineRoundtrip(const std::string& dtd_text, const std::string& root,
                           const xml::Document& doc, bool no_inline = false) {
  auto m = MustCreate(dtd_text, root, no_inline);
  rdb::Database db;
  ASSERT_TRUE(m->Initialize(&db).ok());
  auto stored = m->Store(doc, &db);
  ASSERT_TRUE(stored.ok()) << stored.status();
  auto rebuilt = m->Reconstruct(&db, stored.value());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(xml::Canonicalize(doc), xml::Canonicalize(*rebuilt.value()));
}

TEST(InlineRoundtrip, Biblio) {
  workload::BiblioConfig cfg;
  cfg.books = 25;
  cfg.articles = 30;
  auto doc = workload::GenerateBiblio(cfg);
  ExpectInlineRoundtrip(workload::BiblioDtd(), "bib", *doc);
}

TEST(InlineRoundtrip, BiblioNoInliningAblation) {
  workload::BiblioConfig cfg;
  cfg.books = 10;
  cfg.articles = 10;
  auto doc = workload::GenerateBiblio(cfg);
  ExpectInlineRoundtrip(workload::BiblioDtd(), "bib", *doc, /*no_inline=*/true);
}

TEST(InlineRoundtrip, Auction) {
  workload::XMarkConfig cfg;
  cfg.scale = 0.05;
  auto doc = workload::GenerateXMark(cfg);
  ExpectInlineRoundtrip(workload::XMarkDtd(), "site", *doc);
}

TEST(InlineRoundtrip, RecursiveDocument) {
  const char* dtd = R"(
<!ELEMENT part (name, part*)>
<!ELEMENT name (#PCDATA)>
<!ATTLIST part id CDATA #REQUIRED>
)";
  auto doc = xml::Parse(
      "<part id=\"1\"><name>engine</name>"
      "<part id=\"2\"><name>piston</name></part>"
      "<part id=\"3\"><name>valve</name>"
      "<part id=\"4\"><name>spring</name></part></part></part>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ExpectInlineRoundtrip(dtd, "part", *doc.value());
}

TEST(InlineStore, NonConformingDocumentRejected) {
  auto m = MustCreate(workload::BiblioDtd(), "bib");
  rdb::Database db;
  ASSERT_TRUE(m->Initialize(&db).ok());
  auto doc = xml::Parse("<bib><movie><title>x</title></movie></bib>");
  ASSERT_TRUE(doc.ok());
  auto stored = m->Store(*doc.value(), &db);
  EXPECT_FALSE(stored.ok());
  EXPECT_EQ(stored.status().code(), StatusCode::kConstraintError);
}

TEST(InlineStore, WrongRootRejected) {
  auto m = MustCreate(workload::BiblioDtd(), "bib");
  rdb::Database db;
  ASSERT_TRUE(m->Initialize(&db).ok());
  auto doc = xml::Parse("<library/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(m->Store(*doc.value(), &db).status().code(),
            StatusCode::kConstraintError);
}

class InlineQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::BiblioConfig cfg;
    cfg.books = 30;
    cfg.articles = 30;
    doc_ = workload::GenerateBiblio(cfg);
    mapping_ = MustCreate(workload::BiblioDtd(), "bib");
    ASSERT_TRUE(mapping_->Initialize(&db_).ok());
    auto stored = mapping_->Store(*doc_, &db_);
    ASSERT_TRUE(stored.ok()) << stored.status();
    doc_id_ = stored.value();
  }

  std::vector<std::string> Oracle(const std::string& xpath) {
    auto path = xpath::ParseXPath(xpath);
    EXPECT_TRUE(path.ok()) << path.status();
    auto nodes = xpath::EvalOnDom(path.value(), *doc_->doc_node());
    EXPECT_TRUE(nodes.ok()) << nodes.status();
    std::vector<std::string> out;
    for (const xml::Node* n : nodes.value()) out.push_back(n->StringValue());
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<std::string> Got(const std::string& xpath) {
    auto path = xpath::ParseXPath(xpath);
    EXPECT_TRUE(path.ok()) << path.status();
    auto values =
        shred::EvalPathStrings(path.value(), mapping_.get(), &db_, doc_id_);
    EXPECT_TRUE(values.ok()) << values.status();
    std::vector<std::string> out =
        values.ok() ? values.value() : std::vector<std::string>{};
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<xml::Document> doc_;
  std::unique_ptr<InlineMapping> mapping_;
  rdb::Database db_;
  shred::DocId doc_id_ = 0;
};

TEST_F(InlineQueryTest, MatchesOracle) {
  for (const std::string& xpath : std::vector<std::string>{
           "/bib/book/title",
           "/bib/article/author/lastname",
           "//author[firstname]/lastname",
           "//title",
           "/bib/book/@year",
           "/bib/*/title",
           "/bib/book[2]/title",
           "//author/@age",
           "//book[@price > 100]/title",
           "/bib/article[author/lastname]/journal",
       }) {
    EXPECT_EQ(Oracle(xpath), Got(xpath)) << "path=" << xpath;
  }
}

TEST_F(InlineQueryTest, InsertAndDeleteSubtree) {
  // Append a new book and verify it becomes visible.
  auto new_book = xml::ParseFragment(
      "<book year=\"2003\"><title>Brand New</title>"
      "<author><firstname>Ann</firstname><lastname>Author</lastname></author>"
      "</book>");
  ASSERT_TRUE(new_book.ok()) << new_book.status();
  auto root = mapping_->RootElement(&db_, doc_id_);
  ASSERT_TRUE(root.ok());
  size_t before = Got("/bib/book/title").size();
  ASSERT_TRUE(
      mapping_->InsertSubtree(&db_, doc_id_, root.value(), *new_book.value())
          .ok());
  auto titles = Got("/bib/book/title");
  EXPECT_EQ(titles.size(), before + 1);
  EXPECT_TRUE(std::binary_search(titles.begin(), titles.end(),
                                 std::string("Brand New")));

  // Delete one book subtree.
  auto path = xpath::ParseXPath("/bib/book[title = 'Brand New']");
  ASSERT_TRUE(path.ok());
  auto nodes = shred::EvalPath(path.value(), mapping_.get(), &db_, doc_id_);
  ASSERT_TRUE(nodes.ok()) << nodes.status();
  ASSERT_EQ(nodes.value().size(), 1u);
  ASSERT_TRUE(mapping_->DeleteSubtree(&db_, doc_id_, nodes.value()[0]).ok());
  EXPECT_EQ(Got("/bib/book/title").size(), before);
}

TEST_F(InlineQueryTest, TranslateNeedsNoJoinForInlinedLeaf) {
  auto path = xpath::ParseXPath("/bib/article/journal");
  ASSERT_TRUE(path.ok());
  auto sql = mapping_->TranslatePathToSql(doc_id_, path.value());
  ASSERT_TRUE(sql.ok()) << sql.status();
  // journal is inlined into inl_article: exactly two tables referenced
  // (bib root + article), journal adds none.
  auto plan = db_.PlanSql(sql.value());
  ASSERT_TRUE(plan.ok()) << plan.status() << "\nSQL: " << sql.value();
  auto rows = rdb::ExecutePlan(plan.value().get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), Oracle("/bib/article/journal").size());
  int scans = plan.value()->CountOperators("SeqScan") +
              plan.value()->CountOperators("IndexScan");
  EXPECT_EQ(scans, 2) << plan.value()->Explain();
}

TEST(InlineAblation, NoInliningNeedsMoreJoins) {
  auto with = MustCreate(workload::BiblioDtd(), "bib", false);
  auto without = MustCreate(workload::BiblioDtd(), "bib", true);
  // Pure element-per-table must create strictly more tables.
  EXPECT_GT(without->TableElementNames().size(),
            with->TableElementNames().size());
}

}  // namespace
}  // namespace xmlrdb
