#include "common/rng.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace xmlrdb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.Uniform(7, 7), 7);
  // Degenerate hi < lo clamps to lo.
  EXPECT_EQ(rng.Uniform(9, 3), 9);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRespectsP) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
  Rng r2(18);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(r2.Bernoulli(0.0));
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(21);
  std::map<size_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[rng.Zipf(10, 1.0)] += 1;
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], 2000);  // harmonic(10) ≈ 2.93 → p(0) ≈ 0.34
  // Zero skew degenerates to uniform-ish.
  std::map<size_t, int> flat;
  for (int i = 0; i < 10000; ++i) flat[rng.Zipf(10, 0.0)] += 1;
  EXPECT_LT(flat[0], 1500);
}

TEST(RngTest, WordShape) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    std::string w = rng.Word(3, 7);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 7u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(RngTest, PickReturnsElement) {
  Rng rng(4);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int x = rng.Pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
}  // namespace xmlrdb
