// Tests for single-statement SQL translation (TranslatePathToSql): the
// generated SQL, run through the engine, must return exactly the node ids the
// step-wise evaluator returns.

#include <algorithm>

#include <gtest/gtest.h>

#include "shred/edge_mapping.h"
#include "shred/evaluator.h"
#include "shred/interval_mapping.h"
#include "shred/registry.h"
#include "workload/xmark.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
namespace {

using shred::DocId;
using shred::Mapping;

class TranslateTest : public ::testing::Test {
 protected:
  void StoreInto(Mapping* m) {
    workload::XMarkConfig cfg;
    cfg.scale = 0.05;
    auto doc = workload::GenerateXMark(cfg);
    ASSERT_TRUE(m->Initialize(&db_).ok());
    auto stored = m->Store(*doc, &db_);
    ASSERT_TRUE(stored.ok()) << stored.status();
    id_ = stored.value();
  }

  /// Sorted ids from the step-wise evaluator.
  std::vector<int64_t> Stepwise(Mapping* m, const std::string& xpath) {
    auto p = xpath::ParseXPath(xpath);
    EXPECT_TRUE(p.ok());
    auto nodes = shred::EvalPath(p.value(), m, &db_, id_);
    EXPECT_TRUE(nodes.ok()) << nodes.status();
    std::vector<int64_t> out;
    for (const auto& v : nodes.value()) out.push_back(v.AsInt());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Sorted ids from executing the translated SQL.
  std::vector<int64_t> ViaSql(Mapping* m, const std::string& xpath) {
    auto p = xpath::ParseXPath(xpath);
    EXPECT_TRUE(p.ok());
    auto sql = m->TranslatePathToSql(id_, p.value());
    EXPECT_TRUE(sql.ok()) << sql.status();
    if (!sql.ok()) return {};
    auto res = db_.Execute(sql.value());
    EXPECT_TRUE(res.ok()) << sql.value() << "\n" << res.status();
    std::vector<int64_t> out;
    if (res.ok()) {
      for (const auto& row : res.value().rows) out.push_back(row[0].AsInt());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  rdb::Database db_;
  DocId id_ = 0;
};

TEST_F(TranslateTest, EdgeChildPaths) {
  shred::EdgeMapping m;
  StoreInto(&m);
  for (const std::string& xpath : std::vector<std::string>{
           "/site/people/person/name",
           "/site/regions/africa/item",
           "/site/open_auctions/open_auction/bidder/increase",
           "/site/people/person/@id",
           "/site/regions/*/item",
       }) {
    EXPECT_EQ(Stepwise(&m, xpath), ViaSql(&m, xpath)) << xpath;
  }
}

TEST_F(TranslateTest, EdgeRejectsDescendantAndPredicates) {
  shred::EdgeMapping m;
  StoreInto(&m);
  auto p1 = xpath::ParseXPath("//item");
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(m.TranslatePathToSql(id_, p1.value()).status().code(),
            StatusCode::kUnsupported);
  auto p2 = xpath::ParseXPath("/site/people/person[@id = 'person0']");
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(m.TranslatePathToSql(id_, p2.value()).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(TranslateTest, BinaryChildPaths) {
  auto m = shred::CreateMapping("binary");
  ASSERT_TRUE(m.ok());
  StoreInto(m.value().get());
  for (const std::string& xpath : std::vector<std::string>{
           "/site/people/person/name",
           "/site/regions/africa/item",
           "/site/people/person/@id",
       }) {
    EXPECT_EQ(Stepwise(m.value().get(), xpath), ViaSql(m.value().get(), xpath))
        << xpath;
  }
  // Wildcards require a union over partitions: unsupported as one statement.
  auto p = xpath::ParseXPath("/site/regions/*/item");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(m.value()->TranslatePathToSql(id_, p.value()).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(TranslateTest, IntervalHandlesDescendantInOneStatement) {
  shred::IntervalMapping m;
  StoreInto(&m);
  for (const std::string& xpath : std::vector<std::string>{
           "/site/people/person/name",
           "//item",
           "/site/regions//item",
           "//person/@id",
           "//open_auction/bidder",
       }) {
    EXPECT_EQ(Stepwise(&m, xpath), ViaSql(&m, xpath)) << xpath;
  }
}

TEST_F(TranslateTest, JoinCountsMatchMappingStory) {
  // T6's claim in miniature: for /site/people/person/name the edge mapping
  // needs one edge-table alias per step; interval likewise self-joins; the
  // plan operator counts expose this.
  shred::EdgeMapping edge;
  StoreInto(&edge);
  auto p = xpath::ParseXPath("/site/people/person/name");
  ASSERT_TRUE(p.ok());
  auto sql = edge.TranslatePathToSql(id_, p.value());
  ASSERT_TRUE(sql.ok());
  auto plan = db_.PlanSql(sql.value());
  ASSERT_TRUE(plan.ok()) << plan.status();
  int joins = plan.value()->CountOperators("HashJoin") +
              plan.value()->CountOperators("NestedLoopJoin");
  EXPECT_EQ(joins, 3);  // 4 steps -> 3 joins
}

}  // namespace
}  // namespace xmlrdb
