#include "rdb/sql_parser.h"

#include <gtest/gtest.h>

#include "rdb/sql_lexer.h"

namespace xmlrdb::rdb {
namespace {

const SelectStmt& AsSelect(const Statement& s) {
  return std::get<SelectStmt>(s);
}

TEST(SqlLexerTest, TokenKinds) {
  auto toks = LexSql("SELECT a1, 'it''s', 3.5, 42 <> <= >= != -- comment\nx");
  ASSERT_TRUE(toks.ok()) << toks.status();
  const auto& t = toks.value();
  EXPECT_EQ(t[0].upper, "SELECT");
  EXPECT_EQ(t[1].text, "a1");
  EXPECT_EQ(t[3].kind, TokKind::kString);
  EXPECT_EQ(t[3].text, "it's");
  EXPECT_EQ(t[5].kind, TokKind::kDouble);
  EXPECT_EQ(t[7].kind, TokKind::kInt);
  EXPECT_EQ(t[8].text, "<>");
  EXPECT_EQ(t[9].text, "<=");
  EXPECT_EQ(t[10].text, ">=");
  EXPECT_EQ(t[11].text, "!=");
  EXPECT_EQ(t[12].text, "x");  // after the line comment
  EXPECT_EQ(t.back().kind, TokKind::kEnd);
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(LexSql("SELECT 'unterminated").ok());
  EXPECT_FALSE(LexSql("SELECT #").ok());
  EXPECT_FALSE(LexSql("\"unterminated ident").ok());
}

TEST(SqlParserTest, SelectBasics) {
  auto stmt = ParseSql("SELECT a, b AS bb, t.c FROM t WHERE a = 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& s = AsSelect(stmt.value());
  ASSERT_EQ(s.items.size(), 3u);
  EXPECT_EQ(s.items[1].alias, "bb");
  EXPECT_EQ(s.items[2].expr->ToString(), "t.c");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "t");
  ASSERT_NE(s.where, nullptr);
}

TEST(SqlParserTest, SelectStarAndDistinct) {
  auto stmt = ParseSql("SELECT DISTINCT * FROM t");
  ASSERT_TRUE(stmt.ok());
  const auto& s = AsSelect(stmt.value());
  EXPECT_TRUE(s.distinct);
  EXPECT_TRUE(s.items[0].star);
}

TEST(SqlParserTest, ImplicitAliasWithoutAs) {
  auto stmt = ParseSql("SELECT e.name nm FROM emp e");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& s = AsSelect(stmt.value());
  EXPECT_EQ(s.items[0].alias, "nm");
  EXPECT_EQ(s.from[0].alias, "e");
  EXPECT_EQ(s.from[0].effective_alias(), "e");
}

TEST(SqlParserTest, JoinOnFoldsIntoWhere) {
  auto stmt = ParseSql(
      "SELECT a.x FROM a JOIN b ON a.id = b.id WHERE b.y > 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& s = AsSelect(stmt.value());
  EXPECT_EQ(s.from.size(), 2u);
  ASSERT_NE(s.where, nullptr);
  std::string w = s.where->ToString();
  EXPECT_NE(w.find("a.id = b.id"), std::string::npos) << w;
  EXPECT_NE(w.find("b.y > 2"), std::string::npos) << w;
}

TEST(SqlParserTest, OperatorPrecedence) {
  auto stmt = ParseSql("SELECT a FROM t WHERE a + 2 * 3 = 7 AND b = 1 OR c = 2");
  ASSERT_TRUE(stmt.ok());
  const auto& s = AsSelect(stmt.value());
  // OR binds loosest, * tighter than +.
  EXPECT_EQ(s.where->ToString(),
            "((((a + (2 * 3)) = 7) AND (b = 1)) OR (c = 2))");
}

TEST(SqlParserTest, GroupByHavingOrderLimit) {
  auto stmt = ParseSql(
      "SELECT dept, COUNT(*) c FROM emp GROUP BY dept HAVING COUNT(*) > 1 "
      "ORDER BY dept DESC, c LIMIT 10 OFFSET 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& s = AsSelect(stmt.value());
  EXPECT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
  EXPECT_EQ(s.limit, 10);
  EXPECT_EQ(s.offset, 5);
}

TEST(SqlParserTest, AggregateFunctions) {
  auto stmt = ParseSql("SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& s = AsSelect(stmt.value());
  EXPECT_EQ(s.items[0].expr->ToString(), "COUNT(*)");
  EXPECT_EQ(s.items[1].expr->ToString(), "SUM(x)");
  EXPECT_EQ(s.items[0].expr->kind(), Expr::Kind::kAgg);
}

TEST(SqlParserTest, LikeInIsNull) {
  auto stmt = ParseSql(
      "SELECT a FROM t WHERE a LIKE 'x%' AND b IN (1, 2, 3) AND c IS NOT NULL "
      "AND d IS NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
}

TEST(SqlParserTest, NegativeNumbersAndUnaryMinus) {
  auto stmt = ParseSql("SELECT a FROM t WHERE a = -5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(AsSelect(stmt.value()).where->ToString(), "(a = (0 - 5))");
}

TEST(SqlParserTest, CreateTable) {
  auto stmt = ParseSql(
      "CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(100), score DOUBLE)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& c = std::get<CreateTableStmt>(stmt.value());
  EXPECT_EQ(c.name, "t");
  ASSERT_EQ(c.columns.size(), 3u);
  EXPECT_FALSE(c.columns[0].nullable);
  EXPECT_TRUE(c.columns[1].nullable);
  EXPECT_EQ(c.columns[2].type, DataType::kDouble);
}

TEST(SqlParserTest, CreateIndexDropInsertDeleteUpdate) {
  EXPECT_TRUE(ParseSql("CREATE INDEX i ON t (a, b)").ok());
  EXPECT_TRUE(ParseSql("DROP TABLE t").ok());
  EXPECT_TRUE(ParseSql("DROP TABLE IF EXISTS t").ok());
  auto ins = ParseSql("INSERT INTO t VALUES (1, 'a'), (2, NULL)");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(std::get<InsertStmt>(ins.value()).rows.size(), 2u);
  EXPECT_TRUE(ParseSql("DELETE FROM t WHERE a = 1").ok());
  EXPECT_TRUE(ParseSql("DELETE FROM t").ok());
  auto upd = ParseSql("UPDATE t SET a = a + 1, b = 'x' WHERE c > 2");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(std::get<UpdateStmt>(upd.value()).assignments.size(), 2u);
}

TEST(SqlParserTest, Explain) {
  auto stmt = ParseSql("EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(std::get<ExplainStmt>(stmt.value()).select, nullptr);
}

TEST(SqlParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseSql("SELECT a FROM t;").ok());
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELEC a FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT a").ok());                    // no FROM
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t GROUP dept").ok());  // missing BY
  EXPECT_FALSE(ParseSql("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t extra garbage ,").ok());
  EXPECT_FALSE(ParseSql("SELECT unknown_func(a) FROM t").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES 1, 2").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (a BADTYPE)").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE b IN (c)").ok());  // non-literal
  EXPECT_FALSE(ParseSql("SELECT a FROM t INNER b").ok());
}

TEST(SqlParserTest, PlainParseRejectsParameters) {
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE b = ?").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES (?)").ok());
}

TEST(SqlParserTest, ParseWithParamsCountsPlaceholders) {
  auto none = ParseSqlWithParams("SELECT a FROM t");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().param_count, 0u);

  auto two = ParseSqlWithParams("SELECT a FROM t WHERE b = ? AND c < ?");
  ASSERT_TRUE(two.ok()) << two.status();
  EXPECT_EQ(two.value().param_count, 2u);
  ASSERT_NE(two.value().params, nullptr);
  EXPECT_EQ(two.value().params->size(), 2u);
  for (const Value& v : *two.value().params) EXPECT_TRUE(v.is_null());

  auto dml = ParseSqlWithParams("INSERT INTO t VALUES (?, ?, ?)");
  ASSERT_TRUE(dml.ok()) << dml.status();
  EXPECT_EQ(dml.value().param_count, 3u);

  auto upd = ParseSqlWithParams("UPDATE t SET a = ? WHERE b = ?");
  ASSERT_TRUE(upd.ok()) << upd.status();
  EXPECT_EQ(upd.value().param_count, 2u);
}

}  // namespace
}  // namespace xmlrdb::rdb
