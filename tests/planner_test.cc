// Planner tests: plan shapes (pushdown, index selection, join strategy),
// verified via Explain text and operator counts.

#include "rdb/planner.h"

#include <gtest/gtest.h>

#include "rdb/database.h"

namespace xmlrdb::rdb {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE big (id INTEGER, grp INTEGER, val VARCHAR)");
    Exec("CREATE TABLE small (id INTEGER, tag VARCHAR)");
    for (int i = 0; i < 50; ++i) {
      Exec("INSERT INTO big VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 5) + ", 'v" + std::to_string(i) + "')");
    }
    for (int i = 0; i < 5; ++i) {
      Exec("INSERT INTO small VALUES (" + std::to_string(i) + ", 't" +
           std::to_string(i) + "')");
    }
  }

  void Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  std::string Explain(const std::string& sql) {
    auto plan = db_.PlanSql(sql);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return plan.ok() ? plan.value()->Explain() : "";
  }

  int Count(const std::string& sql, const std::string& op) {
    auto plan = db_.PlanSql(sql);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return plan.ok() ? plan.value()->CountOperators(op) : -1;
  }

  Database db_;
};

TEST_F(PlannerTest, PredicatePushdownBelowJoin) {
  std::string text = Explain(
      "SELECT b.val FROM big b, small s WHERE b.grp = s.id AND s.tag = 't1'");
  // The tag filter must sit below the join, directly on small's scan.
  size_t join_pos = text.find("HashJoin");
  size_t filter_pos = text.find("Filter((s.tag = 't1'))");
  ASSERT_NE(join_pos, std::string::npos) << text;
  ASSERT_NE(filter_pos, std::string::npos) << text;
  EXPECT_GT(filter_pos, join_pos);
}

TEST_F(PlannerTest, EquiJoinUsesHashJoin) {
  EXPECT_EQ(Count("SELECT b.id FROM big b, small s WHERE b.grp = s.id",
                  "HashJoin"),
            1);
  EXPECT_EQ(Count("SELECT b.id FROM big b, small s WHERE b.grp = s.id",
                  "NestedLoopJoin"),
            0);
}

TEST_F(PlannerTest, NonEquiJoinFallsBackToNestedLoop) {
  std::string sql = "SELECT b.id FROM big b, small s WHERE b.grp < s.id";
  EXPECT_EQ(Count(sql, "NestedLoopJoin"), 1);
  EXPECT_EQ(Count(sql, "HashJoin"), 0);
  // The non-equi predicate lands in a filter above the join.
  EXPECT_EQ(Count(sql, "Filter"), 1);
}

TEST_F(PlannerTest, IndexEqualitySelection) {
  Exec("CREATE INDEX big_grp ON big (grp)");
  EXPECT_EQ(Count("SELECT id FROM big WHERE grp = 3", "IndexScan"), 1);
  EXPECT_EQ(Count("SELECT id FROM big WHERE grp = 3", "SeqScan"), 0);
  // No sargable predicate -> seq scan.
  EXPECT_EQ(Count("SELECT id FROM big WHERE val LIKE 'v%'", "IndexScan"), 0);
}

TEST_F(PlannerTest, IndexPrefixPlusRange) {
  Exec("CREATE INDEX big_grp_id ON big (grp, id)");
  std::string sql = "SELECT val FROM big WHERE grp = 2 AND id > 10 AND id < 40";
  EXPECT_EQ(Count(sql, "IndexScan"), 1);
  auto res = db_.Execute(sql);
  ASSERT_TRUE(res.ok());
  // grp=2: ids 2,7,12,...,47; in (10,40): 12,17,...,37 -> 6 rows
  EXPECT_EQ(res.value().rows.size(), 6u);
}

TEST_F(PlannerTest, IndexScanResultsEqualSeqScanResults) {
  // Differential check before/after index creation.
  const std::string sql =
      "SELECT id FROM big WHERE grp = 4 AND id >= 20 ORDER BY id";
  auto before = db_.Execute(sql);
  ASSERT_TRUE(before.ok());
  Exec("CREATE INDEX big_grp_id2 ON big (grp, id)");
  auto after = db_.Execute(sql);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before.value().rows.size(), after.value().rows.size());
  for (size_t i = 0; i < before.value().rows.size(); ++i) {
    EXPECT_EQ(before.value().rows[i][0].AsInt(),
              after.value().rows[i][0].AsInt());
  }
}

TEST_F(PlannerTest, ThreeWayJoinAllHash) {
  Exec("CREATE TABLE mid (id INTEGER, big_id INTEGER)");
  Exec("INSERT INTO mid VALUES (1, 10), (2, 20)");
  std::string sql =
      "SELECT b.val FROM big b, mid m, small s "
      "WHERE m.big_id = b.id AND m.id = s.id";
  EXPECT_EQ(Count(sql, "HashJoin"), 2);
  auto res = db_.Execute(sql);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res.value().rows.size(), 2u);
}

TEST_F(PlannerTest, CrossJoinWhenNoPredicate) {
  std::string sql = "SELECT b.id FROM big b, small s";
  EXPECT_EQ(Count(sql, "NestedLoopJoin"), 1);
  auto res = db_.Execute(sql);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().rows.size(), 250u);
}

TEST_F(PlannerTest, SmallerSideChosenFirst) {
  // The greedy order starts from the smallest estimated input; with the
  // selective filter on small, small should be the leftmost leaf.
  std::string text = Explain(
      "SELECT b.val FROM big b, small s WHERE b.grp = s.id AND s.tag = 't1'");
  size_t small_pos = text.find("small");
  size_t big_pos = text.find("big");
  ASSERT_NE(small_pos, std::string::npos);
  ASSERT_NE(big_pos, std::string::npos);
  EXPECT_LT(small_pos, big_pos) << text;
}

TEST_F(PlannerTest, DuplicateAliasRejected) {
  auto plan = db_.PlanSql("SELECT x.id FROM big x, small x");
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, SelectStarMixedWithItemsRejected) {
  auto plan = db_.PlanSql("SELECT *, id FROM big");
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
}

TEST_F(PlannerTest, OrPredicateIsNotSplitOrPushedIncorrectly) {
  auto res = db_.Execute(
      "SELECT b.id FROM big b, small s "
      "WHERE b.grp = s.id AND (b.id = 1 OR s.tag = 't2')");
  ASSERT_TRUE(res.ok()) << res.status();
  // grp=s.id join gives 50 rows; filter: id=1 (1 row) or tag='t2' (grp=2: 10
  // rows); id=1 has grp=1 tag t1 -> distinct rows = 11.
  EXPECT_EQ(res.value().rows.size(), 11u);
}

}  // namespace
}  // namespace xmlrdb::rdb
