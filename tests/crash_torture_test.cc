// Crash-point torture test: for every mapping, enumerate every crash point
// the durable engine trips during a shred + checkpoint + update workload,
// then re-run the workload once per (point, occurrence) with that point
// armed to kill the "process". After each simulated crash the database is
// recovered and must reconstruct to EXACTLY one of the states the reference
// run committed — or the document must be atomically absent. A torn document
// (some rows of a transaction present, others missing) is the failure this
// suite exists to catch.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "rdb/durability.h"
#include "rdb/fault_env.h"
#include "shard/hash_ring.h"
#include "shard/shard_router.h"
#include "shred/evaluator.h"
#include "shred/inline_mapping.h"
#include "shred/registry.h"
#include "workload/queries.h"
#include "workload/xmark.h"
#include "xml/dtd.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/dom_eval.h"

namespace xmlrdb {
namespace {

using rdb::FaultInjectionEnv;
using shred::DocId;
using shred::Mapping;

constexpr char kDir[] = "db";
constexpr double kScale = 0.05;

/// All six mappings: the five generic ones plus the DTD-driven inline
/// mapping, built against the XMark DTD.
std::vector<std::string> TortureMappingNames() {
  std::vector<std::string> names = shred::GenericMappingNames();
  names.push_back("inline");
  return names;
}

std::unique_ptr<Mapping> MustMapping(const std::string& name) {
  if (name == "inline") {
    auto dtd = xml::ParseDtd(workload::XMarkDtd());
    EXPECT_TRUE(dtd.ok()) << dtd.status();
    if (!dtd.ok()) return nullptr;
    auto m = shred::InlineMapping::Create(*dtd.value(), "site");
    EXPECT_TRUE(m.ok()) << m.status();
    return m.ok() ? std::move(m).value() : nullptr;
  }
  auto m = shred::CreateMapping(name);
  EXPECT_TRUE(m.ok()) << m.status();
  return m.ok() ? std::move(m).value() : nullptr;
}

/// Same shape as the T5 benchmark fragment — valid under the XMark DTD so
/// the inline mapping can shred it too.
std::unique_ptr<xml::Node> ItemFragment(int i) {
  auto frag = xml::ParseFragment(
      "<item id=\"torture_item" + std::to_string(i) +
      "\"><location>Tornland</location><quantity>1</quantity>"
      "<name>torture item</name><description>inserted by crash torture"
      "</description></item>");
  EXPECT_TRUE(frag.ok()) << frag.status();
  return frag.ok() ? std::move(frag).value() : nullptr;
}

Result<shred::NodeSet> Eval(Mapping* mapping, rdb::Database* db, DocId doc,
                            const std::string& xpath) {
  auto path = xpath::ParseXPath(xpath);
  RETURN_IF_ERROR(path.status());
  return shred::EvalPath(path.value(), mapping, db, doc);
}

/// Sorted string-values from the DOM oracle.
std::vector<std::string> DomStrings(const xml::Document& doc,
                                    const std::string& xpath) {
  auto path = xpath::ParseXPath(xpath);
  EXPECT_TRUE(path.ok()) << path.status();
  auto nodes = xpath::EvalOnDom(path.value(), *doc.doc_node());
  EXPECT_TRUE(nodes.ok()) << nodes.status();
  std::vector<std::string> out;
  if (nodes.ok()) {
    for (const xml::Node* n : nodes.value()) out.push_back(n->StringValue());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Sorted string-values from the relational store.
std::vector<std::string> StoreStrings(Mapping* mapping, rdb::Database* db,
                                      DocId doc, const std::string& xpath) {
  auto path = xpath::ParseXPath(xpath);
  EXPECT_TRUE(path.ok()) << path.status();
  auto values = shred::EvalPathStrings(path.value(), mapping, db, doc);
  EXPECT_TRUE(values.ok()) << mapping->name() << ": " << values.status();
  std::vector<std::string> out =
      values.ok() ? values.value() : std::vector<std::string>{};
  std::sort(out.begin(), out.end());
  return out;
}

struct WorkloadResult {
  Status status = Status::OK();  ///< first failure; OK if it ran to the end
  DocId doc = 0;
  std::vector<std::string> states;  ///< canonical form after each commit
};

/// The deterministic workload: initialize, shred the XMark document,
/// checkpoint, then three T5-style structural updates against the africa
/// region. Stops at the first failure — after a simulated crash every
/// subsequent operation fails anyway. With `record_states` the canonical
/// document is captured after every committed mutation; torture runs skip
/// that (reconstructing against a dead env is meaningless).
WorkloadResult RunWorkload(Mapping* mapping, rdb::Database* db,
                           const xml::Document& doc, bool record_states) {
  WorkloadResult r;
  auto snapshot_state = [&]() {
    if (!record_states) return;
    auto rec = mapping->Reconstruct(db, r.doc);
    EXPECT_TRUE(rec.ok()) << rec.status();
    if (rec.ok()) r.states.push_back(xml::Canonicalize(*rec.value()));
  };

  r.status = mapping->Initialize(db);
  if (!r.status.ok()) return r;
  auto stored = mapping->Store(doc, db);
  if (!stored.ok()) {
    r.status = stored.status();
    return r;
  }
  r.doc = stored.value();
  snapshot_state();

  r.status = db->Checkpoint();
  if (!r.status.ok()) return r;

  auto africa = Eval(mapping, db, r.doc, "/site/regions/africa");
  if (!africa.ok()) {
    r.status = africa.status();
    return r;
  }
  if (africa.value().size() != 1) {
    r.status = Status::NotFound("africa region missing from workload doc");
    return r;
  }

  auto frag1 = ItemFragment(1);
  r.status = mapping->InsertSubtree(db, r.doc, africa.value()[0], *frag1);
  if (!r.status.ok()) return r;
  snapshot_state();

  auto victim = Eval(mapping, db, r.doc, "/site/regions/africa/item");
  if (!victim.ok()) {
    r.status = victim.status();
    return r;
  }
  if (victim.value().empty()) {
    r.status = Status::NotFound("no africa item to delete");
    return r;
  }
  r.status = mapping->DeleteSubtree(db, r.doc, victim.value()[0]);
  if (!r.status.ok()) return r;
  snapshot_state();

  auto frag2 = ItemFragment(2);
  r.status = mapping->InsertSubtree(db, r.doc, africa.value()[0], *frag2);
  if (!r.status.ok()) return r;
  snapshot_state();

  return r;
}

/// Post-crash verdict: the recovered store reconstructs to one of the
/// committed states, answers queries consistently with its own
/// reconstruction, and accepts new writes — or the document is atomically
/// absent (no root element survives).
void CheckRecoveredState(Mapping* mapping, rdb::Database* db, DocId doc,
                         const std::set<std::string>& committed) {
  auto rec = mapping->Reconstruct(db, doc);
  if (!rec.ok()) {
    auto root = mapping->RootElement(db, doc);
    EXPECT_FALSE(root.ok())
        << "reconstruction failed but a root element exists — torn document: "
        << rec.status();
    return;
  }
  const std::string canon = xml::Canonicalize(*rec.value());
  EXPECT_TRUE(committed.contains(canon))
      << "recovered document matches no committed state:\n"
      << canon.substr(0, 400);

  // Q1–Q12 self-consistency: the store must answer the whole auction query
  // suite about exactly the document it reconstructs to.
  for (const auto& q : workload::AuctionQueries()) {
    EXPECT_EQ(DomStrings(*rec.value(), q.xpath),
              StoreStrings(mapping, db, doc, q.xpath))
        << q.id << " (" << q.xpath << ")";
  }

  // The recovered database is live, not read-only: one more structural
  // update must land (the reopened log accepts appends).
  auto africa = Eval(mapping, db, doc, "/site/regions/africa");
  ASSERT_TRUE(africa.ok()) << africa.status();
  ASSERT_EQ(africa.value().size(), 1u);
  auto frag = ItemFragment(99);
  EXPECT_TRUE(mapping->InsertSubtree(db, doc, africa.value()[0], *frag).ok())
      << "recovered database refuses new writes";
}

class CrashTortureTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashTortureTest, EveryCrashPointRecoversToACommittedState) {
  const std::string name = GetParam();
  workload::XMarkConfig cfg;
  cfg.scale = kScale;
  auto doc = workload::GenerateXMark(cfg);

  // Reference run, no faults: collects the committed states and the crash
  // point census for this mapping's workload.
  std::vector<std::string> states;
  DocId ref_doc = 0;
  std::map<std::string, int64_t> hits;
  {
    FaultInjectionEnv env;
    auto db = rdb::OpenDurableDatabase(&env, kDir);
    ASSERT_TRUE(db.ok()) << db.status();
    auto mapping = MustMapping(name);
    ASSERT_NE(mapping, nullptr);
    WorkloadResult ref =
        RunWorkload(mapping.get(), db.value().get(), *doc, true);
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
    ASSERT_EQ(ref.states.size(), 4u);
    states = ref.states;
    ref_doc = ref.doc;
    hits = env.CrashPointHits();
  }
  // The workload must actually exercise the WAL and checkpoint machinery,
  // or the enumeration below is vacuous.
  ASSERT_GT(hits["wal.after_append"], 0);
  ASSERT_GT(hits["checkpoint.after_current"], 0);

  const std::set<std::string> committed(states.begin(), states.end());
  for (const auto& [point, count] : hits) {
    // First occurrence and the middle one: the ends and the interior of
    // every code path that can die.
    for (int64_t hit : std::set<int64_t>{1, (count + 1) / 2}) {
      SCOPED_TRACE("mapping=" + name + " point=" + point +
                   " hit=" + std::to_string(hit) + "/" +
                   std::to_string(count));
      FaultInjectionEnv env;
      auto opened = rdb::OpenDurableDatabase(&env, kDir);
      ASSERT_TRUE(opened.ok()) << opened.status();
      auto mapping = MustMapping(name);
      ASSERT_NE(mapping, nullptr);
      env.ArmCrashPoint(point, hit);
      {
        std::unique_ptr<rdb::Database> db = std::move(opened).value();
        WorkloadResult run = RunWorkload(mapping.get(), db.get(), *doc, false);
        EXPECT_FALSE(run.status.ok()) << "armed crash point never fired";
        // `db` is destroyed here: the crashed process's memory is gone.
      }
      ASSERT_TRUE(env.crashed());
      env.ResetCrash();

      rdb::RecoveryStats stats;
      auto recovered = rdb::OpenDurableDatabase(&env, kDir, {}, &stats);
      ASSERT_TRUE(recovered.ok())
          << "recovery must always succeed: " << recovered.status();
      auto fresh = MustMapping(name);
      ASSERT_NE(fresh, nullptr);
      CheckRecoveredState(fresh.get(), recovered.value().get(), ref_doc,
                          committed);
    }
  }
}

// Concurrent-reader phase: crash near the end of the workload, recover, and
// verify the replayed version stamps serve consistent lock-free snapshots —
// readers re-evaluating queries against the recovered document must stay
// byte-identical to the post-recovery baseline while a writer churns a
// second document through the same mapping tables.
TEST_P(CrashTortureTest, RecoveredStoreServesConsistentSnapshotsUnderChurn) {
  const std::string name = GetParam();
  workload::XMarkConfig cfg;
  cfg.scale = kScale;
  auto doc = workload::GenerateXMark(cfg);

  // Census run: how many WAL appends does the workload make, and which doc
  // id does it store under?
  int64_t appends = 0;
  DocId ref_doc = 0;
  {
    FaultInjectionEnv env;
    auto db = rdb::OpenDurableDatabase(&env, kDir);
    ASSERT_TRUE(db.ok()) << db.status();
    auto mapping = MustMapping(name);
    ASSERT_NE(mapping, nullptr);
    WorkloadResult ref =
        RunWorkload(mapping.get(), db.value().get(), *doc, false);
    ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
    ref_doc = ref.doc;
    appends = env.CrashPointHits()["wal.after_append"];
  }
  ASSERT_GT(appends, 2);

  // Crash run: die on one of the last appends, well after the document's
  // store transaction committed, so recovery replays a populated store.
  FaultInjectionEnv env;
  {
    auto opened = rdb::OpenDurableDatabase(&env, kDir);
    ASSERT_TRUE(opened.ok()) << opened.status();
    auto mapping = MustMapping(name);
    ASSERT_NE(mapping, nullptr);
    env.ArmCrashPoint("wal.after_append", appends - 1);
    std::unique_ptr<rdb::Database> db = std::move(opened).value();
    WorkloadResult run = RunWorkload(mapping.get(), db.get(), *doc, false);
    EXPECT_FALSE(run.status.ok()) << "armed crash point never fired";
  }
  ASSERT_TRUE(env.crashed());
  env.ResetCrash();

  auto recovered = rdb::OpenDurableDatabase(&env, kDir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  rdb::Database* db = recovered.value().get();
  auto mapping = MustMapping(name);
  ASSERT_NE(mapping, nullptr);

  const std::vector<std::string> kPaths = {
      "/site/regions/asia/item/name",
      "//person/name",
      "/site/open_auctions/open_auction/bidder",
  };
  std::vector<std::vector<std::string>> baseline;
  for (const auto& p : kPaths) {
    baseline.push_back(StoreStrings(mapping.get(), db, ref_doc, p));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        for (size_t i = 0; i < kPaths.size(); ++i) {
          if (StoreStrings(mapping.get(), db, ref_doc, kPaths[i]) !=
              baseline[i]) {
            bad.fetch_add(1);
          }
        }
      }
    });
  }
  // Writer: store and remove a second document through the same tables.
  // The reader snapshots must never observe its partially-shredded rows.
  for (int round = 0; round < 2; ++round) {
    auto id2 = mapping->Store(*doc, db);
    ASSERT_TRUE(id2.ok()) << id2.status();
    ASSERT_TRUE(mapping->Remove(id2.value(), db).ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

// Per-shard crash phase: in a two-shard router with per-shard fault envs,
// kill ONE shard's WAL mid-store. The crash must stay inside that shard —
// the untouched shard keeps serving its documents — and a reopen of the
// whole router must recover to a cross-shard-consistent state: every
// committed document present with byte-identical answers, the torn store
// atomically absent.
TEST_P(CrashTortureTest, ShardCrashIsIsolatedAndRecoversConsistently) {
  const std::string name = GetParam();
  workload::XMarkConfig cfg;
  cfg.scale = 0.02;
  auto doc = workload::GenerateXMark(cfg);

  FaultInjectionEnv envs[2];
  auto factory = [&name]() -> Result<std::unique_ptr<Mapping>> {
    auto m = MustMapping(name);
    if (m == nullptr) return Status::Internal("mapping construction failed");
    return m;
  };
  shard::ShardRouterOptions opts;
  opts.shards = 2;
  opts.shard_envs = {&envs[0], &envs[1]};
  opts.dir_prefix = "shards";

  std::vector<DocId> ids;
  std::map<DocId, int> owners;
  std::map<DocId, std::vector<std::string>> baseline;
  int victim = -1;
  {
    auto router = shard::ShardRouter::Create(factory, opts);
    ASSERT_TRUE(router.ok()) << router.status();
    // Store until both shards own at least one document, so "the untouched
    // shard keeps serving" is a non-vacuous claim.
    std::vector<int> docs_per_shard(2, 0);
    while (static_cast<int>(ids.size()) < 32) {
      auto id = router.value()->Store(*doc);
      ASSERT_TRUE(id.ok()) << id.status();
      ids.push_back(id.value());
      const int owner = router.value()->OwnerOf(id.value());
      ASSERT_GE(owner, 0);
      owners[id.value()] = owner;
      ++docs_per_shard[owner];
      if (docs_per_shard[0] > 0 && docs_per_shard[1] > 0) break;
    }
    ASSERT_GT(docs_per_shard[0], 0);
    ASSERT_GT(docs_per_shard[1], 0);
    for (DocId id : ids) {
      baseline[id] = StoreStrings(router.value()->shard_mapping(owners[id]),
                                  router.value()->shard_db(owners[id]), id,
                                  "//item/name");
    }

    // The next Store routes by the ring; predict its target with a scratch
    // ring built like the router's, then arm that shard's WAL to die on its
    // next append.
    shard::HashRing scratch(opts.virtual_nodes);
    scratch.AddShard(0);
    scratch.AddShard(1);
    victim = scratch.OwnerOf(static_cast<int64_t>(ids.back()) + 1);
    ASSERT_GE(victim, 0);
    const int survivor = 1 - victim;
    envs[victim].ArmCrashPoint("wal.after_append", 1);

    auto torn = router.value()->Store(*doc);
    EXPECT_FALSE(torn.ok()) << "armed crash point never fired";
    ASSERT_TRUE(envs[victim].crashed());
    ASSERT_FALSE(envs[survivor].crashed());

    // Crash containment: the untouched shard answers every one of its
    // documents byte-identically while its sibling is dead.
    for (DocId id : ids) {
      if (owners[id] != survivor) continue;
      auto path = xpath::ParseXPath("//item/name");
      ASSERT_TRUE(path.ok());
      auto values = router.value()->EvalPathStrings(path.value(), id);
      ASSERT_TRUE(values.ok()) << values.status();
      std::vector<std::string> got = values.value();
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, baseline[id]) << "doc " << id;
    }
    // Router destruction with one dead shard must not take down the rest.
  }

  // "Restart the process": replay both shards' WALs and rebuild ownership
  // from their tables.
  envs[victim].ResetCrash();
  auto reopened = shard::ShardRouter::Create(factory, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  // Cross-shard consistency: exactly the committed documents survive (the
  // torn store is atomically absent), on the shards they lived on, with
  // byte-identical answers.
  EXPECT_EQ(reopened.value()->DocIds(), ids);
  for (DocId id : ids) {
    EXPECT_EQ(reopened.value()->OwnerOf(id), owners[id]) << "doc " << id;
    EXPECT_EQ(baseline[id],
              StoreStrings(reopened.value()->shard_mapping(owners[id]),
                           reopened.value()->shard_db(owners[id]), id,
                           "//item/name"))
        << "doc " << id;
  }

  // The recovered router is live: the interrupted store can be retried.
  auto retried = reopened.value()->Store(*doc);
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(reopened.value()->DocIds().size(), ids.size() + 1);
}

INSTANTIATE_TEST_SUITE_P(AllMappings, CrashTortureTest,
                         ::testing::ValuesIn(TortureMappingNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace xmlrdb
