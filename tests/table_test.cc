#include "rdb/table.h"

#include <gtest/gtest.h>

namespace xmlrdb::rdb {
namespace {

Schema EmpSchema() {
  return Schema({{"id", DataType::kInt, false, ""},
                 {"dept", DataType::kInt, true, ""},
                 {"name", DataType::kString, true, ""}});
}

Row Emp(int64_t id, int64_t dept, const std::string& name) {
  return {Value(id), Value(dept), Value(name)};
}

TEST(TableTest, InsertValidatesSchema) {
  Table t("emp", EmpSchema());
  EXPECT_TRUE(t.Insert(Emp(1, 10, "a")).ok());
  EXPECT_FALSE(t.Insert({Value(int64_t{1})}).ok());           // arity
  EXPECT_FALSE(t.Insert({Value("x"), Value(int64_t{1}), Value("a")}).ok());
  EXPECT_FALSE(
      t.Insert({Value::Null(), Value(int64_t{1}), Value("a")}).ok());  // NOT NULL
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, DeleteTombstonesAndKeepsIds) {
  Table t("emp", EmpSchema());
  RowId r0 = t.Insert(Emp(1, 10, "a")).value();
  RowId r1 = t.Insert(Emp(2, 10, "b")).value();
  RowId r2 = t.Insert(Emp(3, 20, "c")).value();
  EXPECT_TRUE(t.Delete(r1).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_slots(), 3u);
  EXPECT_TRUE(t.IsLive(r0));
  EXPECT_FALSE(t.IsLive(r1));
  EXPECT_TRUE(t.IsLive(r2));
  EXPECT_EQ(t.Delete(r1).code(), StatusCode::kNotFound);  // double delete
  EXPECT_EQ(t.row(r2)[2].AsString(), "c");
}

TEST(TableTest, UpdateRevalidatesAndReindexes) {
  Table t("emp", EmpSchema());
  ASSERT_TRUE(t.CreateIndex("by_dept", {"dept"}).ok());
  RowId r = t.Insert(Emp(1, 10, "a")).value();
  ASSERT_TRUE(t.Update(r, Emp(1, 20, "a2")).ok());
  const Index* idx = t.FindIndex("by_dept");
  EXPECT_TRUE(idx->LookupEqual({Value(int64_t{10})}).empty());
  EXPECT_EQ(idx->LookupEqual({Value(int64_t{20})}).size(), 1u);
  EXPECT_FALSE(t.Update(r, {Value::Null(), Value(int64_t{1}), Value("x")}).ok());
}

TEST(TableTest, IndexBackfillsExistingRows) {
  Table t("emp", EmpSchema());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert(Emp(i, i % 3, "n")).ok());
  }
  ASSERT_TRUE(t.CreateIndex("by_dept", {"dept"}).ok());
  const Index* idx = t.FindIndex("by_dept");
  EXPECT_EQ(idx->num_entries(), 10u);
  EXPECT_EQ(idx->LookupEqual({Value(int64_t{0})}).size(), 4u);  // 0,3,6,9
  EXPECT_EQ(idx->LookupEqual({Value(int64_t{1})}).size(), 3u);
}

TEST(TableTest, IndexRangeAndDuplicates) {
  Table t("emp", EmpSchema());
  ASSERT_TRUE(t.CreateIndex("by_dept_id", {"dept", "id"}).ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.Insert(Emp(i, i / 5, "n")).ok());
  }
  const Index* idx = t.FindIndex("by_dept_id");
  // Equality on prefix.
  EXPECT_EQ(idx->LookupEqual({Value(int64_t{2})}).size(), 5u);
  // Range over prefix: dept in [1, 2].
  auto rids = idx->LookupRange({Value(int64_t{1})}, true, {Value(int64_t{2})},
                               true);
  EXPECT_EQ(rids.size(), 10u);
  // Exclusive bounds.
  rids = idx->LookupRange({Value(int64_t{1})}, false, {Value(int64_t{3})}, false);
  EXPECT_EQ(rids.size(), 5u);  // only dept 2
  // Unbounded below.
  rids = idx->LookupRange({}, true, {Value(int64_t{0})}, true);
  EXPECT_EQ(rids.size(), 5u);
}

TEST(TableTest, IndexIgnoresDeletedRows) {
  Table t("emp", EmpSchema());
  ASSERT_TRUE(t.CreateIndex("by_dept", {"dept"}).ok());
  RowId r = t.Insert(Emp(1, 10, "a")).value();
  ASSERT_TRUE(t.Insert(Emp(2, 10, "b")).ok());
  ASSERT_TRUE(t.Delete(r).ok());
  EXPECT_EQ(t.FindIndex("by_dept")->LookupEqual({Value(int64_t{10})}).size(),
            1u);
}

TEST(TableTest, DuplicateIndexNameRejected) {
  Table t("emp", EmpSchema());
  ASSERT_TRUE(t.CreateIndex("i", {"id"}).ok());
  EXPECT_EQ(t.CreateIndex("i", {"dept"}).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(t.CreateIndex("j", {"missing_col"}).ok());
}

TEST(TableTest, FindIndexByColumns) {
  Table t("emp", EmpSchema());
  ASSERT_TRUE(t.CreateIndex("a", {"dept", "id"}).ok());
  EXPECT_NE(t.FindIndexByColumns({1}), nullptr);       // prefix match
  EXPECT_NE(t.FindIndexByColumns({1, 0}), nullptr);    // exact
  EXPECT_EQ(t.FindIndexByColumns({0}), nullptr);       // id is not a prefix
}

TEST(TableTest, FootprintGrowsWithData) {
  Table t("emp", EmpSchema());
  size_t empty = t.FootprintBytes();
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert(Emp(i, i, "some name payload")).ok());
  }
  EXPECT_GT(t.FootprintBytes(), empty + 100 * 3 * sizeof(Value) / 2);
}

}  // namespace
}  // namespace xmlrdb::rdb
