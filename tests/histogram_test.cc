#include "common/histogram.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace xmlrdb {
namespace {

TEST(HistogramTest, BucketIndexExactBoundaries) {
  // Bucket 0 holds only the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  // Negative values clamp into bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  // INT64_MAX lands in the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1);
  for (int b = 1; b < Histogram::kNumBuckets - 1; ++b) {
    const int64_t lo = Histogram::BucketLowerBound(b);
    const int64_t hi = Histogram::BucketUpperBound(b);
    EXPECT_EQ(Histogram::BucketIndex(lo), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(hi - 1), b) << "bucket " << b;
    EXPECT_EQ(Histogram::BucketIndex(hi), b + 1) << "bucket " << b;
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            INT64_MAX);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.Percentile(0), 0.0);
  EXPECT_EQ(snap.p50(), 0.0);
  EXPECT_EQ(snap.p99(), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(100);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.sum, 100);
  EXPECT_EQ(snap.max, 100);
  // Every percentile of a single sample is that sample (interpolation is
  // clamped to the exact recorded maximum).
  EXPECT_EQ(snap.p50(), 100.0);
  EXPECT_EQ(snap.p95(), 100.0);
  EXPECT_EQ(snap.p99(), 100.0);
  EXPECT_EQ(snap.Percentile(100), 100.0);
}

TEST(HistogramTest, PercentilesOfKnownDistribution) {
  Histogram h;
  // 100 samples: 1..100. p50 must land near 50, p95 near 95; log buckets
  // make the interpolation coarse, so allow the enclosing bucket's range.
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.sum, 5050);
  EXPECT_EQ(snap.max, 100);
  const double p50 = snap.p50();
  EXPECT_GE(p50, 32.0);   // bucket [32, 64) holds ranks 33..63
  EXPECT_LE(p50, 64.0);
  const double p95 = snap.p95();
  EXPECT_GE(p95, 64.0);   // bucket [64, 128) holds ranks 65..100
  EXPECT_LE(p95, 100.0);  // never above the exact max
  EXPECT_EQ(snap.Percentile(100), 100.0);
}

TEST(HistogramTest, PercentileNeverExceedsExactMax) {
  Histogram h;
  h.Record(5);
  h.Record(6);
  h.Record(7);  // all in bucket [4, 8)
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.max, 7);
  EXPECT_LE(snap.p99(), 7.0);
  EXPECT_LE(snap.Percentile(100), 7.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-50);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.p50(), 0.0);
}

TEST(HistogramTest, ClearResetsEverything) {
  Histogram h;
  h.Record(42);
  h.Record(7);
  h.Clear();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Snapshot().p99(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordersLoseNoSamples) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(i % 1000);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.max(), 999);
}

}  // namespace
}  // namespace xmlrdb
