// Tests for the DTD normalisation rules of Shanmugasundaram et al.

#include "xml/dtd_simplify.h"

#include <gtest/gtest.h>

#include "xml/dtd.h"

namespace xmlrdb::xml {
namespace {

SimplifiedDtd Simplify(const std::string& dtd_text) {
  auto dtd = ParseDtd(dtd_text);
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  auto s = SimplifyDtd(*dtd.value());
  EXPECT_TRUE(s.ok()) << s.status();
  return std::move(s).value();
}

Multiplicity MultOf(const SimplifiedElement& se, const std::string& child) {
  for (const auto& c : se.children) {
    if (c.name == child) return c.mult;
  }
  ADD_FAILURE() << "child " << child << " not found";
  return Multiplicity::kOne;
}

TEST(SimplifyTest, PlainSequence) {
  auto s = Simplify("<!ELEMENT a (b, c?, d*)>");
  const auto& a = s.elements.at("a");
  ASSERT_EQ(a.children.size(), 3u);
  EXPECT_EQ(MultOf(a, "b"), Multiplicity::kOne);
  EXPECT_EQ(MultOf(a, "c"), Multiplicity::kOpt);
  EXPECT_EQ(MultOf(a, "d"), Multiplicity::kStar);
  EXPECT_FALSE(a.has_text);
}

TEST(SimplifyTest, StarDistributesOverSequence) {
  // (e1, e2)* -> e1*, e2*
  auto s = Simplify("<!ELEMENT a ((b, c)*)>");
  const auto& a = s.elements.at("a");
  EXPECT_EQ(MultOf(a, "b"), Multiplicity::kStar);
  EXPECT_EQ(MultOf(a, "c"), Multiplicity::kStar);
}

TEST(SimplifyTest, OptDistributesOverSequence) {
  // (e1, e2)? -> e1?, e2?
  auto s = Simplify("<!ELEMENT a ((b, c)?)>");
  const auto& a = s.elements.at("a");
  EXPECT_EQ(MultOf(a, "b"), Multiplicity::kOpt);
  EXPECT_EQ(MultOf(a, "c"), Multiplicity::kOpt);
}

TEST(SimplifyTest, ChoiceBecomesOptions) {
  // (e1 | e2) -> e1?, e2?
  auto s = Simplify("<!ELEMENT a (b | c)>");
  const auto& a = s.elements.at("a");
  EXPECT_EQ(MultOf(a, "b"), Multiplicity::kOpt);
  EXPECT_EQ(MultOf(a, "c"), Multiplicity::kOpt);
}

TEST(SimplifyTest, NestedQuantifiersCollapse) {
  // e** -> e*, e*? -> e*, e?? -> e?
  auto s1 = Simplify("<!ELEMENT a ((b*)*)>");
  EXPECT_EQ(MultOf(s1.elements.at("a"), "b"), Multiplicity::kStar);
  auto s2 = Simplify("<!ELEMENT a ((b*)?)>");
  EXPECT_EQ(MultOf(s2.elements.at("a"), "b"), Multiplicity::kStar);
  auto s3 = Simplify("<!ELEMENT a ((b?)?)>");
  EXPECT_EQ(MultOf(s3.elements.at("a"), "b"), Multiplicity::kOpt);
}

TEST(SimplifyTest, PlusGeneralisesToStar) {
  auto s = Simplify("<!ELEMENT a (b+)>");
  EXPECT_EQ(MultOf(s.elements.at("a"), "b"), Multiplicity::kStar);
}

TEST(SimplifyTest, DuplicateNamesMergeToStar) {
  // ..a,..,a.. -> a*
  auto s = Simplify("<!ELEMENT a (b, c, b)>");
  const auto& a = s.elements.at("a");
  ASSERT_EQ(a.children.size(), 2u);
  EXPECT_EQ(MultOf(a, "b"), Multiplicity::kStar);
  EXPECT_EQ(MultOf(a, "c"), Multiplicity::kOne);
}

TEST(SimplifyTest, MixedContent) {
  auto s = Simplify("<!ELEMENT p (#PCDATA | em | strong)*>");
  const auto& p = s.elements.at("p");
  EXPECT_TRUE(p.has_text);
  EXPECT_EQ(MultOf(p, "em"), Multiplicity::kStar);
  EXPECT_EQ(MultOf(p, "strong"), Multiplicity::kStar);
}

TEST(SimplifyTest, PcdataOnly) {
  auto s = Simplify("<!ELEMENT t (#PCDATA)>");
  const auto& t = s.elements.at("t");
  EXPECT_TRUE(t.has_text);
  EXPECT_TRUE(t.children.empty());
}

TEST(SimplifyTest, AnyContent) {
  auto s = Simplify("<!ELEMENT x ANY>");
  EXPECT_TRUE(s.elements.at("x").any);
  EXPECT_TRUE(s.elements.at("x").has_text);
}

TEST(SimplifyTest, DeepNesting) {
  // ((b | (c, d))*, e)? — b,c,d all star-ish, e optional.
  auto s = Simplify("<!ELEMENT a (((b | (c, d))*, e)?)>");
  const auto& a = s.elements.at("a");
  EXPECT_EQ(MultOf(a, "b"), Multiplicity::kStar);
  EXPECT_EQ(MultOf(a, "c"), Multiplicity::kStar);
  EXPECT_EQ(MultOf(a, "d"), Multiplicity::kStar);
  EXPECT_EQ(MultOf(a, "e"), Multiplicity::kOpt);
}

TEST(SimplifyTest, InDegreeCountsDistinctParents) {
  auto s = Simplify(R"(
<!ELEMENT bib (book*, article*)>
<!ELEMENT book (title, author)>
<!ELEMENT article (title, author, author)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
)");
  EXPECT_EQ(s.in_degree.at("title"), 2);   // book + article
  EXPECT_EQ(s.in_degree.at("author"), 2);  // duplicates within article: once
  EXPECT_EQ(s.in_degree.at("book"), 1);
}

TEST(SimplifyTest, AttributesCarriedThrough) {
  auto s = Simplify(R"(
<!ELEMENT a EMPTY>
<!ATTLIST a x CDATA #REQUIRED y CDATA #IMPLIED>
)");
  EXPECT_EQ(s.elements.at("a").attributes.size(), 2u);
}

TEST(SimplifyTest, AttlistWithoutElementDecl) {
  auto s = Simplify("<!ATTLIST ghost x CDATA #IMPLIED>");
  ASSERT_TRUE(s.elements.count("ghost") > 0);
  EXPECT_EQ(s.elements.at("ghost").attributes.size(), 1u);
}

TEST(SimplifyTest, RecursionDetected) {
  auto s = Simplify("<!ELEMENT part (part*)>");
  EXPECT_EQ(s.recursive, std::vector<std::string>{"part"});
}

}  // namespace
}  // namespace xmlrdb::xml
