#include "xml/node.h"

#include <cassert>

namespace xmlrdb::xml {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kDocument: return "document";
    case NodeKind::kElement: return "element";
    case NodeKind::kAttribute: return "attribute";
    case NodeKind::kText: return "text";
    case NodeKind::kComment: return "comment";
    case NodeKind::kProcessingInstruction: return "processing-instruction";
  }
  return "unknown";
}

Node* Node::AddChild(std::unique_ptr<Node> child) {
  assert(child->kind() != NodeKind::kAttribute);
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Node* Node::AddAttribute(std::unique_ptr<Node> attr) {
  assert(attr->kind() == NodeKind::kAttribute);
  attr->parent_ = this;
  attributes_.push_back(std::move(attr));
  return attributes_.back().get();
}

Node* Node::AddElement(std::string name) {
  return AddChild(std::make_unique<Node>(NodeKind::kElement, std::move(name)));
}

Node* Node::AddText(std::string text) {
  return AddChild(
      std::make_unique<Node>(NodeKind::kText, std::string(), std::move(text)));
}

Node* Node::SetAttr(std::string name, std::string value) {
  for (auto& a : attributes_) {
    if (a->name() == name) {
      a->set_value(std::move(value));
      return a.get();
    }
  }
  return AddAttribute(std::make_unique<Node>(NodeKind::kAttribute, std::move(name),
                                             std::move(value)));
}

void Node::RemoveChild(size_t idx) {
  assert(idx < children_.size());
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(idx));
}

std::unique_ptr<Node> Node::DetachChild(size_t idx) {
  assert(idx < children_.size());
  std::unique_ptr<Node> out = std::move(children_[idx]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(idx));
  out->parent_ = nullptr;
  return out;
}

const Node* Node::FindAttribute(std::string_view name) const {
  for (const auto& a : attributes_) {
    if (a->name() == name) return a.get();
  }
  return nullptr;
}

const Node* Node::FindChildElement(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->IsElement() && c->name() == name) return c.get();
  }
  return nullptr;
}

namespace {
void CollectText(const Node& n, std::string* out) {
  if (n.kind() == NodeKind::kText) {
    out->append(n.value());
    return;
  }
  for (const auto& c : n.children()) CollectText(*c, out);
}
}  // namespace

std::string Node::StringValue() const {
  if (kind_ == NodeKind::kAttribute || kind_ == NodeKind::kText ||
      kind_ == NodeKind::kComment || kind_ == NodeKind::kProcessingInstruction) {
    return value_;
  }
  std::string out;
  CollectText(*this, &out);
  return out;
}

size_t Node::SubtreeSize() const {
  size_t n = 1 + attributes_.size();
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

std::unique_ptr<Node> Node::Clone() const {
  auto copy = std::make_unique<Node>(kind_, name_, value_);
  for (const auto& a : attributes_) copy->AddAttribute(a->Clone());
  for (const auto& c : children_) copy->AddChild(c->Clone());
  return copy;
}

Node* Document::root() {
  for (auto& c : doc_node_->children()) {
    if (c->IsElement()) return c.get();
  }
  return nullptr;
}

const Node* Document::root() const {
  return const_cast<Document*>(this)->root();
}

}  // namespace xmlrdb::xml
