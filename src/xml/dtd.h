// DTD (internal subset) model and parser.
//
// The DTD drives the Inline mapping (Shanmugasundaram et al., VLDB 1999):
// element declarations give content models, attribute lists give columns.

#ifndef XMLRDB_XML_DTD_H_
#define XMLRDB_XML_DTD_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlrdb::xml {

/// Occurrence indicator on a content particle.
enum class Quant { kOne, kOpt, kStar, kPlus };

const char* QuantName(Quant q);

/// A node of a DTD content model expression tree.
struct ContentParticle {
  enum class Kind { kPCData, kEmpty, kAny, kName, kSeq, kChoice };

  Kind kind = Kind::kEmpty;
  Quant quant = Quant::kOne;
  std::string name;                                      // for kName
  std::vector<std::unique_ptr<ContentParticle>> children;  // for kSeq/kChoice

  /// Content-model text, e.g. "(title, author*)".
  std::string ToString() const;
};

/// <!ATTLIST ...> entry for one attribute.
struct AttrDecl {
  enum class Type { kCData, kId, kIdRef, kIdRefs, kNmToken, kNmTokens, kEnum };
  enum class Default { kRequired, kImplied, kFixed, kValue };

  std::string name;
  Type type = Type::kCData;
  Default dflt = Default::kImplied;
  std::string default_value;              // for kFixed / kValue
  std::vector<std::string> enum_values;   // for kEnum
};

/// <!ELEMENT name content>.
struct ElementDecl {
  std::string name;
  std::unique_ptr<ContentParticle> content;
  /// True for (#PCDATA | a | b)* style declarations.
  bool mixed = false;
};

/// A parsed DTD: element declarations plus per-element attribute lists.
class Dtd {
 public:
  const std::map<std::string, ElementDecl>& elements() const { return elements_; }
  const std::map<std::string, std::vector<AttrDecl>>& attlists() const {
    return attlists_;
  }

  const ElementDecl* FindElement(std::string_view name) const;
  const std::vector<AttrDecl>* FindAttlist(std::string_view name) const;

  void AddElement(ElementDecl decl);
  void AddAttr(const std::string& element, AttrDecl attr);

  /// Names of elements that can (transitively) reach themselves through
  /// their content models — these cannot be inlined.
  std::vector<std::string> RecursiveElements() const;

 private:
  std::map<std::string, ElementDecl> elements_;
  std::map<std::string, std::vector<AttrDecl>> attlists_;
};

/// Parses the text between '[' and ']' of a DOCTYPE internal subset.
/// Entity declarations and conditional sections are rejected as kUnsupported.
Result<std::unique_ptr<Dtd>> ParseDtd(std::string_view input);

}  // namespace xmlrdb::xml

#endif  // XMLRDB_XML_DTD_H_
