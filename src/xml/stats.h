// Document statistics used by the benchmarks and the planner's cardinality
// heuristics.

#ifndef XMLRDB_XML_STATS_H_
#define XMLRDB_XML_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "xml/node.h"

namespace xmlrdb::xml {

struct DocStats {
  uint64_t element_count = 0;
  uint64_t attribute_count = 0;
  uint64_t text_node_count = 0;
  uint64_t text_bytes = 0;
  uint64_t max_depth = 0;          ///< root element has depth 1
  uint64_t distinct_tags = 0;
  std::map<std::string, uint64_t> tag_counts;

  std::string ToString() const;
};

/// Walks the subtree under `node` (typically a document's root element).
DocStats ComputeStats(const Node& node);

}  // namespace xmlrdb::xml

#endif  // XMLRDB_XML_STATS_H_
