// DTD simplification (normalisation) for relational schema generation.
//
// Implements the rewrite rules of Shanmugasundaram et al. (VLDB 1999):
//
//   (e1, e2)*  ->  e1*, e2*
//   (e1, e2)?  ->  e1?, e2?
//   (e1 | e2)  ->  e1?, e2?
//   e**        ->  e*
//   e*?        ->  e*
//   e??        ->  e?
//   e+         ->  e*          (generalised quantifier: be less specific)
//   ..a*,..,a*..-> a*, ..      (duplicate child names merge to a single star)
//
// The result per element is a flat multiplicity map: each child element name
// occurs once, annotated kOne / kOpt / kStar, plus a "has text" flag.

#ifndef XMLRDB_XML_DTD_SIMPLIFY_H_
#define XMLRDB_XML_DTD_SIMPLIFY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "xml/dtd.h"

namespace xmlrdb::xml {

/// Flat multiplicity of one child element within its parent.
enum class Multiplicity { kOne, kOpt, kStar };

const char* MultiplicityName(Multiplicity m);

struct SimplifiedChild {
  std::string name;
  Multiplicity mult;
};

/// The normalised content model of one element type.
struct SimplifiedElement {
  std::string name;
  /// Children in (first-appearance) document-model order; names are unique.
  std::vector<SimplifiedChild> children;
  /// True if text content may appear (#PCDATA / mixed / ANY).
  bool has_text = false;
  /// True if the original model was ANY (children become untyped).
  bool any = false;
  /// Attributes copied from the ATTLIST (if present).
  std::vector<AttrDecl> attributes;
};

/// The whole DTD after normalisation, plus the recursion analysis the
/// inlining mapping needs.
struct SimplifiedDtd {
  std::map<std::string, SimplifiedElement> elements;
  /// Elements that participate in a content-model cycle.
  std::vector<std::string> recursive;
  /// in_degree[name] = number of distinct parent element types that can
  /// contain `name` (used to decide table-vs-inline: shared elements get
  /// their own table).
  std::map<std::string, int> in_degree;
};

/// Normalises every element declaration of `dtd`.
Result<SimplifiedDtd> SimplifyDtd(const Dtd& dtd);

}  // namespace xmlrdb::xml

#endif  // XMLRDB_XML_DTD_SIMPLIFY_H_
