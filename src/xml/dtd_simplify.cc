#include "xml/dtd_simplify.h"

#include <algorithm>
#include <set>

namespace xmlrdb::xml {

const char* MultiplicityName(Multiplicity m) {
  switch (m) {
    case Multiplicity::kOne: return "1";
    case Multiplicity::kOpt: return "?";
    case Multiplicity::kStar: return "*";
  }
  return "?";
}

namespace {

/// Combines an outer quantifier applied to an already-flattened multiplicity.
Multiplicity Apply(Multiplicity inner, Quant outer) {
  switch (outer) {
    case Quant::kOne:
      return inner;
    case Quant::kOpt:
      return inner == Multiplicity::kStar ? Multiplicity::kStar
                                          : Multiplicity::kOpt;
    case Quant::kStar:
    case Quant::kPlus:  // e+ -> e* (generalise)
      return Multiplicity::kStar;
  }
  return Multiplicity::kStar;
}

/// Merges a child occurrence into the flat list: duplicates become star.
void Merge(std::vector<SimplifiedChild>* out, const std::string& name,
           Multiplicity mult) {
  for (auto& c : *out) {
    if (c.name == name) {
      c.mult = Multiplicity::kStar;
      return;
    }
  }
  out->push_back({name, mult});
}

/// Flattens a content particle under an effective quantifier context.
/// `in_choice` demotes kOne children to kOpt ((e1|e2) -> e1?, e2?).
void Flatten(const ContentParticle& cp, Quant context, bool in_choice,
             SimplifiedElement* out) {
  Multiplicity base = Multiplicity::kOne;
  if (in_choice) base = Multiplicity::kOpt;
  switch (cp.kind) {
    case ContentParticle::Kind::kPCData:
      out->has_text = true;
      return;
    case ContentParticle::Kind::kEmpty:
      return;
    case ContentParticle::Kind::kAny:
      out->any = true;
      out->has_text = true;
      return;
    case ContentParticle::Kind::kName: {
      Multiplicity m = Apply(base, cp.quant);
      m = Apply(m, context);
      Merge(&out->children, cp.name, m);
      return;
    }
    case ContentParticle::Kind::kSeq:
    case ContentParticle::Kind::kChoice: {
      // The group's own quantifier composes with the surrounding context:
      // (e1, e2)* pushes * onto each child.
      Quant combined;
      if (context == Quant::kStar || context == Quant::kPlus ||
          cp.quant == Quant::kStar || cp.quant == Quant::kPlus) {
        combined = Quant::kStar;
      } else if (context == Quant::kOpt || cp.quant == Quant::kOpt) {
        combined = Quant::kOpt;
      } else {
        combined = Quant::kOne;
      }
      bool choice = cp.kind == ContentParticle::Kind::kChoice;
      for (const auto& c : cp.children) {
        Flatten(*c, combined, in_choice || choice, out);
      }
      return;
    }
  }
}

}  // namespace

Result<SimplifiedDtd> SimplifyDtd(const Dtd& dtd) {
  SimplifiedDtd out;
  for (const auto& [name, decl] : dtd.elements()) {
    SimplifiedElement se;
    se.name = name;
    if (decl.content) Flatten(*decl.content, Quant::kOne, false, &se);
    if (const auto* attrs = dtd.FindAttlist(name)) se.attributes = *attrs;
    out.elements[name] = std::move(se);
  }
  // Attlists for undeclared elements still yield (attribute-only) entries so
  // the inline mapping can build a table for them.
  for (const auto& [name, attrs] : dtd.attlists()) {
    if (out.elements.count(name) == 0) {
      SimplifiedElement se;
      se.name = name;
      se.attributes = attrs;
      se.has_text = true;  // no content model: be permissive
      se.any = true;
      out.elements[name] = std::move(se);
    }
  }
  out.recursive = dtd.RecursiveElements();
  for (const auto& [name, se] : out.elements) {
    (void)name;
    std::set<std::string> seen;
    for (const auto& c : se.children) {
      if (seen.insert(c.name).second) out.in_degree[c.name] += 1;
    }
  }
  return out;
}

}  // namespace xmlrdb::xml
