// In-memory XML tree (DOM).
//
// The model is deliberately close to the XPath 1.0 data model restricted to
// what the relational mappings need: documents, elements, attributes, text,
// comments and processing instructions. Namespaces are treated lexically
// (prefix:name is the node name), matching how the classic shredding papers
// store QNames.

#ifndef XMLRDB_XML_NODE_H_
#define XMLRDB_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlrdb::xml {

enum class NodeKind {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kProcessingInstruction,
};

const char* NodeKindName(NodeKind kind);

/// One node of an XML tree. Elements own their children and attributes;
/// ownership is strictly tree-shaped (no sharing).
class Node {
 public:
  explicit Node(NodeKind kind) : kind_(kind) {}
  Node(NodeKind kind, std::string name) : kind_(kind), name_(std::move(name)) {}
  Node(NodeKind kind, std::string name, std::string value)
      : kind_(kind), name_(std::move(name)), value_(std::move(value)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind() const { return kind_; }
  /// Element/attribute/PI name; empty for document, text and comment nodes.
  const std::string& name() const { return name_; }
  /// Text content (text/comment), attribute value, or PI data.
  const std::string& value() const { return value_; }
  void set_value(std::string v) { value_ = std::move(v); }

  Node* parent() const { return parent_; }

  const std::vector<std::unique_ptr<Node>>& children() const { return children_; }
  const std::vector<std::unique_ptr<Node>>& attributes() const { return attributes_; }

  bool IsElement() const { return kind_ == NodeKind::kElement; }
  bool IsText() const { return kind_ == NodeKind::kText; }

  /// Appends a child node (element/text/comment/PI) and takes ownership.
  Node* AddChild(std::unique_ptr<Node> child);
  /// Appends an attribute node and takes ownership.
  Node* AddAttribute(std::unique_ptr<Node> attr);

  /// Convenience builders used by generators and tests.
  Node* AddElement(std::string name);
  Node* AddText(std::string text);
  Node* SetAttr(std::string name, std::string value);

  /// Removes (and destroys) the idx-th child. Requires idx < children().size().
  void RemoveChild(size_t idx);

  /// Detaches the idx-th child, transferring ownership to the caller.
  std::unique_ptr<Node> DetachChild(size_t idx);

  /// Attribute value lookup; null if absent.
  const Node* FindAttribute(std::string_view name) const;

  /// First child element with the given name; null if absent.
  const Node* FindChildElement(std::string_view name) const;

  /// Concatenation of all descendant text (the XPath string-value of an
  /// element), or value() for attribute/text nodes.
  std::string StringValue() const;

  /// Number of nodes in this subtree including self, attributes and text.
  size_t SubtreeSize() const;

  /// Deep copy of this subtree (parent pointer of the copy is null).
  std::unique_ptr<Node> Clone() const;

 private:
  NodeKind kind_;
  std::string name_;
  std::string value_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
  std::vector<std::unique_ptr<Node>> attributes_;
};

/// A parsed document: owns the tree; `root()` is the single top element.
class Document {
 public:
  Document() : doc_node_(std::make_unique<Node>(NodeKind::kDocument)) {}

  Node* doc_node() { return doc_node_.get(); }
  const Node* doc_node() const { return doc_node_.get(); }

  /// The document element; null for an (invalid) empty document.
  Node* root();
  const Node* root() const;

  /// Internal DTD subset text captured from <!DOCTYPE ... [ ... ]>, if any.
  const std::string& dtd_text() const { return dtd_text_; }
  void set_dtd_text(std::string t) { dtd_text_ = std::move(t); }

  const std::string& doctype_name() const { return doctype_name_; }
  void set_doctype_name(std::string n) { doctype_name_ = std::move(n); }

 private:
  std::unique_ptr<Node> doc_node_;
  std::string dtd_text_;
  std::string doctype_name_;
};

}  // namespace xmlrdb::xml

#endif  // XMLRDB_XML_NODE_H_
