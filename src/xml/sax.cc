#include "xml/sax.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace xmlrdb::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Single-pass streaming parser; mirrors parser.cc's grammar but keeps only
/// the open-element stack.
class SaxParser {
 public:
  SaxParser(std::string_view in, SaxHandler* handler, const ParseOptions& opt)
      : in_(in), handler_(handler), opt_(opt) {}

  Status Run() {
    RETURN_IF_ERROR(handler_->StartDocument());
    RETURN_IF_ERROR(SkipProlog());
    SkipMisc();
    if (AtEnd() || Peek() != '<') return Err("expected document element");
    RETURN_IF_ERROR(ParseElement());
    SkipMisc();
    if (!AtEnd()) return Err("content after document element");
    return handler_->EndDocument();
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek(size_t k = 0) const {
    return pos_ + k < in_.size() ? in_[pos_ + k] : '\0';
  }
  void Advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  bool Consume(std::string_view lit) {
    if (in_.substr(pos_, lit.size()) != lit) return false;
    for (size_t i = 0; i < lit.size(); ++i) Advance();
    return true;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(col_));
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return Err("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(in_.substr(start, pos_ - start));
  }

  Status AppendReference(std::string* out) {
    Advance();  // '&'
    size_t start = pos_;
    while (!AtEnd() && Peek() != ';' && pos_ - start < 32) Advance();
    if (AtEnd()) return Err("unterminated entity reference");
    if (Peek() != ';') return Err("entity reference too long");
    std::string_view ent = in_.substr(start, pos_ - start);
    Advance();
    if (ent == "lt") *out += '<';
    else if (ent == "gt") *out += '>';
    else if (ent == "amp") *out += '&';
    else if (ent == "quot") *out += '"';
    else if (ent == "apos") *out += '\'';
    else if (!ent.empty() && ent[0] == '#') {
      // Same discipline as parser.cc: accumulate digits by hand so
      // "&#12abc;" (strtol's stop-at-garbage lenience), overflow past the
      // code-point range, and surrogate code points are all rejected —
      // this path is reachable from network payloads via the blob mapping.
      bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      std::string_view digits = ent.substr(hex ? 2 : 1);
      if (digits.empty()) return Err("invalid character reference");
      long code = 0;
      for (char c : digits) {
        int d;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (hex && c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (hex && c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else return Err("invalid character reference");
        code = code * (hex ? 16 : 10) + d;
        if (code > 0x10FFFF) return Err("invalid character reference");
      }
      if (code <= 0) return Err("invalid character reference");
      if (code >= 0xD800 && code <= 0xDFFF) {
        return Err("invalid character reference");
      }
      unsigned cp = static_cast<unsigned>(code);
      if (cp < 0x80) {
        *out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        *out += static_cast<char>(0xC0 | (cp >> 6));
        *out += static_cast<char>(0x80 | (cp & 0x3F));
      } else if (cp < 0x10000) {
        *out += static_cast<char>(0xE0 | (cp >> 12));
        *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (cp & 0x3F));
      } else {
        *out += static_cast<char>(0xF0 | (cp >> 18));
        *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (cp & 0x3F));
      }
    } else {
      return Err("unknown entity '&" + std::string(ent) + ";'");
    }
    return Status::OK();
  }

  Status SkipProlog() {
    SkipWs();
    if (Consume("<?xml")) {
      while (!AtEnd() && !(Peek() == '?' && Peek(1) == '>')) Advance();
      if (AtEnd()) return Err("unterminated XML declaration");
      Advance();
      Advance();
    }
    SkipMisc();
    if (Consume("<!DOCTYPE")) {
      SkipWs();
      ASSIGN_OR_RETURN([[maybe_unused]] std::string name, ParseName());
      while (!AtEnd() && Peek() != '[' && Peek() != '>') Advance();
      if (AtEnd()) return Err("unterminated DOCTYPE");
      if (Peek() == '[') {
        Advance();
        int depth = 1;
        while (!AtEnd() && depth > 0) {
          if (Peek() == '[') ++depth;
          if (Peek() == ']') --depth;
          if (depth > 0) Advance();
        }
        if (AtEnd()) return Err("unterminated DTD internal subset");
        Advance();
        SkipWs();
      }
      if (!Consume(">")) return Err("expected '>' closing DOCTYPE");
    }
    return Status::OK();
  }

  void SkipMisc() {
    while (true) {
      SkipWs();
      if (Peek() == '<' && Peek(1) == '!' && Peek(2) == '-' && Peek(3) == '-') {
        Consume("<!--");
        while (!AtEnd() && !Consume("-->")) Advance();
      } else if (Peek() == '<' && Peek(1) == '?') {
        Consume("<?");
        while (!AtEnd() && !(Peek() == '?' && Peek(1) == '>')) Advance();
        if (!AtEnd()) {
          Advance();
          Advance();
        }
      } else {
        return;
      }
    }
  }

  Status ParseElement() {
    Advance();  // '<'
    ASSIGN_OR_RETURN(std::string name, ParseName());
    RETURN_IF_ERROR(handler_->StartElement(name));
    std::vector<std::string> seen_attrs;
    while (true) {
      SkipWs();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>' || (Peek() == '/' && Peek(1) == '>')) break;
      ASSIGN_OR_RETURN(std::string aname, ParseName());
      SkipWs();
      if (!Consume("=")) return Err("expected '=' in attribute");
      SkipWs();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Err("expected quoted attribute value");
      }
      Advance();
      std::string aval;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '&') {
          RETURN_IF_ERROR(AppendReference(&aval));
        } else if (Peek() == '<') {
          return Err("'<' in attribute value");
        } else {
          aval += Peek();
          Advance();
        }
      }
      if (AtEnd()) return Err("unterminated attribute value");
      Advance();
      for (const auto& prev : seen_attrs) {
        if (prev == aname) return Err("duplicate attribute '" + aname + "'");
      }
      seen_attrs.push_back(aname);
      RETURN_IF_ERROR(handler_->Attribute(aname, aval));
    }
    if (Consume("/>")) return handler_->EndElement(name);
    Consume(">");

    std::string text;
    auto flush_text = [&]() -> Status {
      if (text.empty()) return Status::OK();
      if (!(opt_.strip_ignorable_whitespace && IsAllWhitespace(text))) {
        RETURN_IF_ERROR(handler_->Text(text));
      }
      text.clear();
      return Status::OK();
    };
    while (true) {
      if (AtEnd()) return Err("unterminated element <" + name + ">");
      if (Peek() == '<') {
        if (Peek(1) == '/') {
          RETURN_IF_ERROR(flush_text());
          Consume("</");
          ASSIGN_OR_RETURN(std::string close, ParseName());
          if (close != name) {
            return Err("mismatched end tag </" + close + "> for <" + name + ">");
          }
          SkipWs();
          if (!Consume(">")) return Err("expected '>' in end tag");
          return handler_->EndElement(name);
        }
        if (Peek(1) == '!' && Peek(2) == '-' && Peek(3) == '-') {
          RETURN_IF_ERROR(flush_text());
          Consume("<!--");
          while (!AtEnd() && !Consume("-->")) Advance();
          continue;
        }
        if (Consume("<![CDATA[")) {
          size_t start = pos_;
          while (!AtEnd() && !(Peek() == ']' && Peek(1) == ']' && Peek(2) == '>')) {
            Advance();
          }
          if (AtEnd()) return Err("unterminated CDATA section");
          text.append(in_.substr(start, pos_ - start));
          Consume("]]>");
          continue;
        }
        if (Peek(1) == '?') {
          RETURN_IF_ERROR(flush_text());
          Consume("<?");
          while (!AtEnd() && !(Peek() == '?' && Peek(1) == '>')) Advance();
          if (!AtEnd()) {
            Advance();
            Advance();
          }
          continue;
        }
        RETURN_IF_ERROR(flush_text());
        RETURN_IF_ERROR(ParseElement());
        continue;
      }
      if (Peek() == '&') {
        RETURN_IF_ERROR(AppendReference(&text));
        continue;
      }
      text += Peek();
      Advance();
    }
  }

  std::string_view in_;
  SaxHandler* handler_;
  ParseOptions opt_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Status ParseSax(std::string_view input, SaxHandler* handler,
                const ParseOptions& options) {
  SaxParser p(input, handler, options);
  return p.Run();
}

}  // namespace xmlrdb::xml
