// XML serialization: node tree -> text.

#ifndef XMLRDB_XML_SERIALIZER_H_
#define XMLRDB_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace xmlrdb::xml {

struct SerializeOptions {
  /// Indent nested elements; false produces one compact line.
  bool pretty = false;
  int indent_width = 2;
  /// Emit the <?xml version="1.0"?> declaration for documents.
  bool declaration = false;
};

/// Serializes a subtree rooted at `node` (element/text/comment/PI/attribute).
std::string Serialize(const Node& node, const SerializeOptions& options = {});

/// Serializes a whole document.
std::string Serialize(const Document& doc, const SerializeOptions& options = {});

/// Canonical single-line form with attributes sorted by name and
/// text normalized — equal canonical strings <=> structurally equal trees.
/// Used by the shred/reconstruct round-trip property tests.
std::string Canonicalize(const Node& node);
std::string Canonicalize(const Document& doc);

}  // namespace xmlrdb::xml

#endif  // XMLRDB_XML_SERIALIZER_H_
