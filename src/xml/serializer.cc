#include "xml/serializer.h"

#include <algorithm>

#include "common/str_util.h"

namespace xmlrdb::xml {

namespace {

void SerializeNode(const Node& n, const SerializeOptions& opt, int depth,
                   std::string* out) {
  auto indent = [&]() {
    if (opt.pretty) {
      out->append(1, '\n');
      out->append(static_cast<size_t>(depth * opt.indent_width), ' ');
    }
  };
  switch (n.kind()) {
    case NodeKind::kDocument:
      for (const auto& c : n.children()) SerializeNode(*c, opt, depth, out);
      return;
    case NodeKind::kText:
      *out += XmlEscape(n.value());
      return;
    case NodeKind::kComment:
      indent();
      *out += "<!--" + n.value() + "-->";
      return;
    case NodeKind::kProcessingInstruction:
      indent();
      *out += "<?" + n.name() + " " + n.value() + "?>";
      return;
    case NodeKind::kAttribute:
      *out += n.name() + "=\"" + XmlEscape(n.value()) + "\"";
      return;
    case NodeKind::kElement:
      break;
  }
  if (opt.pretty && depth > 0) indent();
  *out += "<" + n.name();
  for (const auto& a : n.attributes()) {
    *out += " ";
    SerializeNode(*a, opt, depth, out);
  }
  if (n.children().empty()) {
    *out += "/>";
    return;
  }
  *out += ">";
  bool text_only = std::all_of(n.children().begin(), n.children().end(),
                               [](const auto& c) { return c->IsText(); });
  for (const auto& c : n.children()) SerializeNode(*c, opt, depth + 1, out);
  if (opt.pretty && !text_only) {
    out->append(1, '\n');
    out->append(static_cast<size_t>(depth * opt.indent_width), ' ');
  }
  *out += "</" + n.name() + ">";
}

void CanonicalizeNode(const Node& n, std::string* out) {
  switch (n.kind()) {
    case NodeKind::kDocument:
      for (const auto& c : n.children()) CanonicalizeNode(*c, out);
      return;
    case NodeKind::kText:
      *out += "#text(" + n.value() + ")";
      return;
    case NodeKind::kComment:
      *out += "#comment(" + n.value() + ")";
      return;
    case NodeKind::kProcessingInstruction:
      *out += "#pi(" + n.name() + "," + n.value() + ")";
      return;
    case NodeKind::kAttribute:
      *out += "@" + n.name() + "=(" + n.value() + ")";
      return;
    case NodeKind::kElement:
      break;
  }
  *out += "<" + n.name();
  // Attribute order is not significant in XML; sort for comparison.
  std::vector<const Node*> attrs;
  attrs.reserve(n.attributes().size());
  for (const auto& a : n.attributes()) attrs.push_back(a.get());
  std::sort(attrs.begin(), attrs.end(),
            [](const Node* a, const Node* b) { return a->name() < b->name(); });
  for (const Node* a : attrs) {
    *out += " ";
    CanonicalizeNode(*a, out);
  }
  *out += ">";
  for (const auto& c : n.children()) CanonicalizeNode(*c, out);
  *out += "</>";
}

}  // namespace

std::string Serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  SerializeNode(node, options, 0, &out);
  return out;
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.pretty) out += "\n";
  }
  for (const auto& c : doc.doc_node()->children()) {
    SerializeNode(*c, options, 0, &out);
  }
  return out;
}

std::string Canonicalize(const Node& node) {
  std::string out;
  CanonicalizeNode(node, &out);
  return out;
}

std::string Canonicalize(const Document& doc) {
  std::string out;
  for (const auto& c : doc.doc_node()->children()) {
    CanonicalizeNode(*c, &out);
  }
  return out;
}

}  // namespace xmlrdb::xml
