// Streaming (SAX-style) XML parsing: the "token stream" processing model.
//
// ParseSax walks the document once and fires events without materialising a
// tree — the memory-bounded path used by the streaming shredders
// (shred/streaming.h). The accepted language matches xml::Parse exactly
// (tested differentially); entity handling, CDATA, comments and the DOCTYPE
// prolog behave identically.

#ifndef XMLRDB_XML_SAX_H_
#define XMLRDB_XML_SAX_H_

#include <string_view>

#include "common/status.h"
#include "xml/parser.h"

namespace xmlrdb::xml {

/// Event sink. Any returned error aborts the parse and is propagated.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual Status StartDocument() { return Status::OK(); }
  virtual Status EndDocument() { return Status::OK(); }

  /// Fired after the start tag's name is read, before its attributes.
  virtual Status StartElement(std::string_view name) = 0;
  /// One call per attribute, between StartElement and the first content.
  virtual Status Attribute(std::string_view name, std::string_view value) = 0;
  /// Character data (entities expanded, CDATA unwrapped). May be called
  /// multiple times for adjacent runs.
  virtual Status Text(std::string_view text) = 0;
  virtual Status EndElement(std::string_view name) = 0;
};

/// Streams `input` into `handler`. ParseOptions' whitespace stripping
/// applies; comments and PIs are always skipped (no events).
Status ParseSax(std::string_view input, SaxHandler* handler,
                const ParseOptions& options = {});

}  // namespace xmlrdb::xml

#endif  // XMLRDB_XML_SAX_H_
