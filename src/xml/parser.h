// Recursive-descent parser for a practical XML 1.0 subset.
//
// Supported: prolog (<?xml ...?>), DOCTYPE with internal subset (captured as
// text for the DTD parser), elements, attributes, character data with the
// five predefined entities plus decimal/hex character references, CDATA
// sections, comments and processing instructions. Not supported (rejected
// with kUnsupported/kParseError): external entities and parameter entities.

#ifndef XMLRDB_XML_PARSER_H_
#define XMLRDB_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "xml/node.h"

namespace xmlrdb::xml {

struct ParseOptions {
  /// Drop text nodes that contain only whitespace between elements.
  bool strip_ignorable_whitespace = true;
  /// Keep comment nodes in the tree (shredding usually ignores them).
  bool keep_comments = false;
  /// Keep processing-instruction nodes.
  bool keep_processing_instructions = false;
};

/// Parses a complete document. On error, the status message includes
/// 1-based line and column of the offending position.
Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                        const ParseOptions& options = {});

/// Parses a single element (fragment) — used by subtree-update paths.
Result<std::unique_ptr<Node>> ParseFragment(std::string_view input,
                                            const ParseOptions& options = {});

}  // namespace xmlrdb::xml

#endif  // XMLRDB_XML_PARSER_H_
