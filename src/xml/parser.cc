#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/str_util.h"

namespace xmlrdb::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class Parser {
 public:
  Parser(std::string_view input, const ParseOptions& options)
      : in_(input), opt_(options) {}

  Result<std::unique_ptr<Document>> ParseDocument() {
    auto doc = std::make_unique<Document>();
    RETURN_IF_ERROR(ParseProlog(doc.get()));
    SkipMisc(doc->doc_node());
    if (AtEnd() || Peek() != '<') {
      return Err("expected document element");
    }
    ASSIGN_OR_RETURN(std::unique_ptr<Node> root, ParseElement());
    doc->doc_node()->AddChild(std::move(root));
    SkipMisc(doc->doc_node());
    if (!AtEnd()) return Err("content after document element");
    return doc;
  }

  Result<std::unique_ptr<Node>> ParseSingleElement() {
    SkipWhitespace();
    if (AtEnd() || Peek() != '<') return Err("expected element");
    ASSIGN_OR_RETURN(std::unique_ptr<Node> el, ParseElement());
    SkipWhitespace();
    if (!AtEnd()) return Err("content after fragment element");
    return el;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < in_.size() ? in_[pos_ + ahead] : '\0';
  }
  void Advance() {
    if (in_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  bool Consume(std::string_view lit) {
    if (in_.substr(pos_).substr(0, lit.size()) != lit) return false;
    for (size_t i = 0; i < lit.size(); ++i) Advance();
    return true;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(col_));
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return Err("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(in_.substr(start, pos_ - start));
  }

  /// Decodes &lt; &gt; &amp; &quot; &apos; &#NN; &#xHH;.
  Status AppendReference(std::string* out) {
    // Called with Peek() == '&'.
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != ';' && pos_ - start < 32) Advance();
    if (AtEnd()) return Err("unterminated entity reference");
    if (Peek() != ';') return Err("entity reference too long");
    std::string_view ent = in_.substr(start, pos_ - start);
    Advance();  // ';'
    if (ent == "lt") *out += '<';
    else if (ent == "gt") *out += '>';
    else if (ent == "amp") *out += '&';
    else if (ent == "quot") *out += '"';
    else if (ent == "apos") *out += '\'';
    else if (!ent.empty() && ent[0] == '#') {
      // Accumulate digits by hand: every character after the '#' (or '#x')
      // must be a digit of the radix — strtol's stop-at-garbage lenience
      // would accept "&#12abc;".
      bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      std::string_view digits = ent.substr(hex ? 2 : 1);
      if (digits.empty()) return Err("invalid character reference");
      long code = 0;
      for (char c : digits) {
        int d;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (hex && c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (hex && c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else return Err("invalid character reference");
        code = code * (hex ? 16 : 10) + d;
        if (code > 0x10FFFF) return Err("invalid character reference");
      }
      if (code <= 0) return Err("invalid character reference");
      // Surrogate code points are not characters and cannot appear in
      // well-formed XML (nor be UTF-8 encoded).
      if (code >= 0xD800 && code <= 0xDFFF) {
        return Err("invalid character reference");
      }
      // UTF-8 encode.
      unsigned cp = static_cast<unsigned>(code);
      if (cp < 0x80) {
        *out += static_cast<char>(cp);
      } else if (cp < 0x800) {
        *out += static_cast<char>(0xC0 | (cp >> 6));
        *out += static_cast<char>(0x80 | (cp & 0x3F));
      } else if (cp < 0x10000) {
        *out += static_cast<char>(0xE0 | (cp >> 12));
        *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (cp & 0x3F));
      } else {
        *out += static_cast<char>(0xF0 | (cp >> 18));
        *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
        *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
        *out += static_cast<char>(0x80 | (cp & 0x3F));
      }
    } else {
      return Err("unknown entity '&" + std::string(ent) + ";'");
    }
    return Status::OK();
  }

  Status ParseProlog(Document* doc) {
    SkipWhitespace();
    if (Consume("<?xml")) {
      // Skip the XML declaration body.
      while (!AtEnd() && !(Peek() == '?' && Peek(1) == '>')) Advance();
      if (AtEnd()) return Err("unterminated XML declaration");
      Advance();
      Advance();
    }
    SkipMisc(doc->doc_node());
    if (Consume("<!DOCTYPE")) {
      SkipWhitespace();
      ASSIGN_OR_RETURN(std::string name, ParseName());
      doc->set_doctype_name(name);
      SkipWhitespace();
      // Skip external id (SYSTEM/PUBLIC "..."); we do not fetch externals.
      while (!AtEnd() && Peek() != '[' && Peek() != '>') Advance();
      if (AtEnd()) return Err("unterminated DOCTYPE");
      if (Peek() == '[') {
        Advance();
        size_t start = pos_;
        int depth = 1;
        while (!AtEnd() && depth > 0) {
          if (Peek() == '[') ++depth;
          if (Peek() == ']') --depth;
          if (depth > 0) Advance();
        }
        if (AtEnd()) return Err("unterminated DTD internal subset");
        doc->set_dtd_text(std::string(in_.substr(start, pos_ - start)));
        Advance();  // ']'
        SkipWhitespace();
      }
      if (!Consume(">")) return Err("expected '>' closing DOCTYPE");
    }
    return Status::OK();
  }

  /// Skips whitespace, comments and PIs at document level (optionally keeping
  /// comment/PI nodes under `parent`).
  void SkipMisc(Node* parent) {
    while (true) {
      SkipWhitespace();
      if (Peek() == '<' && Peek(1) == '!' && Peek(2) == '-' && Peek(3) == '-') {
        (void)ParseComment(parent);
      } else if (Peek() == '<' && Peek(1) == '?') {
        (void)ParsePI(parent);
      } else {
        return;
      }
    }
  }

  Status ParseComment(Node* parent) {
    // Peek is at "<!--".
    Consume("<!--");
    size_t start = pos_;
    while (!AtEnd() && !(Peek() == '-' && Peek(1) == '-' && Peek(2) == '>')) {
      Advance();
    }
    if (AtEnd()) return Err("unterminated comment");
    std::string text(in_.substr(start, pos_ - start));
    Consume("-->");
    if (opt_.keep_comments && parent != nullptr) {
      parent->AddChild(std::make_unique<Node>(NodeKind::kComment, std::string(),
                                              std::move(text)));
    }
    return Status::OK();
  }

  Status ParsePI(Node* parent) {
    Consume("<?");
    ASSIGN_OR_RETURN(std::string target, ParseName());
    size_t start = pos_;
    while (!AtEnd() && !(Peek() == '?' && Peek(1) == '>')) Advance();
    if (AtEnd()) return Err("unterminated processing instruction");
    std::string data(StripWhitespace(in_.substr(start, pos_ - start)));
    Consume("?>");
    if (opt_.keep_processing_instructions && parent != nullptr) {
      parent->AddChild(std::make_unique<Node>(NodeKind::kProcessingInstruction,
                                              std::move(target), std::move(data)));
    }
    return Status::OK();
  }

  Result<std::unique_ptr<Node>> ParseElement() {
    // Peek() == '<'
    Advance();
    ASSIGN_OR_RETURN(std::string name, ParseName());
    auto el = std::make_unique<Node>(NodeKind::kElement, std::move(name));
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>' || (Peek() == '/' && Peek(1) == '>')) break;
      ASSIGN_OR_RETURN(std::string aname, ParseName());
      SkipWhitespace();
      if (!Consume("=")) return Err("expected '=' in attribute");
      SkipWhitespace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') return Err("expected quoted attribute value");
      Advance();
      std::string aval;
      while (!AtEnd() && Peek() != quote) {
        if (Peek() == '&') {
          RETURN_IF_ERROR(AppendReference(&aval));
        } else if (Peek() == '<') {
          return Err("'<' in attribute value");
        } else {
          aval += Peek();
          Advance();
        }
      }
      if (AtEnd()) return Err("unterminated attribute value");
      Advance();  // closing quote
      if (el->FindAttribute(aname) != nullptr) {
        return Err("duplicate attribute '" + aname + "'");
      }
      el->AddAttribute(std::make_unique<Node>(NodeKind::kAttribute, std::move(aname),
                                              std::move(aval)));
    }
    if (Consume("/>")) return el;
    Consume(">");
    RETURN_IF_ERROR(ParseContent(el.get()));
    // ParseContent consumed "</"; now the name.
    ASSIGN_OR_RETURN(std::string close, ParseName());
    if (close != el->name()) {
      return Err("mismatched end tag </" + close + "> for <" + el->name() + ">");
    }
    SkipWhitespace();
    if (!Consume(">")) return Err("expected '>' in end tag");
    return el;
  }

  /// Parses element content up to (and including) the "</" of the end tag.
  Status ParseContent(Node* el) {
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      if (!(opt_.strip_ignorable_whitespace && IsAllWhitespace(text))) {
        el->AddText(text);
      }
      text.clear();
    };
    while (true) {
      if (AtEnd()) return Err("unterminated element <" + el->name() + ">");
      if (Peek() == '<') {
        if (Peek(1) == '/') {
          flush_text();
          Consume("</");
          return Status::OK();
        }
        if (Peek(1) == '!' && Peek(2) == '-' && Peek(3) == '-') {
          flush_text();
          RETURN_IF_ERROR(ParseComment(el));
          continue;
        }
        if (Consume("<![CDATA[")) {
          size_t start = pos_;
          while (!AtEnd() && !(Peek() == ']' && Peek(1) == ']' && Peek(2) == '>')) {
            Advance();
          }
          if (AtEnd()) return Err("unterminated CDATA section");
          text.append(in_.substr(start, pos_ - start));
          Consume("]]>");
          continue;
        }
        if (Peek(1) == '?') {
          flush_text();
          RETURN_IF_ERROR(ParsePI(el));
          continue;
        }
        flush_text();
        ASSIGN_OR_RETURN(std::unique_ptr<Node> child, ParseElement());
        el->AddChild(std::move(child));
        continue;
      }
      if (Peek() == '&') {
        RETURN_IF_ERROR(AppendReference(&text));
        continue;
      }
      text += Peek();
      Advance();
    }
  }

  std::string_view in_;
  ParseOptions opt_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::unique_ptr<Document>> Parse(std::string_view input,
                                        const ParseOptions& options) {
  Parser p(input, options);
  return p.ParseDocument();
}

Result<std::unique_ptr<Node>> ParseFragment(std::string_view input,
                                            const ParseOptions& options) {
  Parser p(input, options);
  return p.ParseSingleElement();
}

}  // namespace xmlrdb::xml
