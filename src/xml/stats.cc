#include "xml/stats.h"

#include <sstream>

namespace xmlrdb::xml {

namespace {
void Walk(const Node& n, uint64_t depth, DocStats* s) {
  switch (n.kind()) {
    case NodeKind::kElement:
      s->element_count += 1;
      s->tag_counts[n.name()] += 1;
      s->max_depth = std::max(s->max_depth, depth);
      s->attribute_count += n.attributes().size();
      for (const auto& c : n.children()) Walk(*c, depth + 1, s);
      break;
    case NodeKind::kText:
      s->text_node_count += 1;
      s->text_bytes += n.value().size();
      break;
    case NodeKind::kDocument:
      for (const auto& c : n.children()) Walk(*c, depth, s);
      break;
    default:
      break;
  }
}
}  // namespace

DocStats ComputeStats(const Node& node) {
  DocStats s;
  Walk(node, 1, &s);
  s.distinct_tags = s.tag_counts.size();
  return s;
}

std::string DocStats::ToString() const {
  std::ostringstream os;
  os << "elements=" << element_count << " attributes=" << attribute_count
     << " text_nodes=" << text_node_count << " text_bytes=" << text_bytes
     << " max_depth=" << max_depth << " distinct_tags=" << distinct_tags;
  return os.str();
}

}  // namespace xmlrdb::xml
