#include "xml/dtd.h"

#include <cctype>
#include <set>

#include "common/str_util.h"

namespace xmlrdb::xml {

const char* QuantName(Quant q) {
  switch (q) {
    case Quant::kOne: return "";
    case Quant::kOpt: return "?";
    case Quant::kStar: return "*";
    case Quant::kPlus: return "+";
  }
  return "";
}

std::string ContentParticle::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kPCData: out = "#PCDATA"; break;
    case Kind::kEmpty: out = "EMPTY"; break;
    case Kind::kAny: out = "ANY"; break;
    case Kind::kName: out = name; break;
    case Kind::kSeq:
    case Kind::kChoice: {
      out = "(";
      const char* sep = kind == Kind::kSeq ? ", " : " | ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      out += ")";
      break;
    }
  }
  out += QuantName(quant);
  return out;
}

const ElementDecl* Dtd::FindElement(std::string_view name) const {
  auto it = elements_.find(std::string(name));
  return it == elements_.end() ? nullptr : &it->second;
}

const std::vector<AttrDecl>* Dtd::FindAttlist(std::string_view name) const {
  auto it = attlists_.find(std::string(name));
  return it == attlists_.end() ? nullptr : &it->second;
}

void Dtd::AddElement(ElementDecl decl) {
  elements_[decl.name] = std::move(decl);
}

void Dtd::AddAttr(const std::string& element, AttrDecl attr) {
  attlists_[element].push_back(std::move(attr));
}

namespace {
void CollectNames(const ContentParticle& cp, std::set<std::string>* out) {
  if (cp.kind == ContentParticle::Kind::kName) out->insert(cp.name);
  for (const auto& c : cp.children) CollectNames(*c, out);
}
}  // namespace

std::vector<std::string> Dtd::RecursiveElements() const {
  // element -> set of directly referenced child element names
  std::map<std::string, std::set<std::string>> edges;
  for (const auto& [name, decl] : elements_) {
    if (decl.content) CollectNames(*decl.content, &edges[name]);
  }
  std::vector<std::string> out;
  for (const auto& [name, _] : elements_) {
    // DFS from name; recursive iff name reachable from itself.
    std::set<std::string> seen;
    std::vector<std::string> stack;
    for (const auto& next : edges[name]) stack.push_back(next);
    bool recursive = false;
    while (!stack.empty()) {
      std::string cur = stack.back();
      stack.pop_back();
      if (cur == name) {
        recursive = true;
        break;
      }
      if (!seen.insert(cur).second) continue;
      auto it = edges.find(cur);
      if (it == edges.end()) continue;
      for (const auto& next : it->second) stack.push_back(next);
    }
    if (recursive) out.push_back(name);
  }
  return out;
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class DtdParser {
 public:
  explicit DtdParser(std::string_view in) : in_(in) {}

  Result<std::unique_ptr<Dtd>> Parse() {
    auto dtd = std::make_unique<Dtd>();
    while (true) {
      SkipWs();
      if (AtEnd()) break;
      if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
        continue;
      }
      if (Consume("<!ELEMENT")) {
        RETURN_IF_ERROR(ParseElementDecl(dtd.get()));
        continue;
      }
      if (Consume("<!ATTLIST")) {
        RETURN_IF_ERROR(ParseAttlistDecl(dtd.get()));
        continue;
      }
      if (Consume("<!ENTITY")) {
        return Status::Unsupported("entity declarations are not supported");
      }
      if (Consume("<!NOTATION") || Consume("<?")) {
        // Skip to end of declaration/PI.
        while (!AtEnd() && Peek() != '>') Advance();
        if (!AtEnd()) Advance();
        continue;
      }
      return Err("unexpected content in DTD");
    }
    return dtd;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  void Advance() { ++pos_; }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
  }
  bool Consume(std::string_view lit) {
    if (in_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError("DTD: " + msg + " near offset " + std::to_string(pos_));
  }

  Result<std::string> ParseName() {
    SkipWs();
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(in_.substr(start, pos_ - start));
  }

  Quant ParseQuant() {
    if (Consume("?")) return Quant::kOpt;
    if (Consume("*")) return Quant::kStar;
    if (Consume("+")) return Quant::kPlus;
    return Quant::kOne;
  }

  Status ParseElementDecl(Dtd* dtd) {
    ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipWs();
    ElementDecl decl;
    decl.name = name;
    if (Consume("EMPTY")) {
      decl.content = std::make_unique<ContentParticle>();
      decl.content->kind = ContentParticle::Kind::kEmpty;
    } else if (Consume("ANY")) {
      decl.content = std::make_unique<ContentParticle>();
      decl.content->kind = ContentParticle::Kind::kAny;
    } else if (Peek() == '(') {
      ASSIGN_OR_RETURN(decl.content, ParseGroup());
      decl.content->quant = ParseQuant();
      // Detect mixed content: first child is #PCDATA.
      if (!decl.content->children.empty() &&
          decl.content->children[0]->kind == ContentParticle::Kind::kPCData) {
        decl.mixed = true;
      } else if (decl.content->kind == ContentParticle::Kind::kPCData) {
        decl.mixed = true;
      }
    } else {
      return Err("expected content model for element " + name);
    }
    SkipWs();
    if (!Consume(">")) return Err("expected '>' after element declaration");
    dtd->AddElement(std::move(decl));
    return Status::OK();
  }

  /// Parses a parenthesised group, which may be a seq, a choice, or a single
  /// particle. On entry Peek() == '('.
  Result<std::unique_ptr<ContentParticle>> ParseGroup() {
    Consume("(");
    auto group = std::make_unique<ContentParticle>();
    group->kind = ContentParticle::Kind::kSeq;
    char sep = '\0';
    while (true) {
      SkipWs();
      std::unique_ptr<ContentParticle> item;
      if (Peek() == '(') {
        ASSIGN_OR_RETURN(item, ParseGroup());
        item->quant = ParseQuant();
      } else if (Consume("#PCDATA")) {
        item = std::make_unique<ContentParticle>();
        item->kind = ContentParticle::Kind::kPCData;
      } else {
        ASSIGN_OR_RETURN(std::string n, ParseName());
        item = std::make_unique<ContentParticle>();
        item->kind = ContentParticle::Kind::kName;
        item->name = std::move(n);
        item->quant = ParseQuant();
      }
      group->children.push_back(std::move(item));
      SkipWs();
      if (Peek() == ',' || Peek() == '|') {
        if (sep != '\0' && sep != Peek()) {
          return Err("mixed ',' and '|' in one group");
        }
        sep = Peek();
        Advance();
        continue;
      }
      if (Consume(")")) break;
      return Err("expected ',' '|' or ')' in content model");
    }
    if (sep == '|') group->kind = ContentParticle::Kind::kChoice;
    if (group->children.size() == 1 &&
        group->kind == ContentParticle::Kind::kSeq &&
        group->children[0]->kind == ContentParticle::Kind::kPCData) {
      // (#PCDATA) — collapse.
      auto only = std::move(group->children[0]);
      return only;
    }
    return group;
  }

  Status ParseAttlistDecl(Dtd* dtd) {
    ASSIGN_OR_RETURN(std::string element, ParseName());
    while (true) {
      SkipWs();
      if (Consume(">")) return Status::OK();
      AttrDecl attr;
      ASSIGN_OR_RETURN(attr.name, ParseName());
      SkipWs();
      if (Consume("CDATA")) attr.type = AttrDecl::Type::kCData;
      else if (Consume("IDREFS")) attr.type = AttrDecl::Type::kIdRefs;
      else if (Consume("IDREF")) attr.type = AttrDecl::Type::kIdRef;
      else if (Consume("ID")) attr.type = AttrDecl::Type::kId;
      else if (Consume("NMTOKENS")) attr.type = AttrDecl::Type::kNmTokens;
      else if (Consume("NMTOKEN")) attr.type = AttrDecl::Type::kNmToken;
      else if (Peek() == '(') {
        attr.type = AttrDecl::Type::kEnum;
        Advance();
        while (true) {
          ASSIGN_OR_RETURN(std::string v, ParseName());
          attr.enum_values.push_back(std::move(v));
          SkipWs();
          if (Consume("|")) continue;
          if (Consume(")")) break;
          return Err("expected '|' or ')' in enumerated attribute type");
        }
      } else {
        return Err("unknown attribute type for " + attr.name);
      }
      SkipWs();
      if (Consume("#REQUIRED")) {
        attr.dflt = AttrDecl::Default::kRequired;
      } else if (Consume("#IMPLIED")) {
        attr.dflt = AttrDecl::Default::kImplied;
      } else if (Consume("#FIXED")) {
        attr.dflt = AttrDecl::Default::kFixed;
        SkipWs();
        ASSIGN_OR_RETURN(attr.default_value, ParseQuoted());
      } else if (Peek() == '"' || Peek() == '\'') {
        attr.dflt = AttrDecl::Default::kValue;
        ASSIGN_OR_RETURN(attr.default_value, ParseQuoted());
      } else {
        return Err("expected default declaration for attribute " + attr.name);
      }
      dtd->AddAttr(element, std::move(attr));
    }
  }

  Result<std::string> ParseQuoted() {
    SkipWs();
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Err("expected quoted value");
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) Advance();
    if (AtEnd()) return Err("unterminated quoted value");
    std::string out(in_.substr(start, pos_ - start));
    Advance();
    return out;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Dtd>> ParseDtd(std::string_view input) {
  DtdParser p(input);
  return p.Parse();
}

}  // namespace xmlrdb::xml
