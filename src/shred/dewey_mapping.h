// Dewey-order mapping (Tatarinov et al., SIGMOD 2002).
//
//   dw_nodes(docid, dewey, level, kind, name, value)
//
// Every node's id is its Dewey path: the root element is "000001"; its k-th
// child slot is "<parent>.<k>" with each component zero-padded to 6 digits,
// so plain string order IS document order and the subtree of d is exactly
// the key range [d, d + "/") ('/' is the successor of '.' in ASCII).
// Attributes occupy the leading sibling slots of their element.
//
// The structural trade against the interval mapping: axis steps are string
// range scans (slightly wider keys), but appending a subtree touches only
// the new rows — no renumbering of following nodes or ancestors.

#ifndef XMLRDB_SHRED_DEWEY_MAPPING_H_
#define XMLRDB_SHRED_DEWEY_MAPPING_H_

#include "shred/mapping.h"

namespace xmlrdb::shred {

/// Encodes one Dewey component (1-based) as an order-preserving string.
/// Ordinals up to 999999 keep the classic 6-digit zero-pad; larger ordinals
/// are prefixed with ':' (which sorts after any digit) plus the digit-count
/// excess, so string order stays numeric order across the width boundary.
/// Naive zero-padding breaks there: "1000000" < "999999" as strings.
std::string DeweyComponent(int64_t ordinal);

/// Decodes a component produced by DeweyComponent. Rejects anything that
/// encoding cannot produce — empty strings, non-digit bytes, overflow, an
/// escape marker whose width byte disagrees with the digit count — instead
/// of silently decoding garbage to 0 or a clamped value. Dewey labels come
/// back out of tables that untrusted input paths (network DML, recovery)
/// can reach, so corrupt labels must surface as errors, not as inserts
/// landed at a wrong or duplicate slot.
Result<int64_t> DeweyComponentOrdinal(const std::string& component);

/// Appends a component: "000001" + 3 -> "000001.000003".
std::string DeweyChild(const std::string& parent, int64_t ordinal);

class DeweyMapping : public Mapping {
 public:
  std::string name() const override { return "dewey"; }

  Status Initialize(rdb::Database* db) override;
  Result<DocId> StoreImpl(const xml::Document& doc, rdb::Database* db) override;
  bool SupportsParallelStore() const override { return true; }
  Result<DocId> NextDocId(rdb::Database* db) const override;
  Status StoreWithId(const xml::Document& doc, DocId docid,
                     rdb::Database* db) override;
  Result<std::vector<DocId>> ListDocIds(rdb::Database* db) const override;
  Status RemoveImpl(DocId doc, rdb::Database* db) override;

  Result<rdb::Value> RootElement(rdb::Database* db, DocId doc) const override;
  Result<NodeSet> AllElements(rdb::Database* db, DocId doc,
                              const std::string& name_test) const override;
  Result<std::vector<StepResult>> Step(rdb::Database* db, DocId doc,
                                       const NodeSet& context, xpath::Axis axis,
                                       const std::string& name_test) const override;
  Result<std::vector<std::string>> StringValues(
      rdb::Database* db, DocId doc, const NodeSet& nodes) const override;

  Result<std::unique_ptr<xml::Node>> ReconstructSubtree(
      rdb::Database* db, DocId doc, const rdb::Value& node) const override;

  Status InsertSubtreeImpl(rdb::Database* db, DocId doc, const rdb::Value& parent,
                       const xml::Node& subtree) override;
  Status DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                       const rdb::Value& node) override;

 protected:
  std::vector<std::string> TableNames(const rdb::Database& db) const override {
    (void)db;
    return {"dw_nodes"};
  }
};

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_DEWEY_MAPPING_H_
