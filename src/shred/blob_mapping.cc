#include "shred/blob_mapping.h"

#include "shred/shred_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xmlrdb::shred {

using rdb::QueryResult;
using rdb::Value;

namespace {
std::string D(DocId doc) { return std::to_string(doc); }
Value DV(DocId doc) { return Value(static_cast<int64_t>(doc)); }
}  // namespace

Status BlobMapping::Initialize(rdb::Database* db) {
  cache_.clear();  // a fresh database invalidates any cached DOMs
  return db
      ->Execute("CREATE TABLE blob_docs (docid INTEGER NOT NULL, "
                "content VARCHAR NOT NULL)")
      .status();
}

Result<DocId> BlobMapping::NextDocId(rdb::Database* db) const {
  return NextIdFromMax(db, "blob_docs", "docid");
}

Result<std::vector<DocId>> BlobMapping::ListDocIds(rdb::Database* db) const {
  return DistinctDocIds(db, "blob_docs");
}

Status BlobMapping::StoreWithId(const xml::Document& doc, DocId docid,
                                rdb::Database* db) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root");
  }
  std::string text = xml::Serialize(doc);
  rdb::Table* t = db->FindTable("blob_docs");
  if (t == nullptr) return Status::Internal("blob_docs table missing");
  ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid,
                   t->Insert({Value(docid), Value(std::move(text))}));
  return Status::OK();
}

Result<DocId> BlobMapping::StoreImpl(const xml::Document& doc, rdb::Database* db) {
  ASSIGN_OR_RETURN(DocId docid, NextDocId(db));
  RETURN_IF_ERROR(StoreWithId(doc, docid, db));
  return docid;
}

Status BlobMapping::RemoveImpl(DocId doc, rdb::Database* db) {
  cache_.erase(doc);
  return ExecPrepared(db, "DELETE FROM blob_docs WHERE docid = ?", {DV(doc)})
      .status();
}

Result<BlobMapping::CachedDoc*> BlobMapping::Load(rdb::Database* db,
                                                  DocId doc) const {
  auto it = cache_.find(doc);
  if (it != cache_.end()) return &it->second;
  ASSIGN_OR_RETURN(QueryResult r,
                   ExecPrepared(db,
                                "SELECT content FROM blob_docs WHERE docid = ?",
                                {DV(doc)}));
  if (r.rows.empty()) return Status::NotFound("document " + D(doc));
  ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> parsed,
                   xml::Parse(r.rows[0][0].AsString()));
  CachedDoc cached;
  cached.doc = std::move(parsed);
  int64_t next = 0;
  // Pre-order numbering of all nodes (element, then its attributes, then
  // children) — matches the id assignment of the shredded mappings.
  struct Walker {
    CachedDoc* c;
    int64_t* next;
    void Walk(xml::Node* n) {
      Add(n);
      for (const auto& a : n->attributes()) Add(a.get());
      for (const auto& ch : n->children()) {
        if (ch->IsElement()) {
          Walk(ch.get());
        } else {
          Add(ch.get());
        }
      }
    }
    void Add(xml::Node* n) {
      c->ids[n] = *next;
      c->nodes.push_back(n);
      ++(*next);
    }
  };
  Walker w{&cached, &next};
  if (cached.doc->root() != nullptr) w.Walk(cached.doc->root());
  auto [pos, inserted] = cache_.emplace(doc, std::move(cached));
  (void)inserted;
  return &pos->second;
}

Result<Value> BlobMapping::RootElement(rdb::Database* db, DocId doc) const {
  ASSIGN_OR_RETURN(CachedDoc * c, Load(db, doc));
  if (c->doc->root() == nullptr) return Status::NotFound("no root element");
  return Value(c->ids.at(c->doc->root()));
}

Result<NodeSet> BlobMapping::AllElements(rdb::Database* db, DocId doc,
                                         const std::string& name_test) const {
  ASSIGN_OR_RETURN(CachedDoc * c, Load(db, doc));
  NodeSet out;
  for (size_t i = 0; i < c->nodes.size(); ++i) {
    const xml::Node* n = c->nodes[i];
    if (n->IsElement() && (name_test == "*" || n->name() == name_test)) {
      out.push_back(Value(static_cast<int64_t>(i)));
    }
  }
  return out;
}

namespace {
void CollectDescendants(const xml::Node& n, const std::string& test,
                        std::vector<const xml::Node*>* out) {
  for (const auto& c : n.children()) {
    if (c->IsElement()) {
      if (test == "*" || c->name() == test) out->push_back(c.get());
      CollectDescendants(*c, test, out);
    }
  }
}
}  // namespace

Result<std::vector<StepResult>> BlobMapping::Step(
    rdb::Database* db, DocId doc, const NodeSet& context, xpath::Axis axis,
    const std::string& name_test) const {
  ASSIGN_OR_RETURN(CachedDoc * c, Load(db, doc));
  std::vector<StepResult> out;
  for (const Value& ctx : context) {
    size_t idx = static_cast<size_t>(ctx.AsInt());
    if (idx >= c->nodes.size()) {
      return Status::NotFound("blob node " + ctx.ToString());
    }
    const xml::Node* n = c->nodes[idx];
    std::vector<const xml::Node*> hits;
    switch (axis) {
      case xpath::Axis::kChild:
        for (const auto& ch : n->children()) {
          if (ch->IsElement() &&
              (name_test == "*" || ch->name() == name_test)) {
            hits.push_back(ch.get());
          }
        }
        break;
      case xpath::Axis::kDescendant:
        CollectDescendants(*n, name_test, &hits);
        break;
      case xpath::Axis::kAttribute:
        for (const auto& a : n->attributes()) {
          if (name_test == "*" || a->name() == name_test) {
            hits.push_back(a.get());
          }
        }
        break;
    }
    for (const xml::Node* h : hits) {
      out.push_back({ctx, Value(c->ids.at(h))});
    }
  }
  return out;
}

Result<std::vector<std::string>> BlobMapping::StringValues(
    rdb::Database* db, DocId doc, const NodeSet& nodes) const {
  ASSIGN_OR_RETURN(CachedDoc * c, Load(db, doc));
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const Value& v : nodes) {
    size_t idx = static_cast<size_t>(v.AsInt());
    if (idx >= c->nodes.size()) {
      return Status::NotFound("blob node " + v.ToString());
    }
    out.push_back(c->nodes[idx]->StringValue());
  }
  return out;
}

Result<std::unique_ptr<xml::Node>> BlobMapping::ReconstructSubtree(
    rdb::Database* db, DocId doc, const rdb::Value& node) const {
  ASSIGN_OR_RETURN(CachedDoc * c, Load(db, doc));
  size_t idx = static_cast<size_t>(node.AsInt());
  if (idx >= c->nodes.size()) {
    return Status::NotFound("blob node " + node.ToString());
  }
  return c->nodes[idx]->Clone();
}

Status BlobMapping::Flush(rdb::Database* db, DocId doc) {
  auto it = cache_.find(doc);
  if (it == cache_.end()) return Status::Internal("flush without cached doc");
  std::string text = xml::Serialize(*it->second.doc);
  RETURN_IF_ERROR(
      ExecPrepared(db, "UPDATE blob_docs SET content = ? WHERE docid = ?",
                   {Value(std::move(text)), DV(doc)})
          .status());
  // Drop the cache entry: ids were invalidated by the mutation.
  cache_.erase(it);
  return Status::OK();
}

Status BlobMapping::InsertSubtreeImpl(rdb::Database* db, DocId doc,
                                  const rdb::Value& parent,
                                  const xml::Node& subtree) {
  if (!subtree.IsElement()) {
    return Status::InvalidArgument("subtree root must be an element");
  }
  ASSIGN_OR_RETURN(CachedDoc * c, Load(db, doc));
  size_t idx = static_cast<size_t>(parent.AsInt());
  if (idx >= c->nodes.size()) {
    return Status::NotFound("blob node " + parent.ToString());
  }
  c->nodes[idx]->AddChild(subtree.Clone());
  return Flush(db, doc);
}

Status BlobMapping::DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                                  const rdb::Value& node) {
  ASSIGN_OR_RETURN(CachedDoc * c, Load(db, doc));
  size_t idx = static_cast<size_t>(node.AsInt());
  if (idx >= c->nodes.size()) {
    return Status::NotFound("blob node " + node.ToString());
  }
  xml::Node* target = c->nodes[idx];
  xml::Node* parent = target->parent();
  if (parent == nullptr) {
    return Status::InvalidArgument("cannot delete the root element");
  }
  for (size_t i = 0; i < parent->children().size(); ++i) {
    if (parent->children()[i].get() == target) {
      parent->RemoveChild(i);
      return Flush(db, doc);
    }
  }
  return Status::Internal("node not found under its parent");
}

}  // namespace xmlrdb::shred
