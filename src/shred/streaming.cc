#include "shred/streaming.h"

#include <vector>

#include "shred/dewey_mapping.h"
#include "shred/shred_util.h"
#include "xml/sax.h"

namespace xmlrdb::shred {

using rdb::Value;

namespace {

/// Builds edge rows from the token stream with only the open-element stack.
class EdgeStreamHandler : public xml::SaxHandler {
 public:
  explicit EdgeStreamHandler(DocId doc) : doc_(doc) {
    stack_.push_back({0, 1});  // document node
  }

  Status StartElement(std::string_view name) override {
    Frame& parent = stack_.back();
    int64_t id = counter_++;
    rows_.push_back({Value(doc_), Value(parent.id), Value(parent.next_ordinal++),
                     Value("elem"), Value(std::string(name)), Value(id),
                     Value::Null()});
    stack_.push_back({id, 1});
    return Status::OK();
  }

  Status Attribute(std::string_view name, std::string_view value) override {
    Frame& cur = stack_.back();
    int64_t id = counter_++;
    rows_.push_back({Value(doc_), Value(cur.id), Value(cur.next_ordinal++),
                     Value("attr"), Value(std::string(name)), Value(id),
                     Value(std::string(value))});
    return Status::OK();
  }

  Status Text(std::string_view text) override {
    Frame& cur = stack_.back();
    int64_t id = counter_++;
    rows_.push_back({Value(doc_), Value(cur.id), Value(cur.next_ordinal++),
                     Value("text"), Value::Null(), Value(id),
                     Value(std::string(text))});
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    stack_.pop_back();
    return Status::OK();
  }

  std::vector<rdb::Row> TakeRows() { return std::move(rows_); }

 private:
  struct Frame {
    int64_t id;
    int64_t next_ordinal;
  };
  DocId doc_;
  int64_t counter_ = 1;
  std::vector<Frame> stack_;
  std::vector<rdb::Row> rows_;
};

/// Dewey rows from the token stream: the Dewey key IS the stack.
class DeweyStreamHandler : public xml::SaxHandler {
 public:
  explicit DeweyStreamHandler(DocId doc) : doc_(doc) {}

  Status StartElement(std::string_view name) override {
    std::string dewey;
    int64_t level;
    if (stack_.empty()) {
      dewey = DeweyComponent(1);
      level = 1;
    } else {
      dewey = DeweyChild(stack_.back().dewey, stack_.back().next_slot++);
      level = stack_.back().level + 1;
    }
    rows_.push_back({Value(doc_), Value(dewey), Value(level), Value("elem"),
                     Value(std::string(name)), Value::Null()});
    stack_.push_back({std::move(dewey), level, 1});
    return Status::OK();
  }

  Status Attribute(std::string_view name, std::string_view value) override {
    Frame& cur = stack_.back();
    rows_.push_back({Value(doc_), Value(DeweyChild(cur.dewey, cur.next_slot++)),
                     Value(cur.level + 1), Value("attr"),
                     Value(std::string(name)), Value(std::string(value))});
    return Status::OK();
  }

  Status Text(std::string_view text) override {
    Frame& cur = stack_.back();
    rows_.push_back({Value(doc_), Value(DeweyChild(cur.dewey, cur.next_slot++)),
                     Value(cur.level + 1), Value("text"), Value::Null(),
                     Value(std::string(text))});
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    stack_.pop_back();
    return Status::OK();
  }

  std::vector<rdb::Row> TakeRows() { return std::move(rows_); }

 private:
  struct Frame {
    std::string dewey;
    int64_t level;
    int64_t next_slot;
  };
  DocId doc_;
  std::vector<Frame> stack_;
  std::vector<rdb::Row> rows_;
};

}  // namespace

Result<DocId> StreamStoreEdge(std::string_view xml, rdb::Database* db) {
  rdb::Table* t = db->FindTable("edge");
  if (t == nullptr) {
    return Status::NotFound("edge table missing (run EdgeMapping::Initialize)");
  }
  ASSIGN_OR_RETURN(int64_t docid, NextIdFromMax(db, "edge", "docid"));
  EdgeStreamHandler handler(docid);
  RETURN_IF_ERROR(xml::ParseSax(xml, &handler));
  RETURN_IF_ERROR(t->InsertMany(handler.TakeRows()));
  return docid;
}

Result<DocId> StreamStoreDewey(std::string_view xml, rdb::Database* db) {
  rdb::Table* t = db->FindTable("dw_nodes");
  if (t == nullptr) {
    return Status::NotFound(
        "dw_nodes table missing (run DeweyMapping::Initialize)");
  }
  ASSIGN_OR_RETURN(int64_t docid, NextIdFromMax(db, "dw_nodes", "docid"));
  DeweyStreamHandler handler(docid);
  RETURN_IF_ERROR(xml::ParseSax(xml, &handler));
  RETURN_IF_ERROR(t->InsertMany(handler.TakeRows()));
  return docid;
}

}  // namespace xmlrdb::shred
