// Streaming shredders: bulk-load documents straight from the SAX token
// stream without materialising a DOM.
//
// The edge and dewey encodings are naturally streamable — both need only the
// open-element stack (pre-order ids / the Dewey path). The interval encoding
// needs subtree sizes (a post-order quantity) and is deliberately NOT
// offered here; the tutorial's point that trees are hard to stream and token
// streams are not is exactly this asymmetry.

#ifndef XMLRDB_SHRED_STREAMING_H_
#define XMLRDB_SHRED_STREAMING_H_

#include <string_view>

#include "common/status.h"
#include "rdb/database.h"
#include "shred/mapping.h"

namespace xmlrdb::shred {

/// Shreds XML text directly into the edge table (which must exist:
/// EdgeMapping::Initialize). Produces rows identical to
/// EdgeMapping::Store(Parse(xml)).
Result<DocId> StreamStoreEdge(std::string_view xml, rdb::Database* db);

/// Shreds XML text directly into dw_nodes (DeweyMapping::Initialize first).
/// Produces rows identical to DeweyMapping::Store(Parse(xml)).
Result<DocId> StreamStoreDewey(std::string_view xml, rdb::Database* db);

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_STREAMING_H_
