#include "shred/edge_mapping.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "shred/shred_util.h"

namespace xmlrdb::shred {

using rdb::DataType;
using rdb::QueryResult;
using rdb::Value;

namespace {
std::string Ctx() { return ScratchName("_edge_ctx"); }
std::string Frontier() { return ScratchName("_edge_frontier"); }

std::string D(DocId doc) { return std::to_string(doc); }
Value DV(DocId doc) { return Value(static_cast<int64_t>(doc)); }
}  // namespace

Status EdgeMapping::Initialize(rdb::Database* db) {
  RETURN_IF_ERROR(db->Execute("CREATE TABLE edge ("
                              "docid INTEGER NOT NULL, "
                              "source INTEGER NOT NULL, "
                              "ordinal INTEGER NOT NULL, "
                              "kind VARCHAR NOT NULL, "
                              "name VARCHAR, "
                              "target INTEGER NOT NULL, "
                              "value VARCHAR)")
                      .status());
  RETURN_IF_ERROR(
      db->Execute("CREATE INDEX edge_src ON edge (docid, source, ordinal)")
          .status());
  RETURN_IF_ERROR(
      db->Execute("CREATE INDEX edge_name ON edge (docid, name)").status());
  RETURN_IF_ERROR(
      db->Execute("CREATE INDEX edge_tgt ON edge (docid, target)").status());
  return Status::OK();
}

namespace {

/// Pre-order shredding walk. Attributes are numbered before children.
void ShredNode(const xml::Node& n, DocId doc, int64_t parent, int64_t* counter,
               std::vector<rdb::Row>* rows) {
  int64_t ordinal = 1;
  // Attributes first.
  for (const auto& a : n.attributes()) {
    int64_t id = (*counter)++;
    rows->push_back({Value(doc), Value(parent), Value(ordinal++), Value("attr"),
                     Value(a->name()), Value(id), Value(a->value())});
  }
  for (const auto& c : n.children()) {
    switch (c->kind()) {
      case xml::NodeKind::kElement: {
        int64_t id = (*counter)++;
        rows->push_back({Value(doc), Value(parent), Value(ordinal++),
                         Value("elem"), Value(c->name()), Value(id),
                         Value::Null()});
        // Recurse with the child's own id as the parent.
        ShredNode(*c, doc, id, counter, rows);
        break;
      }
      case xml::NodeKind::kText: {
        int64_t id = (*counter)++;
        rows->push_back({Value(doc), Value(parent), Value(ordinal++),
                         Value("text"), Value::Null(), Value(id),
                         Value(c->value())});
        break;
      }
      default:
        break;  // comments / PIs are not shredded
    }
  }
}

}  // namespace

Result<DocId> EdgeMapping::NextDocId(rdb::Database* db) const {
  return NextIdFromMax(db, "edge", "docid");
}

Result<std::vector<DocId>> EdgeMapping::ListDocIds(rdb::Database* db) const {
  return DistinctDocIds(db, "edge");
}

Status EdgeMapping::StoreWithId(const xml::Document& doc, DocId docid,
                                rdb::Database* db) {
  const xml::Node* root = doc.root();
  if (root == nullptr) return Status::InvalidArgument("document has no root");
  std::vector<rdb::Row> rows;
  int64_t counter = 1;
  // Root element edge from the document node (id 0).
  int64_t root_id = counter++;
  rows.push_back({Value(docid), Value(static_cast<int64_t>(0)),
                  Value(static_cast<int64_t>(1)), Value("elem"),
                  Value(root->name()), Value(root_id), Value::Null()});
  ShredNode(*root, docid, root_id, &counter, &rows);

  rdb::Table* t = db->FindTable("edge");
  if (t == nullptr) return Status::Internal("edge table missing");
  return t->InsertMany(std::move(rows));
}

Result<DocId> EdgeMapping::StoreImpl(const xml::Document& doc, rdb::Database* db) {
  ASSIGN_OR_RETURN(DocId docid, NextDocId(db));
  RETURN_IF_ERROR(StoreWithId(doc, docid, db));
  return docid;
}

Status EdgeMapping::RemoveImpl(DocId doc, rdb::Database* db) {
  return ExecPrepared(db, "DELETE FROM edge WHERE docid = ?", {DV(doc)})
      .status();
}

Result<Value> EdgeMapping::RootElement(rdb::Database* db, DocId doc) const {
  ASSIGN_OR_RETURN(QueryResult r,
                   ExecPrepared(db,
                                "SELECT target FROM edge WHERE docid = ? AND "
                                "source = 0 AND kind = 'elem'",
                                {DV(doc)}));
  if (r.rows.empty()) return Status::NotFound("document " + D(doc));
  return r.rows[0][0];
}

Result<NodeSet> EdgeMapping::AllElements(rdb::Database* db, DocId doc,
                                         const std::string& name_test) const {
  QueryResult r;
  if (name_test != "*") {
    ASSIGN_OR_RETURN(r, ExecPrepared(db,
                                     "SELECT target FROM edge WHERE docid = ? "
                                     "AND kind = 'elem' AND name = ? "
                                     "ORDER BY target",
                                     {DV(doc), Value(name_test)}));
  } else {
    ASSIGN_OR_RETURN(r, ExecPrepared(db,
                                     "SELECT target FROM edge WHERE docid = ? "
                                     "AND kind = 'elem' ORDER BY target",
                                     {DV(doc)}));
  }
  NodeSet out;
  out.reserve(r.rows.size());
  for (auto& row : r.rows) out.push_back(row[0]);
  return out;
}

Result<std::vector<StepResult>> EdgeMapping::Step(
    rdb::Database* db, DocId doc, const NodeSet& context, xpath::Axis axis,
    const std::string& name_test) const {
  std::vector<StepResult> out;
  if (context.empty()) return out;

  if (axis == xpath::Axis::kChild || axis == xpath::Axis::kAttribute) {
    RETURN_IF_ERROR(LoadContextTable(db, Ctx(), DataType::kInt, context));
    // One statement shape per (axis kind, wildcard-ness); the varying doc id,
    // node kind and name test are `?` parameters, so every step over this
    // axis reuses a cached plan.
    std::vector<Value> params{DV(doc),
                              Value(axis == xpath::Axis::kAttribute ? "attr"
                                                                    : "elem")};
    std::string sql = "SELECT c.id, e.target FROM " + Ctx() +
                      " c JOIN edge e ON e.source = c.id WHERE e.docid = ?" +
                      " AND e.kind = ?";
    if (name_test != "*") {
      sql += " AND e.name = ?";
      params.push_back(Value(name_test));
    }
    sql += " ORDER BY c.id, e.ordinal";
    ASSIGN_OR_RETURN(QueryResult r, ExecPrepared(db, sql, std::move(params)));
    out.reserve(r.rows.size());
    for (auto& row : r.rows) out.push_back({row[0], row[1]});
    return out;
  }

  // Descendant: semi-naive frontier expansion, tracking the originating
  // context so the evaluator can group results.
  std::vector<std::pair<Value, Value>> frontier;
  frontier.reserve(context.size());
  for (const Value& c : context) frontier.emplace_back(c, c);
  while (!frontier.empty()) {
    RETURN_IF_ERROR(LoadFrontierTable(db, Frontier(), DataType::kInt, frontier));
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT f.origin, e.target, e.name FROM " + Frontier() +
                         " f JOIN edge e ON e.source = f.id WHERE e.docid = ?"
                         " AND e.kind = 'elem' ORDER BY f.origin, e.target",
                     {DV(doc)}));
    frontier.clear();
    for (auto& row : r.rows) {
      if (name_test == "*" ||
          (!row[2].is_null() && row[2].AsString() == name_test)) {
        out.push_back({row[0], row[1]});
      }
      frontier.emplace_back(row[0], row[1]);
    }
  }
  // Group by context input order, node id within.
  std::unordered_map<int64_t, size_t> ctx_pos;
  for (size_t i = 0; i < context.size(); ++i) ctx_pos[context[i].AsInt()] = i;
  std::stable_sort(out.begin(), out.end(),
                   [&](const StepResult& a, const StepResult& b) {
                     size_t pa = ctx_pos[a.context.AsInt()];
                     size_t pb = ctx_pos[b.context.AsInt()];
                     if (pa != pb) return pa < pb;
                     return a.node.AsInt() < b.node.AsInt();
                   });
  return out;
}

Result<std::vector<std::string>> EdgeMapping::StringValues(
    rdb::Database* db, DocId doc, const NodeSet& nodes) const {
  std::vector<std::string> out(nodes.size());
  if (nodes.empty()) return out;
  std::unordered_map<int64_t, size_t> pos;
  for (size_t i = 0; i < nodes.size(); ++i) pos[nodes[i].AsInt()] = i;

  // Direct values: attributes (and text nodes, should they be passed).
  RETURN_IF_ERROR(LoadContextTable(db, Ctx(), DataType::kInt, nodes));
  ASSIGN_OR_RETURN(
      QueryResult kinds,
      ExecPrepared(db,
                   "SELECT c.id, e.kind, e.value FROM " + Ctx() +
                       " c JOIN edge e ON e.target = c.id WHERE e.docid = ?",
                   {DV(doc)}));
  std::vector<std::pair<Value, Value>> frontier;
  for (auto& row : kinds.rows) {
    const std::string& kind = row[1].AsString();
    if (kind == "attr" || kind == "text") {
      out[pos[row[0].AsInt()]] = row[2].is_null() ? "" : row[2].AsString();
    } else {
      frontier.emplace_back(row[0], row[0]);
    }
  }
  // Elements: collect descendant text via expansion; concatenate by node id
  // (document order).
  std::vector<std::pair<int64_t, std::pair<int64_t, std::string>>> texts;
  while (!frontier.empty()) {
    RETURN_IF_ERROR(LoadFrontierTable(db, Frontier(), DataType::kInt, frontier));
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT f.origin, e.target, e.kind, e.value FROM " +
                         Frontier() +
                         " f JOIN edge e ON e.source = f.id WHERE e.docid = ?"
                         " AND e.kind <> 'attr'",
                     {DV(doc)}));
    frontier.clear();
    for (auto& row : r.rows) {
      if (row[2].AsString() == "text") {
        texts.push_back({row[0].AsInt(),
                         {row[1].AsInt(),
                          row[3].is_null() ? "" : row[3].AsString()}});
      } else {
        frontier.emplace_back(row[0], row[1]);
      }
    }
  }
  std::sort(texts.begin(), texts.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.first < b.second.first;
            });
  for (auto& [origin, t] : texts) out[pos[origin]] += t.second;
  return out;
}

Result<std::unique_ptr<xml::Node>> EdgeMapping::ReconstructSubtree(
    rdb::Database* db, DocId doc, const rdb::Value& node) const {
  // Fetch the node's own row for its name/kind.
  ASSIGN_OR_RETURN(
      QueryResult self,
      ExecPrepared(db,
                   "SELECT kind, name, value FROM edge WHERE docid = ? AND "
                   "target = ?",
                   {DV(doc), node}));
  if (self.rows.empty()) return Status::NotFound("node " + node.ToString());
  const std::string kind = self.rows[0][0].AsString();
  if (kind == "text") {
    return std::make_unique<xml::Node>(xml::NodeKind::kText, "",
                                       self.rows[0][2].AsString());
  }
  if (kind == "attr") {
    return std::make_unique<xml::Node>(xml::NodeKind::kAttribute,
                                       self.rows[0][1].AsString(),
                                       self.rows[0][2].AsString());
  }
  auto root = std::make_unique<xml::Node>(xml::NodeKind::kElement,
                                          self.rows[0][1].AsString());
  // Level-order expansion gathering all subtree rows, then assemble.
  struct EdgeRow {
    int64_t ordinal;
    std::string kind;
    std::string name;
    int64_t target;
    std::string value;
    bool value_null;
  };
  std::map<int64_t, std::vector<EdgeRow>> children;  // source -> rows
  std::vector<std::pair<Value, Value>> frontier{{node, node}};
  while (!frontier.empty()) {
    RETURN_IF_ERROR(LoadFrontierTable(db, Frontier(), DataType::kInt, frontier));
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT e.source, e.ordinal, e.kind, e.name, e.target, "
                     "e.value FROM " +
                         Frontier() +
                         " f JOIN edge e ON e.source = f.id WHERE e.docid = ?",
                     {DV(doc)}));
    frontier.clear();
    for (auto& row : r.rows) {
      EdgeRow er;
      er.ordinal = row[1].AsInt();
      er.kind = row[2].AsString();
      er.name = row[3].is_null() ? "" : row[3].AsString();
      er.target = row[4].AsInt();
      er.value_null = row[5].is_null();
      er.value = er.value_null ? "" : row[5].AsString();
      if (er.kind == "elem") {
        frontier.emplace_back(Value(er.target), Value(er.target));
      }
      children[row[0].AsInt()].push_back(std::move(er));
    }
  }
  // Assemble recursively.
  struct Assembler {
    std::map<int64_t, std::vector<EdgeRow>>* children;
    void Build(xml::Node* el, int64_t id) {
      auto it = children->find(id);
      if (it == children->end()) return;
      std::sort(it->second.begin(), it->second.end(),
                [](const EdgeRow& a, const EdgeRow& b) {
                  return a.ordinal < b.ordinal;
                });
      for (const EdgeRow& er : it->second) {
        if (er.kind == "attr") {
          el->SetAttr(er.name, er.value);
        } else if (er.kind == "text") {
          el->AddText(er.value);
        } else {
          xml::Node* child = el->AddElement(er.name);
          Build(child, er.target);
        }
      }
    }
  };
  Assembler a{&children};
  a.Build(root.get(), node.AsInt());
  return root;
}

Result<NodeSet> EdgeMapping::SubtreeIds(rdb::Database* db, DocId doc,
                                        const rdb::Value& node) const {
  NodeSet ids{node};
  std::vector<std::pair<Value, Value>> frontier{{node, node}};
  while (!frontier.empty()) {
    RETURN_IF_ERROR(LoadFrontierTable(db, Frontier(), DataType::kInt, frontier));
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT e.target, e.kind FROM " + Frontier() +
                         " f JOIN edge e ON e.source = f.id WHERE e.docid = ?",
                     {DV(doc)}));
    frontier.clear();
    for (auto& row : r.rows) {
      ids.push_back(row[0]);
      if (row[1].AsString() == "elem") {
        frontier.emplace_back(row[0], row[0]);
      }
    }
  }
  return ids;
}

Status EdgeMapping::InsertSubtreeImpl(rdb::Database* db, DocId doc,
                                  const rdb::Value& parent,
                                  const xml::Node& subtree) {
  if (!subtree.IsElement()) {
    return Status::InvalidArgument("subtree root must be an element");
  }
  ASSIGN_OR_RETURN(QueryResult maxq,
                   ExecPrepared(db,
                                "SELECT MAX(target) FROM edge WHERE docid = ?",
                                {DV(doc)}));
  int64_t counter =
      (maxq.rows.empty() || maxq.rows[0][0].is_null()) ? 1
                                                       : maxq.rows[0][0].AsInt() + 1;
  ASSIGN_OR_RETURN(
      QueryResult ordq,
      ExecPrepared(db,
                   "SELECT MAX(ordinal) FROM edge WHERE docid = ? AND "
                   "source = ?",
                   {DV(doc), parent}));
  int64_t ordinal =
      (ordq.rows.empty() || ordq.rows[0][0].is_null()) ? 1
                                                       : ordq.rows[0][0].AsInt() + 1;
  std::vector<rdb::Row> rows;
  int64_t root_id = counter++;
  rows.push_back({Value(doc), parent, Value(ordinal), Value("elem"),
                  Value(subtree.name()), Value(root_id), Value::Null()});
  ShredNode(subtree, doc, root_id, &counter, &rows);
  rdb::Table* t = db->FindTable("edge");
  if (t == nullptr) return Status::Internal("edge table missing");
  return t->InsertMany(std::move(rows));
}

Status EdgeMapping::DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                                  const rdb::Value& node) {
  ASSIGN_OR_RETURN(NodeSet ids, SubtreeIds(db, doc, node));
  RETURN_IF_ERROR(LoadContextTable(db, Ctx(), DataType::kInt, ids));
  // Delete every edge row whose target is in the subtree. (Each node has
  // exactly one incoming edge row, so this removes the whole subtree.)
  rdb::Table* edge = db->FindTable("edge");
  const rdb::Index* tgt = edge->FindIndex("edge_tgt");
  for (const Value& id : ids) {
    std::vector<rdb::RowId> rids = tgt->LookupEqual({Value(doc), id});
    for (rdb::RowId rid : rids) RETURN_IF_ERROR(edge->Delete(rid));
  }
  return Status::OK();
}

Result<std::string> EdgeMapping::TranslatePathToSql(
    DocId doc, const xpath::PathExpr& path) const {
  // Child-only, predicate-free paths become an n-way self join; each step i
  // joins alias e<i> with e<i-1> on source = target.
  if (path.HasDescendant()) {
    return Status::Unsupported(
        "edge mapping: '//' needs transitive closure (not a single statement)");
  }
  if (!path.PredicateFree()) {
    return Status::Unsupported("edge mapping: SQL translation of predicates");
  }
  std::string select;
  std::string from;
  std::string where;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const auto& step = path.steps[i];
    std::string alias = "e" + std::to_string(i);
    if (i > 0) from += ", ";
    from += "edge " + alias;
    if (!where.empty()) where += " AND ";
    where += alias + ".docid = " + D(doc);
    where += " AND " + alias + ".kind = '" +
             (step.axis == xpath::Axis::kAttribute ? "attr" : "elem") + "'";
    if (!step.IsWildcard()) {
      where += " AND " + alias + ".name = " + SqlLiteral(Value(step.name));
    }
    if (i == 0) {
      where += " AND " + alias + ".source = 0";
    } else {
      where += " AND " + alias + ".source = e" + std::to_string(i - 1) + ".target";
    }
    select = "SELECT " + alias + ".target FROM ";
  }
  return select + from + " WHERE " + where + " ORDER BY e" +
         std::to_string(path.steps.size() - 1) + ".target";
}

}  // namespace xmlrdb::shred
