#include "shred/dewey_mapping.h"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <unordered_map>

#include "common/str_util.h"
#include "shred/shred_util.h"

namespace xmlrdb::shred {

using rdb::DataType;
using rdb::QueryResult;
using rdb::Value;

namespace {
std::string Ctx() { return ScratchName("_dw_ctx"); }

std::string D(DocId doc) { return std::to_string(doc); }
Value DV(DocId doc) { return Value(static_cast<int64_t>(doc)); }
}  // namespace

std::string DeweyComponent(int64_t ordinal) {
  if (ordinal <= 999999) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%06lld", static_cast<long long>(ordinal));
    return buf;
  }
  // Order-preserving escape for wide ordinals: ':' sorts after every digit,
  // and the digit-count excess makes longer numbers sort after shorter ones;
  // equal-width numbers then compare lexicographically = numerically.
  std::string digits = std::to_string(ordinal);
  std::string out = ":";
  out += static_cast<char>('0' + (digits.size() - 7));
  out += digits;
  return out;
}

Result<int64_t> DeweyComponentOrdinal(const std::string& component) {
  std::string_view digits = component;
  if (!component.empty() && component[0] == ':') {
    // Escaped wide ordinal ":<excess><digits>"; the excess byte encodes
    // digits.size() - 7 (see DeweyComponent).
    if (component.size() < 3) {
      return Status::ParseError("corrupt dewey component '" + component +
                                "': truncated escape");
    }
    digits.remove_prefix(2);
    int excess = component[1] - '0';
    if (excess < 0 || digits.size() != static_cast<size_t>(excess) + 7) {
      return Status::ParseError("corrupt dewey component '" + component +
                                "': escape width disagrees with digits");
    }
  } else if (component.size() != 6) {
    return Status::ParseError("corrupt dewey component '" + component +
                              "': expected 6 digits");
  }
  // ParseInt64 rejects empty input, non-digit bytes, and overflow — the
  // failure modes the old unchecked strtoll call decoded to 0 or a
  // clamped INT64_MAX.
  auto ordinal = ParseInt64(digits);
  if (!ordinal.ok()) {
    return Status::ParseError("corrupt dewey component '" + component +
                              "': " + ordinal.status().message());
  }
  if (ordinal.value() < 1) {
    return Status::ParseError("corrupt dewey component '" + component +
                              "': ordinals are 1-based");
  }
  return ordinal.value();
}

std::string DeweyChild(const std::string& parent, int64_t ordinal) {
  if (parent.empty()) return DeweyComponent(ordinal);
  return parent + "." + DeweyComponent(ordinal);
}

Status DeweyMapping::Initialize(rdb::Database* db) {
  RETURN_IF_ERROR(db->Execute("CREATE TABLE dw_nodes ("
                              "docid INTEGER NOT NULL, "
                              "dewey VARCHAR NOT NULL, "
                              "level INTEGER NOT NULL, "
                              "kind VARCHAR NOT NULL, "
                              "name VARCHAR, "
                              "value VARCHAR)")
                      .status());
  RETURN_IF_ERROR(
      db->Execute("CREATE INDEX dw_key ON dw_nodes (docid, dewey)").status());
  RETURN_IF_ERROR(
      db->Execute("CREATE INDEX dw_name ON dw_nodes (docid, name, dewey)")
          .status());
  return Status::OK();
}

namespace {

void ShredDewey(const xml::Node& n, DocId doc, const std::string& my_dewey,
                int64_t level, std::vector<rdb::Row>* rows) {
  rows->push_back({Value(doc), Value(my_dewey), Value(level), Value("elem"),
                   Value(n.name()), Value::Null()});
  int64_t slot = 1;
  for (const auto& a : n.attributes()) {
    rows->push_back({Value(doc), Value(DeweyChild(my_dewey, slot++)),
                     Value(level + 1), Value("attr"), Value(a->name()),
                     Value(a->value())});
  }
  for (const auto& c : n.children()) {
    switch (c->kind()) {
      case xml::NodeKind::kElement:
        ShredDewey(*c, doc, DeweyChild(my_dewey, slot++), level + 1, rows);
        break;
      case xml::NodeKind::kText:
        rows->push_back({Value(doc), Value(DeweyChild(my_dewey, slot++)),
                         Value(level + 1), Value("text"), Value::Null(),
                         Value(c->value())});
        break;
      default:
        break;
    }
  }
}

}  // namespace

Result<DocId> DeweyMapping::NextDocId(rdb::Database* db) const {
  return NextIdFromMax(db, "dw_nodes", "docid");
}

Result<std::vector<DocId>> DeweyMapping::ListDocIds(rdb::Database* db) const {
  return DistinctDocIds(db, "dw_nodes");
}

Status DeweyMapping::StoreWithId(const xml::Document& doc, DocId docid,
                                 rdb::Database* db) {
  const xml::Node* root = doc.root();
  if (root == nullptr) return Status::InvalidArgument("document has no root");
  std::vector<rdb::Row> rows;
  ShredDewey(*root, docid, DeweyComponent(1), 1, &rows);
  rdb::Table* t = db->FindTable("dw_nodes");
  if (t == nullptr) return Status::Internal("dw_nodes table missing");
  return t->InsertMany(std::move(rows));
}

Result<DocId> DeweyMapping::StoreImpl(const xml::Document& doc, rdb::Database* db) {
  ASSIGN_OR_RETURN(DocId docid, NextDocId(db));
  RETURN_IF_ERROR(StoreWithId(doc, docid, db));
  return docid;
}

Status DeweyMapping::RemoveImpl(DocId doc, rdb::Database* db) {
  return ExecPrepared(db, "DELETE FROM dw_nodes WHERE docid = ?", {DV(doc)})
      .status();
}

Result<Value> DeweyMapping::RootElement(rdb::Database* db, DocId doc) const {
  ASSIGN_OR_RETURN(
      QueryResult r,
      ExecPrepared(db,
                   "SELECT dewey FROM dw_nodes WHERE docid = ? AND dewey = ?",
                   {DV(doc), Value(DeweyComponent(1))}));
  if (r.rows.empty()) return Status::NotFound("document " + D(doc));
  return r.rows[0][0];
}

Result<NodeSet> DeweyMapping::AllElements(rdb::Database* db, DocId doc,
                                          const std::string& name_test) const {
  std::string sql = "SELECT dewey FROM dw_nodes WHERE docid = ? "
                    "AND kind = 'elem'";
  std::vector<Value> params{DV(doc)};
  if (name_test != "*") {
    sql += " AND name = ?";
    params.emplace_back(name_test);
  }
  sql += " ORDER BY dewey";
  ASSIGN_OR_RETURN(QueryResult r, ExecPrepared(db, sql, std::move(params)));
  NodeSet out;
  out.reserve(r.rows.size());
  for (auto& row : r.rows) out.push_back(row[0]);
  return out;
}

Result<std::vector<StepResult>> DeweyMapping::Step(
    rdb::Database* db, DocId doc, const NodeSet& context, xpath::Axis axis,
    const std::string& name_test) const {
  std::vector<StepResult> out;
  if (context.empty()) return out;
  // Fetch context levels: point lookups for small sets, one join otherwise.
  std::unordered_map<std::string, int64_t> levels;
  if (context.size() <= 8) {
    for (const Value& ctx : context) {
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT level FROM dw_nodes WHERE docid = ? "
                       "AND dewey = ?",
                       {DV(doc), ctx}));
      if (!r.rows.empty()) levels[ctx.AsString()] = r.rows[0][0].AsInt();
    }
  } else {
    RETURN_IF_ERROR(LoadContextTable(db, Ctx(), DataType::kString, context));
    ASSIGN_OR_RETURN(QueryResult li,
                     ExecPrepared(db,
                                  "SELECT c.id, n.level FROM " + Ctx() +
                                      " c JOIN dw_nodes n ON n.dewey = c.id "
                                      "WHERE n.docid = ?",
                                  {DV(doc)}));
    for (auto& row : li.rows) levels[row[0].AsString()] = row[1].AsInt();
  }

  // Large context sets: one ordered scan of candidate rows merged against
  // the sorted context key ranges (the string-keyed analogue of the interval
  // mapping's structural join). Context ranges [d+".", d+"/") are nested or
  // disjoint.
  constexpr size_t kMergeThreshold = 4;
  if (context.size() > kMergeThreshold) {
    std::string sql =
        "SELECT dewey, level FROM dw_nodes WHERE docid = ? AND kind = ?";
    std::vector<Value> params{
        DV(doc), Value(axis == xpath::Axis::kAttribute ? "attr" : "elem")};
    if (name_test != "*") {
      sql += " AND name = ?";
      params.emplace_back(name_test);
    }
    sql += " ORDER BY dewey";
    ASSIGN_OR_RETURN(QueryResult r, ExecPrepared(db, sql, std::move(params)));

    struct CtxInfo {
      std::string lower;  // d + "."
      std::string upper;  // d + "/"
      int64_t level;
    };
    std::vector<CtxInfo> info;
    info.reserve(context.size());
    bool nested = false;
    for (size_t i = 0; i < context.size(); ++i) {
      const std::string& d = context[i].AsString();
      auto lit = levels.find(d);
      if (lit == levels.end()) return Status::NotFound("dewey node " + d);
      info.push_back({d + ".", d + "/", lit->second});
      if (i > 0 && info[i].lower < info[i - 1].upper) nested = true;
    }
    std::vector<std::pair<size_t, StepResult>> hits;
    if (!nested) {
      size_t ci = 0;
      for (auto& row : r.rows) {
        const std::string& d = row[0].AsString();
        int64_t level = row[1].AsInt();
        while (ci < info.size() && info[ci].upper <= d) ++ci;
        if (ci >= info.size()) break;
        if (d <= info[ci].lower) continue;  // before this context's subtree
        if (axis != xpath::Axis::kDescendant && level != info[ci].level + 1) {
          continue;
        }
        hits.emplace_back(ci, StepResult{context[ci], row[0]});
      }
    } else {
      std::vector<size_t> stack;
      size_t next_ctx = 0;
      for (auto& row : r.rows) {
        const std::string& d = row[0].AsString();
        int64_t level = row[1].AsInt();
        while (next_ctx < info.size() && info[next_ctx].lower < d) {
          stack.push_back(next_ctx++);
        }
        while (!stack.empty() && info[stack.back()].upper <= d) stack.pop_back();
        for (size_t sc : stack) {
          if (d <= info[sc].lower || d >= info[sc].upper) continue;
          if (axis != xpath::Axis::kDescendant && level != info[sc].level + 1) {
            continue;
          }
          hits.emplace_back(sc, StepResult{context[sc], row[0]});
        }
      }
    }
    std::stable_sort(hits.begin(), hits.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    out.reserve(hits.size());
    for (auto& [ci, sr] : hits) out.push_back(std::move(sr));
    return out;
  }

  for (const Value& ctx : context) {
    auto it = levels.find(ctx.AsString());
    if (it == levels.end()) {
      return Status::NotFound("dewey node " + ctx.ToString());
    }
    const std::string& d = ctx.AsString();
    std::string sql = "SELECT dewey FROM dw_nodes WHERE docid = ? "
                      "AND dewey > ? AND dewey < ?";
    std::vector<Value> params{DV(doc), Value(d + "."), Value(d + "/")};
    switch (axis) {
      case xpath::Axis::kChild:
        sql += " AND level = ? AND kind = 'elem'";
        params.emplace_back(it->second + 1);
        break;
      case xpath::Axis::kAttribute:
        sql += " AND level = ? AND kind = 'attr'";
        params.emplace_back(it->second + 1);
        break;
      case xpath::Axis::kDescendant:
        sql += " AND kind = 'elem'";
        break;
    }
    if (name_test != "*") {
      sql += " AND name = ?";
      params.emplace_back(name_test);
    }
    sql += " ORDER BY dewey";
    ASSIGN_OR_RETURN(QueryResult r, ExecPrepared(db, sql, std::move(params)));
    for (auto& row : r.rows) out.push_back({ctx, row[0]});
  }
  return out;
}

Result<std::vector<std::string>> DeweyMapping::StringValues(
    rdb::Database* db, DocId doc, const NodeSet& nodes) const {
  std::vector<std::string> out(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const std::string& d = nodes[i].AsString();
    ASSIGN_OR_RETURN(QueryResult self,
                     ExecPrepared(db,
                                  "SELECT kind, value FROM dw_nodes "
                                  "WHERE docid = ? AND dewey = ?",
                                  {DV(doc), nodes[i]}));
    if (self.rows.empty()) continue;
    if (self.rows[0][0].AsString() != "elem") {
      out[i] = self.rows[0][1].is_null() ? "" : self.rows[0][1].AsString();
      continue;
    }
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT value FROM dw_nodes WHERE docid = ? "
                     "AND dewey > ? AND dewey < ? AND kind = 'text' "
                     "ORDER BY dewey",
                     {DV(doc), Value(d + "."), Value(d + "/")}));
    for (auto& row : r.rows) {
      if (!row[0].is_null()) out[i] += row[0].AsString();
    }
  }
  return out;
}

Result<std::unique_ptr<xml::Node>> DeweyMapping::ReconstructSubtree(
    rdb::Database* db, DocId doc, const rdb::Value& node) const {
  ASSIGN_OR_RETURN(QueryResult self,
                   ExecPrepared(db,
                                "SELECT level, kind, name, value FROM dw_nodes "
                                "WHERE docid = ? AND dewey = ?",
                                {DV(doc), node}));
  if (self.rows.empty()) return Status::NotFound("node " + node.ToString());
  int64_t root_level = self.rows[0][0].AsInt();
  const std::string kind = self.rows[0][1].AsString();
  if (kind == "text") {
    return std::make_unique<xml::Node>(xml::NodeKind::kText, "",
                                       self.rows[0][3].AsString());
  }
  if (kind == "attr") {
    return std::make_unique<xml::Node>(xml::NodeKind::kAttribute,
                                       self.rows[0][2].AsString(),
                                       self.rows[0][3].AsString());
  }
  auto root = std::make_unique<xml::Node>(xml::NodeKind::kElement,
                                          self.rows[0][2].AsString());
  const std::string& d = node.AsString();
  ASSIGN_OR_RETURN(QueryResult r,
                   ExecPrepared(db,
                                "SELECT level, kind, name, value FROM dw_nodes "
                                "WHERE docid = ? AND dewey > ? AND dewey < ? "
                                "ORDER BY dewey",
                                {DV(doc), Value(d + "."), Value(d + "/")}));
  std::vector<xml::Node*> stack{root.get()};
  std::vector<int64_t> levels{root_level};
  for (auto& row : r.rows) {
    int64_t level = row[0].AsInt();
    while (levels.back() >= level) {
      stack.pop_back();
      levels.pop_back();
    }
    xml::Node* parent = stack.back();
    const std::string& k = row[1].AsString();
    if (k == "elem") {
      xml::Node* el = parent->AddElement(row[2].AsString());
      stack.push_back(el);
      levels.push_back(level);
    } else if (k == "attr") {
      parent->SetAttr(row[2].AsString(), row[3].AsString());
    } else {
      parent->AddText(row[3].is_null() ? "" : row[3].AsString());
    }
  }
  return root;
}

Status DeweyMapping::InsertSubtreeImpl(rdb::Database* db, DocId doc,
                                   const rdb::Value& parent,
                                   const xml::Node& subtree) {
  if (!subtree.IsElement()) {
    return Status::InvalidArgument("subtree root must be an element");
  }
  const std::string& d = parent.AsString();
  ASSIGN_OR_RETURN(
      QueryResult pr,
      ExecPrepared(db,
                   "SELECT level FROM dw_nodes WHERE docid = ? AND dewey = ?",
                   {DV(doc), parent}));
  if (pr.rows.empty()) return Status::NotFound("node " + parent.ToString());
  int64_t level = pr.rows[0][0].AsInt();
  // Last used child slot: MAX over direct children.
  ASSIGN_OR_RETURN(
      QueryResult mc,
      ExecPrepared(db,
                   "SELECT MAX(dewey) FROM dw_nodes WHERE docid = ? "
                   "AND dewey > ? AND dewey < ? AND level = ?",
                   {DV(doc), Value(d + "."), Value(d + "/"),
                    Value(level + 1)}));
  int64_t next_slot = 1;
  if (!mc.rows.empty() && !mc.rows[0][0].is_null()) {
    const std::string& max_dewey = mc.rows[0][0].AsString();
    std::string comp = max_dewey.substr(max_dewey.rfind('.') + 1);
    // A corrupt stored label must fail the insert, not silently land the
    // subtree at slot 1 (= strtoll's 0 + 1) on top of an existing child.
    auto ordinal = DeweyComponentOrdinal(comp);
    if (!ordinal.ok()) {
      return ordinal.status().WithContext("dewey label '" + max_dewey + "'");
    }
    next_slot = ordinal.value() + 1;
  }
  std::vector<rdb::Row> rows;
  ShredDewey(subtree, doc, DeweyChild(d, next_slot), level + 1, &rows);
  rdb::Table* t = db->FindTable("dw_nodes");
  return t->InsertMany(std::move(rows));
}

Status DeweyMapping::DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                                   const rdb::Value& node) {
  const std::string& d = node.AsString();
  return ExecPrepared(db,
                      "DELETE FROM dw_nodes WHERE docid = ? "
                      "AND dewey >= ? AND dewey < ?",
                      {DV(doc), node, Value(d + "/")})
      .status();
}

}  // namespace xmlrdb::shred
