// Helpers shared by the relational mappings.

#ifndef XMLRDB_SHRED_SHRED_UTIL_H_
#define XMLRDB_SHRED_SHRED_UTIL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdb/database.h"
#include "shred/mapping.h"

namespace xmlrdb::shred {

/// A scratch-table name unique to the calling thread: "<base>_t<k>". The
/// mappings materialise context/frontier node sets into catalog tables while
/// evaluating a path step; a fixed name would make two threads evaluating
/// queries over the same Database clobber each other's scratch state even
/// though each individual statement is locked correctly.
std::string ScratchName(const std::string& base);

/// (Re)creates a single-column temp table `name(id <type>)` filled with `ids`.
/// Mappings use these as join partners for context node sets.
Status LoadContextTable(rdb::Database* db, const std::string& name,
                        rdb::DataType id_type, const NodeSet& ids);

/// (Re)creates a two-column temp table `name(origin <type>, id <type>)`.
Status LoadFrontierTable(rdb::Database* db, const std::string& name,
                         rdb::DataType id_type,
                         const std::vector<std::pair<rdb::Value, rdb::Value>>& rows);

/// MAX(col)+1 over `table` filtered to nothing; 1 when the table is empty.
Result<int64_t> NextIdFromMax(rdb::Database* db, const std::string& table,
                              const std::string& col);

/// The distinct docids present in `table`, ascending. Backs the mappings'
/// ListDocIds (each names its own bookkeeping or node table).
Result<std::vector<DocId>> DistinctDocIds(rdb::Database* db,
                                          const std::string& table);

/// Runs `sql` through the database's prepared-statement path, binding
/// `params` to its `?` placeholders. The parse and (for SELECTs) the
/// compiled plan are cached by SQL text, so a mapping that executes the
/// same statement shape per path step pays for parsing and planning once
/// per shape instead of once per step.
Result<rdb::QueryResult> ExecPrepared(rdb::Database* db, const std::string& sql,
                                      std::vector<rdb::Value> params = {});

/// Escapes a value for direct inclusion in generated SQL text.
std::string SqlLiteral(const rdb::Value& v);

/// Sanitizes an XML name for use as a SQL table/column fragment:
/// [A-Za-z0-9_] kept, others become '_'; result is never empty and never
/// starts with a digit.
std::string SanitizeName(const std::string& name);

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_SHRED_UTIL_H_
