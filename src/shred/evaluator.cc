#include "shred/evaluator.h"

#include <algorithm>
#include <map>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "xpath/dom_eval.h"

namespace xmlrdb::shred {

namespace {

using rdb::Value;
using xpath::Axis;
using xpath::Predicate;

/// Mapping::Step wrapped in a per-axis trace span and latency histogram
/// ("xpath.step.<axis>.latency_us").
Result<std::vector<StepResult>> TimedStep(Mapping* mapping, rdb::Database* db,
                                          DocId doc, const NodeSet& context,
                                          Axis axis,
                                          const std::string& name_test) {
  const char* axis_name = xpath::AxisName(axis);
  ScopedSpan span(std::string("xpath.step.") + axis_name, "xpath");
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (!reg.enabled()) {
    return mapping->Step(db, doc, context, axis, name_test);
  }
  Stopwatch timer;
  auto out = mapping->Step(db, doc, context, axis, name_test);
  reg.RecordLatency(std::string("xpath.step.") + axis_name + ".latency_us",
                    static_cast<int64_t>(timer.ElapsedMicros()));
  return out;
}

/// Sorts and deduplicates a node set by the mapping's natural id order
/// (document order for the order-preserving mappings).
void Normalize(NodeSet* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  nodes->erase(std::unique(nodes->begin(), nodes->end(),
                           [](const Value& a, const Value& b) {
                             return a.Compare(b) == 0;
                           }),
               nodes->end());
}

/// Evaluates a predicate relative path from every candidate, returning for
/// each candidate index the string values the path reaches.
Result<std::vector<std::vector<std::string>>> EvalRelPath(
    const xpath::RelPath& rel, const NodeSet& candidates, Mapping* mapping,
    rdb::Database* db, DocId doc) {
  // frontier: (candidate index, node)
  std::vector<std::pair<size_t, Value>> frontier;
  frontier.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    frontier.emplace_back(i, candidates[i]);
  }
  for (const auto& rs : rel.steps) {
    if (frontier.empty()) break;
    // Unique context nodes for the batched step call.
    NodeSet ctx;
    ctx.reserve(frontier.size());
    for (const auto& [idx, node] : frontier) ctx.push_back(node);
    Normalize(&ctx);
    ASSIGN_OR_RETURN(std::vector<StepResult> step,
                     TimedStep(mapping, db, doc, ctx,
                               rs.attribute ? Axis::kAttribute : Axis::kChild,
                               rs.name));
    // node -> produced children
    std::map<std::string, std::vector<Value>> by_ctx;
    for (const auto& sr : step) by_ctx[sr.context.ToString()].push_back(sr.node);
    std::vector<std::pair<size_t, Value>> next;
    for (const auto& [idx, node] : frontier) {
      auto it = by_ctx.find(node.ToString());
      if (it == by_ctx.end()) continue;
      for (const Value& child : it->second) next.emplace_back(idx, child);
    }
    frontier = std::move(next);
  }
  std::vector<std::vector<std::string>> out(candidates.size());
  if (frontier.empty()) return out;
  NodeSet finals;
  finals.reserve(frontier.size());
  for (const auto& [idx, node] : frontier) finals.push_back(node);
  ASSIGN_OR_RETURN(std::vector<std::string> values,
                   mapping->StringValues(db, doc, finals));
  for (size_t i = 0; i < frontier.size(); ++i) {
    out[frontier[i].first].push_back(values[i]);
  }
  return out;
}

/// Applies a step's predicates to one context group, appending survivors.
Status FilterGroup(const std::vector<Predicate>& preds,
                   const std::vector<Value>& group, Mapping* mapping,
                   rdb::Database* db, DocId doc, NodeSet* out) {
  std::vector<bool> keep(group.size(), true);
  for (const auto& pred : preds) {
    switch (pred.kind) {
      case Predicate::Kind::kPosition:
        for (size_t i = 0; i < group.size(); ++i) {
          if (static_cast<int64_t>(i + 1) != pred.position) keep[i] = false;
        }
        break;
      case Predicate::Kind::kLast:
        for (size_t i = 0; i + 1 < group.size(); ++i) keep[i] = false;
        break;
      case Predicate::Kind::kExists:
      case Predicate::Kind::kValueCmp: {
        // Evaluate only for still-alive candidates.
        NodeSet alive;
        std::vector<size_t> alive_idx;
        for (size_t i = 0; i < group.size(); ++i) {
          if (keep[i]) {
            alive.push_back(group[i]);
            alive_idx.push_back(i);
          }
        }
        if (alive.empty()) break;
        ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> values,
                         EvalRelPath(pred.rel, alive, mapping, db, doc));
        for (size_t a = 0; a < alive.size(); ++a) {
          bool ok;
          if (pred.kind == Predicate::Kind::kExists) {
            ok = !values[a].empty();
          } else {
            ok = std::any_of(values[a].begin(), values[a].end(),
                             [&](const std::string& v) {
                               return xpath::CompareNodeValue(v, pred.op,
                                                              pred.literal);
                             });
          }
          if (!ok) keep[alive_idx[a]] = false;
        }
        break;
      }
    }
  }
  for (size_t i = 0; i < group.size(); ++i) {
    if (keep[i]) out->push_back(group[i]);
  }
  return Status::OK();
}

}  // namespace

namespace {

/// Condenses a metrics delta into per-query stats. Statement counts come
/// from "sql.statements"; tables touched counts distinct "table.<t>.scans"
/// counters that moved; rows scanned from "exec.rows_scanned".
EvalStats StatsFromDelta(const MetricsSnapshot& delta) {
  EvalStats out;
  for (const auto& [name, value] : delta) {
    if (name == "sql.statements") {
      out.sql_statements = value;
    } else if (name == "exec.rows_scanned") {
      out.rows_scanned = value;
    } else if (name.rfind("table.", 0) == 0 &&
               name.size() > 6 + 6 &&
               name.compare(name.size() - 6, 6, ".scans") == 0) {
      ++out.tables_touched;
    }
  }
  return out;
}

Result<NodeSet> EvalPathImpl(const xpath::PathExpr& path, Mapping* mapping,
                             rdb::Database* db, DocId doc) {
  NodeSet current;
  bool first = true;
  for (const auto& step : path.steps) {
    // Per-context candidate groups for this step.
    std::vector<std::vector<Value>> groups;
    if (first) {
      first = false;
      ScopedSpan head_span(
          std::string("xpath.step.") + xpath::AxisName(step.axis), "xpath");
      switch (step.axis) {
        case Axis::kChild: {
          // The document node has exactly one element child: the root.
          ASSIGN_OR_RETURN(Value root, mapping->RootElement(db, doc));
          ASSIGN_OR_RETURN(NodeSet named,
                           mapping->AllElements(db, doc, step.name));
          std::vector<Value> group;
          for (const Value& v : named) {
            if (v.Compare(root) == 0) group.push_back(v);
          }
          groups.push_back(std::move(group));
          break;
        }
        case Axis::kDescendant: {
          ASSIGN_OR_RETURN(NodeSet all, mapping->AllElements(db, doc, step.name));
          groups.push_back(std::move(all));
          break;
        }
        case Axis::kAttribute:
          // The document node has no attributes: /@x selects nothing.
          groups.emplace_back();
          break;
      }
    } else {
      ASSIGN_OR_RETURN(std::vector<StepResult> results,
                       TimedStep(mapping, db, doc, current, step.axis,
                                 step.name));
      // Split into per-context groups (results arrive grouped).
      std::vector<Value> group;
      const Value* cur_ctx = nullptr;
      for (const auto& sr : results) {
        if (cur_ctx == nullptr || sr.context.Compare(*cur_ctx) != 0) {
          if (!group.empty()) groups.push_back(std::move(group));
          group.clear();
          cur_ctx = &sr.context;
        }
        group.push_back(sr.node);
      }
      if (!group.empty()) groups.push_back(std::move(group));
    }

    NodeSet next;
    for (const auto& g : groups) {
      if (step.predicates.empty()) {
        next.insert(next.end(), g.begin(), g.end());
      } else {
        RETURN_IF_ERROR(
            FilterGroup(step.predicates, g, mapping, db, doc, &next));
      }
    }
    Normalize(&next);
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

}  // namespace

Result<NodeSet> EvalPath(const xpath::PathExpr& path, Mapping* mapping,
                         rdb::Database* db, DocId doc, EvalStats* stats) {
  ScopedSpan span("xpath.query", "xpath");
  MetricsRegistry& reg = MetricsRegistry::Global();
  Stopwatch timer;
  Result<NodeSet> result = [&]() -> Result<NodeSet> {
    // One pinned snapshot covers every SQL statement of the evaluation, so
    // the whole multi-statement path sees a single consistent database state
    // even while writers commit concurrently. A non-transient DDL committed
    // mid-path invalidates the pin (TxnError); retry on a fresh snapshot —
    // DDL on mapping tables is rare, so a few attempts suffice.
    constexpr int kMaxAttempts = 5;
    for (int attempt = 0;; ++attempt) {
      rdb::ReadSnapshot snapshot(db);
      Result<NodeSet> inner = [&]() -> Result<NodeSet> {
        if (stats == nullptr) return EvalPathImpl(path, mapping, db, doc);
        ScopedMetricsCapture capture;
        auto r = EvalPathImpl(path, mapping, db, doc);
        *stats = StatsFromDelta(capture.Delta());
        return r;
      }();
      if (inner.ok() || inner.status().code() != StatusCode::kTxnError ||
          attempt + 1 >= kMaxAttempts) {
        return inner;
      }
    }
  }();
  if (reg.enabled()) {
    reg.RecordLatency("mapping." + mapping->name() + ".query_us",
                      static_cast<int64_t>(timer.ElapsedMicros()));
  }
  return result;
}

Result<std::vector<std::string>> EvalPathStrings(const xpath::PathExpr& path,
                                                 Mapping* mapping,
                                                 rdb::Database* db, DocId doc) {
  ASSIGN_OR_RETURN(NodeSet nodes, EvalPath(path, mapping, db, doc));
  return mapping->StringValues(db, doc, nodes);
}

}  // namespace xmlrdb::shred
