#include "shred/registry.h"

#include "shred/binary_mapping.h"
#include "shred/blob_mapping.h"
#include "shred/dewey_mapping.h"
#include "shred/edge_mapping.h"
#include "shred/interval_mapping.h"

namespace xmlrdb::shred {

Result<std::unique_ptr<Mapping>> CreateMapping(const std::string& name) {
  if (name == "edge") return std::unique_ptr<Mapping>(new EdgeMapping());
  if (name == "binary") return std::unique_ptr<Mapping>(new BinaryMapping());
  if (name == "interval") return std::unique_ptr<Mapping>(new IntervalMapping());
  if (name == "dewey") return std::unique_ptr<Mapping>(new DeweyMapping());
  if (name == "blob") return std::unique_ptr<Mapping>(new BlobMapping());
  return Status::NotFound("unknown mapping '" + name + "'");
}

std::vector<std::unique_ptr<Mapping>> CreateGenericMappings() {
  std::vector<std::unique_ptr<Mapping>> out;
  for (const std::string& name : GenericMappingNames()) {
    out.push_back(std::move(CreateMapping(name)).value());
  }
  return out;
}

std::vector<std::string> GenericMappingNames() {
  return {"edge", "binary", "interval", "dewey", "blob"};
}

}  // namespace xmlrdb::shred
