// Factory helpers over the mapping implementations.

#ifndef XMLRDB_SHRED_REGISTRY_H_
#define XMLRDB_SHRED_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "shred/mapping.h"

namespace xmlrdb::shred {

/// Creates a mapping by name: "edge", "binary", "interval", "dewey", "blob".
/// ("inline" requires a DTD; construct InlineMapping directly.)
Result<std::unique_ptr<Mapping>> CreateMapping(const std::string& name);

/// All schema-oblivious mappings (everything except inline).
std::vector<std::unique_ptr<Mapping>> CreateGenericMappings();

/// Names accepted by CreateMapping.
std::vector<std::string> GenericMappingNames();

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_REGISTRY_H_
