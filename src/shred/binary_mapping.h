// Binary mapping (Florescu & Kossmann 1999): the edge table horizontally
// partitioned by label.
//
//   be_<name>(docid, source, ordinal, target)          one per element label
//   ba_<name>(docid, source, ordinal, target, value)   one per attribute label
//   bt_text  (docid, source, ordinal, target, value)   all text nodes
//   bin_labels(name, kind, tbl)                        partition catalog
//   bin_docs  (docid, root, root_name, max_id)         per-document bookkeeping
//
// Name-selective path steps touch exactly one small table (the partition-
// pruning win over Edge); wildcard steps and reconstruction must visit every
// partition (the corresponding loss). Node ids are assigned pre-order, as in
// the edge mapping.

#ifndef XMLRDB_SHRED_BINARY_MAPPING_H_
#define XMLRDB_SHRED_BINARY_MAPPING_H_

#include <map>

#include "shred/mapping.h"

namespace xmlrdb::shred {

class BinaryMapping : public Mapping {
 public:
  std::string name() const override { return "binary"; }

  Status Initialize(rdb::Database* db) override;
  Result<DocId> StoreImpl(const xml::Document& doc, rdb::Database* db) override;
  // Caller-assigned ids for the shard router. Stores still run one at a
  // time (SupportsParallelStore stays false: shredding may CREATE new
  // partition tables).
  Result<DocId> NextDocId(rdb::Database* db) const override;
  Status StoreWithId(const xml::Document& doc, DocId docid,
                     rdb::Database* db) override;
  Result<std::vector<DocId>> ListDocIds(rdb::Database* db) const override;
  Status RemoveImpl(DocId doc, rdb::Database* db) override;

  Result<rdb::Value> RootElement(rdb::Database* db, DocId doc) const override;
  Result<NodeSet> AllElements(rdb::Database* db, DocId doc,
                              const std::string& name_test) const override;
  Result<std::vector<StepResult>> Step(rdb::Database* db, DocId doc,
                                       const NodeSet& context, xpath::Axis axis,
                                       const std::string& name_test) const override;
  Result<std::vector<std::string>> StringValues(
      rdb::Database* db, DocId doc, const NodeSet& nodes) const override;

  Result<std::unique_ptr<xml::Node>> ReconstructSubtree(
      rdb::Database* db, DocId doc, const rdb::Value& node) const override;

  Status InsertSubtreeImpl(rdb::Database* db, DocId doc, const rdb::Value& parent,
                       const xml::Node& subtree) override;
  Status DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                       const rdb::Value& node) override;

  /// Child-only predicate-free paths join one partition table per step.
  Result<std::string> TranslatePathToSql(DocId doc,
                                         const xpath::PathExpr& path) const override;

 protected:
  std::vector<std::string> TableNames(const rdb::Database& db) const override;

 private:
  struct Label {
    std::string name;
    std::string kind;  // "elem" | "attr"
    std::string tbl;
  };

  /// Loads (and caches) the partition catalog.
  Result<std::vector<Label>> Labels(rdb::Database* db) const;
  /// Table name for a label, creating table + catalog row on first use.
  Result<std::string> TableFor(rdb::Database* db, const std::string& label,
                               const std::string& kind);
  /// Existing table for a label; empty string if the label was never stored.
  Result<std::string> FindTableFor(rdb::Database* db, const std::string& label,
                                   const std::string& kind) const;

  Result<NodeSet> SubtreeElementIds(rdb::Database* db, DocId doc,
                                    const rdb::Value& node) const;

  Status ShredInto(const xml::Node& n, DocId doc, int64_t parent,
                   int64_t* counter, rdb::Database* db);
};

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_BINARY_MAPPING_H_
