#include "shred/mapping.h"

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "rdb/wal.h"

namespace xmlrdb::shred {

Result<DocId> Mapping::Store(const xml::Document& doc, rdb::Database* db) {
  ScopedSpan span("shred." + name(), "shred");
  MetricsRegistry& reg = MetricsRegistry::Global();
  Stopwatch timer;
  // One WAL transaction per document: a crash mid-shred recovers to the
  // document entirely absent, never partially stored.
  rdb::WalTransaction txn(db);
  auto out = StoreImpl(doc, db);
  if (out.ok()) {
    Status commit = txn.Commit();
    if (!commit.ok()) out = commit;
  }
  if (reg.enabled()) {
    reg.RecordLatency("mapping." + name() + ".store_us",
                      static_cast<int64_t>(timer.ElapsedMicros()));
  }
  return out;
}

Result<std::vector<DocId>> Mapping::StoreAll(
    const std::vector<const xml::Document*>& docs, rdb::Database* db,
    ThreadPool* pool) {
  std::vector<DocId> ids(docs.size(), 0);
  if (docs.empty()) return ids;
  if (!SupportsParallelStore() || docs.size() == 1) {
    for (size_t i = 0; i < docs.size(); ++i) {
      ASSIGN_OR_RETURN(ids[i], Store(*docs[i], db));
    }
    return ids;
  }
  // Pre-assign a contiguous id block so workers never race on MAX(docid),
  // then shred each document on its own worker.
  ASSIGN_OR_RETURN(DocId base, NextDocId(db));
  std::vector<Status> statuses(docs.size(), Status::OK());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Shared();
  p.ParallelFor(docs.size(), [&](size_t i) {
    // Each document's shred is its own span, nested under the caller's
    // span via the pool's trace-context propagation — and its own WAL
    // transaction (transaction ids are thread-local, so concurrent workers
    // interleave their records in the log without mixing them up).
    ScopedSpan doc_span("shred.doc", "shred");
    MetricsRegistry& reg = MetricsRegistry::Global();
    Stopwatch timer;
    rdb::WalTransaction txn(db);
    statuses[i] = StoreWithId(*docs[i], base + static_cast<DocId>(i), db);
    if (statuses[i].ok()) statuses[i] = txn.Commit();
    if (reg.enabled()) {
      reg.RecordLatency("mapping." + name() + ".store_us",
                        static_cast<int64_t>(timer.ElapsedMicros()));
    }
  });
  for (const Status& st : statuses) RETURN_IF_ERROR(st);
  for (size_t i = 0; i < docs.size(); ++i) {
    ids[i] = base + static_cast<DocId>(i);
  }
  return ids;
}

Result<DocId> Mapping::NextDocId(rdb::Database*) const {
  return Status::Unsupported("parallel store for mapping '" + name() + "'");
}

Status Mapping::StoreWithId(const xml::Document&, DocId, rdb::Database*) {
  return Status::Unsupported("parallel store for mapping '" + name() + "'");
}

Status Mapping::StoreAt(const xml::Document& doc, DocId docid,
                        rdb::Database* db) {
  ScopedSpan span("shred." + name(), "shred");
  MetricsRegistry& reg = MetricsRegistry::Global();
  Stopwatch timer;
  rdb::WalTransaction txn(db);
  Status st = StoreWithId(doc, docid, db);
  if (st.ok()) st = txn.Commit();
  if (reg.enabled()) {
    reg.RecordLatency("mapping." + name() + ".store_us",
                      static_cast<int64_t>(timer.ElapsedMicros()));
  }
  return st;
}

Result<std::vector<DocId>> Mapping::ListDocIds(rdb::Database*) const {
  return Status::Unsupported("document enumeration for mapping '" + name() +
                             "'");
}

Result<std::unique_ptr<xml::Document>> Mapping::Reconstruct(rdb::Database* db,
                                                            DocId doc) const {
  ScopedSpan span("reconstruct." + name(), "shred");
  MetricsRegistry& reg = MetricsRegistry::Global();
  Stopwatch timer;
  auto run = [&]() -> Result<std::unique_ptr<xml::Document>> {
    ASSIGN_OR_RETURN(rdb::Value root, RootElement(db, doc));
    ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> tree,
                     ReconstructSubtree(db, doc, root));
    auto out = std::make_unique<xml::Document>();
    out->doc_node()->AddChild(std::move(tree));
    return out;
  };
  auto result = run();
  if (reg.enabled()) {
    reg.RecordLatency("mapping." + name() + ".reconstruct_us",
                      static_cast<int64_t>(timer.ElapsedMicros()));
  }
  return result;
}

Status Mapping::Remove(DocId doc, rdb::Database* db) {
  rdb::WalTransaction txn(db);
  RETURN_IF_ERROR(RemoveImpl(doc, db));
  return txn.Commit();
}

Status Mapping::InsertSubtree(rdb::Database* db, DocId doc,
                              const rdb::Value& parent,
                              const xml::Node& subtree) {
  rdb::WalTransaction txn(db);
  RETURN_IF_ERROR(InsertSubtreeImpl(db, doc, parent, subtree));
  return txn.Commit();
}

Status Mapping::DeleteSubtree(rdb::Database* db, DocId doc,
                              const rdb::Value& node) {
  rdb::WalTransaction txn(db);
  RETURN_IF_ERROR(DeleteSubtreeImpl(db, doc, node));
  return txn.Commit();
}

Result<std::string> Mapping::TranslatePathToSql(DocId,
                                                const xpath::PathExpr&) const {
  return Status::Unsupported("single-statement SQL translation for mapping '" +
                             name() + "'");
}

Result<size_t> Mapping::FootprintBytes(const rdb::Database& db) const {
  size_t total = 0;
  for (const std::string& t : TableNames(db)) {
    const rdb::Table* table = db.FindTable(t);
    if (table != nullptr) total += table->FootprintBytes();
  }
  return total;
}

}  // namespace xmlrdb::shred
