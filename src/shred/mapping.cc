#include "shred/mapping.h"

namespace xmlrdb::shred {

Result<std::unique_ptr<xml::Document>> Mapping::Reconstruct(rdb::Database* db,
                                                            DocId doc) const {
  ASSIGN_OR_RETURN(rdb::Value root, RootElement(db, doc));
  ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> tree,
                   ReconstructSubtree(db, doc, root));
  auto out = std::make_unique<xml::Document>();
  out->doc_node()->AddChild(std::move(tree));
  return out;
}

Result<std::string> Mapping::TranslatePathToSql(DocId,
                                                const xpath::PathExpr&) const {
  return Status::Unsupported("single-statement SQL translation for mapping '" +
                             name() + "'");
}

Result<size_t> Mapping::FootprintBytes(const rdb::Database& db) const {
  size_t total = 0;
  for (const std::string& t : TableNames(db)) {
    const rdb::Table* table = db.FindTable(t);
    if (table != nullptr) total += table->FootprintBytes();
  }
  return total;
}

}  // namespace xmlrdb::shred
