#include "shred/mapping.h"

#include "common/thread_pool.h"

namespace xmlrdb::shred {

Result<std::vector<DocId>> Mapping::StoreAll(
    const std::vector<const xml::Document*>& docs, rdb::Database* db,
    ThreadPool* pool) {
  std::vector<DocId> ids(docs.size(), 0);
  if (docs.empty()) return ids;
  if (!SupportsParallelStore() || docs.size() == 1) {
    for (size_t i = 0; i < docs.size(); ++i) {
      ASSIGN_OR_RETURN(ids[i], Store(*docs[i], db));
    }
    return ids;
  }
  // Pre-assign a contiguous id block so workers never race on MAX(docid),
  // then shred each document on its own worker.
  ASSIGN_OR_RETURN(DocId base, NextDocId(db));
  std::vector<Status> statuses(docs.size(), Status::OK());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::Shared();
  p.ParallelFor(docs.size(), [&](size_t i) {
    statuses[i] = StoreWithId(*docs[i], base + static_cast<DocId>(i), db);
  });
  for (const Status& st : statuses) RETURN_IF_ERROR(st);
  for (size_t i = 0; i < docs.size(); ++i) {
    ids[i] = base + static_cast<DocId>(i);
  }
  return ids;
}

Result<DocId> Mapping::NextDocId(rdb::Database*) const {
  return Status::Unsupported("parallel store for mapping '" + name() + "'");
}

Status Mapping::StoreWithId(const xml::Document&, DocId, rdb::Database*) {
  return Status::Unsupported("parallel store for mapping '" + name() + "'");
}

Result<std::unique_ptr<xml::Document>> Mapping::Reconstruct(rdb::Database* db,
                                                            DocId doc) const {
  ASSIGN_OR_RETURN(rdb::Value root, RootElement(db, doc));
  ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> tree,
                   ReconstructSubtree(db, doc, root));
  auto out = std::make_unique<xml::Document>();
  out->doc_node()->AddChild(std::move(tree));
  return out;
}

Result<std::string> Mapping::TranslatePathToSql(DocId,
                                                const xpath::PathExpr&) const {
  return Status::Unsupported("single-statement SQL translation for mapping '" +
                             name() + "'");
}

Result<size_t> Mapping::FootprintBytes(const rdb::Database& db) const {
  size_t total = 0;
  for (const std::string& t : TableNames(db)) {
    const rdb::Table* table = db.FindTable(t);
    if (table != nullptr) total += table->FootprintBytes();
  }
  return total;
}

}  // namespace xmlrdb::shred
