// Generic XPath evaluation over any Mapping.
//
// Each location step becomes one (or, for closure-based mappings, a few)
// SQL statements via the mapping's Step primitive; predicates are evaluated
// set-at-a-time with batched relative-path expansion and string-value
// fetches. Semantics match xpath::EvalOnDom exactly (it is the test oracle).

#ifndef XMLRDB_SHRED_EVALUATOR_H_
#define XMLRDB_SHRED_EVALUATOR_H_

#include "shred/mapping.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::shred {

/// Relational work done on behalf of one XPath query, derived from the
/// global MetricsRegistry counters the SQL layer maintains.
struct EvalStats {
  int64_t sql_statements = 0;  ///< SQL statements issued
  int64_t tables_touched = 0;  ///< distinct tables scanned
  int64_t rows_scanned = 0;    ///< rows produced by SeqScan/IndexScan
};

/// Evaluates `path` against the stored document, returning matching node ids
/// in the mapping's document order. If `stats` is non-null, the global
/// metrics registry is enabled for the duration of the call and `stats` is
/// filled with the relational work the query performed.
Result<NodeSet> EvalPath(const xpath::PathExpr& path, Mapping* mapping,
                         rdb::Database* db, DocId doc,
                         EvalStats* stats = nullptr);

/// Convenience: evaluate and return the string-values of all result nodes.
Result<std::vector<std::string>> EvalPathStrings(const xpath::PathExpr& path,
                                                 Mapping* mapping,
                                                 rdb::Database* db, DocId doc);

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_EVALUATOR_H_
