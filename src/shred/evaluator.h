// Generic XPath evaluation over any Mapping.
//
// Each location step becomes one (or, for closure-based mappings, a few)
// SQL statements via the mapping's Step primitive; predicates are evaluated
// set-at-a-time with batched relative-path expansion and string-value
// fetches. Semantics match xpath::EvalOnDom exactly (it is the test oracle).

#ifndef XMLRDB_SHRED_EVALUATOR_H_
#define XMLRDB_SHRED_EVALUATOR_H_

#include "shred/mapping.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::shred {

/// Evaluates `path` against the stored document, returning matching node ids
/// in the mapping's document order.
Result<NodeSet> EvalPath(const xpath::PathExpr& path, Mapping* mapping,
                         rdb::Database* db, DocId doc);

/// Convenience: evaluate and return the string-values of all result nodes.
Result<std::vector<std::string>> EvalPathStrings(const xpath::PathExpr& path,
                                                 Mapping* mapping,
                                                 rdb::Database* db, DocId doc);

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_EVALUATOR_H_
