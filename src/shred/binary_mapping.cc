#include "shred/binary_mapping.h"

#include <algorithm>
#include <unordered_map>

#include "shred/shred_util.h"

namespace xmlrdb::shred {

using rdb::DataType;
using rdb::QueryResult;
using rdb::Value;

namespace {
std::string Ctx() { return ScratchName("_bin_ctx"); }
std::string Frontier() { return ScratchName("_bin_frontier"); }

std::string D(DocId doc) { return std::to_string(doc); }
Value DV(DocId doc) { return Value(static_cast<int64_t>(doc)); }
}  // namespace

Status BinaryMapping::Initialize(rdb::Database* db) {
  RETURN_IF_ERROR(db->Execute("CREATE TABLE bin_labels ("
                              "name VARCHAR NOT NULL, "
                              "kind VARCHAR NOT NULL, "
                              "tbl VARCHAR NOT NULL)")
                      .status());
  RETURN_IF_ERROR(db->Execute("CREATE TABLE bin_docs ("
                              "docid INTEGER NOT NULL, "
                              "root INTEGER NOT NULL, "
                              "root_name VARCHAR NOT NULL, "
                              "max_id INTEGER NOT NULL)")
                      .status());
  RETURN_IF_ERROR(db->Execute("CREATE TABLE bt_text ("
                              "docid INTEGER NOT NULL, "
                              "source INTEGER NOT NULL, "
                              "ordinal INTEGER NOT NULL, "
                              "target INTEGER NOT NULL, "
                              "value VARCHAR NOT NULL)")
                      .status());
  RETURN_IF_ERROR(
      db->Execute("CREATE INDEX bt_text_src ON bt_text (docid, source)")
          .status());
  return Status::OK();
}

Result<std::vector<BinaryMapping::Label>> BinaryMapping::Labels(
    rdb::Database* db) const {
  ASSIGN_OR_RETURN(QueryResult r,
                   ExecPrepared(db, "SELECT name, kind, tbl FROM bin_labels"));
  std::vector<Label> out;
  out.reserve(r.rows.size());
  for (auto& row : r.rows) {
    out.push_back({row[0].AsString(), row[1].AsString(), row[2].AsString()});
  }
  return out;
}

Result<std::string> BinaryMapping::FindTableFor(rdb::Database* db,
                                                const std::string& label,
                                                const std::string& kind) const {
  ASSIGN_OR_RETURN(
      QueryResult r,
      ExecPrepared(db, "SELECT tbl FROM bin_labels WHERE name = ? AND kind = ?",
                   {Value(label), Value(kind)}));
  return r.rows.empty() ? std::string() : r.rows[0][0].AsString();
}

Result<std::string> BinaryMapping::TableFor(rdb::Database* db,
                                            const std::string& label,
                                            const std::string& kind) {
  ASSIGN_OR_RETURN(std::string existing, FindTableFor(db, label, kind));
  if (!existing.empty()) return existing;
  std::string base = (kind == "elem" ? "be_" : "ba_") + SanitizeName(label);
  std::string tbl = base;
  int suffix = 2;
  while (db->FindTable(tbl) != nullptr) {
    tbl = base + "_" + std::to_string(suffix++);
  }
  std::string cols = "docid INTEGER NOT NULL, source INTEGER NOT NULL, "
                     "ordinal INTEGER NOT NULL, target INTEGER NOT NULL";
  if (kind == "attr") cols += ", value VARCHAR NOT NULL";
  RETURN_IF_ERROR(db->Execute("CREATE TABLE " + tbl + " (" + cols + ")").status());
  RETURN_IF_ERROR(db->Execute("CREATE INDEX " + tbl + "_src ON " + tbl +
                              " (docid, source)")
                      .status());
  RETURN_IF_ERROR(db->Execute("CREATE INDEX " + tbl + "_tgt ON " + tbl +
                              " (docid, target)")
                      .status());
  RETURN_IF_ERROR(ExecPrepared(db, "INSERT INTO bin_labels VALUES (?, ?, ?)",
                               {Value(label), Value(kind), Value(tbl)})
                      .status());
  return tbl;
}

Status BinaryMapping::ShredInto(const xml::Node& n, DocId doc, int64_t parent,
                                int64_t* counter, rdb::Database* db) {
  int64_t ordinal = 1;
  for (const auto& a : n.attributes()) {
    int64_t id = (*counter)++;
    ASSIGN_OR_RETURN(std::string tbl, TableFor(db, a->name(), "attr"));
    rdb::Table* t = db->FindTable(tbl);
    ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid,
                     t->Insert({Value(doc), Value(parent), Value(ordinal++),
                                Value(id), Value(a->value())}));
  }
  for (const auto& c : n.children()) {
    switch (c->kind()) {
      case xml::NodeKind::kElement: {
        int64_t id = (*counter)++;
        ASSIGN_OR_RETURN(std::string tbl, TableFor(db, c->name(), "elem"));
        rdb::Table* t = db->FindTable(tbl);
        ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid,
                         t->Insert({Value(doc), Value(parent), Value(ordinal++),
                                    Value(id)}));
        RETURN_IF_ERROR(ShredInto(*c, doc, id, counter, db));
        break;
      }
      case xml::NodeKind::kText: {
        int64_t id = (*counter)++;
        rdb::Table* t = db->FindTable("bt_text");
        ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid,
                         t->Insert({Value(doc), Value(parent), Value(ordinal++),
                                    Value(id), Value(c->value())}));
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

Result<DocId> BinaryMapping::NextDocId(rdb::Database* db) const {
  return NextIdFromMax(db, "bin_docs", "docid");
}

Result<std::vector<DocId>> BinaryMapping::ListDocIds(rdb::Database* db) const {
  return DistinctDocIds(db, "bin_docs");
}

Status BinaryMapping::StoreWithId(const xml::Document& doc, DocId docid,
                                  rdb::Database* db) {
  const xml::Node* root = doc.root();
  if (root == nullptr) return Status::InvalidArgument("document has no root");
  int64_t counter = 1;
  int64_t root_id = counter++;
  ASSIGN_OR_RETURN(std::string tbl, TableFor(db, root->name(), "elem"));
  rdb::Table* t = db->FindTable(tbl);
  ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid,
                   t->Insert({Value(docid), Value(static_cast<int64_t>(0)),
                              Value(static_cast<int64_t>(1)), Value(root_id)}));
  RETURN_IF_ERROR(ShredInto(*root, docid, root_id, &counter, db));
  return ExecPrepared(db, "INSERT INTO bin_docs VALUES (?, ?, ?, ?)",
                      {Value(docid), Value(root_id), Value(root->name()),
                       Value(counter - 1)})
      .status();
}

Result<DocId> BinaryMapping::StoreImpl(const xml::Document& doc,
                                       rdb::Database* db) {
  ASSIGN_OR_RETURN(DocId docid, NextDocId(db));
  RETURN_IF_ERROR(StoreWithId(doc, docid, db));
  return docid;
}

Status BinaryMapping::RemoveImpl(DocId doc, rdb::Database* db) {
  ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
  for (const auto& l : labels) {
    RETURN_IF_ERROR(
        ExecPrepared(db, "DELETE FROM " + l.tbl + " WHERE docid = ?",
                     {DV(doc)})
            .status());
  }
  RETURN_IF_ERROR(
      ExecPrepared(db, "DELETE FROM bt_text WHERE docid = ?", {DV(doc)})
          .status());
  return ExecPrepared(db, "DELETE FROM bin_docs WHERE docid = ?", {DV(doc)})
      .status();
}

Result<Value> BinaryMapping::RootElement(rdb::Database* db, DocId doc) const {
  ASSIGN_OR_RETURN(QueryResult r,
                   ExecPrepared(db,
                                "SELECT root FROM bin_docs WHERE docid = ?",
                                {DV(doc)}));
  if (r.rows.empty()) return Status::NotFound("document " + D(doc));
  return r.rows[0][0];
}

Result<NodeSet> BinaryMapping::AllElements(rdb::Database* db, DocId doc,
                                           const std::string& name_test) const {
  NodeSet out;
  ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
  for (const auto& l : labels) {
    if (l.kind != "elem") continue;
    if (name_test != "*" && l.name != name_test) continue;
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db, "SELECT target FROM " + l.tbl + " WHERE docid = ?",
                     {DV(doc)}));
    for (auto& row : r.rows) out.push_back(row[0]);
  }
  std::sort(out.begin(), out.end(),
            [](const Value& a, const Value& b) { return a.AsInt() < b.AsInt(); });
  return out;
}

Result<std::vector<StepResult>> BinaryMapping::Step(
    rdb::Database* db, DocId doc, const NodeSet& context, xpath::Axis axis,
    const std::string& name_test) const {
  std::vector<StepResult> out;
  if (context.empty()) return out;

  // The partitions to consult for one child/attribute hop.
  auto partition_tables = [&](const std::string& kind,
                              const std::string& test)
      -> Result<std::vector<std::string>> {
    std::vector<std::string> tbls;
    if (test != "*") {
      ASSIGN_OR_RETURN(std::string tbl, FindTableFor(db, test, kind));
      if (!tbl.empty()) tbls.push_back(tbl);
      return tbls;
    }
    ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
    for (const auto& l : labels) {
      if (l.kind == kind) tbls.push_back(l.tbl);
    }
    return tbls;
  };

  if (axis == xpath::Axis::kChild || axis == xpath::Axis::kAttribute) {
    RETURN_IF_ERROR(LoadContextTable(db, Ctx(), DataType::kInt, context));
    const std::string kind =
        axis == xpath::Axis::kAttribute ? "attr" : "elem";
    ASSIGN_OR_RETURN(std::vector<std::string> tbls,
                     partition_tables(kind, name_test));
    std::vector<std::pair<std::pair<int64_t, int64_t>, StepResult>> collected;
    for (const std::string& tbl : tbls) {
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT c.id, t.ordinal, t.target FROM " + Ctx() +
                           " c JOIN " + tbl + " t ON t.source = c.id "
                           "WHERE t.docid = ?",
                       {DV(doc)}));
      for (auto& row : r.rows) {
        collected.push_back({{row[0].AsInt(), row[1].AsInt()},
                             {row[0], row[2]}});
      }
    }
    std::sort(collected.begin(), collected.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.reserve(collected.size());
    for (auto& [key, sr] : collected) out.push_back(std::move(sr));
    return out;
  }

  // Descendant: frontier expansion over every element partition per round.
  ASSIGN_OR_RETURN(std::vector<std::string> all_elem,
                   partition_tables("elem", "*"));
  ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
  std::unordered_map<std::string, std::string> tbl_to_name;
  for (const auto& l : labels) {
    if (l.kind == "elem") tbl_to_name[l.tbl] = l.name;
  }
  std::vector<std::pair<Value, Value>> frontier;
  for (const Value& c : context) frontier.emplace_back(c, c);
  while (!frontier.empty()) {
    RETURN_IF_ERROR(LoadFrontierTable(db, Frontier(), DataType::kInt, frontier));
    frontier.clear();
    for (const std::string& tbl : all_elem) {
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT f.origin, t.target FROM " + Frontier() +
                           " f JOIN " + tbl +
                           " t ON t.source = f.id WHERE t.docid = ?",
                       {DV(doc)}));
      for (auto& row : r.rows) {
        if (name_test == "*" || tbl_to_name[tbl] == name_test) {
          out.push_back({row[0], row[1]});
        }
        frontier.emplace_back(row[0], row[1]);
      }
    }
  }
  std::unordered_map<int64_t, size_t> ctx_pos;
  for (size_t i = 0; i < context.size(); ++i) ctx_pos[context[i].AsInt()] = i;
  std::stable_sort(out.begin(), out.end(),
                   [&](const StepResult& a, const StepResult& b) {
                     size_t pa = ctx_pos[a.context.AsInt()];
                     size_t pb = ctx_pos[b.context.AsInt()];
                     if (pa != pb) return pa < pb;
                     return a.node.AsInt() < b.node.AsInt();
                   });
  return out;
}

Result<std::vector<std::string>> BinaryMapping::StringValues(
    rdb::Database* db, DocId doc, const NodeSet& nodes) const {
  std::vector<std::string> out(nodes.size());
  if (nodes.empty()) return out;
  std::unordered_map<int64_t, size_t> pos;
  for (size_t i = 0; i < nodes.size(); ++i) pos[nodes[i].AsInt()] = i;

  // Attribute inputs: look the id up in every attribute partition.
  ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
  RETURN_IF_ERROR(LoadContextTable(db, Ctx(), DataType::kInt, nodes));
  std::vector<bool> resolved(nodes.size(), false);
  for (const auto& l : labels) {
    if (l.kind != "attr") continue;
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT c.id, t.value FROM " + Ctx() + " c JOIN " + l.tbl +
                         " t ON t.target = c.id WHERE t.docid = ?",
                     {DV(doc)}));
    for (auto& row : r.rows) {
      size_t p = pos[row[0].AsInt()];
      out[p] = row[1].AsString();
      resolved[p] = true;
    }
  }
  // Element inputs: expand subtrees collecting text.
  std::vector<std::pair<Value, Value>> frontier;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!resolved[i]) frontier.emplace_back(nodes[i], nodes[i]);
  }
  std::vector<std::pair<int64_t, std::pair<int64_t, std::string>>> texts;
  std::vector<std::string> elem_tbls;
  for (const auto& l : labels) {
    if (l.kind == "elem") elem_tbls.push_back(l.tbl);
  }
  while (!frontier.empty()) {
    RETURN_IF_ERROR(LoadFrontierTable(db, Frontier(), DataType::kInt, frontier));
    frontier.clear();
    ASSIGN_OR_RETURN(
        QueryResult tr,
        ExecPrepared(db,
                     "SELECT f.origin, t.target, t.value FROM " + Frontier() +
                         " f JOIN bt_text t ON t.source = f.id "
                         "WHERE t.docid = ?",
                     {DV(doc)}));
    for (auto& row : tr.rows) {
      texts.push_back({row[0].AsInt(), {row[1].AsInt(), row[2].AsString()}});
    }
    for (const std::string& tbl : elem_tbls) {
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT f.origin, t.target FROM " + Frontier() +
                           " f JOIN " + tbl +
                           " t ON t.source = f.id WHERE t.docid = ?",
                       {DV(doc)}));
      for (auto& row : r.rows) frontier.emplace_back(row[0], row[1]);
    }
  }
  std::sort(texts.begin(), texts.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second.first < b.second.first;
  });
  for (auto& [origin, t] : texts) out[pos[origin]] += t.second;
  return out;
}

Result<std::unique_ptr<xml::Node>> BinaryMapping::ReconstructSubtree(
    rdb::Database* db, DocId doc, const rdb::Value& node) const {
  ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
  // Identify the node: search element partitions for target = node.
  std::string node_name;
  for (const auto& l : labels) {
    if (l.kind != "elem") continue;
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(
            db,
            "SELECT target FROM " + l.tbl + " WHERE docid = ? AND target = ?",
            {DV(doc), node}));
    if (!r.rows.empty()) {
      node_name = l.name;
      break;
    }
  }
  if (node_name.empty()) {
    // Could be an attribute node.
    for (const auto& l : labels) {
      if (l.kind != "attr") continue;
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(
              db,
              "SELECT value FROM " + l.tbl + " WHERE docid = ? AND target = ?",
              {DV(doc), node}));
      if (!r.rows.empty()) {
        return std::make_unique<xml::Node>(xml::NodeKind::kAttribute, l.name,
                                           r.rows[0][0].AsString());
      }
    }
    return Status::NotFound("node " + node.ToString());
  }

  // Gather the subtree: per-level joins against every partition.
  struct ChildRow {
    int64_t ordinal;
    std::string kind;   // elem | attr | text
    std::string name;
    int64_t target;
    std::string value;
  };
  std::map<int64_t, std::vector<ChildRow>> children;
  std::vector<std::pair<Value, Value>> frontier{{node, node}};
  while (!frontier.empty()) {
    RETURN_IF_ERROR(LoadFrontierTable(db, Frontier(), DataType::kInt, frontier));
    frontier.clear();
    for (const auto& l : labels) {
      std::string cols = l.kind == "attr"
                             ? "f.id, t.ordinal, t.target, t.value"
                             : "f.id, t.ordinal, t.target";
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT " + cols + " FROM " + Frontier() + " f JOIN " +
                           l.tbl + " t ON t.source = f.id WHERE t.docid = ?",
                       {DV(doc)}));
      for (auto& row : r.rows) {
        ChildRow cr;
        cr.ordinal = row[1].AsInt();
        cr.kind = l.kind;
        cr.name = l.name;
        cr.target = row[2].AsInt();
        if (l.kind == "attr") cr.value = row[3].AsString();
        if (l.kind == "elem") {
          frontier.emplace_back(Value(cr.target), Value(cr.target));
        }
        children[row[0].AsInt()].push_back(std::move(cr));
      }
    }
    ASSIGN_OR_RETURN(
        QueryResult tr,
        ExecPrepared(db,
                     "SELECT f.id, t.ordinal, t.target, t.value FROM " +
                         Frontier() +
                         " f JOIN bt_text t ON t.source = f.id "
                         "WHERE t.docid = ?",
                     {DV(doc)}));
    for (auto& row : tr.rows) {
      ChildRow cr;
      cr.ordinal = row[1].AsInt();
      cr.kind = "text";
      cr.target = row[2].AsInt();
      cr.value = row[3].AsString();
      children[row[0].AsInt()].push_back(std::move(cr));
    }
  }

  auto root = std::make_unique<xml::Node>(xml::NodeKind::kElement, node_name);
  struct Assembler {
    std::map<int64_t, std::vector<ChildRow>>* children;
    void Build(xml::Node* el, int64_t id) {
      auto it = children->find(id);
      if (it == children->end()) return;
      std::sort(it->second.begin(), it->second.end(),
                [](const ChildRow& a, const ChildRow& b) {
                  return a.ordinal < b.ordinal;
                });
      for (const ChildRow& cr : it->second) {
        if (cr.kind == "attr") {
          el->SetAttr(cr.name, cr.value);
        } else if (cr.kind == "text") {
          el->AddText(cr.value);
        } else {
          xml::Node* child = el->AddElement(cr.name);
          Build(child, cr.target);
        }
      }
    }
  };
  Assembler a{&children};
  a.Build(root.get(), node.AsInt());
  return root;
}

Result<NodeSet> BinaryMapping::SubtreeElementIds(rdb::Database* db, DocId doc,
                                                 const rdb::Value& node) const {
  NodeSet ids{node};
  ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
  std::vector<std::pair<Value, Value>> frontier{{node, node}};
  while (!frontier.empty()) {
    RETURN_IF_ERROR(LoadFrontierTable(db, Frontier(), DataType::kInt, frontier));
    frontier.clear();
    for (const auto& l : labels) {
      if (l.kind != "elem") continue;
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT t.target FROM " + Frontier() + " f JOIN " +
                           l.tbl + " t ON t.source = f.id WHERE t.docid = ?",
                       {DV(doc)}));
      for (auto& row : r.rows) {
        ids.push_back(row[0]);
        frontier.emplace_back(row[0], row[0]);
      }
    }
  }
  return ids;
}

Status BinaryMapping::InsertSubtreeImpl(rdb::Database* db, DocId doc,
                                    const rdb::Value& parent,
                                    const xml::Node& subtree) {
  if (!subtree.IsElement()) {
    return Status::InvalidArgument("subtree root must be an element");
  }
  ASSIGN_OR_RETURN(QueryResult maxq,
                   ExecPrepared(db,
                                "SELECT max_id FROM bin_docs WHERE docid = ?",
                                {DV(doc)}));
  if (maxq.rows.empty()) return Status::NotFound("document " + D(doc));
  int64_t counter = maxq.rows[0][0].AsInt() + 1;

  // Next ordinal across all child partitions of `parent`.
  int64_t ordinal = 1;
  ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
  std::vector<std::string> child_tables{"bt_text"};
  for (const auto& l : labels) child_tables.push_back(l.tbl);
  for (const std::string& tbl : child_tables) {
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT MAX(ordinal) FROM " + tbl +
                         " WHERE docid = ? AND source = ?",
                     {DV(doc), parent}));
    if (!r.rows.empty() && !r.rows[0][0].is_null()) {
      ordinal = std::max(ordinal, r.rows[0][0].AsInt() + 1);
    }
  }

  int64_t root_id = counter++;
  ASSIGN_OR_RETURN(std::string tbl, TableFor(db, subtree.name(), "elem"));
  rdb::Table* t = db->FindTable(tbl);
  ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid,
                   t->Insert({Value(doc), parent, Value(ordinal), Value(root_id)}));
  RETURN_IF_ERROR(ShredInto(subtree, doc, root_id, &counter, db));
  return ExecPrepared(db, "UPDATE bin_docs SET max_id = ? WHERE docid = ?",
                      {Value(counter - 1), DV(doc)})
      .status();
}

Status BinaryMapping::DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                                    const rdb::Value& node) {
  ASSIGN_OR_RETURN(NodeSet elems, SubtreeElementIds(db, doc, node));
  ASSIGN_OR_RETURN(std::vector<Label> labels, Labels(db));
  // Attribute/text rows hang off subtree elements (source in elems);
  // element rows are the subtree elements themselves (target in elems).
  for (const Value& id : elems) {
    for (const auto& l : labels) {
      if (l.kind == "elem") {
        RETURN_IF_ERROR(
            ExecPrepared(db,
                         "DELETE FROM " + l.tbl +
                             " WHERE docid = ? AND target = ?",
                         {DV(doc), id})
                .status());
      } else {
        RETURN_IF_ERROR(
            ExecPrepared(db,
                         "DELETE FROM " + l.tbl +
                             " WHERE docid = ? AND source = ?",
                         {DV(doc), id})
                .status());
      }
    }
    RETURN_IF_ERROR(
        ExecPrepared(db, "DELETE FROM bt_text WHERE docid = ? AND source = ?",
                     {DV(doc), id})
            .status());
  }
  return Status::OK();
}

Result<std::string> BinaryMapping::TranslatePathToSql(
    DocId doc, const xpath::PathExpr& path) const {
  if (path.HasDescendant()) {
    return Status::Unsupported(
        "binary mapping: '//' needs transitive closure (not a single statement)");
  }
  if (!path.PredicateFree()) {
    return Status::Unsupported("binary mapping: SQL translation of predicates");
  }
  std::string from, where, select;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const auto& step = path.steps[i];
    if (step.IsWildcard()) {
      return Status::Unsupported(
          "binary mapping: wildcard step needs a union over partitions");
    }
    std::string kind = step.axis == xpath::Axis::kAttribute ? "attr" : "elem";
    // Partition names are deterministic absent sanitization collisions; the
    // emitted SQL fails with NotFound at execution time if the label was
    // never stored.
    std::string tbl =
        (kind == "elem" ? "be_" : "ba_") + SanitizeName(step.name);
    std::string alias = "t" + std::to_string(i);
    if (i > 0) from += ", ";
    from += tbl + " " + alias;
    if (!where.empty()) where += " AND ";
    where += alias + ".docid = " + D(doc);
    if (i == 0) {
      where += " AND " + alias + ".source = 0";
    } else {
      where += " AND " + alias + ".source = t" + std::to_string(i - 1) + ".target";
    }
    select = "SELECT " + alias + ".target FROM ";
  }
  return select + from + " WHERE " + where + " ORDER BY t" +
         std::to_string(path.steps.size() - 1) + ".target";
}

std::vector<std::string> BinaryMapping::TableNames(const rdb::Database& db) const {
  std::vector<std::string> out{"bin_labels", "bin_docs", "bt_text"};
  for (const std::string& t : db.TableNames()) {
    if (t.rfind("be_", 0) == 0 || t.rfind("ba_", 0) == 0) out.push_back(t);
  }
  return out;
}

}  // namespace xmlrdb::shred
