// Mapping: the core abstraction of xmlrdb.
//
// A Mapping defines how XML trees are shredded into relational tables and how
// the XPath evaluator's primitive operations (root lookup, axis steps, string
// values) translate into SQL against those tables. Six implementations ship
// with the library:
//
//   EdgeMapping      one universal edge table          (Florescu & Kossmann 99)
//   BinaryMapping    edge table partitioned by label   (Florescu & Kossmann 99)
//   IntervalMapping  pre/size/level tree encoding      (Grust 02)
//   DeweyMapping     Dewey order identifiers           (Tatarinov et al. 02)
//   InlineMapping    DTD-driven inlining               (Shanmugasundaram 99)
//   BlobMapping      document text baseline ("smart file system")
//
// Node identifiers are mapping-specific rdb::Values (integers or strings);
// within one document they are unique across node kinds, and for mappings
// that preserve global document order their natural ordering IS document
// order (edge/binary/interval/blob: integer pre-order; dewey: lexicographic).

#ifndef XMLRDB_SHRED_MAPPING_H_
#define XMLRDB_SHRED_MAPPING_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdb/database.h"
#include "xml/node.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb {
class ThreadPool;
}  // namespace xmlrdb

namespace xmlrdb::shred {

using DocId = int64_t;

/// A stored node: document plus mapping-specific node id.
struct NodeRef {
  DocId doc = 0;
  rdb::Value id;
};

using NodeSet = std::vector<rdb::Value>;

/// One (context, result) pair of an axis step. Results are grouped by
/// context in input order; within one context they follow document order
/// (or the mapping's best approximation of it — see InlineMapping notes).
struct StepResult {
  rdb::Value context;
  rdb::Value node;
};

class Mapping {
 public:
  virtual ~Mapping() = default;

  /// Short identifier: "edge", "binary", "interval", "dewey", "inline", "blob".
  virtual std::string name() const = 0;

  /// Creates this mapping's tables and indexes in `db` (idempotent-unsafe:
  /// call once per database).
  virtual Status Initialize(rdb::Database* db) = 0;

  /// Shreds `doc` into the tables under a fresh document id. Non-virtual
  /// wrapper: records a "shred.<name>" trace span and the
  /// "mapping.<name>.store_us" latency histogram around StoreImpl.
  Result<DocId> Store(const xml::Document& doc, rdb::Database* db);

  /// Bulk load: stores every document and returns their ids in input order.
  /// Mappings that support it (see SupportsParallelStore) pre-assign a
  /// contiguous id block and shred independent documents across `pool`
  /// workers — the expensive tree walk runs in parallel, while the table's
  /// own lock serialises the final inserts. Null pool = ThreadPool::Shared().
  /// Other mappings fall back to calling Store serially.
  Result<std::vector<DocId>> StoreAll(
      const std::vector<const xml::Document*>& docs, rdb::Database* db,
      ThreadPool* pool = nullptr);

  /// True when StoreWithId may shred different documents concurrently
  /// (fixed table set, no per-store DDL).
  virtual bool SupportsParallelStore() const { return false; }

  /// First unused document id. Implemented by every shipped mapping (the
  /// shard router pre-assigns ids); the base default is kUnsupported.
  virtual Result<DocId> NextDocId(rdb::Database* db) const;

  /// Shreds `doc` under a caller-assigned id. Implemented by every shipped
  /// mapping; only SupportsParallelStore() mappings may be called
  /// concurrently.
  virtual Status StoreWithId(const xml::Document& doc, DocId docid,
                             rdb::Database* db);

  /// Like Store, but under a caller-assigned document id (the shard router
  /// assigns ids globally, then places the document on its owning shard).
  /// Non-virtual wrapper: same WAL transaction + span/timer as Store.
  Status StoreAt(const xml::Document& doc, DocId docid, rdb::Database* db);

  /// The ids of every document stored in `db`, ascending. A durable shard
  /// rebuilds its slice of the router's ownership table from this after
  /// recovery.
  virtual Result<std::vector<DocId>> ListDocIds(rdb::Database* db) const;

  /// Removes every row belonging to `doc`. Non-virtual wrapper: groups the
  /// row deletes into one WAL transaction on a durable database, so a crash
  /// mid-remove recovers to the document fully present, never half-removed.
  Status Remove(DocId doc, rdb::Database* db);

  /// The stored root element of `doc`.
  virtual Result<rdb::Value> RootElement(rdb::Database* db, DocId doc) const = 0;

  /// All elements of `doc` whose name matches `name_test` ("*" = all), in
  /// document order. This is the entry point for '//x' at the path head.
  virtual Result<NodeSet> AllElements(rdb::Database* db, DocId doc,
                                      const std::string& name_test) const = 0;

  /// Axis step from every node of `context` (element ids). See StepResult
  /// for ordering guarantees.
  virtual Result<std::vector<StepResult>> Step(
      rdb::Database* db, DocId doc, const NodeSet& context, xpath::Axis axis,
      const std::string& name_test) const = 0;

  /// XPath string-value: attribute value, or concatenated descendant text
  /// for elements. One output per input, in order.
  virtual Result<std::vector<std::string>> StringValues(
      rdb::Database* db, DocId doc, const NodeSet& nodes) const = 0;

  /// Rebuilds the subtree rooted at `node` as an XML tree.
  virtual Result<std::unique_ptr<xml::Node>> ReconstructSubtree(
      rdb::Database* db, DocId doc, const rdb::Value& node) const = 0;

  /// Rebuilds the entire document. Records a "reconstruct.<name>" trace
  /// span and the "mapping.<name>.reconstruct_us" latency histogram.
  Result<std::unique_ptr<xml::Document>> Reconstruct(rdb::Database* db,
                                                     DocId doc) const;

  /// Appends `subtree` (an element) as the last child of `parent`.
  /// Non-virtual wrapper: one WAL transaction (see Remove).
  Status InsertSubtree(rdb::Database* db, DocId doc, const rdb::Value& parent,
                       const xml::Node& subtree);

  /// Deletes the subtree rooted at `node` (must not be the root element).
  /// Non-virtual wrapper: one WAL transaction (see Remove).
  Status DeleteSubtree(rdb::Database* db, DocId doc, const rdb::Value& node);

  /// Translates a whole path into a single SQL SELECT returning node ids,
  /// where the mapping's table design permits it (used by the plan-shape
  /// experiment and the quickstart demo). Default: kUnsupported.
  virtual Result<std::string> TranslatePathToSql(DocId doc,
                                                 const xpath::PathExpr& path) const;

  /// Approximate storage footprint of this mapping's tables in `db`.
  virtual Result<size_t> FootprintBytes(const rdb::Database& db) const;

 protected:
  /// Mapping-specific shredding; called by Store() under its span/timer and
  /// WAL transaction.
  virtual Result<DocId> StoreImpl(const xml::Document& doc,
                                  rdb::Database* db) = 0;

  /// Mapping-specific bodies of Remove / InsertSubtree / DeleteSubtree;
  /// called by the public wrappers inside a WAL transaction.
  virtual Status RemoveImpl(DocId doc, rdb::Database* db) = 0;
  virtual Status InsertSubtreeImpl(rdb::Database* db, DocId doc,
                                   const rdb::Value& parent,
                                   const xml::Node& subtree) = 0;
  virtual Status DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                                   const rdb::Value& node) = 0;

  /// Names of the tables this mapping owns (for FootprintBytes / tooling).
  virtual std::vector<std::string> TableNames(const rdb::Database& db) const = 0;
};

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_MAPPING_H_
