#include "shred/interval_mapping.h"

#include <algorithm>
#include <unordered_map>

#include "shred/shred_util.h"

namespace xmlrdb::shred {

using rdb::DataType;
using rdb::QueryResult;
using rdb::Value;

namespace {
std::string Ctx() { return ScratchName("_iv_ctx"); }

std::string D(DocId doc) { return std::to_string(doc); }
Value DV(DocId doc) { return Value(static_cast<int64_t>(doc)); }
Value NV(int64_t v) { return Value(v); }
}  // namespace

Status IntervalMapping::Initialize(rdb::Database* db) {
  RETURN_IF_ERROR(db->Execute("CREATE TABLE iv_nodes ("
                              "docid INTEGER NOT NULL, "
                              "pre INTEGER NOT NULL, "
                              "size INTEGER NOT NULL, "
                              "level INTEGER NOT NULL, "
                              "kind VARCHAR NOT NULL, "
                              "name VARCHAR, "
                              "value VARCHAR)")
                      .status());
  RETURN_IF_ERROR(
      db->Execute("CREATE INDEX iv_pre ON iv_nodes (docid, pre)").status());
  if (with_name_index_) {
    RETURN_IF_ERROR(
        db->Execute("CREATE INDEX iv_name ON iv_nodes (docid, name, pre)")
            .status());
  }
  return Status::OK();
}

namespace {

/// Pre-order walk assigning (pre, size, level); returns subtree node count.
int64_t ShredInterval(const xml::Node& n, DocId doc, int64_t level,
                      int64_t* counter, std::vector<rdb::Row>* rows) {
  int64_t my_pre = (*counter)++;
  size_t my_row = rows->size();
  rows->push_back({Value(doc), Value(my_pre), Value(static_cast<int64_t>(0)),
                   Value(level), Value("elem"), Value(n.name()), Value::Null()});
  int64_t descendants = 0;
  for (const auto& a : n.attributes()) {
    int64_t pre = (*counter)++;
    rows->push_back({Value(doc), Value(pre), Value(static_cast<int64_t>(0)),
                     Value(level + 1), Value("attr"), Value(a->name()),
                     Value(a->value())});
    ++descendants;
  }
  for (const auto& c : n.children()) {
    switch (c->kind()) {
      case xml::NodeKind::kElement:
        descendants += ShredInterval(*c, doc, level + 1, counter, rows);
        break;
      case xml::NodeKind::kText: {
        int64_t pre = (*counter)++;
        rows->push_back({Value(doc), Value(pre), Value(static_cast<int64_t>(0)),
                         Value(level + 1), Value("text"), Value::Null(),
                         Value(c->value())});
        ++descendants;
        break;
      }
      default:
        break;
    }
  }
  (*rows)[my_row][2] = Value(descendants);
  return descendants + 1;
}

}  // namespace

Result<DocId> IntervalMapping::NextDocId(rdb::Database* db) const {
  return NextIdFromMax(db, "iv_nodes", "docid");
}

Result<std::vector<DocId>> IntervalMapping::ListDocIds(
    rdb::Database* db) const {
  return DistinctDocIds(db, "iv_nodes");
}

Status IntervalMapping::StoreWithId(const xml::Document& doc, DocId docid,
                                    rdb::Database* db) {
  const xml::Node* root = doc.root();
  if (root == nullptr) return Status::InvalidArgument("document has no root");
  std::vector<rdb::Row> rows;
  int64_t counter = 1;
  ShredInterval(*root, docid, 1, &counter, &rows);
  rdb::Table* t = db->FindTable("iv_nodes");
  if (t == nullptr) return Status::Internal("iv_nodes table missing");
  return t->InsertMany(std::move(rows));
}

Result<DocId> IntervalMapping::StoreImpl(const xml::Document& doc,
                                     rdb::Database* db) {
  ASSIGN_OR_RETURN(DocId docid, NextDocId(db));
  RETURN_IF_ERROR(StoreWithId(doc, docid, db));
  return docid;
}

Status IntervalMapping::RemoveImpl(DocId doc, rdb::Database* db) {
  return ExecPrepared(db, "DELETE FROM iv_nodes WHERE docid = ?", {DV(doc)})
      .status();
}

Result<Value> IntervalMapping::RootElement(rdb::Database* db, DocId doc) const {
  ASSIGN_OR_RETURN(
      QueryResult r,
      ExecPrepared(db, "SELECT pre FROM iv_nodes WHERE docid = ? AND pre = 1",
                   {DV(doc)}));
  if (r.rows.empty()) return Status::NotFound("document " + D(doc));
  return r.rows[0][0];
}

Result<NodeSet> IntervalMapping::AllElements(rdb::Database* db, DocId doc,
                                             const std::string& name_test) const {
  QueryResult r;
  if (name_test != "*") {
    ASSIGN_OR_RETURN(r,
                     ExecPrepared(db,
                                  "SELECT pre FROM iv_nodes WHERE docid = ? "
                                  "AND kind = 'elem' AND name = ? ORDER BY pre",
                                  {DV(doc), Value(name_test)}));
  } else {
    ASSIGN_OR_RETURN(r, ExecPrepared(db,
                                     "SELECT pre FROM iv_nodes WHERE docid = ? "
                                     "AND kind = 'elem' ORDER BY pre",
                                     {DV(doc)}));
  }
  NodeSet out;
  out.reserve(r.rows.size());
  for (auto& row : r.rows) out.push_back(row[0]);
  return out;
}

Result<std::vector<IntervalMapping::NodeInfo>> IntervalMapping::FetchInfo(
    rdb::Database* db, DocId doc, const NodeSet& nodes) const {
  // Small sets: indexed point lookups beat building a join partner table.
  if (nodes.size() <= 8) {
    std::vector<NodeInfo> out;
    out.reserve(nodes.size());
    for (const Value& v : nodes) {
      ASSIGN_OR_RETURN(QueryResult r,
                       ExecPrepared(db,
                                    "SELECT size, level FROM iv_nodes "
                                    "WHERE docid = ? AND pre = ?",
                                    {DV(doc), v}));
      if (r.rows.empty()) {
        return Status::NotFound("interval node pre=" + v.ToString());
      }
      out.push_back({v.AsInt(), r.rows[0][0].AsInt(), r.rows[0][1].AsInt()});
    }
    return out;
  }
  RETURN_IF_ERROR(LoadContextTable(db, Ctx(), DataType::kInt, nodes));
  ASSIGN_OR_RETURN(QueryResult r,
                   ExecPrepared(db,
                                "SELECT c.id, n.size, n.level FROM " + Ctx() +
                                    " c JOIN iv_nodes n ON n.pre = c.id "
                                    "WHERE n.docid = ?",
                                {DV(doc)}));
  std::unordered_map<int64_t, std::pair<int64_t, int64_t>> by_pre;
  for (auto& row : r.rows) {
    by_pre[row[0].AsInt()] = {row[1].AsInt(), row[2].AsInt()};
  }
  std::vector<NodeInfo> out;
  out.reserve(nodes.size());
  for (const Value& v : nodes) {
    auto it = by_pre.find(v.AsInt());
    if (it == by_pre.end()) {
      return Status::NotFound("interval node pre=" + v.ToString());
    }
    out.push_back({v.AsInt(), it->second.first, it->second.second});
  }
  return out;
}

Result<std::vector<StepResult>> IntervalMapping::Step(
    rdb::Database* db, DocId doc, const NodeSet& context, xpath::Axis axis,
    const std::string& name_test) const {
  std::vector<StepResult> out;
  if (context.empty()) return out;
  ASSIGN_OR_RETURN(std::vector<NodeInfo> info, FetchInfo(db, doc, context));

  // Large context sets use a structural ("staircase") join: one ordered scan
  // of the candidate rows merged against the sorted context ranges with an
  // active-ancestor stack — O(candidates + contexts) instead of one SQL
  // statement per context.
  constexpr size_t kMergeThreshold = 4;
  if (context.size() > kMergeThreshold) {
    std::vector<Value> params{DV(doc),
                              Value(axis == xpath::Axis::kAttribute ? "attr"
                                                                    : "elem")};
    std::string sql =
        "SELECT pre, level FROM iv_nodes WHERE docid = ? AND kind = ?";
    if (name_test != "*") {
      sql += " AND name = ?";
      params.push_back(Value(name_test));
    }
    sql += " ORDER BY pre";
    ASSIGN_OR_RETURN(QueryResult r, ExecPrepared(db, sql, std::move(params)));
    // Contexts arrive sorted by pre (document order) and their ranges are
    // nested or disjoint.
    bool nested = false;
    for (size_t i = 0; i + 1 < info.size(); ++i) {
      if (info[i + 1].pre <= info[i].pre + info[i].size) {
        nested = true;
        break;
      }
    }
    std::vector<std::pair<size_t, StepResult>> hits;  // (ctx idx, result)
    if (!nested) {
      // Disjoint sibling ranges: two-pointer merge.
      size_t ci = 0;
      for (auto& row : r.rows) {
        int64_t pre = row[0].AsInt();
        int64_t level = row[1].AsInt();
        while (ci < info.size() && info[ci].pre + info[ci].size < pre) ++ci;
        if (ci >= info.size()) break;
        const NodeInfo& ni = info[ci];
        if (pre <= ni.pre || pre > ni.pre + ni.size) continue;
        if (axis != xpath::Axis::kDescendant && level != ni.level + 1) continue;
        hits.emplace_back(ci, StepResult{context[ci], Value(pre)});
      }
    } else {
      // Nested contexts: active-ancestor stack; a node may belong to several
      // open contexts (every enclosing one, for the descendant axis).
      std::vector<size_t> stack;
      size_t next_ctx = 0;
      for (auto& row : r.rows) {
        int64_t pre = row[0].AsInt();
        int64_t level = row[1].AsInt();
        while (next_ctx < info.size() && info[next_ctx].pre < pre) {
          stack.push_back(next_ctx++);
        }
        while (!stack.empty() &&
               info[stack.back()].pre + info[stack.back()].size < pre) {
          stack.pop_back();
        }
        for (size_t sc : stack) {
          const NodeInfo& ni = info[sc];
          if (pre <= ni.pre || pre > ni.pre + ni.size) continue;
          if (axis != xpath::Axis::kDescendant && level != ni.level + 1) {
            continue;
          }
          hits.emplace_back(sc, StepResult{context[sc], Value(pre)});
        }
      }
    }
    std::stable_sort(hits.begin(), hits.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    out.reserve(hits.size());
    for (auto& [ci, sr] : hits) out.push_back(std::move(sr));
    return out;
  }

  for (size_t i = 0; i < context.size(); ++i) {
    const NodeInfo& ni = info[i];
    if (ni.size == 0) continue;  // leaf: empty subtree range
    std::vector<Value> params{DV(doc), NV(ni.pre), NV(ni.pre + ni.size)};
    std::string sql =
        "SELECT pre FROM iv_nodes WHERE docid = ? AND pre > ? AND pre <= ?";
    switch (axis) {
      case xpath::Axis::kChild:
        sql += " AND level = ? AND kind = 'elem'";
        params.push_back(NV(ni.level + 1));
        break;
      case xpath::Axis::kAttribute:
        sql += " AND level = ? AND kind = 'attr'";
        params.push_back(NV(ni.level + 1));
        break;
      case xpath::Axis::kDescendant:
        sql += " AND kind = 'elem'";
        break;
    }
    if (name_test != "*") {
      sql += " AND name = ?";
      params.push_back(Value(name_test));
    }
    sql += " ORDER BY pre";
    ASSIGN_OR_RETURN(QueryResult r, ExecPrepared(db, sql, std::move(params)));
    for (auto& row : r.rows) out.push_back({context[i], row[0]});
  }
  return out;
}

Result<std::vector<std::string>> IntervalMapping::StringValues(
    rdb::Database* db, DocId doc, const NodeSet& nodes) const {
  std::vector<std::string> out(nodes.size());
  if (nodes.empty()) return out;
  ASSIGN_OR_RETURN(std::vector<NodeInfo> info, FetchInfo(db, doc, nodes));
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeInfo& ni = info[i];
    // Own row first: attributes and text nodes carry their value directly.
    ASSIGN_OR_RETURN(QueryResult self,
                     ExecPrepared(db,
                                  "SELECT kind, value FROM iv_nodes "
                                  "WHERE docid = ? AND pre = ?",
                                  {DV(doc), NV(ni.pre)}));
    if (self.rows.empty()) continue;
    const std::string& kind = self.rows[0][0].AsString();
    if (kind != "elem") {
      out[i] = self.rows[0][1].is_null() ? "" : self.rows[0][1].AsString();
      continue;
    }
    if (ni.size == 0) continue;
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT value FROM iv_nodes WHERE docid = ? AND "
                     "pre > ? AND pre <= ? AND kind = 'text' ORDER BY pre",
                     {DV(doc), NV(ni.pre), NV(ni.pre + ni.size)}));
    for (auto& row : r.rows) {
      if (!row[0].is_null()) out[i] += row[0].AsString();
    }
  }
  return out;
}

Result<std::unique_ptr<xml::Node>> IntervalMapping::ReconstructSubtree(
    rdb::Database* db, DocId doc, const rdb::Value& node) const {
  ASSIGN_OR_RETURN(QueryResult self,
                   ExecPrepared(db,
                                "SELECT size, level, kind, name, value "
                                "FROM iv_nodes WHERE docid = ? AND pre = ?",
                                {DV(doc), node}));
  if (self.rows.empty()) return Status::NotFound("node " + node.ToString());
  int64_t size = self.rows[0][0].AsInt();
  int64_t root_level = self.rows[0][1].AsInt();
  const std::string kind = self.rows[0][2].AsString();
  if (kind == "text") {
    return std::make_unique<xml::Node>(xml::NodeKind::kText, "",
                                       self.rows[0][4].AsString());
  }
  if (kind == "attr") {
    return std::make_unique<xml::Node>(xml::NodeKind::kAttribute,
                                       self.rows[0][3].AsString(),
                                       self.rows[0][4].AsString());
  }
  auto root = std::make_unique<xml::Node>(xml::NodeKind::kElement,
                                          self.rows[0][3].AsString());
  if (size == 0) return root;
  int64_t pre = node.AsInt();
  ASSIGN_OR_RETURN(QueryResult r,
                   ExecPrepared(db,
                                "SELECT level, kind, name, value FROM iv_nodes "
                                "WHERE docid = ? AND pre > ? AND pre <= ? "
                                "ORDER BY pre",
                                {DV(doc), NV(pre), NV(pre + size)}));
  // Rebuild from the pre-ordered row stream using a level stack.
  std::vector<xml::Node*> stack{root.get()};
  std::vector<int64_t> levels{root_level};
  for (auto& row : r.rows) {
    int64_t level = row[0].AsInt();
    while (levels.back() >= level) {
      stack.pop_back();
      levels.pop_back();
    }
    xml::Node* parent = stack.back();
    const std::string& k = row[1].AsString();
    if (k == "elem") {
      xml::Node* el = parent->AddElement(row[2].AsString());
      stack.push_back(el);
      levels.push_back(level);
    } else if (k == "attr") {
      parent->SetAttr(row[2].AsString(), row[3].AsString());
    } else {
      parent->AddText(row[3].is_null() ? "" : row[3].AsString());
    }
  }
  return root;
}

Status IntervalMapping::InsertSubtreeImpl(rdb::Database* db, DocId doc,
                                      const rdb::Value& parent,
                                      const xml::Node& subtree) {
  if (!subtree.IsElement()) {
    return Status::InvalidArgument("subtree root must be an element");
  }
  ASSIGN_OR_RETURN(std::vector<NodeInfo> info, FetchInfo(db, doc, {parent}));
  const NodeInfo& p = info[0];
  // Shred the subtree with pre numbers starting right after the parent's
  // current subtree end.
  std::vector<rdb::Row> rows;
  int64_t counter = p.pre + p.size + 1;
  int64_t k = ShredInterval(subtree, doc, p.level + 1, &counter, &rows);
  // 1. Shift everything after the parent's subtree.
  RETURN_IF_ERROR(ExecPrepared(db,
                               "UPDATE iv_nodes SET pre = pre + ? WHERE "
                               "docid = ? AND pre > ?",
                               {NV(k), DV(doc), NV(p.pre + p.size)})
                      .status());
  // 2. Grow the parent and every ancestor.
  RETURN_IF_ERROR(ExecPrepared(db,
                               "UPDATE iv_nodes SET size = size + ? WHERE "
                               "docid = ? AND pre <= ? AND pre + size >= ?",
                               {NV(k), DV(doc), NV(p.pre), NV(p.pre)})
                      .status());
  // 3. Insert the new rows.
  rdb::Table* t = db->FindTable("iv_nodes");
  return t->InsertMany(std::move(rows));
}

Status IntervalMapping::DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                                      const rdb::Value& node) {
  ASSIGN_OR_RETURN(std::vector<NodeInfo> info, FetchInfo(db, doc, {node}));
  const NodeInfo& n = info[0];
  int64_t k = n.size + 1;
  RETURN_IF_ERROR(ExecPrepared(db,
                               "DELETE FROM iv_nodes WHERE docid = ? AND "
                               "pre >= ? AND pre <= ?",
                               {DV(doc), NV(n.pre), NV(n.pre + n.size)})
                      .status());
  // Shrink ancestors (the deleted node's own row is gone already).
  RETURN_IF_ERROR(ExecPrepared(db,
                               "UPDATE iv_nodes SET size = size - ? WHERE "
                               "docid = ? AND pre < ? AND pre + size >= ?",
                               {NV(k), DV(doc), NV(n.pre), NV(n.pre)})
                      .status());
  // Renumber everything after the deleted range.
  return ExecPrepared(db,
                      "UPDATE iv_nodes SET pre = pre - ? WHERE docid = ? AND "
                      "pre > ?",
                      {NV(k), DV(doc), NV(n.pre + n.size)})
      .status();
}

Result<std::string> IntervalMapping::TranslatePathToSql(
    DocId doc, const xpath::PathExpr& path) const {
  if (!path.PredicateFree()) {
    return Status::Unsupported("interval mapping: SQL translation of predicates");
  }
  std::string from, where, select;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const auto& step = path.steps[i];
    std::string a = "n" + std::to_string(i);
    if (i > 0) from += ", ";
    from += "iv_nodes " + a;
    if (!where.empty()) where += " AND ";
    where += a + ".docid = " + D(doc);
    where += " AND " + a + ".kind = '" +
             (step.axis == xpath::Axis::kAttribute ? "attr" : "elem") + "'";
    if (!step.IsWildcard()) {
      where += " AND " + a + ".name = " + SqlLiteral(Value(step.name));
    }
    if (i == 0) {
      if (step.axis == xpath::Axis::kChild) {
        where += " AND " + a + ".level = 1";
      }
    } else {
      std::string prev = "n" + std::to_string(i - 1);
      where += " AND " + a + ".pre > " + prev + ".pre AND " + a + ".pre <= " +
               prev + ".pre + " + prev + ".size";
      if (step.axis != xpath::Axis::kDescendant) {
        where += " AND " + a + ".level = " + prev + ".level + 1";
      }
    }
    select = "SELECT " + a + ".pre FROM ";
  }
  return select + from + " WHERE " + where + " ORDER BY n" +
         std::to_string(path.steps.size() - 1) + ".pre";
}

}  // namespace xmlrdb::shred
