#include "shred/inline_mapping.h"

#include <algorithm>
#include <functional>

#include "common/str_util.h"
#include "shred/shred_util.h"

namespace xmlrdb::shred {

using rdb::Column;
using rdb::DataType;
using rdb::QueryResult;
using rdb::Value;
using xml::Multiplicity;
using xml::SimplifiedElement;

namespace {
std::string D(DocId doc) { return std::to_string(doc); }
Value DV(DocId doc) { return Value(static_cast<int64_t>(doc)); }
}  // namespace

// ---------------------------------------------------------------------------
// Schema planning
// ---------------------------------------------------------------------------

std::string InlineMapping::ColPrefix(const std::string& path) {
  return path.empty() ? "" : "c_" + path + "_";
}

Result<std::unique_ptr<InlineMapping>> InlineMapping::Create(
    const xml::Dtd& dtd, const std::string& root_name, bool force_no_inlining) {
  auto m = std::unique_ptr<InlineMapping>(new InlineMapping());
  ASSIGN_OR_RETURN(m->sdtd_, xml::SimplifyDtd(dtd));
  m->root_name_ = root_name;
  if (m->sdtd_.elements.count(root_name) == 0) {
    return Status::InvalidArgument("root element '" + root_name +
                                   "' not declared in the DTD");
  }

  // 1. Decide which element types get their own table.
  std::set<std::string> tables;
  tables.insert(root_name);
  for (const std::string& r : m->sdtd_.recursive) tables.insert(r);
  for (const auto& [name, deg] : m->sdtd_.in_degree) {
    if (deg >= 2) tables.insert(name);
  }
  for (const auto& [pname, se] : m->sdtd_.elements) {
    (void)pname;
    for (const auto& c : se.children) {
      if (c.mult == Multiplicity::kStar) tables.insert(c.name);
    }
  }
  if (force_no_inlining) {
    for (const auto& [name, se] : m->sdtd_.elements) {
      (void)se;
      tables.insert(name);
    }
  }

  // 2. Build each table's column plan by walking the inline closure.
  std::set<std::string> used_table_names{"inl_docs"};
  for (const std::string& x : tables) {
    std::string base = "inl_" + SanitizeName(x);
    std::string tname = base;
    int suffix = 2;
    while (used_table_names.count(tname) > 0) {
      tname = base + "_" + std::to_string(suffix++);
    }
    used_table_names.insert(tname);

    std::vector<Column> cols{
        {"docid", DataType::kInt, false, ""},
        {"id", DataType::kInt, false, ""},
        {"pid", DataType::kInt, true, ""},
        {"ppath", DataType::kString, true, ""},
        {"seq", DataType::kInt, false, ""},
        {"ord", DataType::kInt, false, ""},
    };
    std::set<std::string> used_cols;
    for (const auto& c : cols) used_cols.insert(c.name);
    auto add_col = [&](std::string name, DataType type) {
      while (used_cols.count(name) > 0) name += "_x";
      used_cols.insert(name);
      cols.push_back({name, type, true, ""});
      return name;
    };

    m->storage_[x] = {true, tname, ""};
    m->table_element_[tname] = x;
    m->path_element_[{tname, ""}] = x;

    // Recursive closure over inlined descendants.
    struct Planner {
      InlineMapping* m;
      const std::set<std::string>* tables;
      const std::string* tname;
      std::function<std::string(std::string, DataType)> add_col;

      Status Plan(const std::string& type, const std::string& path) {
        auto it = m->sdtd_.elements.find(type);
        if (it == m->sdtd_.elements.end()) {
          return Status::InvalidArgument("element '" + type +
                                         "' referenced but not declared");
        }
        const SimplifiedElement& se = it->second;
        std::string prefix = ColPrefix(path);
        if (se.has_text || se.any) {
          add_col(prefix.empty() ? "tx" : prefix + "tx", DataType::kString);
        }
        for (const auto& attr : se.attributes) {
          add_col((prefix.empty() ? "at_" : prefix + "at_") +
                      SanitizeName(attr.name),
                  DataType::kString);
        }
        for (const auto& child : se.children) {
          if (tables->count(child.name) > 0) continue;  // own table
          std::string cpath = path.empty()
                                  ? SanitizeName(child.name)
                                  : path + "_" + SanitizeName(child.name);
          add_col("c_" + cpath + "_ex", DataType::kBool);
          add_col("c_" + cpath + "_id", DataType::kInt);
          add_col("c_" + cpath + "_seq", DataType::kInt);
          m->storage_[child.name] = {false, *tname, cpath};
          m->path_element_[{*tname, cpath}] = child.name;
          RETURN_IF_ERROR(Plan(child.name, cpath));
        }
        return Status::OK();
      }
    };
    Planner planner{m.get(), &tables, &tname, add_col};
    RETURN_IF_ERROR(planner.Plan(x, ""));
    m->table_columns_[x] = std::move(cols);
  }
  return m;
}

Status InlineMapping::Initialize(rdb::Database* db) {
  RETURN_IF_ERROR(db->Execute("CREATE TABLE inl_docs (docid INTEGER NOT NULL, "
                              "max_id INTEGER NOT NULL, "
                              "root_id INTEGER NOT NULL)")
                      .status());
  for (const auto& [elem, cols] : table_columns_) {
    const std::string& tname = storage_.at(elem).table;
    ASSIGN_OR_RETURN(rdb::Table * t,
                     db->CreateTable(tname, rdb::Schema(cols)));
    RETURN_IF_ERROR(t->CreateIndex(tname + "_id", {"docid", "id"}));
    RETURN_IF_ERROR(t->CreateIndex(tname + "_pid", {"docid", "pid"}));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Node references
// ---------------------------------------------------------------------------

rdb::Value InlineMapping::MakeRef(const std::string& table, int64_t row_id,
                                  const std::string& path) {
  return Value(table + "|" + std::to_string(row_id) + "|" + path);
}

Result<InlineMapping::ParsedRef> InlineMapping::ParseRef(
    const rdb::Value& id) const {
  if (id.type() != DataType::kString) {
    return Status::InvalidArgument("inline node ids are strings");
  }
  std::vector<std::string> parts = Split(id.AsString(), '|');
  if (parts.size() != 3 && parts.size() != 4) {
    return Status::InvalidArgument("malformed inline node id '" +
                                   id.AsString() + "'");
  }
  ParsedRef ref;
  ref.table = parts[0];
  ASSIGN_OR_RETURN(ref.row_id, ParseInt64(parts[1]));
  ref.path = parts[2];
  if (parts.size() == 4) {
    if (parts[3].empty() || parts[3][0] != '@') {
      return Status::InvalidArgument("malformed attribute ref");
    }
    ref.attr = parts[3].substr(1);
  }
  return ref;
}

Result<std::string> InlineMapping::ElementTypeAt(const ParsedRef& ref) const {
  auto it = path_element_.find({ref.table, ref.path});
  if (it == path_element_.end()) {
    return Status::NotFound("no element at " + ref.table + "|" + ref.path);
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

struct InlineMapping::RowBuffer {
  std::string table;
  std::map<std::string, Value> values;
};

Status InlineMapping::StoreElement(const xml::Node& el, DocId doc,
                                   int64_t* counter, RowBuffer* host_row,
                                   const std::string& path, int64_t pid,
                                   const std::string& ppath, int64_t seq,
                                   int64_t ord, rdb::Database* db) {
  auto sit = storage_.find(el.name());
  if (sit == storage_.end()) {
    return Status::ConstraintError("element '" + el.name() +
                                   "' not declared in the DTD");
  }
  const Storage& st = sit->second;
  const SimplifiedElement& se = sdtd_.elements.at(el.name());

  RowBuffer own_row;
  RowBuffer* row = host_row;
  std::string my_path = path;
  int64_t my_id = (*counter)++;
  int64_t my_row_id = 0;

  if (st.is_table) {
    own_row.table = st.table;
    own_row.values["docid"] = Value(doc);
    own_row.values["id"] = Value(my_id);
    own_row.values["pid"] = pid == 0 ? Value::Null() : Value(pid);
    own_row.values["ppath"] = Value(ppath);
    own_row.values["seq"] = Value(seq);
    own_row.values["ord"] = Value(ord);
    row = &own_row;
    my_path = "";
    my_row_id = my_id;
  } else {
    if (row == nullptr) {
      return Status::Internal("inlined element without a host row");
    }
    std::string prefix = ColPrefix(st.path);
    if (row->values.count(prefix + "ex") > 0) {
      return Status::ConstraintError(
          "element '" + el.name() +
          "' occurs more than once but the DTD allows at most one");
    }
    row->values[prefix + "ex"] = Value(true);
    row->values[prefix + "id"] = Value(my_id);
    row->values[prefix + "seq"] = Value(seq);
    my_path = st.path;
    my_row_id = row->values.at("id").AsInt();
  }

  // Attributes.
  std::string prefix = ColPrefix(my_path);
  std::set<std::string> declared_attrs;
  for (const auto& ad : se.attributes) declared_attrs.insert(ad.name);
  for (const auto& a : el.attributes()) {
    if (declared_attrs.count(a->name()) == 0) {
      return Status::ConstraintError("attribute '" + a->name() +
                                     "' of element '" + el.name() +
                                     "' not declared in the DTD");
    }
    row->values[(prefix.empty() ? "at_" : prefix + "at_") +
                SanitizeName(a->name())] = Value(a->value());
  }

  // Content.
  std::string text;
  int64_t child_seq = 0;
  std::map<std::string, int64_t> ords;
  std::set<std::string> allowed;
  for (const auto& c : se.children) allowed.insert(c.name);
  for (const auto& c : el.children()) {
    switch (c->kind()) {
      case xml::NodeKind::kText:
        if (!se.has_text && !se.any) {
          if (IsAllWhitespace(c->value())) break;
          return Status::ConstraintError("unexpected text content in '" +
                                         el.name() + "'");
        }
        text += c->value();
        break;
      case xml::NodeKind::kElement: {
        if (allowed.count(c->name()) == 0) {
          return Status::ConstraintError("child '" + c->name() +
                                         "' not allowed in '" + el.name() +
                                         "' by the DTD");
        }
        ++child_seq;
        int64_t o = ++ords[c->name()];
        RETURN_IF_ERROR(StoreElement(*c, doc, counter, row, my_path, my_row_id,
                                     my_path, child_seq, o, db));
        break;
      }
      default:
        break;
    }
  }
  if (!text.empty()) {
    row->values[prefix.empty() ? "tx" : prefix + "tx"] = Value(std::move(text));
  }

  if (st.is_table) {
    // Materialise the row in declared column order.
    const std::vector<Column>& cols = table_columns_.at(el.name());
    rdb::Row out;
    out.reserve(cols.size());
    for (const Column& c : cols) {
      auto it = own_row.values.find(c.name);
      out.push_back(it == own_row.values.end() ? Value::Null() : it->second);
    }
    rdb::Table* t = db->FindTable(st.table);
    if (t == nullptr) return Status::Internal("missing table " + st.table);
    ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid, t->Insert(std::move(out)));
  }
  return Status::OK();
}

Result<DocId> InlineMapping::NextDocId(rdb::Database* db) const {
  return NextIdFromMax(db, "inl_docs", "docid");
}

Result<std::vector<DocId>> InlineMapping::ListDocIds(rdb::Database* db) const {
  return DistinctDocIds(db, "inl_docs");
}

Status InlineMapping::StoreWithId(const xml::Document& doc, DocId docid,
                                  rdb::Database* db) {
  const xml::Node* root = doc.root();
  if (root == nullptr) return Status::InvalidArgument("document has no root");
  if (root->name() != root_name_) {
    return Status::ConstraintError("root element '" + root->name() +
                                   "' does not match DTD root '" + root_name_ +
                                   "'");
  }
  int64_t counter = 1;
  RETURN_IF_ERROR(StoreElement(*root, docid, &counter, nullptr, "", 0, "", 1, 1,
                               db));
  return ExecPrepared(db, "INSERT INTO inl_docs VALUES (?, ?, 1)",
                      {Value(docid), Value(counter - 1)})
      .status();
}

Result<DocId> InlineMapping::StoreImpl(const xml::Document& doc,
                                       rdb::Database* db) {
  ASSIGN_OR_RETURN(DocId docid, NextDocId(db));
  RETURN_IF_ERROR(StoreWithId(doc, docid, db));
  return docid;
}

Status InlineMapping::RemoveImpl(DocId doc, rdb::Database* db) {
  for (const auto& [elem, cols] : table_columns_) {
    (void)cols;
    RETURN_IF_ERROR(ExecPrepared(db,
                                 "DELETE FROM " + storage_.at(elem).table +
                                     " WHERE docid = ?",
                                 {DV(doc)})
                        .status());
  }
  return ExecPrepared(db, "DELETE FROM inl_docs WHERE docid = ?", {DV(doc)})
      .status();
}

// ---------------------------------------------------------------------------
// Query primitives
// ---------------------------------------------------------------------------

Result<Value> InlineMapping::RootElement(rdb::Database* db, DocId doc) const {
  const Storage& st = storage_.at(root_name_);
  ASSIGN_OR_RETURN(
      QueryResult r,
      ExecPrepared(db,
                   "SELECT id FROM " + st.table +
                       " WHERE docid = ? AND pid IS NULL",
                   {DV(doc)}));
  if (r.rows.empty()) return Status::NotFound("document " + D(doc));
  return MakeRef(st.table, r.rows[0][0].AsInt(), "");
}

Result<NodeSet> InlineMapping::AllElements(rdb::Database* db, DocId doc,
                                           const std::string& name_test) const {
  NodeSet out;
  for (const auto& [type, st] : storage_) {
    if (name_test != "*" && type != name_test) continue;
    if (st.is_table) {
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT id FROM " + st.table +
                           " WHERE docid = ? ORDER BY id",
                       {DV(doc)}));
      for (auto& row : r.rows) {
        out.push_back(MakeRef(st.table, row[0].AsInt(), ""));
      }
    } else {
      std::string ex = "c_" + st.path + "_ex";
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT id FROM " + st.table + " WHERE docid = ? AND " +
                           ex + " = TRUE ORDER BY id",
                       {DV(doc)}));
      for (auto& row : r.rows) {
        out.push_back(MakeRef(st.table, row[0].AsInt(), st.path));
      }
    }
  }
  return out;
}

Result<std::vector<InlineMapping::ChildHit>> InlineMapping::ChildrenOf(
    rdb::Database* db, DocId doc, const ParsedRef& ref) const {
  ASSIGN_OR_RETURN(std::string type, ElementTypeAt(ref));
  const SimplifiedElement& se = sdtd_.elements.at(type);
  std::vector<ChildHit> hits;

  // One row fetch serves every inlined child.
  ASSIGN_OR_RETURN(
      QueryResult row,
      ExecPrepared(db,
                   "SELECT * FROM " + ref.table + " WHERE docid = ? AND id = ?",
                   {DV(doc), Value(ref.row_id)}));
  if (row.rows.empty()) {
    return Status::NotFound("inline row " + std::to_string(ref.row_id));
  }
  auto col_value = [&](const std::string& name) -> Value {
    auto idx = row.schema.TryIndexOf(name);
    return idx.has_value() ? row.rows[0][*idx] : Value::Null();
  };

  for (const auto& child : se.children) {
    const Storage& cst = storage_.at(child.name);
    if (cst.is_table) {
      ASSIGN_OR_RETURN(
          QueryResult r,
          ExecPrepared(db,
                       "SELECT id, seq FROM " + cst.table +
                           " WHERE docid = ? AND pid = ? AND ppath = ? "
                           "ORDER BY seq",
                       {DV(doc), Value(ref.row_id), Value(ref.path)}));
      for (auto& rr : r.rows) {
        hits.push_back({rr[1].AsInt(), child.name,
                        MakeRef(cst.table, rr[0].AsInt(), "")});
      }
    } else {
      Value ex = col_value("c_" + cst.path + "_ex");
      if (!ex.is_null() && ex.AsBool()) {
        Value seq = col_value("c_" + cst.path + "_seq");
        hits.push_back({seq.is_null() ? 0 : seq.AsInt(), child.name,
                        MakeRef(ref.table, ref.row_id, cst.path)});
      }
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const ChildHit& a, const ChildHit& b) { return a.seq < b.seq; });
  return hits;
}

Result<std::vector<StepResult>> InlineMapping::Step(
    rdb::Database* db, DocId doc, const NodeSet& context, xpath::Axis axis,
    const std::string& name_test) const {
  std::vector<StepResult> out;
  for (const Value& ctx : context) {
    ASSIGN_OR_RETURN(ParsedRef ref, ParseRef(ctx));
    if (!ref.attr.empty()) continue;  // attributes have no children
    switch (axis) {
      case xpath::Axis::kChild: {
        ASSIGN_OR_RETURN(std::vector<ChildHit> hits, ChildrenOf(db, doc, ref));
        for (const auto& h : hits) {
          if (name_test == "*" || h.name == name_test) {
            out.push_back({ctx, h.ref});
          }
        }
        break;
      }
      case xpath::Axis::kDescendant: {
        // BFS through ChildrenOf.
        std::vector<ParsedRef> frontier{ref};
        while (!frontier.empty()) {
          std::vector<ParsedRef> next;
          for (const ParsedRef& f : frontier) {
            ASSIGN_OR_RETURN(std::vector<ChildHit> hits, ChildrenOf(db, doc, f));
            for (const auto& h : hits) {
              if (name_test == "*" || h.name == name_test) {
                out.push_back({ctx, h.ref});
              }
              ASSIGN_OR_RETURN(ParsedRef pr, ParseRef(h.ref));
              next.push_back(std::move(pr));
            }
          }
          frontier = std::move(next);
        }
        break;
      }
      case xpath::Axis::kAttribute: {
        ASSIGN_OR_RETURN(std::string type, ElementTypeAt(ref));
        const SimplifiedElement& se = sdtd_.elements.at(type);
        if (se.attributes.empty()) break;
        ASSIGN_OR_RETURN(
            QueryResult row,
            ExecPrepared(db,
                         "SELECT * FROM " + ref.table +
                             " WHERE docid = ? AND id = ?",
                         {DV(doc), Value(ref.row_id)}));
        if (row.rows.empty()) break;
        std::string prefix = ColPrefix(ref.path);
        for (const auto& ad : se.attributes) {
          if (name_test != "*" && ad.name != name_test) continue;
          std::string col = (prefix.empty() ? "at_" : prefix + "at_") +
                            SanitizeName(ad.name);
          auto idx = row.schema.TryIndexOf(col);
          if (!idx.has_value() || row.rows[0][*idx].is_null()) continue;
          out.push_back({ctx, Value(ref.table + "|" +
                                    std::to_string(ref.row_id) + "|" + ref.path +
                                    "|@" + ad.name)});
        }
        break;
      }
    }
  }
  return out;
}

Result<std::vector<std::string>> InlineMapping::StringValues(
    rdb::Database* db, DocId doc, const NodeSet& nodes) const {
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const Value& v : nodes) {
    ASSIGN_OR_RETURN(ParsedRef ref, ParseRef(v));
    ASSIGN_OR_RETURN(
        QueryResult row,
        ExecPrepared(db,
                     "SELECT * FROM " + ref.table +
                         " WHERE docid = ? AND id = ?",
                     {DV(doc), Value(ref.row_id)}));
    if (row.rows.empty()) return Status::NotFound("inline row");
    auto col_value = [&](const std::string& name) -> Value {
      auto idx = row.schema.TryIndexOf(name);
      return idx.has_value() ? row.rows[0][*idx] : Value::Null();
    };
    std::string prefix = ColPrefix(ref.path);
    if (!ref.attr.empty()) {
      Value av = col_value((prefix.empty() ? "at_" : prefix + "at_") +
                           SanitizeName(ref.attr));
      out.push_back(av.is_null() ? "" : av.AsString());
      continue;
    }
    // Element: own text plus descendants' text in sequence order.
    struct Collector {
      const InlineMapping* m;
      rdb::Database* db;
      DocId doc;
      Status Collect(const ParsedRef& r, std::string* acc) {
        ASSIGN_OR_RETURN(
            QueryResult row,
            ExecPrepared(db,
                         "SELECT * FROM " + r.table +
                             " WHERE docid = ? AND id = ?",
                         {DV(doc), Value(r.row_id)}));
        if (row.rows.empty()) return Status::OK();
        std::string prefix = ColPrefix(r.path);
        auto idx = row.schema.TryIndexOf(prefix.empty() ? "tx" : prefix + "tx");
        if (idx.has_value() && !row.rows[0][*idx].is_null()) {
          acc->append(row.rows[0][*idx].AsString());
        }
        ASSIGN_OR_RETURN(std::vector<ChildHit> hits, m->ChildrenOf(db, doc, r));
        for (const auto& h : hits) {
          ASSIGN_OR_RETURN(ParsedRef cr, m->ParseRef(h.ref));
          RETURN_IF_ERROR(Collect(cr, acc));
        }
        return Status::OK();
      }
    };
    Collector c{this, db, doc};
    std::string acc;
    RETURN_IF_ERROR(c.Collect(ref, &acc));
    out.push_back(std::move(acc));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reconstruction
// ---------------------------------------------------------------------------

Status InlineMapping::ReconstructInto(rdb::Database* db, DocId doc,
                                      const ParsedRef& ref,
                                      xml::Node* out) const {
  ASSIGN_OR_RETURN(std::string type, ElementTypeAt(ref));
  const SimplifiedElement& se = sdtd_.elements.at(type);
  ASSIGN_OR_RETURN(
      QueryResult row,
      ExecPrepared(db,
                   "SELECT * FROM " + ref.table + " WHERE docid = ? AND id = ?",
                   {DV(doc), Value(ref.row_id)}));
  if (row.rows.empty()) return Status::NotFound("inline row");
  auto col_value = [&](const std::string& name) -> Value {
    auto idx = row.schema.TryIndexOf(name);
    return idx.has_value() ? row.rows[0][*idx] : Value::Null();
  };
  std::string prefix = ColPrefix(ref.path);
  for (const auto& ad : se.attributes) {
    Value av = col_value((prefix.empty() ? "at_" : prefix + "at_") +
                         SanitizeName(ad.name));
    if (!av.is_null()) out->SetAttr(ad.name, av.AsString());
  }
  Value tx = col_value(prefix.empty() ? "tx" : prefix + "tx");
  if (!tx.is_null() && !tx.AsString().empty()) out->AddText(tx.AsString());
  ASSIGN_OR_RETURN(std::vector<ChildHit> hits, ChildrenOf(db, doc, ref));
  for (const auto& h : hits) {
    xml::Node* child = out->AddElement(h.name);
    ASSIGN_OR_RETURN(ParsedRef cr, ParseRef(h.ref));
    RETURN_IF_ERROR(ReconstructInto(db, doc, cr, child));
  }
  return Status::OK();
}

Result<std::unique_ptr<xml::Node>> InlineMapping::ReconstructSubtree(
    rdb::Database* db, DocId doc, const rdb::Value& node) const {
  ASSIGN_OR_RETURN(ParsedRef ref, ParseRef(node));
  if (!ref.attr.empty()) {
    ASSIGN_OR_RETURN(std::vector<std::string> vals,
                     StringValues(db, doc, {node}));
    return std::make_unique<xml::Node>(xml::NodeKind::kAttribute, ref.attr,
                                       vals[0]);
  }
  ASSIGN_OR_RETURN(std::string type, ElementTypeAt(ref));
  auto out = std::make_unique<xml::Node>(xml::NodeKind::kElement, type);
  RETURN_IF_ERROR(ReconstructInto(db, doc, ref, out.get()));
  return out;
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

Status InlineMapping::DeleteRowTree(rdb::Database* db, DocId doc,
                                    const std::string& table,
                                    int64_t row_id) const {
  // Child table rows anywhere under this row.
  for (const auto& [elem, cols] : table_columns_) {
    (void)cols;
    const std::string& ctable = storage_.at(elem).table;
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT id FROM " + ctable +
                         " WHERE docid = ? AND pid = ?",
                     {DV(doc), Value(row_id)}));
    for (auto& rr : r.rows) {
      RETURN_IF_ERROR(DeleteRowTree(db, doc, ctable, rr[0].AsInt()));
    }
  }
  return ExecPrepared(db,
                      "DELETE FROM " + table + " WHERE docid = ? AND id = ?",
                      {DV(doc), Value(row_id)})
      .status();
}

Status InlineMapping::DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                                    const rdb::Value& node) {
  ASSIGN_OR_RETURN(ParsedRef ref, ParseRef(node));
  if (!ref.attr.empty()) {
    return Status::InvalidArgument("cannot delete an attribute as a subtree");
  }
  if (ref.path.empty()) {
    ASSIGN_OR_RETURN(std::string type, ElementTypeAt(ref));
    if (type == root_name_) {
      return Status::InvalidArgument("cannot delete the root element");
    }
    return DeleteRowTree(db, doc, ref.table, ref.row_id);
  }
  // Inlined element: NULL its column group (and deeper prefixes), delete any
  // table rows hanging below it.
  const std::string elem_type = path_element_.at({ref.table, ref.path});
  (void)elem_type;
  // Table rows below: ppath equals ref.path or extends it.
  for (const auto& [elem, cols] : table_columns_) {
    (void)cols;
    const std::string& ctable = storage_.at(elem).table;
    ASSIGN_OR_RETURN(
        QueryResult r,
        ExecPrepared(db,
                     "SELECT id, ppath FROM " + ctable +
                         " WHERE docid = ? AND pid = ?",
                     {DV(doc), Value(ref.row_id)}));
    for (auto& rr : r.rows) {
      const std::string& ppath = rr[1].is_null() ? "" : rr[1].AsString();
      if (ppath == ref.path || StartsWith(ppath, ref.path + "_")) {
        RETURN_IF_ERROR(DeleteRowTree(db, doc, ctable, rr[0].AsInt()));
      }
    }
  }
  // NULL out the column group.
  std::string host_elem = table_element_.at(ref.table);
  std::string sets;
  for (const Column& c : table_columns_.at(host_elem)) {
    if (StartsWith(c.name, "c_" + ref.path + "_")) {
      if (!sets.empty()) sets += ", ";
      sets += c.name + " = NULL";
    }
  }
  if (sets.empty()) return Status::Internal("no columns for inlined element");
  return ExecPrepared(db,
                      "UPDATE " + ref.table + " SET " + sets +
                          " WHERE docid = ? AND id = ?",
                      {DV(doc), Value(ref.row_id)})
      .status();
}

Status InlineMapping::InsertSubtreeImpl(rdb::Database* db, DocId doc,
                                    const rdb::Value& parent,
                                    const xml::Node& subtree) {
  if (!subtree.IsElement()) {
    return Status::InvalidArgument("subtree root must be an element");
  }
  ASSIGN_OR_RETURN(ParsedRef ref, ParseRef(parent));
  if (!ref.attr.empty()) {
    return Status::InvalidArgument("cannot insert under an attribute");
  }
  ASSIGN_OR_RETURN(std::string ptype, ElementTypeAt(ref));
  const SimplifiedElement& pse = sdtd_.elements.at(ptype);
  bool allowed = false;
  for (const auto& c : pse.children) allowed = allowed || c.name == subtree.name();
  if (!allowed) {
    return Status::ConstraintError("child '" + subtree.name() +
                                   "' not allowed in '" + ptype + "'");
  }
  const Storage& cst = storage_.at(subtree.name());
  if (!cst.is_table) {
    return Status::Unsupported(
        "inserting a single-occurrence inlined child is not supported; "
        "only set-valued (table) children can be appended");
  }
  ASSIGN_OR_RETURN(QueryResult maxq,
                   ExecPrepared(db,
                                "SELECT max_id FROM inl_docs WHERE docid = ?",
                                {DV(doc)}));
  if (maxq.rows.empty()) return Status::NotFound("document " + D(doc));
  int64_t counter = maxq.rows[0][0].AsInt() + 1;
  // seq/ord: append after existing children.
  ASSIGN_OR_RETURN(std::vector<ChildHit> hits, ChildrenOf(db, doc, ref));
  int64_t seq = hits.empty() ? 1 : hits.back().seq + 1;
  int64_t ord = 1;
  for (const auto& h : hits) {
    if (h.name == subtree.name()) ++ord;
  }
  RETURN_IF_ERROR(StoreElement(subtree, doc, &counter, nullptr, "", ref.row_id,
                               ref.path, seq, ord, db));
  return ExecPrepared(db, "UPDATE inl_docs SET max_id = ? WHERE docid = ?",
                      {Value(counter - 1), DV(doc)})
      .status();
}

// ---------------------------------------------------------------------------
// SQL translation & misc
// ---------------------------------------------------------------------------

Result<std::string> InlineMapping::TranslatePathToSql(
    DocId doc, const xpath::PathExpr& path) const {
  if (path.HasDescendant() || !path.PredicateFree()) {
    return Status::Unsupported("inline mapping: only child-axis, "
                               "predicate-free paths translate to one SQL");
  }
  std::string from, where;
  int joins = 0;
  std::string cur_alias;
  std::string cur_path;
  std::string cur_type;
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const auto& step = path.steps[i];
    if (step.IsWildcard()) {
      return Status::Unsupported("inline mapping: wildcard steps");
    }
    if (step.axis == xpath::Axis::kAttribute) {
      if (cur_alias.empty()) {
        return Status::InvalidArgument("attribute step at path head");
      }
      std::string col = (ColPrefix(cur_path).empty()
                             ? "at_"
                             : ColPrefix(cur_path) + "at_") +
                        SanitizeName(step.name);
      return "SELECT " + cur_alias + "." + col + " FROM " + from + " WHERE " +
             where + " AND " + cur_alias + "." + col + " IS NOT NULL";
    }
    if (i == 0) {
      if (step.name != root_name_) {
        return Status::NotFound("path head '" + step.name +
                                "' is not the DTD root");
      }
      cur_type = root_name_;
      cur_path = "";
      cur_alias = "r0";
      from = storage_.at(root_name_).table + " " + cur_alias;
      where = cur_alias + ".docid = " + D(doc) + " AND " + cur_alias +
              ".pid IS NULL";
      continue;
    }
    auto sit = storage_.find(step.name);
    if (sit == storage_.end()) {
      return Status::NotFound("element '" + step.name + "' not in the DTD");
    }
    const Storage& st = sit->second;
    if (st.is_table) {
      ++joins;
      std::string a = "r" + std::to_string(joins);
      from += ", " + st.table + " " + a;
      where += " AND " + a + ".docid = " + D(doc) + " AND " + a + ".pid = " +
               cur_alias + ".id AND " + a + ".ppath = " +
               SqlLiteral(Value(cur_path));
      cur_alias = a;
      cur_path = "";
      cur_type = step.name;
    } else {
      // Same table, no join: just require presence.
      if (st.table != storage_.at(cur_type).table && !cur_path.empty()) {
        // Shouldn't happen: inlined child lives in the ancestor's table.
      }
      where += " AND " + cur_alias + ".c_" + st.path + "_ex = TRUE";
      cur_path = st.path;
      cur_type = step.name;
    }
  }
  std::string id_col =
      cur_path.empty() ? "id" : "c_" + cur_path + "_id";
  return "SELECT " + cur_alias + "." + id_col + " FROM " + from + " WHERE " +
         where;
}

std::vector<std::string> InlineMapping::TableElementNames() const {
  std::vector<std::string> out;
  for (const auto& [elem, cols] : table_columns_) {
    (void)cols;
    out.push_back(elem);
  }
  return out;
}

std::vector<std::string> InlineMapping::TableNames(const rdb::Database& db) const {
  (void)db;
  std::vector<std::string> out{"inl_docs"};
  for (const auto& [tname, elem] : table_element_) {
    (void)elem;
    out.push_back(tname);
  }
  return out;
}

}  // namespace xmlrdb::shred
