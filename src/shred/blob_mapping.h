// Blob mapping: the "use the RDBMS as a smart file system" baseline.
//
//   blob_docs(docid, content)
//
// The whole document is one VARCHAR. Queries parse the text (once — a
// per-document DOM cache mirrors what any real system would do) and navigate
// in memory via the DOM evaluator primitives. Node ids are pre-order ranks
// over the full node sequence (elements, attributes, text).
//
// Expected behaviour in the benchmarks: fastest store, fastest full-document
// retrieval, no indexability — every first-touch query pays a full parse.

#ifndef XMLRDB_SHRED_BLOB_MAPPING_H_
#define XMLRDB_SHRED_BLOB_MAPPING_H_

#include <map>

#include "shred/mapping.h"

namespace xmlrdb::shred {

class BlobMapping : public Mapping {
 public:
  std::string name() const override { return "blob"; }

  Status Initialize(rdb::Database* db) override;
  Result<DocId> StoreImpl(const xml::Document& doc, rdb::Database* db) override;
  bool SupportsParallelStore() const override { return true; }
  Result<DocId> NextDocId(rdb::Database* db) const override;
  Status StoreWithId(const xml::Document& doc, DocId docid,
                     rdb::Database* db) override;
  Result<std::vector<DocId>> ListDocIds(rdb::Database* db) const override;
  Status RemoveImpl(DocId doc, rdb::Database* db) override;

  Result<rdb::Value> RootElement(rdb::Database* db, DocId doc) const override;
  Result<NodeSet> AllElements(rdb::Database* db, DocId doc,
                              const std::string& name_test) const override;
  Result<std::vector<StepResult>> Step(rdb::Database* db, DocId doc,
                                       const NodeSet& context, xpath::Axis axis,
                                       const std::string& name_test) const override;
  Result<std::vector<std::string>> StringValues(
      rdb::Database* db, DocId doc, const NodeSet& nodes) const override;

  Result<std::unique_ptr<xml::Node>> ReconstructSubtree(
      rdb::Database* db, DocId doc, const rdb::Value& node) const override;

  Status InsertSubtreeImpl(rdb::Database* db, DocId doc, const rdb::Value& parent,
                       const xml::Node& subtree) override;
  Status DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                       const rdb::Value& node) override;

  /// Drops the DOM cache (so benchmarks can measure cold-parse cost).
  void ClearCache() { cache_.clear(); }

 protected:
  std::vector<std::string> TableNames(const rdb::Database& db) const override {
    (void)db;
    return {"blob_docs"};
  }

 private:
  struct CachedDoc {
    std::unique_ptr<xml::Document> doc;
    std::vector<xml::Node*> nodes;               // id -> node (pre-order)
    std::map<const xml::Node*, int64_t> ids;     // node -> id
  };

  Result<CachedDoc*> Load(rdb::Database* db, DocId doc) const;
  Status Flush(rdb::Database* db, DocId doc);

  mutable std::map<DocId, CachedDoc> cache_;
};

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_BLOB_MAPPING_H_
