// Edge mapping (Florescu & Kossmann 1999): one universal table of edges.
//
//   edge(docid, source, ordinal, kind, name, target, value)
//
// Every node (element, attribute, text) is one row describing the edge from
// its parent: `source` is the parent node id, `target` the node's own id,
// `ordinal` the position among the parent's children (attributes before
// children), `kind` one of 'elem' | 'attr' | 'text'. The document node has
// id 0; node ids are assigned in document (pre-)order, so id order IS
// document order. Values are stored inline as strings (the "universal value
// column" simplification; the paper's separate per-type value tables change
// constants, not plan shapes).
//
// Path steps become self-joins on the edge table. The descendant axis needs
// transitive closure, evaluated semi-naively with a frontier table — the
// known weakness this mapping trades for schema universality.

#ifndef XMLRDB_SHRED_EDGE_MAPPING_H_
#define XMLRDB_SHRED_EDGE_MAPPING_H_

#include "shred/mapping.h"

namespace xmlrdb::shred {

class EdgeMapping : public Mapping {
 public:
  std::string name() const override { return "edge"; }

  Status Initialize(rdb::Database* db) override;
  Result<DocId> StoreImpl(const xml::Document& doc, rdb::Database* db) override;
  bool SupportsParallelStore() const override { return true; }
  Result<DocId> NextDocId(rdb::Database* db) const override;
  Status StoreWithId(const xml::Document& doc, DocId docid,
                     rdb::Database* db) override;
  Result<std::vector<DocId>> ListDocIds(rdb::Database* db) const override;
  Status RemoveImpl(DocId doc, rdb::Database* db) override;

  Result<rdb::Value> RootElement(rdb::Database* db, DocId doc) const override;
  Result<NodeSet> AllElements(rdb::Database* db, DocId doc,
                              const std::string& name_test) const override;
  Result<std::vector<StepResult>> Step(rdb::Database* db, DocId doc,
                                       const NodeSet& context, xpath::Axis axis,
                                       const std::string& name_test) const override;
  Result<std::vector<std::string>> StringValues(
      rdb::Database* db, DocId doc, const NodeSet& nodes) const override;

  Result<std::unique_ptr<xml::Node>> ReconstructSubtree(
      rdb::Database* db, DocId doc, const rdb::Value& node) const override;

  Status InsertSubtreeImpl(rdb::Database* db, DocId doc, const rdb::Value& parent,
                       const xml::Node& subtree) override;
  Status DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                       const rdb::Value& node) override;

  /// Child-axis-only paths translate to an n-way self join; descendant axes
  /// are rejected (closure is not expressible in one statement).
  Result<std::string> TranslatePathToSql(DocId doc,
                                         const xpath::PathExpr& path) const override;

 protected:
  std::vector<std::string> TableNames(const rdb::Database& db) const override {
    (void)db;
    return {"edge"};
  }

 private:
  /// Collects the node-id set of the subtree rooted at `node` (inclusive).
  Result<NodeSet> SubtreeIds(rdb::Database* db, DocId doc,
                             const rdb::Value& node) const;
};

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_EDGE_MAPPING_H_
