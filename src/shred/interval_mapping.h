// Interval mapping (Grust 2002 "tree encoding"): every node is one row
//
//   iv_nodes(docid, pre, size, level, kind, name, value)
//
// `pre` is the pre-order rank (document order), `size` the number of nodes in
// the subtree below (so the subtree of n spans (pre, pre+size]), `level` the
// depth. Axes become pure range predicates:
//
//   descendant(n) : pre in (n.pre, n.pre + n.size]
//   child(n)      : descendant(n) and level = n.level + 1
//
// which a (docid, pre) or (docid, name, pre) B+-tree answers with one range
// scan — the structural win this mapping trades against update cost: inserts
// and deletes must renumber every following node and resize every ancestor.

#ifndef XMLRDB_SHRED_INTERVAL_MAPPING_H_
#define XMLRDB_SHRED_INTERVAL_MAPPING_H_

#include "shred/mapping.h"

namespace xmlrdb::shred {

class IntervalMapping : public Mapping {
 public:
  /// `with_name_index` toggles the (docid, name, pre) index — the A1 ablation.
  explicit IntervalMapping(bool with_name_index = true)
      : with_name_index_(with_name_index) {}

  std::string name() const override { return "interval"; }

  Status Initialize(rdb::Database* db) override;
  Result<DocId> StoreImpl(const xml::Document& doc, rdb::Database* db) override;
  bool SupportsParallelStore() const override { return true; }
  Result<DocId> NextDocId(rdb::Database* db) const override;
  Status StoreWithId(const xml::Document& doc, DocId docid,
                     rdb::Database* db) override;
  Result<std::vector<DocId>> ListDocIds(rdb::Database* db) const override;
  Status RemoveImpl(DocId doc, rdb::Database* db) override;

  Result<rdb::Value> RootElement(rdb::Database* db, DocId doc) const override;
  Result<NodeSet> AllElements(rdb::Database* db, DocId doc,
                              const std::string& name_test) const override;
  Result<std::vector<StepResult>> Step(rdb::Database* db, DocId doc,
                                       const NodeSet& context, xpath::Axis axis,
                                       const std::string& name_test) const override;
  Result<std::vector<std::string>> StringValues(
      rdb::Database* db, DocId doc, const NodeSet& nodes) const override;

  Result<std::unique_ptr<xml::Node>> ReconstructSubtree(
      rdb::Database* db, DocId doc, const rdb::Value& node) const override;

  Status InsertSubtreeImpl(rdb::Database* db, DocId doc, const rdb::Value& parent,
                       const xml::Node& subtree) override;
  Status DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                       const rdb::Value& node) override;

  /// Any predicate-free path (including '//') is one n-way range self-join.
  Result<std::string> TranslatePathToSql(DocId doc,
                                         const xpath::PathExpr& path) const override;

 protected:
  std::vector<std::string> TableNames(const rdb::Database& db) const override {
    (void)db;
    return {"iv_nodes"};
  }

 private:
  struct NodeInfo {
    int64_t pre, size, level;
  };
  Result<std::vector<NodeInfo>> FetchInfo(rdb::Database* db, DocId doc,
                                          const NodeSet& nodes) const;

  bool with_name_index_;
};

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_INTERVAL_MAPPING_H_
