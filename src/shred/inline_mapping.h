// Inline mapping (Shanmugasundaram et al., VLDB 1999): DTD-driven shredding.
//
// After DTD simplification (xml/dtd_simplify.h), an element type gets its own
// table iff it is the document root, recursive, shared (reachable from two or
// more parent types), or set-valued (some parent may contain it many times).
// Every other element type is *inlined* into its nearest table ancestor as a
// group of columns, eliminating joins for single-occurrence children:
//
//   inl_<X>(docid, id, pid, ppath, seq, ord, tx?, at_<a>..., c_<path>_ex,
//           c_<path>_id, c_<path>_seq, c_<path>_tx?, c_<path>_at_<a>..., ...)
//
//   id     global per-document pre-order node id of the row's element
//   pid    row id of the nearest table-element ancestor instance (NULL: root)
//   ppath  inline path of the actual parent element inside that row
//   seq    position among ALL siblings of the actual parent (document order)
//   ord    position among same-name siblings (positional predicates)
//   c_<path>_* columns materialise one optional/single inlined descendant
//
// Node ids are strings "<table>|<row id>|<inline path>" (elements) and
// "<table>|<row id>|<inline path>|@<name>" (attributes).
//
// Documented limitations (inherent to schema-driven shredding, and matching
// the original paper's data-centric target):
//  * documents must conform to the (simplified) DTD;
//  * mixed content is stored as one concatenated text per element and is
//    reconstructed with the text before the element children;
//  * global document order across different table elements is approximate —
//    sibling order is exact (seq), cross-subtree order is not.

#ifndef XMLRDB_SHRED_INLINE_MAPPING_H_
#define XMLRDB_SHRED_INLINE_MAPPING_H_

#include <map>
#include <set>

#include "shred/mapping.h"
#include "xml/dtd_simplify.h"

namespace xmlrdb::shred {

class InlineMapping : public Mapping {
 public:
  /// Builds the relational schema plan from a simplified DTD.
  /// `force_no_inlining` is the A2 ablation: every element type gets its own
  /// table (pure element-per-table mapping).
  static Result<std::unique_ptr<InlineMapping>> Create(
      const xml::Dtd& dtd, const std::string& root_name,
      bool force_no_inlining = false);

  std::string name() const override { return "inline"; }

  Status Initialize(rdb::Database* db) override;
  Result<DocId> StoreImpl(const xml::Document& doc, rdb::Database* db) override;
  // Caller-assigned ids for the shard router (stores stay serialized).
  Result<DocId> NextDocId(rdb::Database* db) const override;
  Status StoreWithId(const xml::Document& doc, DocId docid,
                     rdb::Database* db) override;
  Result<std::vector<DocId>> ListDocIds(rdb::Database* db) const override;
  Status RemoveImpl(DocId doc, rdb::Database* db) override;

  Result<rdb::Value> RootElement(rdb::Database* db, DocId doc) const override;
  Result<NodeSet> AllElements(rdb::Database* db, DocId doc,
                              const std::string& name_test) const override;
  Result<std::vector<StepResult>> Step(rdb::Database* db, DocId doc,
                                       const NodeSet& context, xpath::Axis axis,
                                       const std::string& name_test) const override;
  Result<std::vector<std::string>> StringValues(
      rdb::Database* db, DocId doc, const NodeSet& nodes) const override;

  Result<std::unique_ptr<xml::Node>> ReconstructSubtree(
      rdb::Database* db, DocId doc, const rdb::Value& node) const override;

  Status InsertSubtreeImpl(rdb::Database* db, DocId doc, const rdb::Value& parent,
                       const xml::Node& subtree) override;
  Status DeleteSubtreeImpl(rdb::Database* db, DocId doc,
                       const rdb::Value& node) override;

  /// Child-only predicate-free paths: consecutive inlined steps need NO join
  /// at all — the headline claim of DTD inlining (experiment T6/A2).
  Result<std::string> TranslatePathToSql(DocId doc,
                                         const xpath::PathExpr& path) const override;

  /// Element types that received their own table (exposed for tests).
  std::vector<std::string> TableElementNames() const;

 protected:
  std::vector<std::string> TableNames(const rdb::Database& db) const override;

 private:
  InlineMapping() = default;

  /// Where one element type's instances live.
  struct Storage {
    bool is_table = false;
    std::string table;  ///< hosting table (own table if is_table)
    std::string path;   ///< inline path inside the host row ("" if is_table)
  };

  struct ParsedRef {
    std::string table;
    int64_t row_id = 0;
    std::string path;
    std::string attr;  ///< non-empty for attribute nodes
  };

  Result<ParsedRef> ParseRef(const rdb::Value& id) const;
  static rdb::Value MakeRef(const std::string& table, int64_t row_id,
                            const std::string& path);

  /// Element type name at a parsed position.
  Result<std::string> ElementTypeAt(const ParsedRef& ref) const;

  /// Column name fragments.
  static std::string ColPrefix(const std::string& path);  // "" or "c_<path>_"

  struct RowBuffer;
  Status StoreElement(const xml::Node& el, DocId doc, int64_t* counter,
                      RowBuffer* host_row, const std::string& path, int64_t pid,
                      const std::string& ppath, int64_t seq, int64_t ord,
                      rdb::Database* db);

  /// One logical child position (merged, seq-ordered) of a context element.
  struct ChildHit {
    int64_t seq;
    std::string name;
    rdb::Value ref;
  };
  Result<std::vector<ChildHit>> ChildrenOf(rdb::Database* db, DocId doc,
                                           const ParsedRef& ref) const;

  Status ReconstructInto(rdb::Database* db, DocId doc, const ParsedRef& ref,
                         xml::Node* out) const;

  Status DeleteRowTree(rdb::Database* db, DocId doc, const std::string& table,
                       int64_t row_id) const;

  xml::SimplifiedDtd sdtd_;
  std::string root_name_;
  /// element type -> storage location
  std::map<std::string, Storage> storage_;
  /// table name -> element type it hosts
  std::map<std::string, std::string> table_element_;
  /// (table, path) -> element type (path "" = the table element itself)
  std::map<std::pair<std::string, std::string>, std::string> path_element_;
  /// element type -> CREATE TABLE column list (only table elements)
  std::map<std::string, std::vector<rdb::Column>> table_columns_;
};

}  // namespace xmlrdb::shred

#endif  // XMLRDB_SHRED_INLINE_MAPPING_H_
