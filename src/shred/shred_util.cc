#include "shred/shred_util.h"

#include <atomic>
#include <cctype>

#include "common/str_util.h"

namespace xmlrdb::shred {

std::string ScratchName(const std::string& base) {
  static std::atomic<uint64_t> next_thread_id{0};
  thread_local uint64_t id = next_thread_id.fetch_add(1);
  return base + "_t" + std::to_string(id);
}

namespace {

// Finds the per-thread scratch table, creating it on first use. Reuse is
// deliberate: CREATE/DROP TABLE take the catalog lock exclusively, which
// serializes concurrent readers — truncating an existing table only takes
// that table's own lock, so steady-state path queries run catalog-shared.
Result<rdb::Table*> ScratchTable(rdb::Database* db, const std::string& name,
                                 rdb::Schema schema) {
  rdb::Table* t = db->FindTable(name);
  if (t != nullptr) {
    bool same = t->schema().size() == schema.size();
    for (size_t i = 0; same && i < schema.size(); ++i) {
      same = t->schema().column(i).type == schema.column(i).type;
    }
    if (!same) {
      RETURN_IF_ERROR(db->DropTable(name));
      t = nullptr;
    }
  }
  if (t == nullptr) return db->CreateTable(name, std::move(schema));
  t->Truncate();
  return t;
}

}  // namespace

Status LoadContextTable(rdb::Database* db, const std::string& name,
                        rdb::DataType id_type, const NodeSet& ids) {
  rdb::Schema schema({rdb::Column{"id", id_type, false, ""}});
  ASSIGN_OR_RETURN(rdb::Table * t, ScratchTable(db, name, std::move(schema)));
  std::vector<rdb::Row> rows;
  rows.reserve(ids.size());
  for (const rdb::Value& v : ids) rows.push_back({v});
  return t->InsertMany(std::move(rows));
}

Status LoadFrontierTable(
    rdb::Database* db, const std::string& name, rdb::DataType id_type,
    const std::vector<std::pair<rdb::Value, rdb::Value>>& rows) {
  rdb::Schema schema({rdb::Column{"origin", id_type, false, ""},
                      rdb::Column{"id", id_type, false, ""}});
  ASSIGN_OR_RETURN(rdb::Table * t, ScratchTable(db, name, std::move(schema)));
  std::vector<rdb::Row> batch;
  batch.reserve(rows.size());
  for (const auto& [origin, id] : rows) batch.push_back({origin, id});
  return t->InsertMany(std::move(batch));
}

Result<int64_t> NextIdFromMax(rdb::Database* db, const std::string& table,
                              const std::string& col) {
  ASSIGN_OR_RETURN(rdb::QueryResult r,
                   ExecPrepared(db, "SELECT MAX(" + col + ") FROM " + table));
  if (r.rows.empty() || r.rows[0][0].is_null()) return static_cast<int64_t>(1);
  return r.rows[0][0].AsInt() + 1;
}

Result<std::vector<DocId>> DistinctDocIds(rdb::Database* db,
                                          const std::string& table) {
  ASSIGN_OR_RETURN(
      rdb::QueryResult r,
      ExecPrepared(db, "SELECT DISTINCT docid FROM " + table +
                           " ORDER BY docid"));
  std::vector<DocId> out;
  out.reserve(r.rows.size());
  for (const rdb::Row& row : r.rows) out.push_back(row[0].AsInt());
  return out;
}

Result<rdb::QueryResult> ExecPrepared(rdb::Database* db, const std::string& sql,
                                      std::vector<rdb::Value> params) {
  ASSIGN_OR_RETURN(rdb::PreparedStatement stmt, db->Prepare(sql));
  return stmt.Execute(std::move(params));
}

std::string SqlLiteral(const rdb::Value& v) {
  if (v.type() == rdb::DataType::kString) return SqlQuote(v.AsString());
  return v.ToString();
}

std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "x" + out;
  }
  return out;
}

}  // namespace xmlrdb::shred
