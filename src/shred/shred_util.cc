#include "shred/shred_util.h"

#include <cctype>

#include "common/str_util.h"

namespace xmlrdb::shred {

Status LoadContextTable(rdb::Database* db, const std::string& name,
                        rdb::DataType id_type, const NodeSet& ids) {
  if (db->FindTable(name) != nullptr) RETURN_IF_ERROR(db->DropTable(name));
  rdb::Schema schema({rdb::Column{"id", id_type, false, ""}});
  ASSIGN_OR_RETURN(rdb::Table * t, db->CreateTable(name, std::move(schema)));
  for (const rdb::Value& v : ids) {
    ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid, t->Insert({v}));
  }
  return Status::OK();
}

Status LoadFrontierTable(
    rdb::Database* db, const std::string& name, rdb::DataType id_type,
    const std::vector<std::pair<rdb::Value, rdb::Value>>& rows) {
  if (db->FindTable(name) != nullptr) RETURN_IF_ERROR(db->DropTable(name));
  rdb::Schema schema({rdb::Column{"origin", id_type, false, ""},
                      rdb::Column{"id", id_type, false, ""}});
  ASSIGN_OR_RETURN(rdb::Table * t, db->CreateTable(name, std::move(schema)));
  for (const auto& [origin, id] : rows) {
    ASSIGN_OR_RETURN([[maybe_unused]] rdb::RowId rid, t->Insert({origin, id}));
  }
  return Status::OK();
}

Result<int64_t> NextIdFromMax(rdb::Database* db, const std::string& table,
                              const std::string& col) {
  ASSIGN_OR_RETURN(rdb::QueryResult r,
                   db->Execute("SELECT MAX(" + col + ") FROM " + table));
  if (r.rows.empty() || r.rows[0][0].is_null()) return static_cast<int64_t>(1);
  return r.rows[0][0].AsInt() + 1;
}

std::string SqlLiteral(const rdb::Value& v) {
  if (v.type() == rdb::DataType::kString) return SqlQuote(v.AsString());
  return v.ToString();
}

std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "x" + out;
  }
  return out;
}

}  // namespace xmlrdb::shred
