#include "xpath/dom_eval.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"

namespace xmlrdb::xpath {

using xml::Node;
using xml::NodeKind;

bool CompareNodeValue(const std::string& node_value, CmpOp op,
                      const rdb::Value& literal) {
  int c;
  if (literal.type() == rdb::DataType::kString) {
    c = node_value.compare(literal.AsString());
    c = c < 0 ? -1 : (c > 0 ? 1 : 0);
  } else {
    auto parsed = ParseDouble(node_value);
    if (!parsed.ok()) return false;
    double lhs = parsed.value();
    double rhs = literal.AsDouble();
    c = lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
  }
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

namespace {

bool NameMatches(const std::string& test, const std::string& name) {
  return test == "*" || test == name;
}

void CollectDescendantElements(const Node& n, const std::string& test,
                               std::vector<const Node*>* out) {
  for (const auto& c : n.children()) {
    if (c->IsElement()) {
      if (NameMatches(test, c->name())) out->push_back(c.get());
      CollectDescendantElements(*c, test, out);
    }
  }
}

/// Evaluates a predicate relative path from `ctx`, returning the string
/// values of all matched nodes.
void EvalRelPath(const Node& ctx, const RelPath& rel, size_t step_idx,
                 std::vector<std::string>* out) {
  if (step_idx >= rel.steps.size()) {
    out->push_back(ctx.StringValue());
    return;
  }
  const auto& rs = rel.steps[step_idx];
  if (rs.attribute) {
    for (const auto& a : ctx.attributes()) {
      if (NameMatches(rs.name, a->name())) out->push_back(a->value());
    }
    return;
  }
  for (const auto& c : ctx.children()) {
    if (c->IsElement() && NameMatches(rs.name, c->name())) {
      EvalRelPath(*c, rel, step_idx + 1, out);
    }
  }
}

bool PredicateHolds(const Node& ctx, const Predicate& pred, size_t position,
                    size_t group_size) {
  switch (pred.kind) {
    case Predicate::Kind::kPosition:
      return static_cast<int64_t>(position) == pred.position;
    case Predicate::Kind::kLast:
      return position == group_size;
    case Predicate::Kind::kExists: {
      std::vector<std::string> vals;
      EvalRelPath(ctx, pred.rel, 0, &vals);
      return !vals.empty();
    }
    case Predicate::Kind::kValueCmp: {
      std::vector<std::string> vals;
      EvalRelPath(ctx, pred.rel, 0, &vals);
      // Existential semantics: true if ANY matched node satisfies the
      // comparison (XPath 1.0 node-set comparison).
      return std::any_of(vals.begin(), vals.end(), [&](const std::string& v) {
        return CompareNodeValue(v, pred.op, pred.literal);
      });
    }
  }
  return false;
}

}  // namespace

Result<std::vector<const Node*>> EvalOnDom(const PathExpr& path,
                                           const Node& root) {
  std::vector<const Node*> current{&root};
  for (const auto& step : path.steps) {
    std::vector<const Node*> next;
    for (const Node* ctx : current) {
      // Candidates per context node, so positional predicates see the
      // correct proximity group.
      std::vector<const Node*> group;
      switch (step.axis) {
        case Axis::kChild:
          for (const auto& c : ctx->children()) {
            if (c->IsElement() && NameMatches(step.name, c->name())) {
              group.push_back(c.get());
            }
          }
          break;
        case Axis::kDescendant:
          CollectDescendantElements(*ctx, step.name, &group);
          break;
        case Axis::kAttribute:
          for (const auto& a : ctx->attributes()) {
            if (NameMatches(step.name, a->name())) group.push_back(a.get());
          }
          break;
      }
      for (size_t i = 0; i < group.size(); ++i) {
        bool keep = true;
        for (const auto& pred : step.predicates) {
          if (!PredicateHolds(*group[i], pred, i + 1, group.size())) {
            keep = false;
            break;
          }
        }
        if (keep) next.push_back(group[i]);
      }
    }
    // Deduplicate while keeping document order: with child/attribute axes
    // duplicates cannot occur, but '//' from overlapping contexts can
    // produce them.
    std::vector<const Node*> deduped;
    deduped.reserve(next.size());
    std::unordered_set<const Node*> seen;
    for (const Node* n : next) {
      if (seen.insert(n).second) deduped.push_back(n);
    }
    current = std::move(deduped);
    if (current.empty()) break;
  }
  return current;
}

}  // namespace xmlrdb::xpath
