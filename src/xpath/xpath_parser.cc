#include <cctype>

#include "common/str_util.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::xpath {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kAttribute: return "attribute";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

std::string RelPath::ToString() const {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += "/";
    if (steps[i].attribute) out += "@";
    out += steps[i].name;
  }
  return out;
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kPosition: return "[" + std::to_string(position) + "]";
    case Kind::kLast: return "[last()]";
    case Kind::kExists: return "[" + rel.ToString() + "]";
    case Kind::kValueCmp: {
      std::string lit = literal.type() == rdb::DataType::kString
                            ? "'" + literal.AsString() + "'"
                            : literal.ToString();
      return "[" + rel.ToString() + " " + CmpOpName(op) + " " + lit + "]";
    }
  }
  return "[?]";
}

std::string Step::ToString() const {
  std::string out;
  if (axis == Axis::kAttribute) out += "@";
  out += name;
  for (const auto& p : predicates) out += p.ToString();
  return out;
}

std::string PathExpr::ToString() const {
  std::string out;
  for (const auto& s : steps) {
    out += s.axis == Axis::kDescendant ? "//" : "/";
    out += s.ToString();
  }
  return out;
}

bool PathExpr::HasDescendant() const {
  for (const auto& s : steps) {
    if (s.axis == Axis::kDescendant) return true;
  }
  return false;
}

bool PathExpr::PredicateFree() const {
  for (const auto& s : steps) {
    if (!s.predicates.empty()) return false;
  }
  return true;
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class XPathParser {
 public:
  explicit XPathParser(std::string_view in) : in_(in) {}

  Result<PathExpr> Parse() {
    PathExpr path;
    SkipWs();
    if (AtEnd() || Peek() != '/') return Err("path must start with '/' or '//'");
    while (!AtEnd()) {
      if (!Consume("/")) return Err("expected '/'");
      bool descendant = Consume("/");
      RETURN_IF_ERROR(ParseStepInto(descendant, &path));
      SkipWs();
      if (AtEnd()) break;
      if (Peek() != '/') return Err("unexpected trailing input");
    }
    if (path.steps.empty()) return Err("empty path");
    return path;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return pos_ < in_.size() ? in_[pos_] : '\0'; }
  void Advance() { ++pos_; }
  bool Consume(std::string_view lit) {
    if (in_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) Advance();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError("XPath: " + msg + " at offset " +
                              std::to_string(pos_) + " in '" + std::string(in_) +
                              "'");
  }

  Result<std::string> ParseName() {
    if (Consume("*")) return std::string("*");
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected name or '*'");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(in_.substr(start, pos_ - start));
  }

  /// Parses one lexical step. `//@name` expands into a wildcard descendant
  /// step followed by an attribute step (descendant-or-self semantics are
  /// handled by the evaluators treating the attribute step as applying to
  /// the input node as well — see eval notes).
  Status ParseStepInto(bool descendant, PathExpr* path) {
    Step step;
    if (Consume("@")) {
      if (descendant) {
        Step wild;
        wild.axis = Axis::kDescendant;
        wild.name = "*";
        path->steps.push_back(std::move(wild));
      }
      step.axis = Axis::kAttribute;
      ASSIGN_OR_RETURN(step.name, ParseName());
    } else {
      step.axis = descendant ? Axis::kDescendant : Axis::kChild;
      ASSIGN_OR_RETURN(step.name, ParseName());
    }
    while (Consume("[")) {
      ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
      step.predicates.push_back(std::move(pred));
      SkipWs();
      if (!Consume("]")) return Err("expected ']'");
    }
    if (step.axis == Axis::kAttribute && !step.predicates.empty()) {
      return Status::Unsupported("predicates on attribute steps");
    }
    path->steps.push_back(std::move(step));
    return Status::OK();
  }

  Result<Predicate> ParsePredicate() {
    SkipWs();
    Predicate pred;
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      size_t start = pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      ASSIGN_OR_RETURN(pred.position, ParseInt64(in_.substr(start, pos_ - start)));
      if (pred.position < 1) return Err("positions are 1-based");
      pred.kind = Predicate::Kind::kPosition;
      return pred;
    }
    if (Consume("last()")) {
      pred.kind = Predicate::Kind::kLast;
      return pred;
    }
    while (true) {
      RelPath::RelStep rs;
      rs.attribute = Consume("@");
      ASSIGN_OR_RETURN(rs.name, ParseName());
      bool was_attr = rs.attribute;
      pred.rel.steps.push_back(std::move(rs));
      if (was_attr) break;  // attribute steps are terminal in a rel path
      if (!Consume("/")) break;
    }
    SkipWs();
    CmpOp op = CmpOp::kEq;
    bool has_cmp = true;
    if (Consume("!=")) op = CmpOp::kNe;
    else if (Consume("<=")) op = CmpOp::kLe;
    else if (Consume(">=")) op = CmpOp::kGe;
    else if (Consume("<")) op = CmpOp::kLt;
    else if (Consume(">")) op = CmpOp::kGt;
    else if (Consume("=")) op = CmpOp::kEq;
    else has_cmp = false;
    if (!has_cmp) {
      pred.kind = Predicate::Kind::kExists;
      return pred;
    }
    pred.kind = Predicate::Kind::kValueCmp;
    pred.op = op;
    SkipWs();
    if (Peek() == '\'' || Peek() == '"') {
      char q = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != q) Advance();
      if (AtEnd()) return Err("unterminated string literal");
      pred.literal = rdb::Value(std::string(in_.substr(start, pos_ - start)));
      Advance();
    } else {
      size_t start = pos_;
      bool is_double = false;
      if (Peek() == '-') Advance();
      while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                          Peek() == '.')) {
        if (Peek() == '.') is_double = true;
        Advance();
      }
      std::string_view num = in_.substr(start, pos_ - start);
      if (num.empty()) return Err("expected literal");
      if (is_double) {
        ASSIGN_OR_RETURN(double v, ParseDouble(num));
        pred.literal = rdb::Value(v);
      } else {
        ASSIGN_OR_RETURN(int64_t v, ParseInt64(num));
        pred.literal = rdb::Value(v);
      }
    }
    return pred;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<PathExpr> ParseXPath(std::string_view input) {
  XPathParser p(input);
  return p.Parse();
}

}  // namespace xmlrdb::xpath
