// Direct evaluation of the XPath subset over an in-memory xml::Node tree.
//
// This evaluator is the semantics oracle: every relational mapping's query
// answers are property-tested against it. It is also the execution engine of
// the Blob mapping (parse, then navigate).
//
// Semantics notes (shared by all evaluators in this repo):
//  * '//' means *strict* descendants of the context node (document-rooted
//    '//x' therefore includes the root element).
//  * Value comparison uses: numeric literal -> both sides parsed as numbers
//    (non-numeric node values never match); string literal -> byte equality
//    /ordering on the node string-value.
//  * Positional predicates apply to the per-parent child sequence selected by
//    the step name, matching XPath's child-axis proximity position.

#ifndef XMLRDB_XPATH_DOM_EVAL_H_
#define XMLRDB_XPATH_DOM_EVAL_H_

#include <vector>

#include "common/status.h"
#include "xml/node.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::xpath {

/// Evaluates `path` with `root` as the document node (steps start below it).
/// Returns matched nodes (elements or attributes) in document order.
Result<std::vector<const xml::Node*>> EvalOnDom(const PathExpr& path,
                                                const xml::Node& root);

/// Compares a node's string-value against a literal under our comparison
/// semantics. Exposed so the relational evaluators share the exact logic.
bool CompareNodeValue(const std::string& node_value, CmpOp op,
                      const rdb::Value& literal);

}  // namespace xmlrdb::xpath

#endif  // XMLRDB_XPATH_DOM_EVAL_H_
