// AST for the XPath subset the mappings translate to SQL.
//
// Grammar (absolute paths only at the top level):
//
//   path      := ('/' | '//') step ( ('/' | '//') step )*
//   step      := '@'? (NAME | '*') predicate*
//   predicate := '[' INTEGER ']'                    positional
//              | '[' 'last()' ']'
//              | '[' relpath ']'                    existence
//              | '[' relpath cmp literal ']'        value comparison
//   relpath   := '@'? (NAME|'*') ( '/' '@'? (NAME|'*') )*   (child axis only)
//   cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='
//   literal   := 'string' | "string" | number

#ifndef XMLRDB_XPATH_XPATH_AST_H_
#define XMLRDB_XPATH_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdb/value.h"

namespace xmlrdb::xpath {

enum class Axis {
  kChild,
  kDescendant,      ///< from '//': descendant elements
  kAttribute,
};

const char* AxisName(Axis axis);

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

/// A relative path used inside predicates: child steps (optionally ending in
/// an attribute step); no nested predicates.
struct RelPath {
  struct RelStep {
    std::string name;  ///< "*" for wildcard
    bool attribute = false;
  };
  std::vector<RelStep> steps;

  std::string ToString() const;
};

struct Predicate {
  enum class Kind { kPosition, kLast, kExists, kValueCmp };

  Kind kind = Kind::kExists;
  int64_t position = 0;  ///< for kPosition (1-based)
  RelPath rel;           ///< for kExists / kValueCmp
  CmpOp op = CmpOp::kEq; ///< for kValueCmp
  rdb::Value literal;    ///< for kValueCmp

  std::string ToString() const;
};

struct Step {
  Axis axis = Axis::kChild;
  std::string name;  ///< "*" for wildcard
  std::vector<Predicate> predicates;

  bool IsWildcard() const { return name == "*"; }
  std::string ToString() const;
};

struct PathExpr {
  std::vector<Step> steps;

  std::string ToString() const;

  /// True if any step uses the descendant axis.
  bool HasDescendant() const;
  /// True if no step carries predicates.
  bool PredicateFree() const;
};

/// Parses the XPath subset; rejects unsupported syntax with kUnsupported or
/// kParseError.
Result<PathExpr> ParseXPath(std::string_view input);

}  // namespace xmlrdb::xpath

#endif  // XMLRDB_XPATH_XPATH_AST_H_
