#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/metrics.h"
#include "common/resource_tracker.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "net/session.h"

namespace xmlrdb::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

ResourceGauge& SessionOutBytesGauge() {
  static ResourceGauge& g =
      ResourceTracker::Global().GetGauge("net.session_out_bytes");
  return g;
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string PeerName(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

/// One admitted request: the frame (trace prefix already stripped), its wire
/// trace identity, and the admission timestamp the queue-wait echo is
/// measured from.
struct PendingReq {
  Frame frame;
  uint64_t request_id = 0;  ///< client-supplied (traced frames only)
  bool traced = false;      ///< response must carry the timing prefix
  int64_t admit_us = 0;     ///< trace::NowMicros() at admission
};

// One connection: socket state owned by the IO thread, dispatch state
// guarded by the server's dispatch mutex, output buffer guarded by out_mu.
struct Conn {
  Conn(int fd_in, int64_t id, std::string peer, uint32_t max_frame)
      : fd(fd_in), session(id, std::move(peer)), decoder(max_frame) {}
  ~Conn() {
    // Whatever never reached the socket leaves the gauge with the buffer.
    SessionOutBytesGauge().Add(-static_cast<int64_t>(outbuf.size() - out_off));
  }

  // -- IO thread only --
  int fd;
  bool close_after_flush = false;  ///< error sent; close once outbuf drains
  bool reading_stopped = false;    ///< protocol violation: ignore input

  Session session;
  FrameDecoder decoder;

  // -- dispatch state; transitions happen under Server::Impl::dsp_mu, but
  // the snapshot provider and workers read the flags lock-free --
  std::deque<PendingReq> pending;  ///< admitted, awaiting this session's turn
  std::atomic<bool> active{false};     ///< a worker is executing right now
  std::atomic<bool> in_ready{false};   ///< queued in the ready list
  std::atomic<bool> peer_gone{false};  ///< socket closed; drop responses
  std::atomic<bool> unregistered{false};

  // -- stats mirror for lock-free snapshots --
  std::atomic<int64_t> pending_count{0};

  // -- output (out_mu; appended by workers, drained by the IO thread) --
  std::mutex out_mu;
  std::string outbuf;
  size_t out_off = 0;
  std::atomic<bool> has_output{false};
};

struct Server::Impl {
  explicit Impl(Server* srv) : server(srv) {}

  Server* server;

  int listen_fd = -1;
  int wake_r = -1, wake_w = -1;
  std::thread io_thread;
  std::unique_ptr<ThreadPool> pool;
  std::atomic<bool> stopping{false};

  // Session registry: the snapshot provider and teardown both use it.
  mutable std::mutex reg_mu;
  std::unordered_map<int64_t, std::shared_ptr<Conn>> registry;
  int64_t next_session_id = 1;

  // Dispatch state.
  std::mutex dsp_mu;
  std::condition_variable drained_cv;
  size_t in_flight = 0;  ///< statements currently executing in the pool
  std::deque<std::shared_ptr<Conn>> ready;  ///< runnable, waiting for a slot

  // Stats.
  std::atomic<int64_t> sessions_opened{0};
  std::atomic<int64_t> sessions_closed{0};
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> busy_rejected{0};
  std::atomic<int64_t> protocol_errors{0};

  void WakeIo() {
    char b = 1;
    ssize_t n = write(wake_w, &b, 1);
    (void)n;  // pipe full == a wakeup is already pending
  }

  // -- response path (any thread) --
  void QueueResponse(const std::shared_ptr<Conn>& conn, Frame frame) {
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      size_t before = conn->outbuf.size();
      AppendFrame(&conn->outbuf, frame);
      SessionOutBytesGauge().Add(
          static_cast<int64_t>(conn->outbuf.size() - before));
      conn->has_output.store(true, std::memory_order_release);
    }
    WakeIo();
  }

  /// Response to a traced request: the timing prefix goes ahead of the base
  /// payload and the frame carries kTracedFlag on the wire.
  static Frame TracedResponse(Frame resp, const ServerTiming& timing) {
    std::string payload;
    payload.reserve(kTracedResponsePrefixBytes + resp.payload.size());
    AppendTracedResponsePrefix(&payload, timing);
    payload += resp.payload;
    resp.payload = std::move(payload);
    resp.traced = true;
    return resp;
  }

  void QueueError(const std::shared_ptr<Conn>& conn, uint32_t seq,
                  const Status& status) {
    QueueResponse(conn, Frame{MsgType::kError, seq, EncodeError(status)});
  }

  // -- dispatch (see server.h architecture comment) --

  void SubmitLocked(std::shared_ptr<Conn> conn) {
    conn->active = true;
    ++in_flight;
    pool->Submit([this, conn = std::move(conn)] { RunSession(conn); });
  }

  /// Starts ready sessions while execution slots are free.
  void PumpReadyLocked() {
    while (!stopping.load(std::memory_order_acquire) &&
           in_flight < server->config_.max_in_flight && !ready.empty()) {
      std::shared_ptr<Conn> conn = std::move(ready.front());
      ready.pop_front();
      conn->in_ready = false;
      if (conn->active || conn->pending.empty()) continue;
      SubmitLocked(std::move(conn));
    }
  }

  /// Admission decision for one decoded request frame (IO thread).
  void Admit(const std::shared_ptr<Conn>& conn, PendingReq req) {
    std::unique_lock<std::mutex> lock(dsp_mu);
    if (stopping.load(std::memory_order_acquire)) return;
    if (conn->pending.size() >= server->config_.session_queue_cap) {
      conn->session.RecordBusy();
      busy_rejected.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add("net.busy", 1);
      uint32_t seq = req.frame.seq;
      bool traced = req.traced;
      uint64_t request_id = req.request_id;
      lock.unlock();
      Frame busy{MsgType::kBusy, seq, {}};
      if (traced) {
        // Shed before any queueing or execution: both times are zero.
        busy = TracedResponse(std::move(busy),
                              ServerTiming{request_id, 0, 0, true});
      }
      QueueResponse(conn, std::move(busy));
      return;
    }
    requests.fetch_add(1, std::memory_order_relaxed);
    req.admit_us = trace::NowMicros();
    conn->pending.push_back(std::move(req));
    conn->pending_count.store(static_cast<int64_t>(conn->pending.size()),
                              std::memory_order_relaxed);
    if (conn->active || conn->in_ready) return;
    if (in_flight < server->config_.max_in_flight) {
      SubmitLocked(conn);
    } else {
      conn->in_ready = true;
      ready.push_back(conn);
    }
  }

  /// Worker body: executes this session's pending statements one at a time,
  /// yielding its slot whenever other sessions are waiting.
  void RunSession(const std::shared_ptr<Conn>& conn) {
    for (;;) {
      PendingReq req;
      {
        std::unique_lock<std::mutex> lock(dsp_mu);
        if (stopping.load(std::memory_order_acquire)) {
          conn->pending.clear();
          conn->pending_count.store(0, std::memory_order_relaxed);
        }
        if (conn->pending.empty()) {
          conn->active = false;
          --in_flight;
          bool finished = conn->peer_gone && !conn->unregistered;
          PumpReadyLocked();
          if (in_flight == 0) drained_cv.notify_all();
          lock.unlock();
          if (finished) Unregister(conn);
          return;
        }
        req = std::move(conn->pending.front());
        conn->pending.pop_front();
        conn->pending_count.store(static_cast<int64_t>(conn->pending.size()),
                                  std::memory_order_relaxed);
      }

      // Queue wait: admission (IO thread) to the start of execution here.
      const int64_t queue_us =
          std::max<int64_t>(0, trace::NowMicros() - req.admit_us);
      int64_t exec_us = 0;
      Frame response = ExecuteFrame(conn, req, &exec_us);
      MetricsRegistry& reg = MetricsRegistry::Global();
      reg.RecordLatency("net.queue_us", queue_us);
      reg.RecordLatency("net.exec_us", exec_us);
      if (req.traced) {
        ServerTiming timing;
        timing.request_id = req.request_id;
        timing.queue_us = static_cast<uint32_t>(
            std::min<int64_t>(queue_us, UINT32_MAX));
        timing.exec_us =
            static_cast<uint32_t>(std::min<int64_t>(exec_us, UINT32_MAX));
        timing.valid = true;
        response = TracedResponse(std::move(response), timing);
      }
      if (!conn->peer_gone) QueueResponse(conn, std::move(response));

      // Fairness: with sessions waiting for a slot, finish this statement's
      // turn and requeue instead of draining the whole pipeline.
      std::unique_lock<std::mutex> lock(dsp_mu);
      if (!ready.empty() && !conn->pending.empty() &&
          !stopping.load(std::memory_order_acquire)) {
        conn->active = false;
        --in_flight;
        conn->in_ready = true;
        ready.push_back(conn);
        PumpReadyLocked();
        if (in_flight == 0) drained_cv.notify_all();
        return;
      }
    }
  }

  /// Executes one request and builds its response frame (worker thread).
  /// The wire request id is installed as the thread's current request id so
  /// it reaches trace spans and the statement log recorded underneath.
  Frame ExecuteFrame(const std::shared_ptr<Conn>& conn, const PendingReq& ctx,
                     int64_t* exec_us) {
    ScopedRequestId rid(ctx.request_id);
    const Frame& req = ctx.frame;
    Stopwatch timer;
    conn->session.RecordStatement();
    Frame resp;
    resp.seq = req.seq;
    Status error;
    switch (req.type) {
      case MsgType::kQuery: {
        auto result = server->db_->Execute(req.payload);
        if (result.ok()) {
          resp.type = MsgType::kOkResult;
          resp.payload = EncodeResultSet(result.value());
        } else {
          error = result.status();
        }
        break;
      }
      case MsgType::kPrepare: {
        auto prepared = server->db_->Prepare(req.payload);
        if (prepared.ok()) {
          uint32_t params =
              static_cast<uint32_t>(prepared.value().param_count());
          uint32_t id = conn->session.AddPrepared(std::move(prepared).value());
          resp.type = MsgType::kPrepared;
          resp.payload = EncodePrepared(id, params);
        } else {
          error = prepared.status();
        }
        break;
      }
      case MsgType::kExecPrepared: {
        uint32_t stmt_id = 0;
        std::vector<rdb::Value> params;
        error = DecodeExecPrepared(req.payload, &stmt_id, &params);
        if (error.ok()) {
          rdb::PreparedStatement* stmt = conn->session.FindPrepared(stmt_id);
          if (stmt == nullptr) {
            error = Status::NotFound("unknown statement id " +
                                     std::to_string(stmt_id));
          } else {
            auto result = stmt->Execute(std::move(params));
            if (result.ok()) {
              resp.type = MsgType::kOkResult;
              resp.payload = EncodeResultSet(result.value());
            } else {
              error = result.status();
            }
          }
        }
        break;
      }
      case MsgType::kCloseStmt: {
        uint32_t stmt_id = 0;
        error = DecodeCloseStmt(req.payload, &stmt_id);
        if (error.ok() && !conn->session.ClosePrepared(stmt_id)) {
          error =
              Status::NotFound("unknown statement id " + std::to_string(stmt_id));
        }
        if (error.ok()) {
          resp.type = MsgType::kOkResult;
          resp.payload = EncodeResultSet(rdb::QueryResult{});
        }
        break;
      }
      case MsgType::kXPath: {
        int64_t doc = 0;
        std::string mapping, xpath;
        error = DecodeXPathRequest(req.payload, &doc, &mapping, &xpath);
        if (error.ok()) {
          if (!server->xpath_handler_) {
            error = Status::Unsupported("server has no XPath handler");
          } else {
            auto values = server->xpath_handler_(doc, mapping, xpath);
            if (values.ok()) {
              rdb::QueryResult result;
              rdb::Column col;
              col.name = "value";
              col.type = rdb::DataType::kString;
              result.schema = rdb::Schema({col});
              for (std::string& v : values.value()) {
                result.rows.push_back({rdb::Value(std::move(v))});
              }
              resp.type = MsgType::kOkResult;
              resp.payload = EncodeResultSet(result);
            } else {
              error = values.status();
            }
          }
        }
        break;
      }
      default:
        error = Status::Internal("non-request frame reached execution");
    }
    if (!error.ok()) {
      resp.type = MsgType::kError;
      resp.payload = EncodeError(error);
    }
    *exec_us = static_cast<int64_t>(timer.ElapsedMicros());
    MetricsRegistry& reg = MetricsRegistry::Global();
    reg.Add("net.requests", 1);
    reg.RecordLatency("net.request_us", *exec_us);
    return resp;
  }

  /// Final removal from the registry once no worker can touch the session.
  void Unregister(const std::shared_ptr<Conn>& conn) {
    bool erased = false;
    {
      std::lock_guard<std::mutex> lock(reg_mu);
      erased = registry.erase(conn->session.id()) > 0;
    }
    if (erased) {
      conn->unregistered = true;
      sessions_closed.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add("net.sessions_closed", 1);
    }
  }

  // ------------------------------------------------------------------
  // IO thread.

  void TeardownConn(std::unordered_map<int, std::shared_ptr<Conn>>* conns,
                    int fd) {
    auto it = conns->find(fd);
    if (it == conns->end()) return;
    std::shared_ptr<Conn> conn = std::move(it->second);
    conns->erase(it);
    close(conn->fd);
    conn->fd = -1;
    bool finish_now;
    {
      std::lock_guard<std::mutex> lock(dsp_mu);
      conn->peer_gone = true;
      conn->pending.clear();
      conn->pending_count.store(0, std::memory_order_relaxed);
      // If a worker is mid-statement, it observes peer_gone at completion
      // and unregisters then; otherwise the session dies here.
      finish_now = !conn->active;
    }
    if (finish_now) Unregister(conn);
  }

  /// Handles one decoded frame on the IO thread: sequencing, trace-prefix
  /// stripping, fast-path HELLO/PING, payload sanity, then admission.
  void HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame) {
    Status seq_check = conn->session.CheckSeq(frame.seq);
    if (!seq_check.ok()) {
      ProtocolViolation(conn, frame.seq, seq_check);
      return;
    }
    if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
      ProtocolViolation(conn, frame.seq,
                        Status::InvalidArgument(
                            "response-type frame sent by client"));
      return;
    }
    uint64_t request_id = 0;
    if (frame.traced) {
      std::string_view rest;
      Status strip =
          StripTracedRequestPrefix(frame.payload, &request_id, &rest);
      if (!strip.ok()) {
        ProtocolViolation(conn, frame.seq, strip);
        return;
      }
      frame.payload.erase(0, kTracedRequestPrefixBytes);
    }
    if (frame.type == MsgType::kHello) {
      uint32_t client_version = 0;
      Status st = DecodeHello(frame.payload, &client_version);
      if (!st.ok()) {
        ProtocolViolation(conn, frame.seq, st);
        return;
      }
      Frame ok{MsgType::kHelloOk, frame.seq,
               EncodeHello(std::min(client_version, kProtocolVersion))};
      if (frame.traced) {
        ok = TracedResponse(std::move(ok),
                            ServerTiming{request_id, 0, 0, true});
      }
      QueueResponse(conn, std::move(ok));
      return;
    }
    if (frame.type == MsgType::kPing) {
      Frame pong{MsgType::kPong, frame.seq, {}};
      if (frame.traced) {
        pong = TracedResponse(std::move(pong),
                              ServerTiming{request_id, 0, 0, true});
      }
      QueueResponse(conn, std::move(pong));
      return;
    }
    if (frame.payload.empty() && frame.type != MsgType::kCloseStmt) {
      ProtocolViolation(
          conn, frame.seq,
          Status::InvalidArgument(std::string("empty payload in ") +
                                  MsgTypeName(frame.type) + " frame"));
      return;
    }
    bool traced = frame.traced;
    Admit(conn, PendingReq{std::move(frame), request_id, traced, 0});
  }

  void ProtocolViolation(const std::shared_ptr<Conn>& conn, uint32_t seq,
                         const Status& status) {
    protocol_errors.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global().Add("net.protocol_errors", 1);
    conn->reading_stopped = true;
    conn->close_after_flush = true;
    QueueError(conn, seq, status);
  }

  /// Non-blocking drain of a connection's output buffer. Returns false on a
  /// dead socket.
  bool FlushOutput(const std::shared_ptr<Conn>& conn) {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    while (conn->out_off < conn->outbuf.size()) {
      ssize_t n = send(conn->fd, conn->outbuf.data() + conn->out_off,
                       conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        SessionOutBytesGauge().Add(-static_cast<int64_t>(n));
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        return false;
      }
    }
    if (conn->out_off == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_off = 0;
      conn->has_output.store(false, std::memory_order_release);
    }
    return true;
  }

  void AcceptConnections(std::unordered_map<int, std::shared_ptr<Conn>>* conns) {
    for (;;) {
      sockaddr_in addr{};
      socklen_t addr_len = sizeof(addr);
      int fd = accept(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
      if (fd < 0) return;  // EAGAIN or transient error: try again next poll
      if (!SetNonBlocking(fd)) {
        close(fd);
        continue;
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lock(reg_mu);
        if (registry.size() < server->config_.max_sessions) {
          int64_t id = next_session_id++;
          auto conn = std::make_shared<Conn>(fd, id, PeerName(addr),
                                             server->config_.max_frame_bytes);
          registry.emplace(id, conn);
          conns->emplace(fd, std::move(conn));
          admitted = true;
        }
      }
      if (admitted) {
        sessions_opened.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::Global().Add("net.sessions_opened", 1);
        continue;
      }
      // Connection-level admission: BUSY with seq 0, then close.
      busy_rejected.fetch_add(1, std::memory_order_relaxed);
      std::string busy = EncodeFrame(Frame{MsgType::kBusy, 0, {}});
      ssize_t n = send(fd, busy.data(), busy.size(), MSG_NOSIGNAL);
      (void)n;
      close(fd);
    }
  }

  void ReadConnection(std::unordered_map<int, std::shared_ptr<Conn>>* conns,
                      const std::shared_ptr<Conn>& conn) {
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        if (!conn->reading_stopped) conn->decoder.Feed(buf, n);
        if (static_cast<size_t>(n) < sizeof(buf)) break;
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        TeardownConn(conns, conn->fd);
        return;
      }
    }
    Frame frame;
    while (!conn->reading_stopped) {
      FrameDecoder::PollResult res = conn->decoder.Poll(&frame);
      if (res == FrameDecoder::PollResult::kFrame) {
        HandleFrame(conn, std::move(frame));
      } else if (res == FrameDecoder::PollResult::kNeedMore) {
        break;
      } else {
        ProtocolViolation(conn, 0, conn->decoder.error());
        break;
      }
    }
  }

  void IoLoop() {
    std::unordered_map<int, std::shared_ptr<Conn>> conns;
    std::vector<pollfd> fds;
    for (;;) {
      const bool stop = stopping.load(std::memory_order_acquire);
      fds.clear();
      fds.push_back({wake_r, POLLIN, 0});
      if (!stop) fds.push_back({listen_fd, POLLIN, 0});
      for (auto& [fd, conn] : conns) {
        short events = 0;
        if (!stop && !conn->reading_stopped) events |= POLLIN;
        if (conn->has_output.load(std::memory_order_acquire)) {
          events |= POLLOUT;
        }
        fds.push_back({fd, events, 0});
      }
      int rc = poll(fds.data(), fds.size(), stop ? 10 : 500);
      if (rc < 0 && errno != EINTR) break;

      // Drain wakeup bytes.
      if (fds[0].revents & POLLIN) {
        char tmp[256];
        while (read(wake_r, tmp, sizeof(tmp)) > 0) {
        }
      }
      size_t idx = 1;
      if (!stop) {
        if (fds[idx].revents & POLLIN) AcceptConnections(&conns);
        ++idx;
      }
      // Collect fds first: handlers mutate `conns`.
      std::vector<pollfd> events(fds.begin() + idx, fds.end());
      for (const pollfd& p : events) {
        auto it = conns.find(p.fd);
        if (it == conns.end()) continue;
        std::shared_ptr<Conn> conn = it->second;
        if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
          // Flush what we can (an error response may be queued), then drop.
          FlushOutput(conn);
          TeardownConn(&conns, p.fd);
          continue;
        }
        if (p.revents & POLLIN) {
          ReadConnection(&conns, conn);
          if (conns.find(p.fd) == conns.end()) continue;  // torn down
        }
        if (conn->has_output.load(std::memory_order_acquire)) {
          if (!FlushOutput(conn)) {
            TeardownConn(&conns, p.fd);
            continue;
          }
        }
        if (conn->close_after_flush &&
            !conn->has_output.load(std::memory_order_acquire)) {
          TeardownConn(&conns, p.fd);
        }
      }

      if (stop) {
        // Shutdown: wait for workers to finish, flush whatever responses
        // they produced, then drop every connection and exit.
        bool drained;
        {
          std::lock_guard<std::mutex> lock(dsp_mu);
          // Ready sessions will never get a slot now; drop them so the
          // drain condition can hold.
          for (auto& conn : ready) conn->in_ready = false;
          ready.clear();
          drained = in_flight == 0;
        }
        bool all_flushed = true;
        for (auto& [fd, conn] : conns) {
          FlushOutput(conn);
          if (conn->has_output.load(std::memory_order_acquire)) {
            all_flushed = false;
          }
        }
        if (drained && all_flushed) break;
      }
    }
    // Final teardown of every remaining connection.
    std::vector<int> remaining;
    remaining.reserve(conns.size());
    for (auto& [fd, conn] : conns) remaining.push_back(fd);
    for (int fd : remaining) TeardownConn(&conns, fd);
  }
};

// ---------------------------------------------------------------------------

Server::Server(rdb::Database* db, ServerConfig config)
    : impl_(std::make_unique<Impl>(this)), db_(db), config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_in_flight == 0) config_.max_in_flight = 1;
}

Server::~Server() { Stop(); }

void Server::set_xpath_handler(XPathHandler handler) {
  xpath_handler_ = std::move(handler);
}

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server already running");
  }
  impl_->stopping.store(false, std::memory_order_release);

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address '" + config_.bind_address +
                                   "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    close(fd);
    return st;
  }
  if (listen(fd, config_.listen_backlog) != 0) {
    Status st = Errno("listen");
    close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status st = Errno("getsockname");
    close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(fd)) {
    Status st = Errno("fcntl");
    close(fd);
    return st;
  }

  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    Status st = Errno("pipe");
    close(fd);
    return st;
  }
  SetNonBlocking(pipe_fds[0]);
  SetNonBlocking(pipe_fds[1]);

  impl_->listen_fd = fd;
  impl_->wake_r = pipe_fds[0];
  impl_->wake_w = pipe_fds[1];
  impl_->pool = std::make_unique<ThreadPool>(config_.workers);
  impl_->io_thread = std::thread([impl = impl_.get()] { impl->IoLoop(); });

  db_->set_session_snapshot_provider(
      [this] { return SnapshotSessions(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Stop exposing sessions before they start dying.
  db_->set_session_snapshot_provider(nullptr);
  impl_->stopping.store(true, std::memory_order_release);
  impl_->WakeIo();
  // The IO loop owns the drain: it waits for workers, flushes responses,
  // tears down connections, then exits.
  if (impl_->io_thread.joinable()) impl_->io_thread.join();
  {
    // Belt and braces: RunSession observes `stopping` and drains; wait for
    // any straggler the IO loop raced with.
    std::unique_lock<std::mutex> lock(impl_->dsp_mu);
    impl_->drained_cv.wait(lock, [this] { return impl_->in_flight == 0; });
    impl_->ready.clear();
  }
  impl_->pool.reset();  // joins workers; queue is empty by now
  close(impl_->listen_fd);
  close(impl_->wake_r);
  close(impl_->wake_w);
  impl_->listen_fd = impl_->wake_r = impl_->wake_w = -1;
  // Sessions that never finished teardown (none expected) die with the map.
  std::lock_guard<std::mutex> lock(impl_->reg_mu);
  impl_->registry.clear();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.sessions_opened = impl_->sessions_opened.load(std::memory_order_relaxed);
  s.sessions_closed = impl_->sessions_closed.load(std::memory_order_relaxed);
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.busy_rejected = impl_->busy_rejected.load(std::memory_order_relaxed);
  s.protocol_errors = impl_->protocol_errors.load(std::memory_order_relaxed);
  return s;
}

std::vector<rdb::SessionInfo> Server::SnapshotSessions() const {
  std::vector<rdb::SessionInfo> out;
  std::lock_guard<std::mutex> lock(impl_->reg_mu);
  out.reserve(impl_->registry.size());
  for (const auto& [id, conn] : impl_->registry) {
    rdb::SessionInfo info;
    info.id = id;
    info.peer = conn->session.peer();
    info.age_us = conn->session.age_us();
    info.statements = conn->session.statements();
    info.pending = conn->pending_count.load(std::memory_order_relaxed);
    info.busy_rejected = conn->session.busy_rejected();
    info.prepared_statements = conn->session.prepared_count();
    // `active` is dispatch-guarded; this is a monitoring snapshot, so an
    // instantaneously stale state string is fine.
    info.state = conn->peer_gone ? "closing"
                 : conn->active  ? "active"
                                 : "idle";
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace xmlrdb::net
