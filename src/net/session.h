// Per-connection session state.
//
// A Session owns the connection's prepared-statement handles (each a
// PreparedStatement sharing a PlanCache entry with every other session that
// prepared the same text) and the protocol bookkeeping the server needs:
// the expected request sequence number and the statement counters exposed
// through the xmlrdb_sessions virtual table.
//
// Threading: exactly one statement of a session executes at a time (the
// dispatcher serializes per-session work), so the prepared-statement map is
// only touched from whichever worker currently runs the session's
// statement — no lock needed. The counters are atomics because the IO
// thread (admission control) and the snapshot provider read them
// concurrently. Destroying the Session releases every plan-cache pin; the
// server guarantees destruction happens only after the session's in-flight
// statement (if any) has completed, so a client disconnect mid-query never
// frees state a worker still reads.

#ifndef XMLRDB_NET_SESSION_H_
#define XMLRDB_NET_SESSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "rdb/database.h"

namespace xmlrdb::net {

class Session {
 public:
  Session(int64_t id, std::string peer)
      : id_(id), peer_(std::move(peer)),
        start_(std::chrono::steady_clock::now()) {}

  int64_t id() const { return id_; }
  const std::string& peer() const { return peer_; }

  int64_t age_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  // -- request sequencing (IO thread only) --
  /// Validates that `seq` is the next expected request number (1, 2, ...).
  /// On success the expectation advances; on failure the caller must error
  /// out and close the connection.
  Status CheckSeq(uint32_t seq) {
    if (seq != expected_seq_) {
      return Status::InvalidArgument(
          "out-of-sequence request: got seq " + std::to_string(seq) +
          ", expected " + std::to_string(expected_seq_));
    }
    ++expected_seq_;
    return Status::OK();
  }

  // -- prepared statements (current worker only) --
  /// Registers a handle and returns its connection-local statement id.
  uint32_t AddPrepared(rdb::PreparedStatement stmt) {
    uint32_t id = next_stmt_id_++;
    prepared_.emplace(id, std::move(stmt));
    prepared_count_.store(static_cast<int64_t>(prepared_.size()),
                          std::memory_order_relaxed);
    return id;
  }

  rdb::PreparedStatement* FindPrepared(uint32_t stmt_id) {
    auto it = prepared_.find(stmt_id);
    return it == prepared_.end() ? nullptr : &it->second;
  }

  bool ClosePrepared(uint32_t stmt_id) {
    bool erased = prepared_.erase(stmt_id) > 0;
    prepared_count_.store(static_cast<int64_t>(prepared_.size()),
                          std::memory_order_relaxed);
    return erased;
  }

  // -- stats (any thread) --
  void RecordStatement() {
    statements_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordBusy() { busy_rejected_.fetch_add(1, std::memory_order_relaxed); }

  int64_t statements() const {
    return statements_.load(std::memory_order_relaxed);
  }
  int64_t busy_rejected() const {
    return busy_rejected_.load(std::memory_order_relaxed);
  }
  int64_t prepared_count() const {
    return prepared_count_.load(std::memory_order_relaxed);
  }

 private:
  const int64_t id_;
  const std::string peer_;
  const std::chrono::steady_clock::time_point start_;

  uint32_t expected_seq_ = 1;  ///< IO thread only
  uint32_t next_stmt_id_ = 1;  ///< current worker only
  std::unordered_map<uint32_t, rdb::PreparedStatement> prepared_;

  std::atomic<int64_t> statements_{0};
  std::atomic<int64_t> busy_rejected_{0};
  std::atomic<int64_t> prepared_count_{0};
};

}  // namespace xmlrdb::net

#endif  // XMLRDB_NET_SESSION_H_
