// Blocking client for the xmlrdb wire protocol, used by the end-to-end
// tests, the serving benchmark, and the server smoke driver.
//
// Two usage modes:
//   * RPC: Query() / Prepare() / ExecPrepared() / Ping() / XPath() send one
//     request and block for its response.
//   * Pipelined: SendQuery()/SendExecPrepared()/... enqueue requests without
//     waiting (they return the assigned seq); ReadResponse() then yields
//     responses. Responses to admitted statements arrive in request order,
//     but BUSY rejections can overtake them — match on seq.
//
// The client assigns sequence numbers automatically (1, 2, ...). SendRaw()
// bypasses all framing for hostile-input tests.
//
// Tracing (protocol v2): after Hello() negotiates version >= 2,
// set_tracing(true) makes every request carry a client-chosen request id;
// the server echoes it back together with its measured admission-queue wait
// and execution time, available from last_server_timing() after each
// response. ReadResponse() strips the timing prefix, so payload handling is
// identical in both modes.

#ifndef XMLRDB_NET_CLIENT_H_
#define XMLRDB_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "rdb/database.h"

namespace xmlrdb::net {

struct PreparedHandle {
  uint32_t stmt_id = 0;
  uint32_t param_count = 0;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // -- protocol negotiation / tracing --
  /// Negotiates the protocol version (min of ours and the server's). Call
  /// once after Connect(); without it the connection behaves as version 1.
  Status Hello();
  uint32_t negotiated_version() const { return negotiated_version_; }
  /// Attach a trace prefix (request id) to every subsequent request. The
  /// server must speak v2: with tracing on and no v2 negotiation, Send*
  /// fail with InvalidArgument rather than emit frames the peer would
  /// reject.
  void set_tracing(bool on) { tracing_ = on; }
  bool tracing() const { return tracing_; }
  /// Request id stamped into the next traced request (auto-increments).
  void set_next_request_id(uint64_t id) { next_request_id_ = id; }
  uint64_t last_request_id() const { return last_request_id_; }
  /// Server-measured timing from the most recent traced response;
  /// .valid is false until one has been seen.
  const ServerTiming& last_server_timing() const { return last_timing_; }

  // -- one-shot RPCs --
  Result<rdb::QueryResult> Query(std::string_view sql);
  Result<PreparedHandle> Prepare(std::string_view sql);
  Result<rdb::QueryResult> ExecPrepared(uint32_t stmt_id,
                                        std::vector<rdb::Value> params = {});
  Status CloseStmt(uint32_t stmt_id);
  Status Ping();
  Result<std::vector<std::string>> XPath(int64_t doc,
                                         const std::string& mapping,
                                         std::string_view xpath);

  // -- pipelining --
  /// Each Send* writes one request frame and returns its seq.
  Result<uint32_t> SendQuery(std::string_view sql);
  Result<uint32_t> SendPrepare(std::string_view sql);
  Result<uint32_t> SendExecPrepared(uint32_t stmt_id,
                                    const std::vector<rdb::Value>& params);
  Result<uint32_t> SendPing();
  Result<uint32_t> SendXPath(int64_t doc, const std::string& mapping,
                             std::string_view xpath);

  /// Blocks for the next response frame.
  Result<Frame> ReadResponse();

  static bool IsBusy(const Frame& frame) {
    return frame.type == MsgType::kBusy;
  }
  /// Interprets a response frame as a statement result: kOkResult decodes,
  /// kError re-materializes the server's Status, kBusy becomes an IoError
  /// with message "server busy".
  static Result<rdb::QueryResult> AsResult(const Frame& frame);

  /// Writes raw bytes to the socket (hostile-input tests).
  Status SendRaw(std::string_view bytes);

 private:
  Result<uint32_t> SendFrame(MsgType type, std::string payload);
  /// Sends and waits; checks the echoed seq matches.
  Result<Frame> RoundTrip(MsgType type, std::string payload);

  int fd_ = -1;
  uint32_t next_seq_ = 1;
  uint32_t negotiated_version_ = 1;
  bool tracing_ = false;
  uint64_t next_request_id_ = 1;
  uint64_t last_request_id_ = 0;
  ServerTiming last_timing_;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
};

}  // namespace xmlrdb::net

#endif  // XMLRDB_NET_CLIENT_H_
