// Blocking client for the xmlrdb wire protocol, used by the end-to-end
// tests, the serving benchmark, and the server smoke driver.
//
// Two usage modes:
//   * RPC: Query() / Prepare() / ExecPrepared() / Ping() / XPath() send one
//     request and block for its response.
//   * Pipelined: SendQuery()/SendExecPrepared()/... enqueue requests without
//     waiting (they return the assigned seq); ReadResponse() then yields
//     responses. Responses to admitted statements arrive in request order,
//     but BUSY rejections can overtake them — match on seq.
//
// The client assigns sequence numbers automatically (1, 2, ...). SendRaw()
// bypasses all framing for hostile-input tests.

#ifndef XMLRDB_NET_CLIENT_H_
#define XMLRDB_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "rdb/database.h"

namespace xmlrdb::net {

struct PreparedHandle {
  uint32_t stmt_id = 0;
  uint32_t param_count = 0;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // -- one-shot RPCs --
  Result<rdb::QueryResult> Query(std::string_view sql);
  Result<PreparedHandle> Prepare(std::string_view sql);
  Result<rdb::QueryResult> ExecPrepared(uint32_t stmt_id,
                                        std::vector<rdb::Value> params = {});
  Status CloseStmt(uint32_t stmt_id);
  Status Ping();
  Result<std::vector<std::string>> XPath(int64_t doc,
                                         const std::string& mapping,
                                         std::string_view xpath);

  // -- pipelining --
  /// Each Send* writes one request frame and returns its seq.
  Result<uint32_t> SendQuery(std::string_view sql);
  Result<uint32_t> SendPrepare(std::string_view sql);
  Result<uint32_t> SendExecPrepared(uint32_t stmt_id,
                                    const std::vector<rdb::Value>& params);
  Result<uint32_t> SendPing();
  Result<uint32_t> SendXPath(int64_t doc, const std::string& mapping,
                             std::string_view xpath);

  /// Blocks for the next response frame.
  Result<Frame> ReadResponse();

  static bool IsBusy(const Frame& frame) {
    return frame.type == MsgType::kBusy;
  }
  /// Interprets a response frame as a statement result: kOkResult decodes,
  /// kError re-materializes the server's Status, kBusy becomes an IoError
  /// with message "server busy".
  static Result<rdb::QueryResult> AsResult(const Frame& frame);

  /// Writes raw bytes to the socket (hostile-input tests).
  Status SendRaw(std::string_view bytes);

 private:
  Result<uint32_t> SendFrame(MsgType type, std::string payload);
  /// Sends and waits; checks the echoed seq matches.
  Result<Frame> RoundTrip(MsgType type, std::string payload);

  int fd_ = -1;
  uint32_t next_seq_ = 1;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
};

}  // namespace xmlrdb::net

#endif  // XMLRDB_NET_CLIENT_H_
