#include "net/protocol.h"

#include <cstring>

namespace xmlrdb::net {

namespace {

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status Truncated(const char* what) {
  return Status::ParseError(std::string("truncated frame payload: ") + what);
}

}  // namespace

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kQuery: return "QUERY";
    case MsgType::kPrepare: return "PREPARE";
    case MsgType::kExecPrepared: return "EXEC_PREPARED";
    case MsgType::kCloseStmt: return "CLOSE_STMT";
    case MsgType::kPing: return "PING";
    case MsgType::kXPath: return "XPATH";
    case MsgType::kHello: return "HELLO";
    case MsgType::kOkResult: return "OK";
    case MsgType::kError: return "ERROR";
    case MsgType::kBusy: return "BUSY";
    case MsgType::kPong: return "PONG";
    case MsgType::kPrepared: return "PREPARED";
    case MsgType::kHelloOk: return "HELLO_OK";
  }
  return "UNKNOWN";
}

bool IsRequestType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kQuery) &&
         t <= static_cast<uint8_t>(MsgType::kHello);
}

bool IsResponseType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kOkResult) &&
         t <= static_cast<uint8_t>(MsgType::kHelloOk);
}

void AppendFrame(std::string* out, const Frame& frame) {
  AppendU32(out, static_cast<uint32_t>(frame.payload.size()));
  uint8_t type = static_cast<uint8_t>(frame.type);
  if (frame.traced) type |= kTracedFlag;
  AppendU8(out, type);
  AppendU32(out, frame.seq);
  out->append(frame.payload);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  AppendFrame(&out, frame);
  return out;
}

// -- FrameDecoder ----------------------------------------------------------

void FrameDecoder::Feed(const char* data, size_t n) {
  if (!error_.ok()) return;  // poisoned: drop everything
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameDecoder::PollResult FrameDecoder::Poll(Frame* out) {
  if (!error_.ok()) return PollResult::kError;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return PollResult::kNeedMore;
  const char* p = buffer_.data() + consumed_;
  const uint32_t len = LoadU32(p);
  const uint8_t raw_type = static_cast<uint8_t>(p[4]);
  const uint8_t type = BaseType(raw_type);
  const bool traced = (raw_type & kTracedFlag) != 0;
  // Header checks happen before the payload is required, so a hostile
  // length or type is rejected without buffering len bytes first.
  if (len > max_frame_bytes_) {
    error_ = Status::InvalidArgument(
        "frame of " + std::to_string(len) + " bytes exceeds the " +
        std::to_string(max_frame_bytes_) + "-byte frame limit");
    return PollResult::kError;
  }
  if (!IsRequestType(type) && !IsResponseType(type)) {
    error_ = Status::InvalidArgument(
        "unknown frame type " + std::to_string(static_cast<int>(raw_type)));
    return PollResult::kError;
  }
  if (avail < kFrameHeaderBytes + len) return PollResult::kNeedMore;
  out->type = static_cast<MsgType>(type);
  out->traced = traced;
  out->seq = LoadU32(p + 5);
  out->payload.assign(p + kFrameHeaderBytes, len);
  consumed_ += kFrameHeaderBytes + len;
  return PollResult::kFrame;
}

// -- WireReader ------------------------------------------------------------

Result<uint8_t> WireReader::ReadU8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireReader::ReadU16() {
  if (remaining() < 2) return Truncated("u16");
  uint16_t v = static_cast<uint16_t>(
      static_cast<unsigned char>(data_[pos_]) |
      (static_cast<unsigned char>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::ReadU32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = LoadU32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<int64_t> WireReader::ReadI64() {
  if (remaining() < 8) return Truncated("i64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return static_cast<int64_t>(v);
}

Result<double> WireReader::ReadF64() {
  ASSIGN_OR_RETURN(int64_t bits, ReadI64());
  double d;
  uint64_t u = static_cast<uint64_t>(bits);
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

Result<std::string> WireReader::ReadString() {
  ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  // Validate against bytes actually present before allocating: a hostile
  // length prefix must not drive an allocation.
  if (remaining() < len) return Truncated("string body");
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<rdb::Value> WireReader::ReadValue() {
  using rdb::Value;
  ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value(v);
    }
    case 2: {
      ASSIGN_OR_RETURN(double v, ReadF64());
      return Value(v);
    }
    case 3: {
      ASSIGN_OR_RETURN(std::string v, ReadString());
      return Value(std::move(v));
    }
    case 4: {
      ASSIGN_OR_RETURN(uint8_t v, ReadU8());
      if (v > 1) return Status::ParseError("invalid bool encoding");
      return Value(v == 1);
    }
    default:
      return Status::ParseError("unknown value tag " + std::to_string(tag));
  }
}

void AppendValue(std::string* out, const rdb::Value& v) {
  using rdb::DataType;
  switch (v.type()) {
    case DataType::kNull:
      AppendU8(out, 0);
      break;
    case DataType::kInt:
      AppendU8(out, 1);
      AppendI64(out, v.AsInt());
      break;
    case DataType::kDouble:
      AppendU8(out, 2);
      AppendF64(out, v.AsDouble());
      break;
    case DataType::kString:
      AppendU8(out, 3);
      AppendString(out, v.AsString());
      break;
    case DataType::kBool:
      AppendU8(out, 4);
      AppendU8(out, v.AsBool() ? 1 : 0);
      break;
  }
}

// -- result sets -----------------------------------------------------------

namespace {

uint8_t TypeTag(rdb::DataType t) {
  switch (t) {
    case rdb::DataType::kNull: return 0;
    case rdb::DataType::kInt: return 1;
    case rdb::DataType::kDouble: return 2;
    case rdb::DataType::kString: return 3;
    case rdb::DataType::kBool: return 4;
  }
  return 0;
}

Result<rdb::DataType> TagType(uint8_t tag) {
  switch (tag) {
    case 0: return rdb::DataType::kNull;
    case 1: return rdb::DataType::kInt;
    case 2: return rdb::DataType::kDouble;
    case 3: return rdb::DataType::kString;
    case 4: return rdb::DataType::kBool;
    default:
      return Status::ParseError("unknown column type tag " +
                                std::to_string(tag));
  }
}

}  // namespace

std::string EncodeResultSet(const rdb::QueryResult& result) {
  std::string out;
  AppendI64(&out, result.affected);
  AppendU32(&out, static_cast<uint32_t>(result.schema.size()));
  for (const rdb::Column& c : result.schema.columns()) {
    AppendString(&out, c.QualifiedName());
    AppendU8(&out, TypeTag(c.type));
  }
  AppendU32(&out, static_cast<uint32_t>(result.rows.size()));
  for (const rdb::Row& row : result.rows) {
    for (const rdb::Value& v : row) AppendValue(&out, v);
  }
  return out;
}

Status DecodeResultSet(std::string_view payload, rdb::QueryResult* out) {
  WireReader r(payload);
  ASSIGN_OR_RETURN(out->affected, r.ReadI64());
  ASSIGN_OR_RETURN(uint32_t ncols, r.ReadU32());
  // Each column costs at least 5 bytes on the wire; a count claiming more
  // columns than remaining bytes is hostile.
  if (static_cast<uint64_t>(ncols) * 5 > r.remaining()) {
    return Truncated("column list");
  }
  std::vector<rdb::Column> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    rdb::Column c;
    ASSIGN_OR_RETURN(c.name, r.ReadString());
    ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
    ASSIGN_OR_RETURN(c.type, TagType(tag));
    cols.push_back(std::move(c));
  }
  out->schema = rdb::Schema(std::move(cols));
  ASSIGN_OR_RETURN(uint32_t nrows, r.ReadU32());
  if (ncols > 0 && static_cast<uint64_t>(nrows) * ncols > r.remaining()) {
    return Truncated("row data");
  }
  if (ncols == 0 && nrows > 0) {
    return Status::ParseError("rows without columns");
  }
  out->rows.clear();
  out->rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    rdb::Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      ASSIGN_OR_RETURN(rdb::Value v, r.ReadValue());
      row.push_back(std::move(v));
    }
    out->rows.push_back(std::move(row));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after result set");
  return Status::OK();
}

// -- errors ----------------------------------------------------------------

std::string EncodeError(const Status& status) {
  std::string out;
  AppendU8(&out, static_cast<uint8_t>(status.code()));
  out.append(status.message());
  return out;
}

Status DecodeError(std::string_view payload) {
  WireReader r(payload);
  auto code = r.ReadU8();
  if (!code.ok()) return Status::ParseError("empty error payload");
  // Unknown codes (a newer server) degrade to kInternal instead of failing.
  StatusCode c = code.value() <= static_cast<uint8_t>(StatusCode::kInternal)
                     ? static_cast<StatusCode>(code.value())
                     : StatusCode::kInternal;
  if (c == StatusCode::kOk) c = StatusCode::kInternal;
  return Status(c, std::string(r.Rest()));
}

// -- typed request/response payloads ---------------------------------------

std::string EncodePrepared(uint32_t stmt_id, uint32_t param_count) {
  std::string out;
  AppendU32(&out, stmt_id);
  AppendU32(&out, param_count);
  return out;
}

Status DecodePrepared(std::string_view payload, uint32_t* stmt_id,
                      uint32_t* param_count) {
  WireReader r(payload);
  ASSIGN_OR_RETURN(*stmt_id, r.ReadU32());
  ASSIGN_OR_RETURN(*param_count, r.ReadU32());
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after PREPARED");
  return Status::OK();
}

std::string EncodeExecPrepared(uint32_t stmt_id,
                               const std::vector<rdb::Value>& params) {
  std::string out;
  AppendU32(&out, stmt_id);
  AppendU16(&out, static_cast<uint16_t>(params.size()));
  for (const rdb::Value& v : params) AppendValue(&out, v);
  return out;
}

Status DecodeExecPrepared(std::string_view payload, uint32_t* stmt_id,
                          std::vector<rdb::Value>* params) {
  WireReader r(payload);
  ASSIGN_OR_RETURN(*stmt_id, r.ReadU32());
  ASSIGN_OR_RETURN(uint16_t n, r.ReadU16());
  if (static_cast<size_t>(n) > r.remaining()) return Truncated("parameters");
  params->clear();
  params->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(rdb::Value v, r.ReadValue());
    params->push_back(std::move(v));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes after EXEC_PREPARED");
  }
  return Status::OK();
}

std::string EncodeCloseStmt(uint32_t stmt_id) {
  std::string out;
  AppendU32(&out, stmt_id);
  return out;
}

Status DecodeCloseStmt(std::string_view payload, uint32_t* stmt_id) {
  WireReader r(payload);
  ASSIGN_OR_RETURN(*stmt_id, r.ReadU32());
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after CLOSE_STMT");
  return Status::OK();
}

std::string EncodeXPathRequest(int64_t doc, const std::string& mapping,
                               std::string_view xpath) {
  std::string out;
  AppendI64(&out, doc);
  AppendU8(&out, static_cast<uint8_t>(mapping.size()));
  out.append(mapping);
  out.append(xpath);
  return out;
}

std::string EncodeHello(uint32_t version) {
  std::string out;
  AppendU32(&out, version);
  return out;
}

Status DecodeHello(std::string_view payload, uint32_t* version) {
  WireReader r(payload);
  ASSIGN_OR_RETURN(*version, r.ReadU32());
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after HELLO");
  if (*version == 0) return Status::InvalidArgument("protocol version 0");
  return Status::OK();
}

void AppendTracedRequestPrefix(std::string* out, uint64_t request_id) {
  AppendU64(out, request_id);
}

Status StripTracedRequestPrefix(std::string_view payload, uint64_t* request_id,
                                std::string_view* rest) {
  WireReader r(payload);
  ASSIGN_OR_RETURN(int64_t id, r.ReadI64());
  *request_id = static_cast<uint64_t>(id);
  *rest = r.Rest();
  return Status::OK();
}

void AppendTracedResponsePrefix(std::string* out, const ServerTiming& timing) {
  AppendU64(out, timing.request_id);
  AppendU32(out, timing.queue_us);
  AppendU32(out, timing.exec_us);
}

Status StripTracedResponsePrefix(std::string_view payload, ServerTiming* timing,
                                 std::string_view* rest) {
  WireReader r(payload);
  ASSIGN_OR_RETURN(int64_t id, r.ReadI64());
  ASSIGN_OR_RETURN(timing->queue_us, r.ReadU32());
  ASSIGN_OR_RETURN(timing->exec_us, r.ReadU32());
  timing->request_id = static_cast<uint64_t>(id);
  timing->valid = true;
  *rest = r.Rest();
  return Status::OK();
}

Status DecodeXPathRequest(std::string_view payload, int64_t* doc,
                          std::string* mapping, std::string* xpath) {
  WireReader r(payload);
  ASSIGN_OR_RETURN(*doc, r.ReadI64());
  ASSIGN_OR_RETURN(uint8_t name_len, r.ReadU8());
  if (r.remaining() < name_len) return Truncated("mapping name");
  std::string_view rest = r.Rest();
  mapping->assign(rest.substr(0, name_len));
  xpath->assign(rest.substr(name_len));
  if (mapping->empty()) return Status::InvalidArgument("empty mapping name");
  if (xpath->empty()) return Status::InvalidArgument("empty XPath");
  return Status::OK();
}

}  // namespace xmlrdb::net
