// TCP front-end: serves the wire protocol in net/protocol.h over loopback
// or any interface, one Session per connection.
//
// Architecture (a small-scale mirror of the MySQL handler/session split):
//
//   * One IO thread owns every socket: it accepts connections, reads bytes
//     into per-connection frame decoders, performs admission control, and
//     writes queued response bytes. It never executes a statement.
//   * A worker thread pool executes statements. At most one statement per
//     session runs at a time (responses of one connection are produced in
//     request order); different sessions execute in parallel up to the
//     max_in_flight gate.
//   * Admission control sheds load with explicit BUSY responses instead of
//     unbounded queueing. Three bounds apply, in order:
//       - max_sessions: further connections receive BUSY (seq 0) and are
//         closed at accept time;
//       - session_queue_cap: pipelined requests beyond this many waiting
//         per connection are answered BUSY immediately (the BUSY can
//         therefore overtake responses to earlier, still-queued requests —
//         match responses by seq);
//       - max_in_flight: sessions with runnable work beyond this many
//         concurrently executing statements wait in a ready list whose
//         length is bounded by the session count.
//
// Protocol violations (oversized/truncated/unknown frames, bad seq, empty
// payloads) get one ERROR response, then the connection is closed after the
// write drains. Execution errors (bad SQL, unknown statement ids) get an
// ERROR response and the connection stays usable.
//
// Shutdown ordering (see DESIGN.md): Stop() stops accepting, discards
// queued-but-not-started work, waits for in-flight statements to complete,
// flushes pending response bytes best-effort, then tears sessions down —
// so Session destruction (which releases prepared-statement plan-cache
// pins) never races a worker still executing on that session. The server
// must be stopped before the Database it serves is destroyed.

#ifndef XMLRDB_NET_SERVER_H_
#define XMLRDB_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "rdb/database.h"

namespace xmlrdb {
class ThreadPool;
}  // namespace xmlrdb

namespace xmlrdb::net {

struct ServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (see Server::port()).
  uint16_t port = 0;
  /// Listen address. Default loopback; "0.0.0.0" serves all interfaces.
  std::string bind_address = "127.0.0.1";
  /// Frames longer than this are a protocol violation (ERROR + close).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Statement-execution worker threads.
  size_t workers = 4;
  /// Max concurrently executing statements across all sessions.
  size_t max_in_flight = 64;
  /// Max requests queued per connection (beyond the executing one) before
  /// admission control answers BUSY.
  size_t session_queue_cap = 32;
  /// Max concurrent connections; further accepts get BUSY (seq 0) + close.
  size_t max_sessions = 4096;
  int listen_backlog = 256;
};

/// Aggregate serving counters (monotonic since Start).
struct ServerStats {
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  int64_t requests = 0;        ///< frames admitted for execution
  int64_t busy_rejected = 0;   ///< BUSY responses (admission shed)
  int64_t protocol_errors = 0; ///< connections killed for malformed input
};

/// Host-provided XPath evaluation: (docid, mapping name, xpath) -> the
/// string-values of the matching nodes. Keeps net/ independent of shred/;
/// the host (test, bench, xmlrdb_server) wires the evaluator in.
using XPathHandler = std::function<Result<std::vector<std::string>>(
    int64_t doc, const std::string& mapping, const std::string& xpath)>;

class Server {
 public:
  explicit Server(rdb::Database* db, ServerConfig config = {});
  ~Server();  ///< stops the server if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Install before Start(); XPATH requests fail cleanly without one.
  void set_xpath_handler(XPathHandler handler);

  /// Binds, listens, spawns the IO thread and workers, and registers the
  /// xmlrdb_sessions virtual-table provider with the database.
  Status Start();

  /// Drains in-flight statements, closes every connection, joins all
  /// threads, and unregisters the session provider. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (after Start; resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  ServerStats stats() const;

  /// Live session snapshot (also the xmlrdb_sessions provider).
  std::vector<rdb::SessionInfo> SnapshotSessions() const;

  const ServerConfig& config() const { return config_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  rdb::Database* db_;
  ServerConfig config_;
  XPathHandler xpath_handler_;
  std::atomic<bool> running_{false};
  uint16_t port_ = 0;
};

}  // namespace xmlrdb::net

#endif  // XMLRDB_NET_SERVER_H_
