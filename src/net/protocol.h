// Wire protocol for the TCP front-end: length-prefixed binary frames.
//
// Every message is one frame: a 9-byte header {u32 payload_len, u8 type,
// u32 seq} followed by payload_len bytes of payload. All integers are
// little-endian. `seq` is assigned by the client — the first request on a
// connection carries seq 1 and every subsequent request increments it by
// one; the server echoes the request's seq in its response so pipelined
// responses can be matched even when a BUSY rejection overtakes earlier
// in-flight statements.
//
// Request types (client -> server):
//   kQuery         payload = SQL text (non-empty)
//   kPrepare       payload = SQL text (non-empty); response kPrepared
//   kExecPrepared  payload = u32 stmt_id, u16 nparams, nparams values
//   kCloseStmt     payload = u32 stmt_id
//   kPing          payload empty; response kPong
//   kXPath         payload = i64 docid, u8 mapping_name_len, mapping name,
//                  XPath text (non-empty); response = one-column ("value")
//                  result set of the matching nodes' string-values
//   kHello         payload = u32 protocol version; response kHelloOk
//
// Response types (server -> client):
//   kOkResult      payload = i64 affected, u32 ncols, ncols x {string name,
//                  u8 type}, u32 nrows, nrows x ncols values
//   kError         payload = u8 status code, message text
//   kBusy          payload empty — the statement was shed by admission
//                  control; the connection stays usable
//   kPong          payload empty
//   kPrepared      payload = u32 stmt_id, u32 param_count
//   kHelloOk       payload = u32 negotiated version
//                  (min(client, server); the server never initiates)
//
// Traced frames (protocol version >= 2): a frame whose type byte has
// kTracedFlag (0x40) OR-ed in carries a trace prefix ahead of the normal
// payload. Requests prefix a u64 request_id chosen by the client; responses
// prefix u64 request_id + u32 queue_us + u32 exec_us — the server-measured
// admission-queue wait and statement execution time, echoed back so the
// client can decompose its observed round-trip into queue / execute / wire.
// The flag changes framing only: header validation, seq handling and the
// base payload are identical, so version-1 clients (which never send the
// flag) are unaffected. Versioning rule: a header field may only ever be
// ADDED behind a new version + flag bit; the 9-byte base header and the
// meaning of existing bits are frozen.
//
// Values are tagged: u8 {0 null, 1 int, 2 double, 3 string, 4 bool}
// followed by the representation (i64, IEEE-754 u64 bits, u32 len + bytes,
// u8). Strings are raw bytes, never NUL-terminated.
//
// The decoder treats the peer as hostile: frames longer than the
// configured maximum, unknown frame types, truncated payloads, and
// syntactically invalid request payloads are all rejected with a clean
// error — never an abort, a hang, or an allocation proportional to an
// attacker-supplied length that was not actually received.

#ifndef XMLRDB_NET_PROTOCOL_H_
#define XMLRDB_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdb/database.h"
#include "rdb/value.h"

namespace xmlrdb::net {

enum class MsgType : uint8_t {
  // Requests.
  kQuery = 1,
  kPrepare = 2,
  kExecPrepared = 3,
  kCloseStmt = 4,
  kPing = 5,
  kXPath = 6,
  kHello = 7,
  // Responses.
  kOkResult = 0x80,
  kError = 0x81,
  kBusy = 0x82,
  kPong = 0x83,
  kPrepared = 0x84,
  kHelloOk = 0x85,
};

/// Highest protocol version this build speaks. v1: the original frame set.
/// v2: kHello/kHelloOk negotiation plus kTracedFlag trace prefixes.
constexpr uint32_t kProtocolVersion = 2;

/// OR-ed into the type byte of a frame carrying a trace prefix (v2+).
constexpr uint8_t kTracedFlag = 0x40;

/// `t` with the traced flag stripped — the base message type.
constexpr uint8_t BaseType(uint8_t t) {
  return static_cast<uint8_t>(t & ~kTracedFlag);
}

const char* MsgTypeName(MsgType t);
/// Classify a *base* type byte (strip kTracedFlag first).
bool IsRequestType(uint8_t t);
bool IsResponseType(uint8_t t);

constexpr size_t kFrameHeaderBytes = 9;
constexpr uint32_t kDefaultMaxFrameBytes = 16u << 20;  // 16 MiB

/// Byte size of the trace prefix carried by traced frames.
constexpr size_t kTracedRequestPrefixBytes = 8;        // u64 request_id
constexpr size_t kTracedResponsePrefixBytes = 8 + 4 + 4;

/// Server-measured timing echoed in a traced response.
struct ServerTiming {
  uint64_t request_id = 0;
  uint32_t queue_us = 0;  ///< admission-queue wait before execution began
  uint32_t exec_us = 0;   ///< statement execution time
  bool valid = false;     ///< a traced response has been seen
};

struct Frame {
  MsgType type = MsgType::kPing;
  uint32_t seq = 0;
  std::string payload;
  /// On decode: the frame carried kTracedFlag (stripped from `type`; the
  /// trace prefix is still at the head of `payload`). On encode: OR the
  /// flag into the wire type byte — `payload` must already carry the prefix.
  bool traced = false;
};

/// Serializes header + payload. The payload must fit in u32.
std::string EncodeFrame(const Frame& frame);
void AppendFrame(std::string* out, const Frame& frame);

/// Incremental frame decoder over a byte stream.
///
/// Feed() appends received bytes; Poll() extracts the next complete frame.
/// The header is validated as soon as its 9 bytes arrive, so an oversized
/// or unknown-type frame is rejected before its payload is buffered — the
/// decoder never allocates more than max_frame_bytes + one read's worth of
/// bytes regardless of what the peer claims. After an error the decoder is
/// poisoned: every further Poll() returns kError.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t n);
  void Feed(std::string_view data) { Feed(data.data(), data.size()); }

  enum class PollResult { kFrame, kNeedMore, kError };
  /// Extracts the next frame into *out. kNeedMore means the buffered bytes
  /// end mid-frame (more Feed() calls may complete it); kError means the
  /// stream is unrecoverably malformed (see error()).
  PollResult Poll(Frame* out);

  const Status& error() const { return error_; }
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  uint32_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< prefix of buffer_ already handed out
  Status error_;         ///< non-OK once poisoned
};

// -- payload encoding ------------------------------------------------------

void AppendValue(std::string* out, const rdb::Value& v);

/// Cursor over a payload; every Read* validates remaining length.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  /// u32 length prefix + bytes; the length is validated against the bytes
  /// actually present before any allocation.
  Result<std::string> ReadString();
  Result<rdb::Value> ReadValue();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// Everything not yet consumed (for trailing free-text fields).
  std::string_view Rest() const { return data_.substr(pos_); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// kOkResult payload.
std::string EncodeResultSet(const rdb::QueryResult& result);
Status DecodeResultSet(std::string_view payload, rdb::QueryResult* out);

/// kError payload.
std::string EncodeError(const Status& status);
Status DecodeError(std::string_view payload);

/// kPrepared payload.
std::string EncodePrepared(uint32_t stmt_id, uint32_t param_count);
Status DecodePrepared(std::string_view payload, uint32_t* stmt_id,
                      uint32_t* param_count);

/// kExecPrepared request payload.
std::string EncodeExecPrepared(uint32_t stmt_id,
                               const std::vector<rdb::Value>& params);
Status DecodeExecPrepared(std::string_view payload, uint32_t* stmt_id,
                          std::vector<rdb::Value>* params);

/// kCloseStmt request payload.
std::string EncodeCloseStmt(uint32_t stmt_id);
Status DecodeCloseStmt(std::string_view payload, uint32_t* stmt_id);

/// kXPath request payload.
std::string EncodeXPathRequest(int64_t doc, const std::string& mapping,
                               std::string_view xpath);
Status DecodeXPathRequest(std::string_view payload, int64_t* doc,
                          std::string* mapping, std::string* xpath);

/// kHello request / kHelloOk response payload (u32 version).
std::string EncodeHello(uint32_t version);
Status DecodeHello(std::string_view payload, uint32_t* version);

/// Trace prefixes for kTracedFlag frames. The Strip* helpers consume the
/// prefix from the head of `payload` and return the remainder view.
void AppendTracedRequestPrefix(std::string* out, uint64_t request_id);
Status StripTracedRequestPrefix(std::string_view payload, uint64_t* request_id,
                                std::string_view* rest);
void AppendTracedResponsePrefix(std::string* out, const ServerTiming& timing);
Status StripTracedResponsePrefix(std::string_view payload, ServerTiming* timing,
                                 std::string_view* rest);

}  // namespace xmlrdb::net

#endif  // XMLRDB_NET_PROTOCOL_H_
