#include "net/http_admin.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/resource_tracker.h"
#include "common/trace.h"

namespace xmlrdb::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace

// -- parser ----------------------------------------------------------------

void HttpRequestParser::Feed(std::string_view data) {
  if (!error_.ok()) return;
  buffer_.append(data);
}

HttpRequestParser::PollResult HttpRequestParser::Poll(HttpRequest* out) {
  if (!error_.ok()) return PollResult::kError;
  size_t pos = buffer_.find("\r\n\r\n", consumed_);
  if (pos == std::string::npos) {
    if (buffer_.size() - consumed_ > max_request_bytes_) {
      oversized_ = true;
      error_ = Status::InvalidArgument("request head exceeds " +
                                       std::to_string(max_request_bytes_) +
                                       " bytes");
      return PollResult::kError;
    }
    // Drop the consumed prefix so a long-lived connection cannot grow the
    // buffer without bound across many requests.
    if (consumed_ > 0) {
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
    return PollResult::kNeedMore;
  }
  if (pos + 4 - consumed_ > max_request_bytes_) {
    oversized_ = true;
    error_ = Status::InvalidArgument("request head exceeds " +
                                     std::to_string(max_request_bytes_) +
                                     " bytes");
    return PollResult::kError;
  }
  std::string_view head =
      std::string_view(buffer_).substr(consumed_, pos - consumed_);
  consumed_ = pos + 4;

  // Request line: METHOD SP TARGET SP HTTP/1.x
  size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    error_ = Status::ParseError("malformed HTTP request line");
    return PollResult::kError;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() || target[0] != '/') {
    error_ = Status::ParseError("malformed HTTP request line");
    return PollResult::kError;
  }
  bool http10 = version == "HTTP/1.0";
  if (!http10 && version != "HTTP/1.1") {
    error_ = Status::ParseError("unsupported HTTP version");
    return PollResult::kError;
  }

  out->method = std::string(method);
  out->target = std::string(target);
  out->keep_alive = !http10;

  // Headers: only Connection matters; any request body is rejected — this
  // plane is read-only.
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);
  while (!rest.empty()) {
    size_t eol = rest.find("\r\n");
    std::string_view hline =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 2);
    if (hline.empty()) continue;
    size_t colon = hline.find(':');
    if (colon == std::string_view::npos) {
      error_ = Status::ParseError("malformed HTTP header line");
      return PollResult::kError;
    }
    std::string name = AsciiLower(Trim(hline.substr(0, colon)));
    std::string value = AsciiLower(Trim(hline.substr(colon + 1)));
    if (name == "connection") {
      if (value == "close") out->keep_alive = false;
      if (value == "keep-alive") out->keep_alive = true;
    } else if (name == "transfer-encoding") {
      error_ = Status::InvalidArgument("request bodies are not accepted");
      return PollResult::kError;
    } else if (name == "content-length") {
      if (value != "0") {
        error_ = Status::InvalidArgument("request bodies are not accepted");
        return PollResult::kError;
      }
    }
  }
  return PollResult::kRequest;
}

// -- response --------------------------------------------------------------

std::string RenderHttpResponse(const HttpResponse& resp, bool keep_alive) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "HTTP/1.1 %d %s\r\n", resp.status,
                StatusReason(resp.status));
  out.append(buf);
  out.append("Content-Type: ").append(resp.content_type).append("\r\n");
  std::snprintf(buf, sizeof(buf), "Content-Length: %zu\r\n",
                resp.body.size());
  out.append(buf);
  if (resp.status == 405) out.append("Allow: GET\r\n");
  out.append(keep_alive ? "Connection: keep-alive\r\n"
                        : "Connection: close\r\n");
  out.append("\r\n");
  out.append(resp.body);
  return out;
}

// -- server ----------------------------------------------------------------

struct HttpAdminServer::Impl {
  explicit Impl(HttpAdminServer* srv) : server(srv) {}

  HttpAdminServer* server;
  int listen_fd = -1;
  int wake_r = -1, wake_w = -1;
  std::thread io_thread;
  std::atomic<bool> stopping{false};

  struct Conn {
    explicit Conn(int fd_in, size_t max_bytes)
        : fd(fd_in), parser(max_bytes) {}
    int fd;
    HttpRequestParser parser;
    std::string outbuf;
    size_t out_off = 0;
    bool close_after_flush = false;
  };

  HttpResponse Dispatch(const HttpRequest& req) {
    MetricsRegistry::Global().Add("admin.requests", 1);
    if (req.method != "GET") {
      return HttpResponse{405, "text/plain; charset=utf-8",
                          "only GET is supported on the admin plane\n"};
    }
    std::string path = req.target.substr(0, req.target.find('?'));
    auto it = server->handlers_.find(path);
    if (it == server->handlers_.end()) {
      return HttpResponse{404, "text/plain; charset=utf-8",
                          "no such endpoint: " + path + "\n"};
    }
    return it->second();
  }

  /// Runs the parser over whatever is buffered, appending one response per
  /// complete request (pipelining). Returns false when the connection must
  /// close after its output drains.
  bool PumpRequests(Conn* conn) {
    HttpRequest req;
    for (;;) {
      HttpRequestParser::PollResult res = conn->parser.Poll(&req);
      if (res == HttpRequestParser::PollResult::kNeedMore) return true;
      if (res == HttpRequestParser::PollResult::kError) {
        MetricsRegistry::Global().Add("admin.parse_errors", 1);
        HttpResponse err{conn->parser.oversized() ? 431 : 400,
                         "text/plain; charset=utf-8",
                         conn->parser.error().message() + "\n"};
        conn->outbuf.append(RenderHttpResponse(err, false));
        return false;
      }
      HttpResponse resp = Dispatch(req);
      conn->outbuf.append(RenderHttpResponse(resp, req.keep_alive));
      if (!req.keep_alive) return false;
    }
  }

  /// Non-blocking drain. Returns false on a dead socket.
  bool FlushOutput(Conn* conn) {
    while (conn->out_off < conn->outbuf.size()) {
      ssize_t n = send(conn->fd, conn->outbuf.data() + conn->out_off,
                       conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return true;
      } else {
        return false;
      }
    }
    conn->outbuf.clear();
    conn->out_off = 0;
    return true;
  }

  void IoLoop() {
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
    std::vector<pollfd> fds;
    std::vector<int> dead;
    while (!stopping.load(std::memory_order_acquire)) {
      fds.clear();
      fds.push_back({wake_r, POLLIN, 0});
      fds.push_back({listen_fd, POLLIN, 0});
      for (auto& [fd, conn] : conns) {
        short events = POLLIN;
        if (conn->out_off < conn->outbuf.size()) events |= POLLOUT;
        fds.push_back({fd, events, 0});
      }
      int rc = poll(fds.data(), fds.size(), 500);
      if (rc < 0 && errno != EINTR) break;
      if (fds[0].revents & POLLIN) {
        char tmp[256];
        while (read(wake_r, tmp, sizeof(tmp)) > 0) {
        }
      }
      if (fds[1].revents & POLLIN) {
        for (;;) {
          int fd = accept(listen_fd, nullptr, nullptr);
          if (fd < 0) break;
          if (!SetNonBlocking(fd)) {
            close(fd);
            continue;
          }
          int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          conns.emplace(fd, std::make_unique<Conn>(
                                fd, server->config_.max_request_bytes));
        }
      }
      dead.clear();
      for (size_t i = 2; i < fds.size(); ++i) {
        const pollfd& p = fds[i];
        auto it = conns.find(p.fd);
        if (it == conns.end()) continue;
        Conn* conn = it->second.get();
        if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
          dead.push_back(p.fd);
          continue;
        }
        if (p.revents & POLLIN) {
          char buf[16 * 1024];
          bool eof = false;
          for (;;) {
            ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
            if (n > 0) {
              conn->parser.Feed(std::string_view(buf, n));
              if (static_cast<size_t>(n) < sizeof(buf)) break;
            } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
              break;
            } else {
              eof = true;
              break;
            }
          }
          if (!conn->close_after_flush && !PumpRequests(conn)) {
            conn->close_after_flush = true;
          }
          if (eof && conn->out_off == conn->outbuf.size()) {
            dead.push_back(p.fd);
            continue;
          }
        }
        if (!FlushOutput(conn)) {
          dead.push_back(p.fd);
          continue;
        }
        if (conn->close_after_flush &&
            conn->out_off == conn->outbuf.size()) {
          dead.push_back(p.fd);
        }
      }
      for (int fd : dead) {
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        close(fd);
        conns.erase(it);
      }
    }
    for (auto& [fd, conn] : conns) close(fd);
  }
};

HttpAdminServer::HttpAdminServer() : impl_(std::make_unique<Impl>(this)) {}

HttpAdminServer::~HttpAdminServer() { Stop(); }

void HttpAdminServer::Handle(std::string path,
                             std::function<HttpResponse()> handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpAdminServer::Start(const HttpAdminConfig& config) {
  if (running_) return Status::InvalidArgument("admin server already running");
  config_ = config;

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   config_.bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("bind");
    close(fd);
    return st;
  }
  if (listen(fd, config_.listen_backlog) != 0) {
    Status st = Errno("listen");
    close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status st = Errno("getsockname");
    close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(fd)) {
    Status st = Errno("fcntl");
    close(fd);
    return st;
  }
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) {
    Status st = Errno("pipe");
    close(fd);
    return st;
  }
  SetNonBlocking(pipe_fds[0]);
  SetNonBlocking(pipe_fds[1]);

  impl_->listen_fd = fd;
  impl_->wake_r = pipe_fds[0];
  impl_->wake_w = pipe_fds[1];
  impl_->stopping.store(false, std::memory_order_release);
  impl_->io_thread = std::thread([impl = impl_.get()] { impl->IoLoop(); });
  running_ = true;
  return Status::OK();
}

void HttpAdminServer::Stop() {
  if (!running_) return;
  running_ = false;
  impl_->stopping.store(true, std::memory_order_release);
  char b = 1;
  ssize_t n = write(impl_->wake_w, &b, 1);
  (void)n;
  if (impl_->io_thread.joinable()) impl_->io_thread.join();
  close(impl_->listen_fd);
  close(impl_->wake_r);
  close(impl_->wake_w);
  impl_->listen_fd = impl_->wake_r = impl_->wake_w = -1;
}

// -- standard endpoints ----------------------------------------------------

namespace {

void AppendField(std::string* out, const char* name, int64_t value,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64, name, value);
  out->append(buf);
}

void AppendField(std::string* out, const char* name, const std::string& value,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(name);
  out->append("\":");
  out->append(json::Quote(value));
}

void AppendField(std::string* out, const char* name, bool value,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  out->append(name);
  out->append(value ? "\":true" : "\":false");
}

std::string StatementsJson(const rdb::Database* db) {
  std::string out = "[";
  bool first_entry = true;
  for (const rdb::StatementLogEntry& e : db->statement_log().Entries()) {
    if (!first_entry) out.push_back(',');
    first_entry = false;
    out.push_back('{');
    bool first = true;
    AppendField(&out, "seq", e.seq, &first);
    AppendField(&out, "sql", e.sql, &first);
    AppendField(&out, "kind", e.kind, &first);
    AppendField(&out, "duration_us", e.duration_us, &first);
    AppendField(&out, "lock_wait_us", e.lock_wait_us, &first);
    AppendField(&out, "rows", e.rows, &first);
    AppendField(&out, "slow", e.slow, &first);
    AppendField(&out, "cache_hit", e.cache_hit, &first);
    AppendField(&out, "request_id", e.request_id, &first);
    if (!e.plan.empty()) AppendField(&out, "plan", e.plan, &first);
    out.push_back('}');
  }
  out.append("]\n");
  return out;
}

std::string SessionsJson(const std::vector<rdb::SessionInfo>& sessions) {
  std::string out = "[";
  bool first_entry = true;
  for (const rdb::SessionInfo& s : sessions) {
    if (!first_entry) out.push_back(',');
    first_entry = false;
    out.push_back('{');
    bool first = true;
    AppendField(&out, "id", s.id, &first);
    AppendField(&out, "peer", s.peer, &first);
    AppendField(&out, "state", s.state, &first);
    AppendField(&out, "age_us", s.age_us, &first);
    AppendField(&out, "statements", s.statements, &first);
    AppendField(&out, "pending", s.pending, &first);
    AppendField(&out, "busy_rejected", s.busy_rejected, &first);
    AppendField(&out, "prepared_statements", s.prepared_statements, &first);
    out.push_back('}');
  }
  out.append("]\n");
  return out;
}

std::string ResourcesJson() {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : ResourceTracker::Global().Snapshot()) {
    AppendField(&out, name.c_str(), value, &first);
  }
  out.append("}\n");
  return out;
}

}  // namespace

void RegisterAdminEndpoints(
    HttpAdminServer* admin, rdb::Database* db,
    std::function<std::vector<rdb::SessionInfo>()> sessions,
    std::function<Status()> readiness) {
  admin->Handle("/metrics", [] {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        MetricsRegistry::Global().RenderPrometheus()};
  });
  admin->Handle("/healthz", [] {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  admin->Handle("/readyz", [readiness = std::move(readiness)] {
    Status st = readiness ? readiness() : Status::OK();
    if (st.ok()) {
      return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
    }
    return HttpResponse{503, "text/plain; charset=utf-8",
                        st.ToString() + "\n"};
  });
  admin->Handle("/statements", [db] {
    return HttpResponse{200, "application/json", StatementsJson(db)};
  });
  admin->Handle("/sessions", [sessions = std::move(sessions)] {
    return HttpResponse{
        200, "application/json",
        SessionsJson(sessions ? sessions()
                              : std::vector<rdb::SessionInfo>{})};
  });
  admin->Handle("/resources", [] {
    return HttpResponse{200, "application/json", ResourcesJson()};
  });
  admin->Handle("/tracez", [] {
    return HttpResponse{200, "application/json",
                        TraceCollector::Global().RenderChromeJson()};
  });
}

// -- test helper -----------------------------------------------------------

Result<HttpGetResult> HttpGet(const std::string& host, uint16_t port,
                              const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect");
    close(fd);
    return st;
  }
  std::string req = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t n = send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("send");
      close(fd);
      return st;
    }
    off += static_cast<size_t>(n);
  }
  std::string raw;
  char buf[16 * 1024];
  for (;;) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else if (n < 0) {
      Status st = Errno("recv");
      close(fd);
      return st;
    } else {
      break;
    }
  }
  close(fd);
  if (raw.compare(0, 5, "HTTP/") != 0) {
    return Status::ParseError("not an HTTP response");
  }
  size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return Status::ParseError("malformed HTTP status line");
  }
  HttpGetResult result;
  result.status = std::atoi(raw.c_str() + sp + 1);
  size_t body = raw.find("\r\n\r\n");
  if (body == std::string::npos) {
    return Status::ParseError("missing HTTP header terminator");
  }
  result.body = raw.substr(body + 4);
  return result;
}

}  // namespace xmlrdb::net
