#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace xmlrdb::net {

namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_seq_(other.next_seq_),
      decoder_(std::move(other.decoder_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_seq_ = other.next_seq_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Status Client::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect");
    close(fd);
    return st;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  next_seq_ = 1;
  negotiated_version_ = 1;
  tracing_ = false;
  last_timing_ = ServerTiming{};
  decoder_ = FrameDecoder(kDefaultMaxFrameBytes);
  return Status::OK();
}

Status Client::Hello() {
  ASSIGN_OR_RETURN(Frame resp,
                   RoundTrip(MsgType::kHello, EncodeHello(kProtocolVersion)));
  if (resp.type == MsgType::kError) return DecodeError(resp.payload);
  if (resp.type != MsgType::kHelloOk) {
    return Status::ParseError(std::string("unexpected response frame ") +
                              MsgTypeName(resp.type));
  }
  uint32_t version = 0;
  RETURN_IF_ERROR(DecodeHello(resp.payload, &version));
  if (version > kProtocolVersion) {
    return Status::ParseError("server negotiated version " +
                              std::to_string(version) +
                              " above ours " +
                              std::to_string(kProtocolVersion));
  }
  negotiated_version_ = version;
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<uint32_t> Client::SendFrame(MsgType type, std::string payload) {
  Frame frame;
  frame.type = type;
  frame.seq = next_seq_++;
  if (tracing_) {
    if (negotiated_version_ < 2) {
      return Status::InvalidArgument(
          "tracing requires protocol v2 — call Hello() first");
    }
    last_request_id_ = next_request_id_++;
    std::string traced;
    traced.reserve(kTracedRequestPrefixBytes + payload.size());
    AppendTracedRequestPrefix(&traced, last_request_id_);
    traced += payload;
    frame.payload = std::move(traced);
    frame.traced = true;
  } else {
    frame.payload = std::move(payload);
  }
  RETURN_IF_ERROR(SendRaw(EncodeFrame(frame)));
  return frame.seq;
}

Result<Frame> Client::ReadResponse() {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  Frame frame;
  for (;;) {
    FrameDecoder::PollResult res = decoder_.Poll(&frame);
    if (res == FrameDecoder::PollResult::kFrame) {
      if (frame.traced) {
        // Capture the server's timing echo and hand callers the base
        // payload so response handling is mode-agnostic.
        std::string_view rest;
        RETURN_IF_ERROR(
            StripTracedResponsePrefix(frame.payload, &last_timing_, &rest));
        frame.payload.erase(0, kTracedResponsePrefixBytes);
      }
      return frame;
    }
    if (res == FrameDecoder::PollResult::kError) return decoder_.error();
    char buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Result<Frame> Client::RoundTrip(MsgType type, std::string payload) {
  ASSIGN_OR_RETURN(uint32_t seq, SendFrame(type, std::move(payload)));
  ASSIGN_OR_RETURN(Frame resp, ReadResponse());
  if (resp.seq != seq) {
    return Status::Internal("response seq " + std::to_string(resp.seq) +
                            " does not match request seq " +
                            std::to_string(seq));
  }
  return resp;
}

Result<rdb::QueryResult> Client::AsResult(const Frame& frame) {
  switch (frame.type) {
    case MsgType::kOkResult: {
      rdb::QueryResult result;
      RETURN_IF_ERROR(DecodeResultSet(frame.payload, &result));
      return result;
    }
    case MsgType::kError:
      return DecodeError(frame.payload);
    case MsgType::kBusy:
      return Status::IoError("server busy");
    default:
      return Status::ParseError(std::string("unexpected response frame ") +
                                MsgTypeName(frame.type));
  }
}

Result<rdb::QueryResult> Client::Query(std::string_view sql) {
  ASSIGN_OR_RETURN(Frame resp, RoundTrip(MsgType::kQuery, std::string(sql)));
  return AsResult(resp);
}

Result<PreparedHandle> Client::Prepare(std::string_view sql) {
  ASSIGN_OR_RETURN(Frame resp, RoundTrip(MsgType::kPrepare, std::string(sql)));
  if (resp.type == MsgType::kError) return DecodeError(resp.payload);
  if (resp.type == MsgType::kBusy) return Status::IoError("server busy");
  if (resp.type != MsgType::kPrepared) {
    return Status::ParseError(std::string("unexpected response frame ") +
                              MsgTypeName(resp.type));
  }
  PreparedHandle handle;
  RETURN_IF_ERROR(
      DecodePrepared(resp.payload, &handle.stmt_id, &handle.param_count));
  return handle;
}

Result<rdb::QueryResult> Client::ExecPrepared(uint32_t stmt_id,
                                              std::vector<rdb::Value> params) {
  ASSIGN_OR_RETURN(Frame resp,
                   RoundTrip(MsgType::kExecPrepared,
                             EncodeExecPrepared(stmt_id, params)));
  return AsResult(resp);
}

Status Client::CloseStmt(uint32_t stmt_id) {
  ASSIGN_OR_RETURN(Frame resp,
                   RoundTrip(MsgType::kCloseStmt, EncodeCloseStmt(stmt_id)));
  return AsResult(resp).status();
}

Status Client::Ping() {
  ASSIGN_OR_RETURN(Frame resp, RoundTrip(MsgType::kPing, {}));
  if (resp.type == MsgType::kPong) return Status::OK();
  if (resp.type == MsgType::kError) return DecodeError(resp.payload);
  return Status::ParseError(std::string("unexpected response frame ") +
                            MsgTypeName(resp.type));
}

Result<std::vector<std::string>> Client::XPath(int64_t doc,
                                               const std::string& mapping,
                                               std::string_view xpath) {
  ASSIGN_OR_RETURN(Frame resp,
                   RoundTrip(MsgType::kXPath,
                             EncodeXPathRequest(doc, mapping, xpath)));
  ASSIGN_OR_RETURN(rdb::QueryResult result, AsResult(resp));
  std::vector<std::string> values;
  values.reserve(result.rows.size());
  for (rdb::Row& row : result.rows) {
    if (row.size() != 1 || row[0].type() != rdb::DataType::kString) {
      return Status::ParseError("malformed XPATH result row");
    }
    values.push_back(row[0].AsString());
  }
  return values;
}

Result<uint32_t> Client::SendQuery(std::string_view sql) {
  return SendFrame(MsgType::kQuery, std::string(sql));
}

Result<uint32_t> Client::SendPrepare(std::string_view sql) {
  return SendFrame(MsgType::kPrepare, std::string(sql));
}

Result<uint32_t> Client::SendExecPrepared(
    uint32_t stmt_id, const std::vector<rdb::Value>& params) {
  return SendFrame(MsgType::kExecPrepared, EncodeExecPrepared(stmt_id, params));
}

Result<uint32_t> Client::SendPing() { return SendFrame(MsgType::kPing, {}); }

Result<uint32_t> Client::SendXPath(int64_t doc, const std::string& mapping,
                                   std::string_view xpath) {
  return SendFrame(MsgType::kXPath, EncodeXPathRequest(doc, mapping, xpath));
}

}  // namespace xmlrdb::net
