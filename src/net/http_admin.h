// HTTP admin plane: a read-only observability endpoint on its own port,
// separate from the wire-protocol data port.
//
// Endpoints (all GET; anything else is 405):
//   /metrics     Prometheus text exposition (format 0.0.4): engine counters,
//                resource gauges, latency histograms with cumulative buckets
//   /healthz     liveness — 200 "ok" while the process serves requests
//   /readyz      readiness — 200 once recovery finished and the WAL is
//                healthy, 503 with the reason otherwise
//   /statements  recent-statement ring (slow-query log) as JSON
//   /sessions    live wire-protocol sessions as JSON
//   /resources   engine resource gauges as JSON
//   /tracez      buffered trace spans as Chrome trace-event JSON (bounded
//                by the collector's capacity)
//
// Threading and ownership: one IO thread owns every admin socket and runs
// poll(); handlers execute inline on that thread. Every handler is a
// snapshot renderer over thread-safe state (MetricsRegistry,
// ResourceTracker, StatementLog, TraceCollector, the server's session
// registry), so the admin plane never takes engine locks out of order and
// never blocks a statement — the worst a slow scrape can do is delay the
// next scrape. Handlers are registered before Start() and are immutable
// while the server runs, so the handler table needs no locking.
//
// The parser treats the peer as hostile: bounded request size (431 once the
// head exceeds the cap), only well-formed HTTP/1.0-or-1.1 request lines,
// request bodies rejected (400) — this plane is read-only. Pipelined
// requests on one connection are answered in order.

#ifndef XMLRDB_NET_HTTP_ADMIN_H_
#define XMLRDB_NET_HTTP_ADMIN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdb/database.h"

namespace xmlrdb::net {

/// One parsed request head. The admin plane never reads bodies.
struct HttpRequest {
  std::string method;  ///< "GET", uppercase as sent
  std::string target;  ///< request target incl. any query string
  bool keep_alive = true;
};

/// Incremental HTTP/1.x request-head parser (the fuzz seam: it sees raw
/// attacker bytes before anything else does). Feed() appends received
/// bytes; Poll() extracts complete request heads, supporting pipelining.
/// After an error the parser is poisoned — every further Poll() fails.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(size_t max_request_bytes = 8192)
      : max_request_bytes_(max_request_bytes) {}

  void Feed(std::string_view data);

  enum class PollResult { kRequest, kNeedMore, kError };
  PollResult Poll(HttpRequest* out);

  /// Non-OK once poisoned. The message distinguishes oversized heads
  /// (mapped to 431 by the server) from malformed ones (400).
  const Status& error() const { return error_; }
  /// True when the poisoning error was an oversized request head.
  bool oversized() const { return oversized_; }

 private:
  size_t max_request_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_;
  bool oversized_ = false;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Serializes `resp` as an HTTP/1.1 response with Content-Length.
std::string RenderHttpResponse(const HttpResponse& resp, bool keep_alive);

struct HttpAdminConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  size_t max_request_bytes = 8192;
  int listen_backlog = 16;
};

class HttpAdminServer {
 public:
  HttpAdminServer();
  ~HttpAdminServer();

  HttpAdminServer(const HttpAdminServer&) = delete;
  HttpAdminServer& operator=(const HttpAdminServer&) = delete;

  /// Registers a GET handler for exact path `path` (query string stripped
  /// before matching). Must be called before Start().
  void Handle(std::string path, std::function<HttpResponse()> handler);

  Status Start(const HttpAdminConfig& config);
  void Stop();
  bool running() const { return running_; }
  /// The bound port (after Start() with port 0 resolves the ephemeral one).
  uint16_t port() const { return port_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::map<std::string, std::function<HttpResponse()>> handlers_;
  HttpAdminConfig config_;
  bool running_ = false;
  uint16_t port_ = 0;

  friend struct Impl;
};

/// Wires the standard endpoint set against an engine. `sessions` (optional)
/// feeds /sessions — the wire server's SnapshotSessions; `readiness`
/// (optional) gates /readyz — OK means ready, anything else is served as
/// 503 with the status message. Without providers those endpoints degrade
/// gracefully (empty session list, always-ready).
void RegisterAdminEndpoints(
    HttpAdminServer* admin, rdb::Database* db,
    std::function<std::vector<rdb::SessionInfo>()> sessions = nullptr,
    std::function<Status()> readiness = nullptr);

/// Blocking one-shot GET for tests and smoke drivers: connects, requests
/// `target`, returns status + body. Not a general HTTP client.
struct HttpGetResult {
  int status = 0;
  std::string body;
};
Result<HttpGetResult> HttpGet(const std::string& host, uint16_t port,
                              const std::string& target);

}  // namespace xmlrdb::net

#endif  // XMLRDB_NET_HTTP_ADMIN_H_
