// ShardRouter: N independent engine shards behind one routing facade.
//
// Each shard owns a full single-engine stack — its own rdb::Database (and,
// when durable, its own WAL directory and checkpoints), its own Mapping
// instance over that database, and its own background version GC. Shards
// share nothing: no table, lock, WAL, or plan cache is visible across the
// shard boundary, so a stalled or crashed shard cannot corrupt its peers.
//
// Placement. New documents get ids from one global counter and are placed by
// a consistent-hash ring (hash_ring.h, `virtual_nodes` points per shard).
// The ring decides placement only for NEW documents and for rebalance
// targets; the authoritative docid -> shard map is `owners_`, rebuilt from
// each shard's own tables (Mapping::ListDocIds) when a durable router
// reopens. AddShard() therefore moves only the documents whose ring owner
// became the new shard — ~1/(N+1) of the corpus — and never shuffles
// documents between pre-existing shards.
//
// Concurrency. `route_mu_` protects the ring, the owner map, and the shard
// vector. Queries hold it SHARED for their whole evaluation, so a document
// can never be migrated out from under a running query. Mutations that only
// touch one entry (Store's owner insert, AddShard's per-document owner flip)
// take it exclusive briefly. AddShard migrates one document at a time —
// reconstruct from the old shard, store on the new one, flip the owner, then
// delete the old copy — releasing the lock between documents, so concurrent
// queries always see exactly one copy of every document: the old copy until
// the flip, the new one after.
//
// Shutdown order (the destructor): stop every shard's version GC first, then
// destroy shards back to front. Each shard's Database destructor flushes and
// detaches its WAL; since shards share nothing, the order across shards is
// otherwise free, but GC must stop before any database dies because the GC
// thread walks that database's catalog.

#ifndef XMLRDB_SHARD_SHARD_ROUTER_H_
#define XMLRDB_SHARD_SHARD_ROUTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "rdb/database.h"
#include "rdb/env.h"
#include "shard/fair_shared_mutex.h"
#include "shard/hash_ring.h"
#include "shred/evaluator.h"
#include "shred/mapping.h"
#include "xml/node.h"
#include "xpath/xpath_ast.h"

namespace xmlrdb::shard {

using shred::DocId;

/// Builds one shard's private Mapping instance. Called once per shard (and
/// once more per AddShard); every returned mapping must shred identically —
/// the router migrates documents between shards by reconstruct + re-store.
using MappingFactory =
    std::function<Result<std::unique_ptr<shred::Mapping>>()>;

struct ShardRouterOptions {
  int shards = 1;
  /// Ring points per shard; more points = smoother rebalance (hash_ring.h).
  int virtual_nodes = 64;
  /// Scatter-gather pool for fan-out queries. Null = ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// Non-null makes every shard durable under `dir_prefix`/shard_<i>.
  rdb::Env* env = nullptr;
  /// Per-shard envs (fault-injection tests crash ONE shard's WAL). When
  /// non-empty, must hold at least `shards` entries; entry i overrides `env`
  /// for shard i. Extra entries serve future AddShard() calls.
  std::vector<rdb::Env*> shard_envs;
  std::string dir_prefix;
  /// Run each shard's background MVCC version GC.
  bool start_version_gc = false;
  int64_t version_gc_interval_ms = 1000;
};

/// One document's slice of a fan-out query result.
struct DocStrings {
  DocId doc = 0;
  std::vector<std::string> values;
};

class ShardRouter {
 public:
  /// Builds (or, when durable directories already exist, reopens) the
  /// shards. A durable reopen must pass the same shard count the directory
  /// tree was written with; ownership is rebuilt from each shard's tables.
  static Result<std::unique_ptr<ShardRouter>> Create(
      MappingFactory factory, ShardRouterOptions options = {});

  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  int num_shards() const;
  std::string mapping_name() const;
  /// Every stored document id, ascending.
  std::vector<DocId> DocIds() const;
  /// The shard `doc` currently lives on (-1 when not stored).
  int OwnerOf(DocId doc) const;

  // -- Single-document operations: route to exactly one shard. --

  /// Assigns the next global docid, places it by the ring, and shreds the
  /// document on its owning shard.
  Result<DocId> Store(const xml::Document& doc);
  Status Remove(DocId doc);
  Result<shred::NodeSet> EvalPath(const xpath::PathExpr& path, DocId doc,
                                  shred::EvalStats* stats = nullptr);
  Result<std::vector<std::string>> EvalPathStrings(const xpath::PathExpr& path,
                                                   DocId doc);
  Status InsertSubtree(DocId doc, const rdb::Value& parent,
                       const xml::Node& subtree);
  Status DeleteSubtree(DocId doc, const rdb::Value& node);
  Result<std::unique_ptr<xml::Document>> Reconstruct(DocId doc);

  // -- Fan-out operations: scatter across shards, gather, merge. --

  /// Evaluates `path` against EVERY stored document (scatter-gathered on the
  /// pool) and returns per-document string values merged in ascending-docid
  /// order — document order across the whole corpus.
  Result<std::vector<DocStrings>> EvalPathStringsAll(
      const xpath::PathExpr& path);

  /// Runs one SELECT on every shard through the prepared-statement layer
  /// (each shard's plan cache compiles it once) and merges the partial
  /// results: when every shard's result has a `docid` column, rows merge in
  /// ascending docid (document order, per-shard row order preserved within a
  /// document); otherwise partials concatenate in shard order.
  Result<rdb::QueryResult> ExecuteAll(const std::string& sql,
                                      std::vector<rdb::Value> params = {});

  // -- Topology and maintenance. --

  /// Adds one shard and migrates the documents the ring reassigns to it
  /// (~1/(N+1) of the corpus, never between old shards). Migration is
  /// per-document and lock-interleaved: concurrent queries keep running and
  /// always see exactly one copy of every document.
  Status AddShard();

  /// Checkpoints every durable shard (no-op for in-memory shards).
  Status Checkpoint();

  /// Per-shard stats for the xmlrdb_shards virtual table and the admin
  /// plane; also refreshes the mvcc.shard.<i>.version_bytes gauges.
  std::vector<rdb::ShardInfo> SnapshotShards() const;

  // -- Test/introspection access to one shard's private stack. --
  rdb::Database* shard_db(int shard) const;
  shred::Mapping* shard_mapping(int shard) const;

 private:
  struct Shard {
    int id = 0;
    std::string dir;  ///< durable directory ("" = in-memory)
    std::unique_ptr<shred::Mapping> mapping;
    std::unique_ptr<rdb::Database> db;
    /// Serializes shreds/removes on this shard: not every mapping supports
    /// concurrent StoreWithId (binary runs per-store DDL).
    std::mutex store_mu;
    std::atomic<int64_t> requests{0};
    std::atomic<int64_t> errors{0};
  };

  ShardRouter() = default;

  rdb::Env* EnvFor(int shard_id) const;
  Result<std::unique_ptr<Shard>> MakeShard(int shard_id);
  /// Looks up `doc`'s shard under route_mu_ (caller holds it, any mode).
  Result<Shard*> OwnerShardLocked(DocId doc) const;
  /// Counts one routed request against shard `id` and records the
  /// net.shard.<id>.{requests,errors} counters + exec_us histogram.
  void RecordShardRequest(Shard* shard, bool ok, int64_t micros) const;

  MappingFactory factory_;
  ShardRouterOptions options_;

  /// Ring + owner map + shard vector; see the concurrency note above.
  /// Write-preferring: AddShard's owner flips must not starve behind a
  /// steady stream of shared-holding queries (fair_shared_mutex.h).
  mutable FairSharedMutex route_mu_;
  HashRing ring_{64};
  std::map<DocId, int> owners_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<int64_t> next_docid_{0};
};

}  // namespace xmlrdb::shard

#endif  // XMLRDB_SHARD_SHARD_ROUTER_H_
