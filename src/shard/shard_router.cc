#include "shard/shard_router.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/metrics.h"
#include "common/resource_tracker.h"
#include "common/trace.h"
#include "rdb/durability.h"
#include "shred/shred_util.h"

namespace xmlrdb::shard {

namespace {

std::string ShardMetricName(int shard_id, const char* suffix) {
  return "net.shard." + std::to_string(shard_id) + "." + suffix;
}

}  // namespace

Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    MappingFactory factory, ShardRouterOptions options) {
  if (options.shards < 1) {
    return Status::InvalidArgument("shard router needs at least one shard");
  }
  if (options.virtual_nodes < 1) {
    return Status::InvalidArgument("virtual_nodes must be positive");
  }
  if (!options.shard_envs.empty() &&
      options.shard_envs.size() < static_cast<size_t>(options.shards)) {
    return Status::InvalidArgument(
        "shard_envs must cover every initial shard");
  }
  if ((options.env != nullptr || !options.shard_envs.empty()) &&
      options.dir_prefix.empty()) {
    return Status::InvalidArgument("durable shards need a dir_prefix");
  }
  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->factory_ = std::move(factory);
  router->options_ = std::move(options);
  router->ring_ = HashRing(router->options_.virtual_nodes);
  DocId max_doc = 0;
  for (int i = 0; i < router->options_.shards; ++i) {
    ASSIGN_OR_RETURN(std::unique_ptr<Shard> shard, router->MakeShard(i));
    // A reopened durable shard re-owns whatever its tables already hold;
    // the ring only places documents stored from now on.
    ASSIGN_OR_RETURN(std::vector<DocId> docs,
                     shard->mapping->ListDocIds(shard->db.get()));
    for (DocId d : docs) {
      router->owners_[d] = i;
      max_doc = std::max(max_doc, d);
    }
    router->ring_.AddShard(i);
    router->shards_.push_back(std::move(shard));
  }
  router->next_docid_.store(max_doc, std::memory_order_relaxed);
  return router;
}

ShardRouter::~ShardRouter() {
  // Stop every GC thread before any shard database dies (the GC walks its
  // database's catalog), then let the vector destroy shards back to front;
  // each Database destructor flushes and detaches its own WAL.
  for (auto& shard : shards_) {
    if (shard->db != nullptr) shard->db->StopVersionGc();
  }
}

rdb::Env* ShardRouter::EnvFor(int shard_id) const {
  if (static_cast<size_t>(shard_id) < options_.shard_envs.size()) {
    return options_.shard_envs[shard_id];
  }
  return options_.env;
}

Result<std::unique_ptr<ShardRouter::Shard>> ShardRouter::MakeShard(
    int shard_id) {
  auto shard = std::make_unique<Shard>();
  shard->id = shard_id;
  ASSIGN_OR_RETURN(shard->mapping, factory_());
  rdb::Env* env = EnvFor(shard_id);
  if (env != nullptr) {
    shard->dir = options_.dir_prefix + "/shard_" + std::to_string(shard_id);
    rdb::RecoveryStats recovery;
    ASSIGN_OR_RETURN(shard->db, rdb::OpenDurableDatabase(env, shard->dir, {},
                                                         &recovery));
    // Recovery rebuilt the mapping's tables from snapshot + WAL; only a
    // brand-new shard directory needs the schema created.
    if (recovery.cold_start) {
      RETURN_IF_ERROR(shard->mapping->Initialize(shard->db.get()));
    }
  } else {
    shard->db = std::make_unique<rdb::Database>();
    RETURN_IF_ERROR(shard->mapping->Initialize(shard->db.get()));
  }
  if (options_.start_version_gc) {
    shard->db->StartVersionGc(options_.version_gc_interval_ms);
  }
  return shard;
}

int ShardRouter::num_shards() const {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  return static_cast<int>(shards_.size());
}

std::string ShardRouter::mapping_name() const {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  return shards_.empty() ? "" : shards_[0]->mapping->name();
}

std::vector<DocId> ShardRouter::DocIds() const {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  std::vector<DocId> ids;
  ids.reserve(owners_.size());
  for (const auto& [doc, owner] : owners_) ids.push_back(doc);
  return ids;
}

int ShardRouter::OwnerOf(DocId doc) const {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  auto it = owners_.find(doc);
  return it == owners_.end() ? -1 : it->second;
}

Result<ShardRouter::Shard*> ShardRouter::OwnerShardLocked(DocId doc) const {
  auto it = owners_.find(doc);
  if (it == owners_.end()) {
    return Status::NotFound("document " + std::to_string(doc) +
                            " is not stored on any shard");
  }
  return shards_[it->second].get();
}

void ShardRouter::RecordShardRequest(Shard* shard, bool ok,
                                     int64_t micros) const {
  shard->requests.fetch_add(1, std::memory_order_relaxed);
  if (!ok) shard->errors.fetch_add(1, std::memory_order_relaxed);
  auto& metrics = MetricsRegistry::Global();
  metrics.Add(ShardMetricName(shard->id, "requests"), 1);
  if (!ok) metrics.Add(ShardMetricName(shard->id, "errors"), 1);
  metrics.RecordLatency(ShardMetricName(shard->id, "exec_us"), micros);
}

Result<DocId> ShardRouter::Store(const xml::Document& doc) {
  const DocId id = next_docid_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard* shard = nullptr;
  {
    std::shared_lock<FairSharedMutex> lock(route_mu_);
    shard = shards_[ring_.OwnerOf(id)].get();
  }
  const int64_t start = trace::NowMicros();
  Status st;
  {
    std::lock_guard<std::mutex> store_lock(shard->store_mu);
    st = shard->mapping->StoreAt(doc, id, shard->db.get());
  }
  RecordShardRequest(shard, st.ok(), trace::NowMicros() - start);
  RETURN_IF_ERROR(st);
  {
    // The document becomes routable only now, fully stored. If AddShard
    // moved the ring underneath us the document simply stays where it
    // landed — owners_, not the ring, is authoritative for lookups.
    std::unique_lock<FairSharedMutex> lock(route_mu_);
    owners_[id] = shard->id;
  }
  return id;
}

Status ShardRouter::Remove(DocId doc) {
  Shard* shard = nullptr;
  {
    std::unique_lock<FairSharedMutex> lock(route_mu_);
    auto it = owners_.find(doc);
    if (it == owners_.end()) {
      return Status::NotFound("document " + std::to_string(doc) +
                              " is not stored on any shard");
    }
    shard = shards_[it->second].get();
    owners_.erase(it);
  }
  Status st;
  {
    std::lock_guard<std::mutex> store_lock(shard->store_mu);
    st = shard->mapping->Remove(doc, shard->db.get());
  }
  if (!st.ok()) {
    // The rows are in an unknown state but the WAL transaction rolled the
    // visible ones back; make the document routable again.
    std::unique_lock<FairSharedMutex> lock(route_mu_);
    owners_[doc] = shard->id;
  }
  return st;
}

Result<shred::NodeSet> ShardRouter::EvalPath(const xpath::PathExpr& path,
                                             DocId doc,
                                             shred::EvalStats* stats) {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  ASSIGN_OR_RETURN(Shard * shard, OwnerShardLocked(doc));
  const int64_t start = trace::NowMicros();
  auto result =
      shred::EvalPath(path, shard->mapping.get(), shard->db.get(), doc, stats);
  RecordShardRequest(shard, result.ok(), trace::NowMicros() - start);
  return result;
}

Result<std::vector<std::string>> ShardRouter::EvalPathStrings(
    const xpath::PathExpr& path, DocId doc) {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  ASSIGN_OR_RETURN(Shard * shard, OwnerShardLocked(doc));
  const int64_t start = trace::NowMicros();
  auto result =
      shred::EvalPathStrings(path, shard->mapping.get(), shard->db.get(), doc);
  RecordShardRequest(shard, result.ok(), trace::NowMicros() - start);
  return result;
}

Status ShardRouter::InsertSubtree(DocId doc, const rdb::Value& parent,
                                  const xml::Node& subtree) {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  ASSIGN_OR_RETURN(Shard * shard, OwnerShardLocked(doc));
  std::lock_guard<std::mutex> store_lock(shard->store_mu);
  return shard->mapping->InsertSubtree(shard->db.get(), doc, parent, subtree);
}

Status ShardRouter::DeleteSubtree(DocId doc, const rdb::Value& node) {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  ASSIGN_OR_RETURN(Shard * shard, OwnerShardLocked(doc));
  std::lock_guard<std::mutex> store_lock(shard->store_mu);
  return shard->mapping->DeleteSubtree(shard->db.get(), doc, node);
}

Result<std::unique_ptr<xml::Document>> ShardRouter::Reconstruct(DocId doc) {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  ASSIGN_OR_RETURN(Shard * shard, OwnerShardLocked(doc));
  return shard->mapping->Reconstruct(shard->db.get(), doc);
}

Result<std::vector<DocStrings>> ShardRouter::EvalPathStringsAll(
    const xpath::PathExpr& path) {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  std::vector<std::pair<DocId, Shard*>> targets;
  targets.reserve(owners_.size());
  for (const auto& [doc, owner] : owners_) {
    targets.emplace_back(doc, shards_[owner].get());
  }
  std::vector<Result<std::vector<std::string>>> partials(
      targets.size(),
      Result<std::vector<std::string>>(std::vector<std::string>{}));
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Shared();
  pool->ParallelFor(targets.size(), [&](size_t i) {
    auto [doc, shard] = targets[i];
    const int64_t start = trace::NowMicros();
    partials[i] = shred::EvalPathStrings(path, shard->mapping.get(),
                                         shard->db.get(), doc);
    RecordShardRequest(shard, partials[i].ok(), trace::NowMicros() - start);
  });
  // owners_ is docid-ordered, so gathering in target order IS document
  // order across the corpus.
  std::vector<DocStrings> merged;
  merged.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    RETURN_IF_ERROR(partials[i].status());
    merged.push_back({targets[i].first, std::move(partials[i]).value()});
  }
  return merged;
}

Result<rdb::QueryResult> ShardRouter::ExecuteAll(
    const std::string& sql, std::vector<rdb::Value> params) {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  std::vector<Result<rdb::QueryResult>> partials(
      shards_.size(), Result<rdb::QueryResult>(rdb::QueryResult{}));
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Shared();
  pool->ParallelFor(shards_.size(), [&](size_t i) {
    Shard* shard = shards_[i].get();
    const int64_t start = trace::NowMicros();
    partials[i] = shred::ExecPrepared(shard->db.get(), sql, params);
    RecordShardRequest(shard, partials[i].ok(), trace::NowMicros() - start);
  });
  rdb::QueryResult merged;
  for (auto& partial : partials) RETURN_IF_ERROR(partial.status());
  merged.schema = partials.empty() ? rdb::Schema()
                                   : partials[0].value().schema;
  for (auto& partial : partials) {
    merged.affected += partial.value().affected;
    for (auto& row : partial.value().rows) {
      merged.rows.push_back(std::move(row));
    }
  }
  // Shards hold disjoint docid sets, so a stable sort on the docid column
  // alone restores global document order while preserving each shard's
  // row order within one document.
  std::optional<size_t> docid_col = merged.schema.TryIndexOf("docid");
  if (docid_col.has_value()) {
    std::stable_sort(merged.rows.begin(), merged.rows.end(),
                     [col = *docid_col](const rdb::Row& a, const rdb::Row& b) {
                       return a[col].Compare(b[col]) < 0;
                     });
  }
  return merged;
}

Status ShardRouter::AddShard() {
  // Build the new shard's full stack before touching routing state: a
  // failed open must leave the router exactly as it was.
  int new_id;
  {
    std::shared_lock<FairSharedMutex> lock(route_mu_);
    new_id = static_cast<int>(shards_.size());
  }
  if (!options_.shard_envs.empty() &&
      static_cast<size_t>(new_id) >= options_.shard_envs.size() &&
      options_.env == nullptr) {
    return Status::InvalidArgument(
        "no env provided for shard " + std::to_string(new_id));
  }
  ASSIGN_OR_RETURN(std::unique_ptr<Shard> shard, MakeShard(new_id));
  Shard* target = shard.get();

  // Publish the shard and compute the migration set: exactly the documents
  // whose ring owner became the new shard (the consistent-hash guarantee —
  // nothing moves between pre-existing shards).
  std::vector<DocId> to_move;
  {
    std::unique_lock<FairSharedMutex> lock(route_mu_);
    shards_.push_back(std::move(shard));
    ring_.AddShard(new_id);
    for (const auto& [doc, owner] : owners_) {
      if (owner != new_id && ring_.OwnerOf(doc) == new_id) {
        to_move.push_back(doc);
      }
    }
  }

  // Migrate one document at a time, releasing the routing lock between
  // steps so queries keep flowing. Until the owner flip a query sees the
  // old copy; after it, the new one — never zero or two copies.
  for (DocId doc : to_move) {
    Shard* source = nullptr;
    std::unique_ptr<xml::Document> tree;
    {
      std::shared_lock<FairSharedMutex> lock(route_mu_);
      auto it = owners_.find(doc);
      if (it == owners_.end() || it->second == new_id) continue;  // raced away
      source = shards_[it->second].get();
      ASSIGN_OR_RETURN(tree, source->mapping->Reconstruct(source->db.get(),
                                                          doc));
    }
    {
      std::lock_guard<std::mutex> store_lock(target->store_mu);
      RETURN_IF_ERROR(target->mapping->StoreAt(*tree, doc, target->db.get()));
    }
    bool flipped = false;
    {
      std::unique_lock<FairSharedMutex> lock(route_mu_);
      auto it = owners_.find(doc);
      if (it != owners_.end() && shards_[it->second].get() == source) {
        it->second = new_id;
        flipped = true;
      }
    }
    if (!flipped) {
      // The document was removed while we copied it; drop the new copy.
      std::lock_guard<std::mutex> store_lock(target->store_mu);
      RETURN_IF_ERROR(target->mapping->Remove(doc, target->db.get()));
      continue;
    }
    std::lock_guard<std::mutex> store_lock(source->store_mu);
    RETURN_IF_ERROR(source->mapping->Remove(doc, source->db.get()));
  }
  return Status::OK();
}

Status ShardRouter::Checkpoint() {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  for (auto& shard : shards_) {
    if (shard->dir.empty()) continue;
    RETURN_IF_ERROR(shard->db->Checkpoint());
  }
  return Status::OK();
}

std::vector<rdb::ShardInfo> ShardRouter::SnapshotShards() const {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  std::vector<rdb::ShardInfo> infos;
  infos.reserve(shards_.size());
  std::vector<int64_t> docs(shards_.size(), 0);
  for (const auto& [doc, owner] : owners_) ++docs[owner];
  for (const auto& shard : shards_) {
    rdb::ShardInfo info;
    info.shard = shard->id;
    info.scope = shard->mapping->name();
    info.docs = docs[shard->id];
    info.requests = shard->requests.load(std::memory_order_relaxed);
    info.errors = shard->errors.load(std::memory_order_relaxed);
    auto pc = shard->db->plan_cache().stats();
    info.plancache_hits = pc.hits;
    info.plancache_misses = pc.misses;
    info.footprint_bytes = static_cast<int64_t>(shard->db->FootprintBytes());
    int64_t version_bytes = 0;
    for (const std::string& table : shard->db->TableNames()) {
      const rdb::Table* t = shard->db->FindTable(table);
      if (t != nullptr) version_bytes += t->version_bytes();
    }
    info.version_bytes = version_bytes;
    ResourceTracker::Global()
        .GetGauge("mvcc.shard." + std::to_string(shard->id) +
                  ".version_bytes")
        .Set(version_bytes);
    info.dir = shard->dir;
    infos.push_back(std::move(info));
  }
  return infos;
}

rdb::Database* ShardRouter::shard_db(int shard) const {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  return shards_[shard]->db.get();
}

shred::Mapping* ShardRouter::shard_mapping(int shard) const {
  std::shared_lock<FairSharedMutex> lock(route_mu_);
  return shards_[shard]->mapping.get();
}

}  // namespace xmlrdb::shard
