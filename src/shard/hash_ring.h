// Consistent-hash ring with virtual nodes: the shard-placement function.
//
// Each shard contributes `virtual_nodes` points on a 64-bit ring; a docid
// is owned by the shard whose point is the clockwise successor of the
// docid's hash. Adding one shard to an N-shard ring therefore reassigns
// only ~1/(N+1) of the keys — and every reassigned key moves TO the new
// shard, never between two old ones (an old shard's points do not move).
// That bounded-movement property is what makes online rebalancing cheap;
// ShardRouter::AddShard relies on it and shard_rebalance_test asserts it.
//
// The ring is a plain value type with no locking: ShardRouter guards its
// ring with the routing lock that also guards the docid ownership table.

#ifndef XMLRDB_SHARD_HASH_RING_H_
#define XMLRDB_SHARD_HASH_RING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace xmlrdb::shard {

/// 64-bit finalizer-style mixer (splitmix64): turns sequential docids and
/// (shard, replica) pairs into uniformly spread ring positions.
uint64_t Mix64(uint64_t x);

class HashRing {
 public:
  /// `virtual_nodes` points per shard. More points -> smoother key spread
  /// and tighter movement bounds, at O(shards * points) ring size.
  explicit HashRing(int virtual_nodes = 64) : virtual_nodes_(virtual_nodes) {}

  /// Adds `shard_id`'s virtual nodes to the ring. Duplicate adds are no-ops.
  void AddShard(int shard_id);

  /// Removes `shard_id`'s virtual nodes. Unknown ids are no-ops.
  void RemoveShard(int shard_id);

  /// The shard owning `docid`: the first ring point at or after
  /// Mix64(docid), wrapping at the top. Undefined (-1) on an empty ring.
  int OwnerOf(int64_t docid) const;

  size_t num_shards() const { return shards_.size(); }
  size_t num_points() const { return ring_.size(); }
  bool Contains(int shard_id) const { return shards_.contains(shard_id); }
  std::vector<int> ShardIds() const {
    return std::vector<int>(shards_.begin(), shards_.end());
  }
  int virtual_nodes() const { return virtual_nodes_; }

 private:
  int virtual_nodes_;
  std::map<uint64_t, int> ring_;  ///< ring position -> shard id
  std::set<int> shards_;
};

}  // namespace xmlrdb::shard

#endif  // XMLRDB_SHARD_HASH_RING_H_
