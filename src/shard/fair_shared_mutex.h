// Write-preferring reader/writer mutex for the shard routing table.
//
// std::shared_mutex makes no fairness promise, and the glibc rwlock behind
// it prefers readers: with a steady stream of shared acquisitions (every
// routed query holds the routing lock shared for its whole evaluation), an
// exclusive acquisition — AddShard's per-document owner flips — can starve
// forever on a busy router. This mutex blocks NEW readers the moment a
// writer is waiting, so the write proceeds after the in-flight readers
// drain; readers then resume. Writer critical sections in the router are a
// few map operations, so reader stalls are microseconds.
//
// Satisfies the interface std::shared_lock / std::unique_lock need.

#ifndef XMLRDB_SHARD_FAIR_SHARED_MUTEX_H_
#define XMLRDB_SHARD_FAIR_SHARED_MUTEX_H_

#include <condition_variable>
#include <mutex>

namespace xmlrdb::shard {

class FairSharedMutex {
 public:
  FairSharedMutex() = default;
  FairSharedMutex(const FairSharedMutex&) = delete;
  FairSharedMutex& operator=(const FairSharedMutex&) = delete;

  void lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    readers_cv_.wait(
        lock, [this] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_;
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_active_ || writers_waiting_ > 0) return false;
    ++readers_;
    return true;
  }

  void unlock_shared() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--readers_ == 0 && writers_waiting_ > 0) writer_cv_.notify_one();
  }

  void lock() {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    writer_cv_.wait(lock, [this] { return !writer_active_ && readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::unique_lock<std::mutex> lock(mu_);
    if (writer_active_ || readers_ > 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::unique_lock<std::mutex> lock(mu_);
    writer_active_ = false;
    if (writers_waiting_ > 0) {
      writer_cv_.notify_one();
    } else {
      readers_cv_.notify_all();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable readers_cv_;
  std::condition_variable writer_cv_;
  int readers_ = 0;
  int writers_waiting_ = 0;
  bool writer_active_ = false;
};

}  // namespace xmlrdb::shard

#endif  // XMLRDB_SHARD_FAIR_SHARED_MUTEX_H_
