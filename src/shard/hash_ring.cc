#include "shard/hash_ring.h"

namespace xmlrdb::shard {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

/// Ring position of `replica` of `shard_id`. The shard stream is seeded
/// through an extra Mix64 round to domain-separate point keys from docid
/// hashes: OwnerOf hashes docids as Mix64(docid) and docids are small
/// integers, so if point inputs were also small integers (shard 0's first
/// replicas), every low docid would hash exactly onto a shard-0 point and
/// lower_bound would glue the whole low-docid range to one shard.
uint64_t PointFor(int shard_id, int replica) {
  const uint64_t seed = Mix64(static_cast<uint64_t>(shard_id) + 1);
  return Mix64(seed + static_cast<uint64_t>(replica));
}

}  // namespace

void HashRing::AddShard(int shard_id) {
  if (!shards_.insert(shard_id).second) return;
  for (int r = 0; r < virtual_nodes_; ++r) {
    // On the (astronomically unlikely) collision the earlier occupant
    // keeps the point: placement stays deterministic either way.
    ring_.emplace(PointFor(shard_id, r), shard_id);
  }
}

void HashRing::RemoveShard(int shard_id) {
  if (shards_.erase(shard_id) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == shard_id ? ring_.erase(it) : std::next(it);
  }
}

int HashRing::OwnerOf(int64_t docid) const {
  if (ring_.empty()) return -1;
  const uint64_t h = Mix64(static_cast<uint64_t>(docid));
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

}  // namespace xmlrdb::shard
