#include "publish/publisher.h"

#include "xpath/xpath_ast.h"

namespace xmlrdb::publish {

Result<std::string> PublishDocument(shred::Mapping* mapping, rdb::Database* db,
                                    shred::DocId doc,
                                    const xml::SerializeOptions& options) {
  ASSIGN_OR_RETURN(std::unique_ptr<xml::Document> tree,
                   mapping->Reconstruct(db, doc));
  return xml::Serialize(*tree, options);
}

Result<std::string> PublishSubtree(shred::Mapping* mapping, rdb::Database* db,
                                   shred::DocId doc, const rdb::Value& node,
                                   const xml::SerializeOptions& options) {
  ASSIGN_OR_RETURN(std::unique_ptr<xml::Node> tree,
                   mapping->ReconstructSubtree(db, doc, node));
  return xml::Serialize(*tree, options);
}

Result<std::string> PublishQueryResults(const std::string& xpath,
                                        shred::Mapping* mapping,
                                        rdb::Database* db, shred::DocId doc,
                                        const xml::SerializeOptions& options) {
  ASSIGN_OR_RETURN(xpath::PathExpr path, xpath::ParseXPath(xpath));
  ASSIGN_OR_RETURN(shred::NodeSet nodes,
                   shred::EvalPath(path, mapping, db, doc));
  std::string out = "<results>";
  if (options.pretty) out += "\n";
  for (const rdb::Value& node : nodes) {
    ASSIGN_OR_RETURN(std::string piece,
                     PublishSubtree(mapping, db, doc, node, options));
    out += piece;
    if (options.pretty) out += "\n";
  }
  out += "</results>";
  return out;
}

}  // namespace xmlrdb::publish
