// XML publishing: materialize stored documents / query results back as text.

#ifndef XMLRDB_PUBLISH_PUBLISHER_H_
#define XMLRDB_PUBLISH_PUBLISHER_H_

#include <string>

#include "shred/evaluator.h"
#include "shred/mapping.h"
#include "xml/serializer.h"

namespace xmlrdb::publish {

/// Serializes the whole stored document.
Result<std::string> PublishDocument(shred::Mapping* mapping, rdb::Database* db,
                                    shred::DocId doc,
                                    const xml::SerializeOptions& options = {});

/// Serializes one stored subtree.
Result<std::string> PublishSubtree(shred::Mapping* mapping, rdb::Database* db,
                                   shred::DocId doc, const rdb::Value& node,
                                   const xml::SerializeOptions& options = {});

/// Evaluates a path and serializes every result subtree, wrapped in
/// <results>...</results>.
Result<std::string> PublishQueryResults(const std::string& xpath,
                                        shred::Mapping* mapping,
                                        rdb::Database* db, shred::DocId doc,
                                        const xml::SerializeOptions& options = {});

}  // namespace xmlrdb::publish

#endif  // XMLRDB_PUBLISH_PUBLISHER_H_
