#include "common/histogram.h"

#include <algorithm>
#include <cmath>

namespace xmlrdb {

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  // bit_width(value): 1 -> bucket 1, [2,4) -> 2, [4,8) -> 3, ...
  return 64 - __builtin_clzll(static_cast<uint64_t>(value));
}

int64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return INT64_C(1) << (bucket - 1);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 1;
  if (bucket >= kNumBuckets - 1) return INT64_MAX;
  return INT64_C(1) << bucket;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (int i = 0; i < kNumBuckets; ++i) {
    out.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::Clear() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // 1-based rank of the sample whose value we report.
  double rank = std::max(1.0, std::ceil(p * static_cast<double>(count) / 100.0));
  int64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t in_bucket = buckets[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      double lo = static_cast<double>(Histogram::BucketLowerBound(i));
      double hi = static_cast<double>(Histogram::BucketUpperBound(i));
      double k = rank - static_cast<double>(cum);  // in (0, in_bucket]
      double v = lo + (hi - lo) * k / static_cast<double>(in_bucket);
      // The exact maximum is tracked separately; never report beyond it.
      return std::min(v, static_cast<double>(max));
    }
    cum += in_bucket;
  }
  return static_cast<double>(max);
}

}  // namespace xmlrdb
