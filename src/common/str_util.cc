#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xmlrdb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::ParseError("empty integer literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer literal: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::ParseError("empty numeric literal");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("numeric overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in numeric literal: " + buf);
  }
  return v;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '\'';
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += '\'';
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace xmlrdb
