#include "common/status.h"

namespace xmlrdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kTypeError: return "TypeError";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kConstraintError: return "ConstraintError";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kTxnError: return "TxnError";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

}  // namespace xmlrdb
