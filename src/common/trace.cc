#include "common/trace.h"

#include <chrono>
#include <cstdio>

namespace xmlrdb {

namespace {

thread_local uint64_t t_current_span = 0;

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<int64_t> g_next_thread_id{1};

int64_t ThreadIdSlow() {
  thread_local int64_t t_id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return t_id;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

namespace trace {

uint64_t CurrentSpanId() { return t_current_span; }

int64_t CurrentThreadId() { return ThreadIdSlow(); }

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

}  // namespace trace

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceCollector::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
}

std::string TraceCollector::RenderChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out.push_back(',');
    out.append("{\"name\":\"");
    AppendJsonEscaped(e.name, &out);
    out.append("\",\"cat\":\"");
    AppendJsonEscaped(e.category, &out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%lld,\"ts\":%lld,"
                  "\"dur\":%lld,\"args\":{\"span\":%llu,\"parent\":%llu}}",
                  static_cast<long long>(e.tid),
                  static_cast<long long>(e.start_us),
                  static_cast<long long>(e.dur_us),
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent_id));
    out.append(buf);
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category) {
  if (!TraceCollector::Global().enabled()) return;
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  start_us_ = trace::NowMicros();
  name_ = name;
  category_ = category;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  t_current_span = parent_;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.id = id_;
  event.parent_id = parent_;
  event.tid = trace::CurrentThreadId();
  event.start_us = start_us_;
  event.dur_us = trace::NowMicros() - start_us_;
  TraceCollector::Global().Record(std::move(event));
}

ScopedTraceContext::ScopedTraceContext(uint64_t parent_span_id)
    : saved_(t_current_span) {
  t_current_span = parent_span_id;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_span = saved_; }

}  // namespace xmlrdb
