#include "common/trace.h"

#include <chrono>
#include <cstdio>

#include "common/json.h"
#include "common/resource_tracker.h"

namespace xmlrdb {

namespace {

thread_local uint64_t t_current_span = 0;
thread_local uint64_t t_current_request = 0;

ResourceGauge& EventsGauge() {
  static ResourceGauge& g = ResourceTracker::Global().GetGauge("trace.events");
  return g;
}

std::atomic<uint64_t> g_next_span_id{1};
std::atomic<int64_t> g_next_thread_id{1};

int64_t ThreadIdSlow() {
  thread_local int64_t t_id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return t_id;
}

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

namespace trace {

uint64_t CurrentSpanId() { return t_current_span; }

uint64_t CurrentRequestId() { return t_current_request; }

int64_t CurrentThreadId() { return ThreadIdSlow(); }

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

}  // namespace trace

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
  EventsGauge().Add(1);
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  EventsGauge().Add(-static_cast<int64_t>(events_.size()));
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceCollector::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
}

std::string TraceCollector::RenderChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out.push_back(',');
    out.append("{\"name\":\"");
    json::AppendEscaped(&out, e.name);
    out.append("\",\"cat\":\"");
    json::AppendEscaped(&out, e.category);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%lld,\"ts\":%lld,"
                  "\"dur\":%lld,\"args\":{\"span\":%llu,\"parent\":%llu",
                  static_cast<long long>(e.tid),
                  static_cast<long long>(e.start_us),
                  static_cast<long long>(e.dur_us),
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent_id));
    out.append(buf);
    if (e.request_id != 0) {
      std::snprintf(buf, sizeof(buf), ",\"request_id\":%llu",
                    static_cast<unsigned long long>(e.request_id));
      out.append(buf);
    }
    out.append("}}");
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category) {
  if (!TraceCollector::Global().enabled()) return;
  active_ = true;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  start_us_ = trace::NowMicros();
  name_ = name;
  category_ = category;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  t_current_span = parent_;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.id = id_;
  event.parent_id = parent_;
  event.request_id = t_current_request;
  event.tid = trace::CurrentThreadId();
  event.start_us = start_us_;
  event.dur_us = trace::NowMicros() - start_us_;
  TraceCollector::Global().Record(std::move(event));
}

ScopedRequestId::ScopedRequestId(uint64_t request_id)
    : saved_(t_current_request) {
  t_current_request = request_id;
}

ScopedRequestId::~ScopedRequestId() { t_current_request = saved_; }

ScopedTraceContext::ScopedTraceContext(uint64_t parent_span_id,
                                       uint64_t request_id)
    : saved_(t_current_span), saved_request_(t_current_request) {
  t_current_span = parent_span_id;
  t_current_request = request_id;
}

ScopedTraceContext::~ScopedTraceContext() {
  t_current_span = saved_;
  t_current_request = saved_request_;
}

}  // namespace xmlrdb
