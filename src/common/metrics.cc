#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace xmlrdb {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Add(std::string_view name, int64_t delta) {
  if (!enabled()) return;
  Shard& shard = shards_[ShardIndex(name)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counters[std::string(name)] += delta;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  const Shard& shard = shards_[ShardIndex(name)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counters.find(name);
  return it == shard.counters.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(shard.counters.begin(), shard.counters.end());
  }
  return out;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(hist_mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::RecordLatency(std::string_view name, int64_t value) {
  if (!enabled()) return;
  GetHistogram(name).Record(value);
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramSnapshots()
    const {
  std::map<std::string, HistogramSnapshot> out;
  std::lock_guard<std::mutex> lock(hist_mu_);
  for (const auto& [name, hist] : histograms_) out[name] = hist->Snapshot();
  return out;
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counters.clear();
  }
  std::lock_guard<std::mutex> lock(hist_mu_);
  for (auto& [name, hist] : histograms_) hist->Clear();
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "xmlrdb_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  char buf[160];
  for (const auto& [name, value] : Snapshot()) {
    std::snprintf(buf, sizeof(buf), "%s %" PRId64 "\n",
                  PrometheusName(name).c_str(), value);
    out.append(buf);
  }
  for (const auto& [name, snap] : HistogramSnapshots()) {
    std::string p = PrometheusName(name);
    for (double q : {0.5, 0.95, 0.99}) {
      std::snprintf(buf, sizeof(buf), "%s{quantile=\"%.2f\"} %.1f\n", p.c_str(),
                    q, snap.Percentile(q * 100.0));
      out.append(buf);
    }
    std::snprintf(buf, sizeof(buf), "%s_count %" PRId64 "\n", p.c_str(),
                  snap.count);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), "%s_sum %" PRId64 "\n", p.c_str(),
                  snap.sum);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), "%s_max %" PRId64 "\n", p.c_str(),
                  snap.max);
    out.append(buf);
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    int64_t prev = it == before.end() ? 0 : it->second;
    if (value != prev) out[name] = value - prev;
  }
  return out;
}

}  // namespace xmlrdb
