#include "common/metrics.h"

namespace xmlrdb {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Add(std::string_view name, int64_t delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  counters_[std::string(name)] += delta;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    int64_t prev = it == before.end() ? 0 : it->second;
    if (value != prev) out[name] = value - prev;
  }
  return out;
}

}  // namespace xmlrdb
