#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "common/resource_tracker.h"

namespace xmlrdb {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Add(std::string_view name, int64_t delta) {
  if (!enabled()) return;
  Shard& shard = shards_[ShardIndex(name)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counters[std::string(name)] += delta;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  const Shard& shard = shards_[ShardIndex(name)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counters.find(name);
  return it == shard.counters.end() ? 0 : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(shard.counters.begin(), shard.counters.end());
  }
  return out;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(hist_mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::RecordLatency(std::string_view name, int64_t value) {
  if (!enabled()) return;
  GetHistogram(name).Record(value);
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramSnapshots()
    const {
  std::map<std::string, HistogramSnapshot> out;
  std::lock_guard<std::mutex> lock(hist_mu_);
  for (const auto& [name, hist] : histograms_) out[name] = hist->Snapshot();
  return out;
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counters.clear();
  }
  std::lock_guard<std::mutex> lock(hist_mu_);
  for (auto& [name, hist] : histograms_) hist->Clear();
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "xmlrdb_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  // Prometheus text exposition format 0.0.4. Registry counters are
  // monotonic, so they export as `# TYPE ... counter` with the conventional
  // `_total` suffix; histograms export cumulative `_bucket{le="..."}` lines
  // (our log2 buckets hold integers, so the inclusive `le` of bucket i is
  // its exclusive upper bound minus one) plus `_sum`/`_count`; resource
  // gauges are instantaneous levels and export as `# TYPE ... gauge`.
  std::string out;
  char buf[192];
  for (const auto& [name, value] : Snapshot()) {
    std::string p = PrometheusName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s_total counter\n%s_total %" PRId64 "\n",
                  p.c_str(), p.c_str(), value);
    out.append(buf);
  }
  for (const auto& [name, value] : ResourceTracker::Global().Snapshot()) {
    std::string p = PrometheusName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %" PRId64 "\n",
                  p.c_str(), p.c_str(), value);
    out.append(buf);
  }
  for (const auto& [name, snap] : HistogramSnapshots()) {
    std::string p = PrometheusName(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s histogram\n", p.c_str());
    out.append(buf);
    int last_nonempty = -1;
    for (int i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      if (snap.buckets[i] != 0) last_nonempty = i;
    }
    int64_t cumulative = 0;
    for (int i = 0; i <= last_nonempty; ++i) {
      cumulative += snap.buckets[i];
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%" PRId64 "\"} %" PRId64 "\n",
                    p.c_str(), Histogram::BucketUpperBound(i) - 1, cumulative);
      out.append(buf);
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRId64 "\n",
                  p.c_str(), snap.count);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), "%s_sum %" PRId64 "\n", p.c_str(),
                  snap.sum);
    out.append(buf);
    std::snprintf(buf, sizeof(buf), "%s_count %" PRId64 "\n", p.c_str(),
                  snap.count);
    out.append(buf);
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    int64_t prev = it == before.end() ? 0 : it->second;
    if (value != prev) out[name] = value - prev;
  }
  return out;
}

}  // namespace xmlrdb
