#include "common/rng.h"

#include <cmath>

namespace xmlrdb {

Rng::Rng(uint64_t seed) {
  // SplitMix64 to expand the seed into two non-zero state words.
  uint64_t z = seed + 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 2; ++i) {
    z += 0x9E3779B97F4A7C15ull;
    uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    s_[i] = x ^ (x >> 31);
    if (s_[i] == 0) s_[i] = 0xDEADBEEFCAFEBABEull;
  }
}

uint64_t Rng::Next() {
  uint64_t x = s_[0];
  const uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % range);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  // Inverse CDF over harmonic partial sums; O(n) setup is acceptable because
  // generators cache Rng instances with small alphabets.
  double h = 0.0;
  for (size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), s);
  double u = NextDouble() * h;
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= u) return i - 1;
  }
  return n - 1;
}

std::string Rng::Word(int min_len, int max_len) {
  int len = static_cast<int>(Uniform(min_len, max_len));
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out += static_cast<char>('a' + Uniform(0, 25));
  }
  return out;
}

}  // namespace xmlrdb
