#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/trace.h"

namespace xmlrdb {

namespace {
// Set for the lifetime of each worker thread; lets ParallelFor detect
// re-entrant use from inside a task and fall back to inline execution.
thread_local bool t_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_on_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (threads_.empty()) {
    // Inline execution stays on the caller's thread: its trace context is
    // already current.
    fn();
    return;
  }
  // Capture the submitter's innermost span (and wire request id) so spans
  // opened by the task nest under it even though the task runs on a worker
  // thread.
  uint64_t parent_span = trace::CurrentSpanId();
  uint64_t request_id = trace::CurrentRequestId();
  auto task = [parent_span, request_id, fn = std::move(fn)] {
    ScopedTraceContext ctx(parent_span, request_id);
    fn();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1 || t_on_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One dispatcher task per worker; each pulls the next unclaimed index, so
  // slow iterations never stall fast ones behind a static partition.
  struct SharedState {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t live = 0;
  } state;
  size_t fanout = std::min(n, threads_.size());
  state.live = fanout;
  for (size_t w = 0; w < fanout; ++w) {
    Submit([&state, &fn, n] {
      size_t i;
      while ((i = state.next.fetch_add(1, std::memory_order_relaxed)) < n) {
        fn(i);
      }
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.live == 0) state.done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.done_cv.wait(lock, [&state] { return state.live == 0; });
}

bool ThreadPool::OnWorkerThread() { return t_on_worker; }

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<size_t>(std::max(2u, hw));
  }());
  return pool;
}

}  // namespace xmlrdb
