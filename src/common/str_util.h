// Small string helpers shared across the library.

#ifndef XMLRDB_COMMON_STR_UTIL_H_
#define XMLRDB_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xmlrdb {

/// Splits `s` on `sep`; empty pieces are kept ("a..b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` consists only of ASCII whitespace (or is empty).
bool IsAllWhitespace(std::string_view s);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a decimal integer; rejects trailing garbage and overflow.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Escapes the five XML predefined entities in text content.
std::string XmlEscape(std::string_view s);

/// Escapes a string for embedding in a single-quoted SQL literal.
std::string SqlQuote(std::string_view s);

/// Formats bytes with binary unit suffix, e.g. "1.5 MiB".
std::string HumanBytes(uint64_t bytes);

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_STR_UTIL_H_
