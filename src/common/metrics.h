// Engine-wide metrics: named monotonic counters (row counts, statement
// counts, nanosecond timers) and latency histograms behind one process-global
// registry.
//
// The registry is disabled by default; Add() / RecordLatency() are a single
// relaxed atomic load when disabled, so instrumented hot paths cost nothing
// in normal operation. Consumers (EXPLAIN ANALYZE, the XPath evaluator's
// per-query stats, the benchmark harness) enable it, snapshot before/after a
// region, and diff.
//
// Counters are striped across kNumShards independently-locked maps so
// per-row operator counters recorded from parallel scan workers do not
// serialize on one mutex. Histograms (histogram.h) record lock-free; the
// registry only locks to resolve a name to its (stable) Histogram once.
//
// The registry counts as enabled while either the manual flag is set
// (set_enabled) or at least one ScopedMetricsCapture is alive; captures nest
// and overlap freely across threads — a capture ending never turns metrics
// off under a concurrent capture that is still running.

#ifndef XMLRDB_COMMON_METRICS_H_
#define XMLRDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace xmlrdb {

using MetricsSnapshot = std::map<std::string, int64_t>;

class MetricsRegistry {
 public:
  /// The process-wide registry used by the executor and evaluator.
  static MetricsRegistry& Global();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed) ||
           capture_depth_.load(std::memory_order_relaxed) > 0;
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Scoped-capture nesting: the registry stays enabled while any capture is
  /// alive. Used by ScopedMetricsCapture; callers normally don't need these.
  void BeginCapture() {
    capture_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  void EndCapture() { capture_depth_.fetch_sub(1, std::memory_order_relaxed); }

  /// Adds `delta` to counter `name`; no-op while the registry is disabled.
  void Add(std::string_view name, int64_t delta);

  /// Current value of `name` (0 if never written).
  int64_t Get(const std::string& name) const;

  /// Copy of all counters.
  MetricsSnapshot Snapshot() const;

  /// The histogram registered under `name`, created on first use. The
  /// returned reference stays valid for the process lifetime (Reset() zeroes
  /// histogram contents but never destroys them), so hot paths may cache it
  /// and Record() lock-free.
  Histogram& GetHistogram(std::string_view name);

  /// Records one sample into histogram `name`; no-op while disabled.
  void RecordLatency(std::string_view name, int64_t value);

  /// Snapshots of every registered histogram.
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;

  /// Clears all counters and zeroes all histograms (leaves the enabled flag
  /// and capture depth untouched).
  void Reset();

  /// Prometheus text exposition (format 0.0.4): registry counters as
  /// `# TYPE ... counter` with a `_total` suffix, ResourceTracker gauges as
  /// `# TYPE ... gauge`, histograms as `# TYPE ... histogram` with
  /// cumulative `_bucket{le="..."}` lines plus `_sum`/`_count`. Metric names
  /// have '.' mapped to '_' and an "xmlrdb_" prefix.
  std::string RenderPrometheus() const;

  /// Counters that changed between `before` and `after`, as after - before.
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

 private:
  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mu;
    MetricsSnapshot counters;
  };

  static size_t ShardIndex(std::string_view name) {
    return std::hash<std::string_view>{}(name) % kNumShards;
  }

  Shard shards_[kNumShards];
  mutable std::mutex hist_mu_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> capture_depth_{0};
};

/// RAII capture of the global registry over a scope: keeps it enabled for
/// the capture's lifetime (nesting-safe: overlapping captures on different
/// threads each hold their own reference) and snapshots on construction.
class ScopedMetricsCapture {
 public:
  ScopedMetricsCapture() {
    MetricsRegistry::Global().BeginCapture();
    before_ = MetricsRegistry::Global().Snapshot();
  }
  ~ScopedMetricsCapture() { MetricsRegistry::Global().EndCapture(); }

  ScopedMetricsCapture(const ScopedMetricsCapture&) = delete;
  ScopedMetricsCapture& operator=(const ScopedMetricsCapture&) = delete;

  /// Counters changed since construction.
  MetricsSnapshot Delta() const {
    return MetricsRegistry::Delta(before_,
                                  MetricsRegistry::Global().Snapshot());
  }

 private:
  MetricsSnapshot before_;
};

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_METRICS_H_
