// Engine-wide metrics: named monotonic counters (row counts, statement
// counts, nanosecond timers) behind one process-global registry.
//
// The registry is disabled by default; Add() is a single relaxed atomic load
// when disabled, so instrumented hot paths cost nothing in normal operation.
// Consumers (EXPLAIN ANALYZE, the XPath evaluator's per-query stats, the
// benchmark harness) enable it, snapshot before/after a region, and diff.

#ifndef XMLRDB_COMMON_METRICS_H_
#define XMLRDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace xmlrdb {

using MetricsSnapshot = std::map<std::string, int64_t>;

class MetricsRegistry {
 public:
  /// The process-wide registry used by the executor and evaluator.
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Adds `delta` to counter `name`; no-op while the registry is disabled.
  void Add(std::string_view name, int64_t delta);

  /// Current value of `name` (0 if never written).
  int64_t Get(const std::string& name) const;

  /// Copy of all counters.
  MetricsSnapshot Snapshot() const;

  /// Clears all counters (leaves the enabled flag untouched).
  void Reset();

  /// Counters that changed between `before` and `after`, as after - before.
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

 private:
  mutable std::mutex mu_;
  MetricsSnapshot counters_;
  std::atomic<bool> enabled_{false};
};

/// RAII capture of the global registry over a scope: enables it, snapshots on
/// construction, and restores the previous enabled state on destruction.
class ScopedMetricsCapture {
 public:
  ScopedMetricsCapture()
      : was_enabled_(MetricsRegistry::Global().enabled()) {
    MetricsRegistry::Global().set_enabled(true);
    before_ = MetricsRegistry::Global().Snapshot();
  }
  ~ScopedMetricsCapture() {
    MetricsRegistry::Global().set_enabled(was_enabled_);
  }

  ScopedMetricsCapture(const ScopedMetricsCapture&) = delete;
  ScopedMetricsCapture& operator=(const ScopedMetricsCapture&) = delete;

  /// Counters changed since construction.
  MetricsSnapshot Delta() const {
    return MetricsRegistry::Delta(before_, MetricsRegistry::Global().Snapshot());
  }

 private:
  bool was_enabled_;
  MetricsSnapshot before_;
};

}  // namespace xmlrdb

#endif  // XMLRDB_COMMON_METRICS_H_
