// Minimal JSON string escaping, shared by every producer of JSON output in
// the engine (trace export, the HTTP admin endpoints, structured server
// logs). Escaping is the only JSON primitive the engine needs — documents
// are assembled by hand at each call site, which keeps the output format
// visible where it is produced.

#ifndef XMLRDB_COMMON_JSON_H_
#define XMLRDB_COMMON_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace xmlrdb::json {

/// Appends `s` to *out with JSON string escaping (no surrounding quotes).
inline void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

/// `s` as a quoted JSON string literal.
inline std::string Quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  AppendEscaped(&out, s);
  out.push_back('"');
  return out;
}

}  // namespace xmlrdb::json

#endif  // XMLRDB_COMMON_JSON_H_
